# Empty compiler generated dependencies file for bench_ablation_native_lfp.
# This may be replaced when dependencies are built.
