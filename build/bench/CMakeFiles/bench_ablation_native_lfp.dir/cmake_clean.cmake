file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_native_lfp.dir/bench_ablation_native_lfp.cc.o"
  "CMakeFiles/bench_ablation_native_lfp.dir/bench_ablation_native_lfp.cc.o.d"
  "bench_ablation_native_lfp"
  "bench_ablation_native_lfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_native_lfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
