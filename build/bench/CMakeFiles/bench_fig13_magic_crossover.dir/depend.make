# Empty dependencies file for bench_fig13_magic_crossover.
# This may be replaced when dependencies are built.
