# Empty dependencies file for bench_table5_lfp_breakdown.
# This may be replaced when dependencies are built.
