file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_relevant_facts.dir/bench_fig11_relevant_facts.cc.o"
  "CMakeFiles/bench_fig11_relevant_facts.dir/bench_fig11_relevant_facts.cc.o.d"
  "bench_fig11_relevant_facts"
  "bench_fig11_relevant_facts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_relevant_facts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
