# Empty dependencies file for bench_fig11_relevant_facts.
# This may be replaced when dependencies are built.
