# Empty compiler generated dependencies file for bench_ablation_precompile_adaptive.
# This may be replaced when dependencies are built.
