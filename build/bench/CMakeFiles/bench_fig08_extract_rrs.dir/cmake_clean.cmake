file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_extract_rrs.dir/bench_fig08_extract_rrs.cc.o"
  "CMakeFiles/bench_fig08_extract_rrs.dir/bench_fig08_extract_rrs.cc.o.d"
  "bench_fig08_extract_rrs"
  "bench_fig08_extract_rrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_extract_rrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
