# Empty dependencies file for bench_fig08_extract_rrs.
# This may be replaced when dependencies are built.
