file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dict_read_prs.dir/bench_fig10_dict_read_prs.cc.o"
  "CMakeFiles/bench_fig10_dict_read_prs.dir/bench_fig10_dict_read_prs.cc.o.d"
  "bench_fig10_dict_read_prs"
  "bench_fig10_dict_read_prs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dict_read_prs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
