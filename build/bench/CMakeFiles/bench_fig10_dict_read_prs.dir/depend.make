# Empty dependencies file for bench_fig10_dict_read_prs.
# This may be replaced when dependencies are built.
