# Empty compiler generated dependencies file for bench_fig14_magic_components.
# This may be replaced when dependencies are built.
