file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_supplementary.dir/bench_ablation_supplementary.cc.o"
  "CMakeFiles/bench_ablation_supplementary.dir/bench_ablation_supplementary.cc.o.d"
  "bench_ablation_supplementary"
  "bench_ablation_supplementary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_supplementary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
