# Empty compiler generated dependencies file for bench_ablation_supplementary.
# This may be replaced when dependencies are built.
