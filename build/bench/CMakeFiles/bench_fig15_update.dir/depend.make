# Empty dependencies file for bench_fig15_update.
# This may be replaced when dependencies are built.
