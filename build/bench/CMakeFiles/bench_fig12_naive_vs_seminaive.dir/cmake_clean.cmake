file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_naive_vs_seminaive.dir/bench_fig12_naive_vs_seminaive.cc.o"
  "CMakeFiles/bench_fig12_naive_vs_seminaive.dir/bench_fig12_naive_vs_seminaive.cc.o.d"
  "bench_fig12_naive_vs_seminaive"
  "bench_fig12_naive_vs_seminaive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_naive_vs_seminaive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
