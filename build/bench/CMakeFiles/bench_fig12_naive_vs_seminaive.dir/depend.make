# Empty dependencies file for bench_fig12_naive_vs_seminaive.
# This may be replaced when dependencies are built.
