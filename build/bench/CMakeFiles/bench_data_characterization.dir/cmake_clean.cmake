file(REMOVE_RECURSE
  "CMakeFiles/bench_data_characterization.dir/bench_data_characterization.cc.o"
  "CMakeFiles/bench_data_characterization.dir/bench_data_characterization.cc.o.d"
  "bench_data_characterization"
  "bench_data_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
