# Empty dependencies file for bench_data_characterization.
# This may be replaced when dependencies are built.
