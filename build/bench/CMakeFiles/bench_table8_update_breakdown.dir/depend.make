# Empty dependencies file for bench_table8_update_breakdown.
# This may be replaced when dependencies are built.
