file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_extract.dir/bench_fig07_extract.cc.o"
  "CMakeFiles/bench_fig07_extract.dir/bench_fig07_extract.cc.o.d"
  "bench_fig07_extract"
  "bench_fig07_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
