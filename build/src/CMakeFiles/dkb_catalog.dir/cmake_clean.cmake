file(REMOVE_RECURSE
  "CMakeFiles/dkb_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/dkb_catalog.dir/catalog/catalog.cc.o.d"
  "libdkb_catalog.a"
  "libdkb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
