file(REMOVE_RECURSE
  "libdkb_catalog.a"
)
