# Empty dependencies file for dkb_catalog.
# This may be replaced when dependencies are built.
