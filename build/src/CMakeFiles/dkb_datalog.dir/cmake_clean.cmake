file(REMOVE_RECURSE
  "CMakeFiles/dkb_datalog.dir/datalog/ast.cc.o"
  "CMakeFiles/dkb_datalog.dir/datalog/ast.cc.o.d"
  "CMakeFiles/dkb_datalog.dir/datalog/parser.cc.o"
  "CMakeFiles/dkb_datalog.dir/datalog/parser.cc.o.d"
  "libdkb_datalog.a"
  "libdkb_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
