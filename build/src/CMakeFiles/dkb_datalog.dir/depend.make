# Empty dependencies file for dkb_datalog.
# This may be replaced when dependencies are built.
