file(REMOVE_RECURSE
  "libdkb_datalog.a"
)
