file(REMOVE_RECURSE
  "CMakeFiles/dkb_sql.dir/sql/ast.cc.o"
  "CMakeFiles/dkb_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/dkb_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/dkb_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/dkb_sql.dir/sql/parser.cc.o"
  "CMakeFiles/dkb_sql.dir/sql/parser.cc.o.d"
  "libdkb_sql.a"
  "libdkb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
