# Empty dependencies file for dkb_sql.
# This may be replaced when dependencies are built.
