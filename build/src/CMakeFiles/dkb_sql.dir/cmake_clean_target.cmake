file(REMOVE_RECURSE
  "libdkb_sql.a"
)
