# Empty dependencies file for dkb_lfp.
# This may be replaced when dependencies are built.
