file(REMOVE_RECURSE
  "libdkb_lfp.a"
)
