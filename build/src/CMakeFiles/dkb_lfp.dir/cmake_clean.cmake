file(REMOVE_RECURSE
  "CMakeFiles/dkb_lfp.dir/lfp/eval_context.cc.o"
  "CMakeFiles/dkb_lfp.dir/lfp/eval_context.cc.o.d"
  "CMakeFiles/dkb_lfp.dir/lfp/evaluator.cc.o"
  "CMakeFiles/dkb_lfp.dir/lfp/evaluator.cc.o.d"
  "CMakeFiles/dkb_lfp.dir/lfp/naive.cc.o"
  "CMakeFiles/dkb_lfp.dir/lfp/naive.cc.o.d"
  "CMakeFiles/dkb_lfp.dir/lfp/native_lfp.cc.o"
  "CMakeFiles/dkb_lfp.dir/lfp/native_lfp.cc.o.d"
  "CMakeFiles/dkb_lfp.dir/lfp/seminaive.cc.o"
  "CMakeFiles/dkb_lfp.dir/lfp/seminaive.cc.o.d"
  "CMakeFiles/dkb_lfp.dir/lfp/tc_operator.cc.o"
  "CMakeFiles/dkb_lfp.dir/lfp/tc_operator.cc.o.d"
  "libdkb_lfp.a"
  "libdkb_lfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_lfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
