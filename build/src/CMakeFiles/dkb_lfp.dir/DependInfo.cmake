
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfp/eval_context.cc" "src/CMakeFiles/dkb_lfp.dir/lfp/eval_context.cc.o" "gcc" "src/CMakeFiles/dkb_lfp.dir/lfp/eval_context.cc.o.d"
  "/root/repo/src/lfp/evaluator.cc" "src/CMakeFiles/dkb_lfp.dir/lfp/evaluator.cc.o" "gcc" "src/CMakeFiles/dkb_lfp.dir/lfp/evaluator.cc.o.d"
  "/root/repo/src/lfp/naive.cc" "src/CMakeFiles/dkb_lfp.dir/lfp/naive.cc.o" "gcc" "src/CMakeFiles/dkb_lfp.dir/lfp/naive.cc.o.d"
  "/root/repo/src/lfp/native_lfp.cc" "src/CMakeFiles/dkb_lfp.dir/lfp/native_lfp.cc.o" "gcc" "src/CMakeFiles/dkb_lfp.dir/lfp/native_lfp.cc.o.d"
  "/root/repo/src/lfp/seminaive.cc" "src/CMakeFiles/dkb_lfp.dir/lfp/seminaive.cc.o" "gcc" "src/CMakeFiles/dkb_lfp.dir/lfp/seminaive.cc.o.d"
  "/root/repo/src/lfp/tc_operator.cc" "src/CMakeFiles/dkb_lfp.dir/lfp/tc_operator.cc.o" "gcc" "src/CMakeFiles/dkb_lfp.dir/lfp/tc_operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dkb_km.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
