file(REMOVE_RECURSE
  "libdkb_testbed.a"
)
