# Empty compiler generated dependencies file for dkb_testbed.
# This may be replaced when dependencies are built.
