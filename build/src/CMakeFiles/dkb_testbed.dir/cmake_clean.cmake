file(REMOVE_RECURSE
  "CMakeFiles/dkb_testbed.dir/testbed/query_cache.cc.o"
  "CMakeFiles/dkb_testbed.dir/testbed/query_cache.cc.o.d"
  "CMakeFiles/dkb_testbed.dir/testbed/testbed.cc.o"
  "CMakeFiles/dkb_testbed.dir/testbed/testbed.cc.o.d"
  "libdkb_testbed.a"
  "libdkb_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
