file(REMOVE_RECURSE
  "libdkb_workload.a"
)
