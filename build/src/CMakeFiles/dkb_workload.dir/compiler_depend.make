# Empty compiler generated dependencies file for dkb_workload.
# This may be replaced when dependencies are built.
