file(REMOVE_RECURSE
  "CMakeFiles/dkb_workload.dir/workload/data_gen.cc.o"
  "CMakeFiles/dkb_workload.dir/workload/data_gen.cc.o.d"
  "CMakeFiles/dkb_workload.dir/workload/queries.cc.o"
  "CMakeFiles/dkb_workload.dir/workload/queries.cc.o.d"
  "CMakeFiles/dkb_workload.dir/workload/rule_gen.cc.o"
  "CMakeFiles/dkb_workload.dir/workload/rule_gen.cc.o.d"
  "libdkb_workload.a"
  "libdkb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
