# Empty dependencies file for dkb_storage.
# This may be replaced when dependencies are built.
