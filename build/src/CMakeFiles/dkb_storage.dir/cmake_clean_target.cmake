file(REMOVE_RECURSE
  "libdkb_storage.a"
)
