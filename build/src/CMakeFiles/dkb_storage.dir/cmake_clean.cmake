file(REMOVE_RECURSE
  "CMakeFiles/dkb_storage.dir/storage/index.cc.o"
  "CMakeFiles/dkb_storage.dir/storage/index.cc.o.d"
  "CMakeFiles/dkb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/dkb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/dkb_storage.dir/storage/table.cc.o"
  "CMakeFiles/dkb_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/dkb_storage.dir/storage/tuple.cc.o"
  "CMakeFiles/dkb_storage.dir/storage/tuple.cc.o.d"
  "libdkb_storage.a"
  "libdkb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
