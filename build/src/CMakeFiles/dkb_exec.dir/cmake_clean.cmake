file(REMOVE_RECURSE
  "CMakeFiles/dkb_exec.dir/exec/binder.cc.o"
  "CMakeFiles/dkb_exec.dir/exec/binder.cc.o.d"
  "CMakeFiles/dkb_exec.dir/exec/executor.cc.o"
  "CMakeFiles/dkb_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/dkb_exec.dir/exec/expr.cc.o"
  "CMakeFiles/dkb_exec.dir/exec/expr.cc.o.d"
  "CMakeFiles/dkb_exec.dir/exec/plan.cc.o"
  "CMakeFiles/dkb_exec.dir/exec/plan.cc.o.d"
  "CMakeFiles/dkb_exec.dir/exec/planner.cc.o"
  "CMakeFiles/dkb_exec.dir/exec/planner.cc.o.d"
  "libdkb_exec.a"
  "libdkb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
