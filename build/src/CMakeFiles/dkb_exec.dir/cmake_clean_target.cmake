file(REMOVE_RECURSE
  "libdkb_exec.a"
)
