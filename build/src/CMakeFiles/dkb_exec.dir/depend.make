# Empty dependencies file for dkb_exec.
# This may be replaced when dependencies are built.
