
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/binder.cc" "src/CMakeFiles/dkb_exec.dir/exec/binder.cc.o" "gcc" "src/CMakeFiles/dkb_exec.dir/exec/binder.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/dkb_exec.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/dkb_exec.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/dkb_exec.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/dkb_exec.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/CMakeFiles/dkb_exec.dir/exec/plan.cc.o" "gcc" "src/CMakeFiles/dkb_exec.dir/exec/plan.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/dkb_exec.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/dkb_exec.dir/exec/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dkb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
