file(REMOVE_RECURSE
  "libdkb_km.a"
)
