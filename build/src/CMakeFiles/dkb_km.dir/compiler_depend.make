# Empty compiler generated dependencies file for dkb_km.
# This may be replaced when dependencies are built.
