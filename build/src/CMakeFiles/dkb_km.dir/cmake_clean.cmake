file(REMOVE_RECURSE
  "CMakeFiles/dkb_km.dir/km/codegen.cc.o"
  "CMakeFiles/dkb_km.dir/km/codegen.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/compiler.cc.o"
  "CMakeFiles/dkb_km.dir/km/compiler.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/eval_graph.cc.o"
  "CMakeFiles/dkb_km.dir/km/eval_graph.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/pcg.cc.o"
  "CMakeFiles/dkb_km.dir/km/pcg.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/rule_sql.cc.o"
  "CMakeFiles/dkb_km.dir/km/rule_sql.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/scc.cc.o"
  "CMakeFiles/dkb_km.dir/km/scc.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/stored_dkb.cc.o"
  "CMakeFiles/dkb_km.dir/km/stored_dkb.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/type_checker.cc.o"
  "CMakeFiles/dkb_km.dir/km/type_checker.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/update.cc.o"
  "CMakeFiles/dkb_km.dir/km/update.cc.o.d"
  "CMakeFiles/dkb_km.dir/km/workspace.cc.o"
  "CMakeFiles/dkb_km.dir/km/workspace.cc.o.d"
  "libdkb_km.a"
  "libdkb_km.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_km.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
