
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/km/codegen.cc" "src/CMakeFiles/dkb_km.dir/km/codegen.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/codegen.cc.o.d"
  "/root/repo/src/km/compiler.cc" "src/CMakeFiles/dkb_km.dir/km/compiler.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/compiler.cc.o.d"
  "/root/repo/src/km/eval_graph.cc" "src/CMakeFiles/dkb_km.dir/km/eval_graph.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/eval_graph.cc.o.d"
  "/root/repo/src/km/pcg.cc" "src/CMakeFiles/dkb_km.dir/km/pcg.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/pcg.cc.o.d"
  "/root/repo/src/km/rule_sql.cc" "src/CMakeFiles/dkb_km.dir/km/rule_sql.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/rule_sql.cc.o.d"
  "/root/repo/src/km/scc.cc" "src/CMakeFiles/dkb_km.dir/km/scc.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/scc.cc.o.d"
  "/root/repo/src/km/stored_dkb.cc" "src/CMakeFiles/dkb_km.dir/km/stored_dkb.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/stored_dkb.cc.o.d"
  "/root/repo/src/km/type_checker.cc" "src/CMakeFiles/dkb_km.dir/km/type_checker.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/type_checker.cc.o.d"
  "/root/repo/src/km/update.cc" "src/CMakeFiles/dkb_km.dir/km/update.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/update.cc.o.d"
  "/root/repo/src/km/workspace.cc" "src/CMakeFiles/dkb_km.dir/km/workspace.cc.o" "gcc" "src/CMakeFiles/dkb_km.dir/km/workspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dkb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
