# Empty dependencies file for dkb_rdbms.
# This may be replaced when dependencies are built.
