file(REMOVE_RECURSE
  "libdkb_rdbms.a"
)
