file(REMOVE_RECURSE
  "CMakeFiles/dkb_rdbms.dir/rdbms/database.cc.o"
  "CMakeFiles/dkb_rdbms.dir/rdbms/database.cc.o.d"
  "CMakeFiles/dkb_rdbms.dir/rdbms/snapshot.cc.o"
  "CMakeFiles/dkb_rdbms.dir/rdbms/snapshot.cc.o.d"
  "libdkb_rdbms.a"
  "libdkb_rdbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_rdbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
