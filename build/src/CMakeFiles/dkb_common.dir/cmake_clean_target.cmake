file(REMOVE_RECURSE
  "libdkb_common.a"
)
