file(REMOVE_RECURSE
  "CMakeFiles/dkb_common.dir/common/rng.cc.o"
  "CMakeFiles/dkb_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dkb_common.dir/common/status.cc.o"
  "CMakeFiles/dkb_common.dir/common/status.cc.o.d"
  "CMakeFiles/dkb_common.dir/common/str_util.cc.o"
  "CMakeFiles/dkb_common.dir/common/str_util.cc.o.d"
  "CMakeFiles/dkb_common.dir/common/value.cc.o"
  "CMakeFiles/dkb_common.dir/common/value.cc.o.d"
  "libdkb_common.a"
  "libdkb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
