# Empty dependencies file for dkb_common.
# This may be replaced when dependencies are built.
