file(REMOVE_RECURSE
  "libdkb_magic.a"
)
