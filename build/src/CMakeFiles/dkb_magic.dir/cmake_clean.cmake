file(REMOVE_RECURSE
  "CMakeFiles/dkb_magic.dir/magic/adornment.cc.o"
  "CMakeFiles/dkb_magic.dir/magic/adornment.cc.o.d"
  "CMakeFiles/dkb_magic.dir/magic/magic_sets.cc.o"
  "CMakeFiles/dkb_magic.dir/magic/magic_sets.cc.o.d"
  "libdkb_magic.a"
  "libdkb_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkb_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
