# Empty compiler generated dependencies file for dkb_magic.
# This may be replaced when dependencies are built.
