
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/flight_routes.cpp" "examples/CMakeFiles/flight_routes.dir/flight_routes.cpp.o" "gcc" "examples/CMakeFiles/flight_routes.dir/flight_routes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dkb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_lfp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_km.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dkb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
