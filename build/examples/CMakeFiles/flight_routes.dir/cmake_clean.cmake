file(REMOVE_RECURSE
  "CMakeFiles/flight_routes.dir/flight_routes.cpp.o"
  "CMakeFiles/flight_routes.dir/flight_routes.cpp.o.d"
  "flight_routes"
  "flight_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
