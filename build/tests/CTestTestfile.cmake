# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/rdbms_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/km_graph_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/type_checker_test[1]_include.cmake")
include("/root/repo/build/tests/rule_sql_test[1]_include.cmake")
include("/root/repo/build/tests/magic_test[1]_include.cmake")
include("/root/repo/build/tests/stored_dkb_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/negation_test[1]_include.cmake")
include("/root/repo/build/tests/precompile_adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/tc_operator_test[1]_include.cmake")
include("/root/repo/build/tests/exec_plan_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/lfp_stats_test[1]_include.cmake")
include("/root/repo/build/tests/supplementary_magic_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/builtin_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/data_types_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/query_cache_test[1]_include.cmake")
