file(REMOVE_RECURSE
  "CMakeFiles/precompile_adaptive_test.dir/precompile_adaptive_test.cc.o"
  "CMakeFiles/precompile_adaptive_test.dir/precompile_adaptive_test.cc.o.d"
  "precompile_adaptive_test"
  "precompile_adaptive_test.pdb"
  "precompile_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precompile_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
