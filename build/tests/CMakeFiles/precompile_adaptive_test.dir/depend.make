# Empty dependencies file for precompile_adaptive_test.
# This may be replaced when dependencies are built.
