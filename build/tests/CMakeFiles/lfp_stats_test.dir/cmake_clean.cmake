file(REMOVE_RECURSE
  "CMakeFiles/lfp_stats_test.dir/lfp_stats_test.cc.o"
  "CMakeFiles/lfp_stats_test.dir/lfp_stats_test.cc.o.d"
  "lfp_stats_test"
  "lfp_stats_test.pdb"
  "lfp_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
