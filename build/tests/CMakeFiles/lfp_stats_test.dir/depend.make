# Empty dependencies file for lfp_stats_test.
# This may be replaced when dependencies are built.
