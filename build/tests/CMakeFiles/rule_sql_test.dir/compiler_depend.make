# Empty compiler generated dependencies file for rule_sql_test.
# This may be replaced when dependencies are built.
