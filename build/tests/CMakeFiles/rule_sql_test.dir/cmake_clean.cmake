file(REMOVE_RECURSE
  "CMakeFiles/rule_sql_test.dir/rule_sql_test.cc.o"
  "CMakeFiles/rule_sql_test.dir/rule_sql_test.cc.o.d"
  "rule_sql_test"
  "rule_sql_test.pdb"
  "rule_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
