# Empty compiler generated dependencies file for stored_dkb_test.
# This may be replaced when dependencies are built.
