file(REMOVE_RECURSE
  "CMakeFiles/stored_dkb_test.dir/stored_dkb_test.cc.o"
  "CMakeFiles/stored_dkb_test.dir/stored_dkb_test.cc.o.d"
  "stored_dkb_test"
  "stored_dkb_test.pdb"
  "stored_dkb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stored_dkb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
