file(REMOVE_RECURSE
  "CMakeFiles/km_graph_test.dir/km_graph_test.cc.o"
  "CMakeFiles/km_graph_test.dir/km_graph_test.cc.o.d"
  "km_graph_test"
  "km_graph_test.pdb"
  "km_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
