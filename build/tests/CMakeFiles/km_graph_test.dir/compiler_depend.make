# Empty compiler generated dependencies file for km_graph_test.
# This may be replaced when dependencies are built.
