file(REMOVE_RECURSE
  "CMakeFiles/supplementary_magic_test.dir/supplementary_magic_test.cc.o"
  "CMakeFiles/supplementary_magic_test.dir/supplementary_magic_test.cc.o.d"
  "supplementary_magic_test"
  "supplementary_magic_test.pdb"
  "supplementary_magic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplementary_magic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
