# Empty compiler generated dependencies file for supplementary_magic_test.
# This may be replaced when dependencies are built.
