# Empty dependencies file for data_types_sweep_test.
# This may be replaced when dependencies are built.
