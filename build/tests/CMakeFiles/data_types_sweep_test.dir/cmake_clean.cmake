file(REMOVE_RECURSE
  "CMakeFiles/data_types_sweep_test.dir/data_types_sweep_test.cc.o"
  "CMakeFiles/data_types_sweep_test.dir/data_types_sweep_test.cc.o.d"
  "data_types_sweep_test"
  "data_types_sweep_test.pdb"
  "data_types_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_types_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
