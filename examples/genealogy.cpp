// Genealogy workload: a large synthetic family tree, comparing the three
// LFP strategies and the effect of the magic sets optimization on a
// selective query — the scenario that motivates the paper's Test 7.
//
//   $ ./build/examples/genealogy [tree_depth]

#include <cstdio>
#include <cstdlib>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace {

void Report(const char* label, const dkb::testbed::QueryOutcome& outcome) {
  std::printf("  %-28s %8.2f ms   %5zu answers   %lld iterations\n", label,
              outcome.report.exec.t_total_us / 1000.0, outcome.result.rows.size(),
              static_cast<long long>(outcome.report.exec.iterations));
}

}  // namespace

int main(int argc, char** argv) {
  using dkb::lfp::LfpStrategy;
  using dkb::testbed::QueryOptions;
  using dkb::testbed::Testbed;

  int depth = (argc > 1) ? std::atoi(argv[1]) : 10;
  auto tb_or = Testbed::Create();
  if (!tb_or.ok()) return 1;
  auto tb = std::move(*tb_or);

  auto tree = dkb::workload::MakeFullBinaryTrees(1, depth);
  std::printf("family tree: depth %d, %zu parent facts\n\n", depth,
              tree.num_tuples());

  dkb::Status s = tb->Consult(dkb::workload::AncestorRules());
  if (!s.ok()) return 1;
  s = tb->DefineBase("parent",
                     {dkb::DataType::kVarchar, dkb::DataType::kVarchar});
  if (!s.ok()) return 1;
  s = tb->AddFacts("parent", tree.ToTuples());
  if (!s.ok()) return 1;

  // A selective query: descendants of a node a few levels down.
  std::string root = dkb::workload::TreeNodeName(0, 15);  // level 4
  std::string goal = "?- ancestor('" + root + "', W).";
  std::printf("query: %s\n\n", goal.c_str());

  for (auto [label, strategy, magic] :
       {std::tuple{"naive", LfpStrategy::kNaive, false},
        std::tuple{"semi-naive", LfpStrategy::kSemiNaive, false},
        std::tuple{"semi-naive + magic sets", LfpStrategy::kSemiNaive, true},
        std::tuple{"native LFP operator", LfpStrategy::kNative, false},
        std::tuple{"native LFP + magic sets", LfpStrategy::kNative, true}}) {
    QueryOptions opts = (magic ? QueryOptions::Magic()
                               : QueryOptions::SemiNaive())
                            .WithStrategy(strategy);
    auto outcome = tb->Query(goal, opts);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label,
                   outcome.status().ToString().c_str());
      return 1;
    }
    Report(label, *outcome);
  }

  std::printf(
      "\nNote how the magic sets rewrite makes execution proportional to\n"
      "the queried sub-tree rather than the whole genealogy, and how the\n"
      "native LFP operator removes the embedded-SQL loop overheads.\n");
  return 0;
}
