// Same-generation cousins: the benchmark query of the magic sets papers.
// Builds a corporate reporting hierarchy and asks who sits at the same
// level as a given employee, showing how the optimization prunes the
// search to the relevant chains.
//
//   $ ./build/examples/same_generation [depth]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using dkb::testbed::Testbed;

  int depth = (argc > 1) ? std::atoi(argv[1]) : 7;
  auto tb_or = Testbed::Create();
  if (!tb_or.ok()) return 1;
  auto tb = std::move(*tb_or);

  dkb::Status s = tb->Consult(dkb::workload::SameGenerationRules());
  if (!s.ok()) return 1;

  // Reporting tree: up(Employee, Manager); down is its inverse; the CEO is
  // flat with themself.
  auto tree = dkb::workload::MakeFullBinaryTrees(1, depth);
  std::vector<dkb::Tuple> up;
  std::vector<dkb::Tuple> down;
  for (const auto& [mgr, emp] : tree.edges) {
    up.push_back({dkb::Value(emp), dkb::Value(mgr)});
    down.push_back({dkb::Value(mgr), dkb::Value(emp)});
  }
  for (const char* pred : {"up", "down", "flat"}) {
    s = tb->DefineBase(pred,
                       {dkb::DataType::kVarchar, dkb::DataType::kVarchar});
    if (!s.ok()) return 1;
  }
  s = tb->AddFacts("up", up);
  if (!s.ok()) return 1;
  s = tb->AddFacts("down", down);
  if (!s.ok()) return 1;
  std::string ceo = dkb::workload::TreeNodeName(0, 0);
  s = tb->AddFacts("flat", {{dkb::Value(ceo), dkb::Value(ceo)}});
  if (!s.ok()) return 1;

  std::printf("reporting tree: depth %d, %zu employees\n\n", depth,
              static_cast<size_t>(tree.num_nodes));

  // A leaf employee (leftmost at the deepest level).
  std::string who =
      dkb::workload::TreeNodeName(0, (int64_t{1} << (depth - 1)) - 1);
  std::string goal = "?- sg('" + who + "', Peer).";
  std::printf("query: %s\n\n", goal.c_str());

  dkb::testbed::QueryOptions plain = dkb::testbed::QueryOptions::SemiNaive();
  dkb::testbed::QueryOptions magic = dkb::testbed::QueryOptions::Magic();
  auto unopt = tb->Query(goal, plain);
  auto opt = tb->Query(goal, magic);
  if (!unopt.ok() || !opt.ok()) {
    std::fprintf(stderr, "query failed: %s %s\n",
                 unopt.status().ToString().c_str(),
                 opt.status().ToString().c_str());
    return 1;
  }
  std::printf("peers found: %zu (all %lld employees at the leaf level)\n",
              unopt->result.rows.size(),
              static_cast<long long>(int64_t{1} << (depth - 1)));
  std::printf("without magic sets: %8.2f ms\n",
              unopt->report.exec.t_total_us / 1000.0);
  std::printf("with magic sets:    %8.2f ms  (%.1fx)\n",
              opt->report.exec.t_total_us / 1000.0,
              static_cast<double>(unopt->report.exec.t_total_us) /
                  std::max<int64_t>(1, opt->report.exec.t_total_us));
  return 0;
}
