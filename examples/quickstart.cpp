// Quickstart: load a small data/knowledge base, run a recursive query, and
// inspect the compilation/execution breakdown the testbed reports.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "testbed/testbed.h"

int main() {
  using dkb::testbed::Testbed;

  // 1. Create a testbed: an in-memory relational DBMS plus the Knowledge
  //    Manager layered on top.
  auto tb = Testbed::Create();
  if (!tb.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 tb.status().ToString().c_str());
    return 1;
  }

  // 2. Consult a Datalog program: rules go to the Workspace DKB, ground
  //    facts to the extensional database.
  dkb::Status s = (*tb)->Consult(R"(
      % The classic ancestor program.
      ancestor(X, Y) :- parent(X, Y).
      ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).

      parent(abraham, isaac).
      parent(isaac,   esau).
      parent(isaac,   jacob).
      parent(jacob,   joseph).
      parent(jacob,   benjamin).
  )");
  if (!s.ok()) {
    std::fprintf(stderr, "consult failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Query. The Knowledge Manager compiles the Horn-clause query into a
  //    SQL program; the run time library evaluates the least fixed point.
  auto outcome = (*tb)->Query("?- ancestor(isaac, W).");
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("?- ancestor(isaac, W).\n\n%s\n",
              outcome->result.ToString().c_str());

  // 4. The testbed's raison d'etre: instrumentation.
  const auto& c = outcome->report.compile;
  const auto& e = outcome->report.exec;
  std::printf("compilation: %lld us  (extract %lld, dict read %lld, "
              "eval-order %lld, codegen %lld)\n",
              static_cast<long long>(c.total_us()),
              static_cast<long long>(c.t_extract_us),
              static_cast<long long>(c.t_read_us),
              static_cast<long long>(c.t_eol_us),
              static_cast<long long>(c.t_gen_us));
  std::printf("execution:   %lld us  (%lld LFP iterations; temp %lld, "
              "rhs %lld, termination %lld)\n",
              static_cast<long long>(e.t_total_us),
              static_cast<long long>(e.iterations),
              static_cast<long long>(e.t_temp_us),
              static_cast<long long>(e.t_rhs_us),
              static_cast<long long>(e.t_term_us));

  // 5. Re-run with the generalized magic sets optimization.
  dkb::testbed::QueryOptions magic = dkb::testbed::QueryOptions::Magic();
  auto optimized = (*tb)->Query("?- ancestor(isaac, W).", magic);
  if (optimized.ok()) {
    std::printf("with magic sets: %lld us execution, same %zu answers\n",
                static_cast<long long>(optimized->report.exec.t_total_us),
                optimized->result.rows.size());
  }
  return 0;
}
