// Flight routing with stratified negation: reachability that avoids
// embargoed airports, destinations reachable only via an embargoed hub, and
// the adaptive optimizer deciding per query whether magic sets pay off.
//
//   $ ./build/examples/flight_routes

#include <cstdio>

#include "testbed/testbed.h"

int main() {
  auto tb_or = dkb::testbed::Testbed::Create();
  if (!tb_or.ok()) return 1;
  auto tb = std::move(*tb_or);

  dkb::Status s = tb->Consult(R"(
      % reachable(A, B): some sequence of flights connects A to B.
      reachable(A, B) :- flight(A, B).
      reachable(A, B) :- flight(A, C), reachable(C, B).

      % clean(A, B): connects A to B without ever landing at an embargoed
      % airport (stratified negation over the embargo relation).
      clean(A, B) :- flight(A, B), not embargoed(B).
      clean(A, B) :- clean(A, C), flight(C, B), not embargoed(B).

      % tainted(A, B): reachable, but every routing lands somewhere
      % embargoed.
      tainted(A, B) :- reachable(A, B), not clean(A, B).

      flight(oslo, berlin).     flight(berlin, cairo).
      flight(berlin, doha).     flight(cairo, doha).
      flight(doha, singapore).  flight(cairo, nairobi).
      flight(nairobi, perth).   flight(oslo, dublin).
      flight(dublin, boston).   flight(boston, lima).

      embargoed(cairo).
      embargoed(doha).
  )");
  if (!s.ok()) {
    std::fprintf(stderr, "consult failed: %s\n", s.ToString().c_str());
    return 1;
  }

  auto show = [&](const char* goal) {
    // Let the compiler decide whether magic sets pay off.
    dkb::testbed::QueryOptions opts = dkb::testbed::QueryOptions::Adaptive();
    auto outcome = tb->Query(goal, opts);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", goal,
                   outcome.status().ToString().c_str());
      return;
    }
    std::printf("%s\n%s", goal, outcome->result.ToString().c_str());
    std::printf("  [adaptive optimizer: est. selectivity %.2f -> magic %s]\n\n",
                outcome->report.compile.estimated_selectivity,
                outcome->report.compile.magic_applied ? "on" : "off");
  };

  show("?- reachable(oslo, W).");
  show("?- clean(oslo, W).");
  show("?- tainted(oslo, W).");
  show("?- clean(X, perth).");
  return 0;
}
