// Bill-of-materials: the part-explosion query that motivated much of the
// 1980s deductive-database work. Demonstrates multiple derived predicates,
// mixed integer/string columns, and committing rules to the Stored DKB so a
// later session can query them without re-consulting.
//
//   $ ./build/examples/bill_of_materials

#include <cstdio>

#include "testbed/testbed.h"

int main() {
  using dkb::testbed::Testbed;

  auto tb_or = Testbed::Create();
  if (!tb_or.ok()) return 1;
  auto tb = std::move(*tb_or);

  // subpart(Assembly, Part): direct composition. madein(Part, Plant).
  dkb::Status s = tb->Consult(R"(
      % A part is a component of an assembly if it is a direct sub-part or a
      % component of one of its sub-parts.
      component(A, P) :- subpart(A, P).
      component(A, P) :- subpart(A, S), component(S, P).

      % Plants involved in building an assembly.
      builds(Plant, A) :- madein(A, Plant).
      builds(Plant, A) :- component(A, P), madein(P, Plant).

      subpart(bike, frame).
      subpart(bike, wheel).
      subpart(bike, drivetrain).
      subpart(wheel, rim).
      subpart(wheel, spoke).
      subpart(wheel, hub).
      subpart(drivetrain, crank).
      subpart(drivetrain, chain).
      subpart(crank, axle).

      madein(frame, detroit).
      madein(rim, osaka).
      madein(spoke, osaka).
      madein(hub, stuttgart).
      madein(crank, stuttgart).
      madein(chain, osaka).
      madein(axle, detroit).
      madein(bike, detroit).
  )");
  if (!s.ok()) {
    std::fprintf(stderr, "consult failed: %s\n", s.ToString().c_str());
    return 1;
  }

  auto explosion = tb->Query("?- component(bike, P).");
  if (!explosion.ok()) return 1;
  std::printf("Full part explosion of 'bike':\n%s\n",
              explosion->result.ToString().c_str());

  auto wheel = tb->Query("?- component(wheel, P).");
  if (!wheel.ok()) return 1;
  std::printf("Parts of 'wheel':\n%s\n", wheel->result.ToString().c_str());

  dkb::testbed::QueryOptions magic = dkb::testbed::QueryOptions::Magic();
  auto plants = tb->Query("?- builds(Plant, bike).", magic);
  if (!plants.ok()) {
    std::fprintf(stderr, "builds query failed: %s\n",
                 plants.status().ToString().c_str());
    return 1;
  }
  std::printf("Plants involved in building 'bike' (magic sets on):\n%s\n",
              plants->result.ToString().c_str());

  // Commit the rule base to the Stored DKB: a fresh workspace can use it.
  auto update = tb->UpdateStoredDkb();
  if (!update.ok()) return 1;
  std::printf("Committed %lld rules to the Stored DKB "
              "(%lld reachability edges maintained incrementally).\n",
              static_cast<long long>(update->rules_stored),
              static_cast<long long>(update->closure_edges));
  tb->ClearWorkspace();

  auto after = tb->Query("?- component(drivetrain, P).");
  if (!after.ok()) {
    std::fprintf(stderr, "stored-rule query failed: %s\n",
                 after.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAfter clearing the workspace, the stored rules still "
              "answer:\n?- component(drivetrain, P).\n%s",
              after->result.ToString().c_str());
  return 0;
}
