// Interactive testbed shell — the User Interface component of the paper's
// Figure 5. Reads Horn clauses, facts, queries, and session commands from
// stdin; works equally well piped:
//
//   $ printf 'parent(a,b).\nanc(X,Y) :- parent(X,Y).\n?- anc(a,W).\n' |
//       ./build/examples/repl
//
// The shell talks through the transport-independent dkb::Client, so the
// same session can run against a remote dkb_server:
//
//   $ repl --connect 127.0.0.1:7070

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "client/client.h"
#include "client/in_process_client.h"
#include "client/remote_client.h"
#include "common/str_util.h"
#include "testbed/sys_views.h"
#include "testbed/testbed.h"

namespace {

void PrintHelp() {
  std::printf(
      "Enter Horn clauses, facts, or queries; directives start with ':'.\n"
      "  anc(X,Y) :- parent(X,Y).   add a rule to the Workspace DKB\n"
      "  parent(john, mary).        add a fact to the extensional DB\n"
      "  ?- anc(john, W).           compile + execute a D/KB query\n"
      "  :magic on|off              toggle generalized magic sets\n"
      "  :strategy naive|seminaive|native\n"
      "  :rules                     list workspace rules\n"
      "  :retract <rule>            remove a workspace rule\n"
      "  :update                    commit workspace rules to the Stored DKB\n"
      "  :clear                     clear the workspace\n"
      "  :stats                     show last query's timing breakdown\n"
      "  :sql <statement>           run raw SQL against the DBMS layer\n"
      "  \\sys (or :sys)             list the sys.* system views\n"
      "  :slowlog <micros>|off      slow-query log threshold (local only)\n"
      "  :save <path> / :load <path>  persist / restore (local only)\n"
      "  :help                      this text\n"
      "  :quit\n"
      "System views answer plain SQL, e.g.\n"
      "  :sql SELECT query, total_us FROM sys.query_log\n");
}

void PrintSysViews() {
  std::printf("system views (query with :sql SELECT ... FROM <view>):\n");
  for (const auto& def : dkb::testbed::SystemViewDefs()) {
    std::string cols;
    for (size_t i = 0; i < def.schema.num_columns(); ++i) {
      if (i > 0) cols += ", ";
      cols += def.schema.column(i).name;
    }
    std::printf("  %-19s %s\n", def.name.c_str(), def.description.c_str());
    std::printf("  %-19s   (%s)\n", "", cols.c_str());
  }
}

void SetSlowLog(dkb::testbed::Testbed* tb, const std::string& arg) {
  dkb::testbed::SlowQueryLogOptions slow;
  if (arg == "off") {
    slow.threshold_us = -1;
    tb->recorder().SetSlowQueryLog(slow);
    std::printf("slow-query log: off\n");
    return;
  }
  char* end = nullptr;
  long long micros = std::strtoll(arg.c_str(), &end, 10);
  if (end == arg.c_str() || *end != '\0' || micros < 0) {
    std::printf("usage: :slowlog <micros>|off\n");
    return;
  }
  slow.threshold_us = micros;
  tb->recorder().SetSlowQueryLog(slow);
  std::printf("slow-query log: queries over %lld us\n", micros);
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect host:port] [--shards N]\n", argv[0]);
      return 2;
    }
  }

  // Local mode owns a testbed directly (so :save/:load/:slowlog can reach
  // it); remote mode talks to a dkb_server. All session commands go
  // through the same dkb::Client either way.
  std::unique_ptr<dkb::testbed::Testbed> local_tb;
  std::unique_ptr<dkb::Client> client;
  if (connect.empty()) {
    auto tb_or = dkb::testbed::Testbed::Create(
        dkb::testbed::TestbedOptions{}.WithShards(shards));
    if (!tb_or.ok()) {
      std::fprintf(stderr, "init failed: %s\n",
                   tb_or.status().ToString().c_str());
      return 1;
    }
    local_tb = std::move(*tb_or);
    client = std::make_unique<dkb::InProcessClient>(local_tb.get());
  } else {
    auto remote = dkb::RemoteClient::Connect(connect);
    if (!remote.ok()) {
      std::fprintf(stderr, "connect %s failed: %s\n", connect.c_str(),
                   remote.status().ToString().c_str());
      return 1;
    }
    client = std::move(*remote);
    std::printf("connected to %s\n", connect.c_str());
  }

  dkb::testbed::QueryOptions options;
  std::string last_report;

  std::printf("D/KB testbed shell. :help for commands.\n");
  std::string line;
  while (true) {
    std::printf("dkb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string input = dkb::StrTrim(line);
    if (input.empty() || input[0] == '%') continue;
    if (input == "\\sys") {
      PrintSysViews();
      continue;
    }

    if (input[0] == ':') {
      if (input == ":quit" || input == ":q") break;
      if (input == ":help") {
        PrintHelp();
      } else if (input == ":sys") {
        PrintSysViews();
      } else if (dkb::StartsWith(input, ":slowlog ")) {
        if (local_tb == nullptr) {
          std::printf(":slowlog is unavailable over --connect\n");
        } else {
          SetSlowLog(local_tb.get(), dkb::StrTrim(input.substr(9)));
        }
      } else if (input == ":rules") {
        auto rules = client->ListRules();
        if (!rules.ok()) {
          std::printf("error: %s\n", rules.status().ToString().c_str());
        } else {
          for (const std::string& rule : *rules) {
            std::printf("  %s\n", rule.c_str());
          }
        }
      } else if (input == ":clear") {
        dkb::Status s = client->ClearWorkspace();
        std::printf("%s\n",
                    s.ok() ? "workspace cleared" : s.ToString().c_str());
      } else if (input == ":update") {
        auto stats = client->UpdateStoredDkb();
        if (!stats.ok()) {
          std::printf("error: %s\n", stats.status().ToString().c_str());
        } else {
          std::printf("stored %lld rules (%lld us)\n",
                      static_cast<long long>(stats->rules_stored),
                      static_cast<long long>(stats->total_us));
        }
      } else if (input == ":magic on") {
        options.use_magic = true;
        std::printf("magic sets: on\n");
      } else if (input == ":magic off") {
        options.use_magic = false;
        std::printf("magic sets: off\n");
      } else if (input == ":strategy naive") {
        options.strategy = dkb::lfp::LfpStrategy::kNaive;
      } else if (input == ":strategy seminaive") {
        options.strategy = dkb::lfp::LfpStrategy::kSemiNaive;
      } else if (input == ":strategy native") {
        options.strategy = dkb::lfp::LfpStrategy::kNative;
      } else if (input == ":stats") {
        if (last_report.empty()) {
          std::printf("no query yet\n");
        } else {
          std::printf("%s", last_report.c_str());
        }
      } else if (dkb::StartsWith(input, ":retract ")) {
        dkb::Status s = client->RetractRule(input.substr(9));
        std::printf("%s\n", s.ok() ? "retracted" : s.ToString().c_str());
      } else if (dkb::StartsWith(input, ":save ")) {
        if (local_tb == nullptr) {
          std::printf(":save is unavailable over --connect\n");
        } else {
          dkb::Status s =
              local_tb->SaveSession(dkb::StrTrim(input.substr(6)));
          std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
        }
      } else if (dkb::StartsWith(input, ":load ")) {
        if (local_tb == nullptr) {
          std::printf(":load is unavailable over --connect\n");
        } else {
          auto loaded = dkb::testbed::Testbed::LoadSession(
              dkb::StrTrim(input.substr(6)));
          if (!loaded.ok()) {
            std::printf("error: %s\n", loaded.status().ToString().c_str());
          } else {
            local_tb = std::move(*loaded);
            client =
                std::make_unique<dkb::InProcessClient>(local_tb.get());
            std::printf("session restored (%zu workspace rules)\n",
                        local_tb->workspace().num_rules());
          }
        }
      } else if (dkb::StartsWith(input, ":sql ")) {
        auto result = client->ExecuteSql(input.substr(5));
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          std::printf("%s", dkb::ResultSetToString(*result).c_str());
        }
      } else {
        std::printf("unknown directive (:help for help)\n");
      }
      continue;
    }

    if (dkb::StartsWith(input, "?-")) {
      // Ask the executing side for the text report so :stats works over
      // any transport.
      auto rs = client->Query(input, options, dkb::net::kReportText);
      if (!rs.ok()) {
        std::printf("error: %s\n", rs.status().ToString().c_str());
        continue;
      }
      last_report = rs->report_text;
      std::printf("%s", dkb::ResultSetToString(*rs).c_str());
      std::printf("(compile %lld us, execute %lld us%s)\n",
                  static_cast<long long>(rs->compile_us),
                  static_cast<long long>(rs->exec_us),
                  rs->from_cache ? ", cached plan" : "");
      continue;
    }

    dkb::Status s = client->Consult(input);
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
    }
  }
  std::printf("\n");
  return 0;
}
