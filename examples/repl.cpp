// Interactive testbed shell — the User Interface component of the paper's
// Figure 5. Reads Horn clauses, facts, queries, and session commands from
// stdin; works equally well piped:
//
//   $ printf 'parent(a,b).\nanc(X,Y) :- parent(X,Y).\n?- anc(a,W).\n' |
//       ./build/examples/repl

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/str_util.h"
#include "testbed/sys_views.h"
#include "testbed/testbed.h"

namespace {

void PrintHelp() {
  std::printf(
      "Enter Horn clauses, facts, or queries; directives start with ':'.\n"
      "  anc(X,Y) :- parent(X,Y).   add a rule to the Workspace DKB\n"
      "  parent(john, mary).        add a fact to the extensional DB\n"
      "  ?- anc(john, W).           compile + execute a D/KB query\n"
      "  :magic on|off              toggle generalized magic sets\n"
      "  :strategy naive|seminaive|native\n"
      "  :rules                     list workspace rules\n"
      "  :retract <rule>            remove a workspace rule\n"
      "  :update                    commit workspace rules to the Stored DKB\n"
      "  :clear                     clear the workspace\n"
      "  :stats                     show last query's timing breakdown\n"
      "  :sql <statement>           run raw SQL against the DBMS layer\n"
      "  \\sys (or :sys)             list the sys.* system views\n"
      "  :slowlog <micros>|off      slow-query log threshold for this shell\n"
      "  :save <path> / :load <path>  persist / restore the whole session\n"
      "  :help                      this text\n"
      "  :quit\n"
      "System views answer plain SQL, e.g.\n"
      "  :sql SELECT query, total_us FROM sys.query_log\n");
}

void PrintSysViews() {
  std::printf("system views (query with :sql SELECT ... FROM <view>):\n");
  for (const auto& def : dkb::testbed::SystemViewDefs()) {
    std::string cols;
    for (size_t i = 0; i < def.schema.num_columns(); ++i) {
      if (i > 0) cols += ", ";
      cols += def.schema.column(i).name;
    }
    std::printf("  %-19s %s\n", def.name.c_str(), def.description.c_str());
    std::printf("  %-19s   (%s)\n", "", cols.c_str());
  }
}

void SetSlowLog(dkb::testbed::Testbed* tb, const std::string& arg) {
  dkb::testbed::SlowQueryLogOptions slow;
  if (arg == "off") {
    slow.threshold_us = -1;
    tb->recorder().SetSlowQueryLog(slow);
    std::printf("slow-query log: off\n");
    return;
  }
  char* end = nullptr;
  long long micros = std::strtoll(arg.c_str(), &end, 10);
  if (end == arg.c_str() || *end != '\0' || micros < 0) {
    std::printf("usage: :slowlog <micros>|off\n");
    return;
  }
  slow.threshold_us = micros;
  tb->recorder().SetSlowQueryLog(slow);
  std::printf("slow-query log: queries over %lld us\n", micros);
}

}  // namespace

int main() {
  auto tb_or = dkb::testbed::Testbed::Create();
  if (!tb_or.ok()) {
    std::fprintf(stderr, "init failed: %s\n",
                 tb_or.status().ToString().c_str());
    return 1;
  }
  auto tb = std::move(*tb_or);
  dkb::testbed::QueryOptions options;
  dkb::testbed::QueryOutcome last;
  bool have_last = false;

  std::printf("D/KB testbed shell. :help for commands.\n");
  std::string line;
  while (true) {
    std::printf("dkb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string input = dkb::StrTrim(line);
    if (input.empty() || input[0] == '%') continue;
    if (input == "\\sys") {
      PrintSysViews();
      continue;
    }

    if (input[0] == ':') {
      if (input == ":quit" || input == ":q") break;
      if (input == ":help") {
        PrintHelp();
      } else if (input == ":sys") {
        PrintSysViews();
      } else if (dkb::StartsWith(input, ":slowlog ")) {
        SetSlowLog(tb.get(), dkb::StrTrim(input.substr(9)));
      } else if (input == ":rules") {
        for (const auto& rule : tb->workspace().rules()) {
          std::printf("  %s\n", rule.ToString().c_str());
        }
      } else if (input == ":clear") {
        tb->ClearWorkspace();
        std::printf("workspace cleared\n");
      } else if (input == ":update") {
        auto stats = tb->UpdateStoredDkb();
        if (!stats.ok()) {
          std::printf("error: %s\n", stats.status().ToString().c_str());
        } else {
          std::printf("stored %lld rules (%lld us)\n",
                      static_cast<long long>(stats->rules_stored),
                      static_cast<long long>(stats->total_us()));
        }
      } else if (input == ":magic on") {
        options.use_magic = true;
        std::printf("magic sets: on\n");
      } else if (input == ":magic off") {
        options.use_magic = false;
        std::printf("magic sets: off\n");
      } else if (input == ":strategy naive") {
        options.strategy = dkb::lfp::LfpStrategy::kNaive;
      } else if (input == ":strategy seminaive") {
        options.strategy = dkb::lfp::LfpStrategy::kSemiNaive;
      } else if (input == ":strategy native") {
        options.strategy = dkb::lfp::LfpStrategy::kNative;
      } else if (input == ":stats") {
        if (!have_last) {
          std::printf("no query yet\n");
        } else {
          const auto& c = last.report.compile;
          const auto& e = last.report.exec;
          std::printf(
              "compile: %lld us (setup %lld, extract %lld, read %lld, "
              "opt %lld, eol %lld, sem %lld, gen %lld, comp %lld)\n",
              static_cast<long long>(c.total_us()),
              static_cast<long long>(c.t_setup_us),
              static_cast<long long>(c.t_extract_us),
              static_cast<long long>(c.t_read_us),
              static_cast<long long>(c.t_opt_us),
              static_cast<long long>(c.t_eol_us),
              static_cast<long long>(c.t_sem_us),
              static_cast<long long>(c.t_gen_us),
              static_cast<long long>(c.t_comp_us));
          std::printf(
              "execute: %lld us (temp %lld, rhs %lld, term %lld, "
              "final %lld; %lld iterations)\n",
              static_cast<long long>(e.t_total_us),
              static_cast<long long>(e.t_temp_us),
              static_cast<long long>(e.t_rhs_us),
              static_cast<long long>(e.t_term_us),
              static_cast<long long>(e.t_final_us),
              static_cast<long long>(e.iterations));
          for (const auto& node : e.nodes) {
            std::printf("  node %-30s %s %6lld us  %lld iters  %lld tuples\n",
                        node.label.c_str(),
                        node.is_clique ? "clique" : "pred  ",
                        static_cast<long long>(node.t_us),
                        static_cast<long long>(node.iterations),
                        static_cast<long long>(node.tuples));
          }
        }
      } else if (dkb::StartsWith(input, ":retract ")) {
        dkb::Status s = tb->RetractRule(input.substr(9));
        std::printf("%s\n", s.ok() ? "retracted" : s.ToString().c_str());
      } else if (dkb::StartsWith(input, ":save ")) {
        dkb::Status s = tb->SaveSession(dkb::StrTrim(input.substr(6)));
        std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      } else if (dkb::StartsWith(input, ":load ")) {
        auto loaded =
            dkb::testbed::Testbed::LoadSession(dkb::StrTrim(input.substr(6)));
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
        } else {
          tb = std::move(*loaded);
          std::printf("session restored (%zu workspace rules)\n",
                      tb->workspace().num_rules());
        }
      } else if (dkb::StartsWith(input, ":sql ")) {
        auto result = tb->db().Execute(input.substr(5));
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          std::printf("%s", result->ToString().c_str());
        }
      } else {
        std::printf("unknown directive (:help for help)\n");
      }
      continue;
    }

    if (dkb::StartsWith(input, "?-")) {
      auto outcome = tb->Query(input, options);
      if (!outcome.ok()) {
        std::printf("error: %s\n", outcome.status().ToString().c_str());
        continue;
      }
      last = std::move(*outcome);
      have_last = true;
      std::printf("%s", last.result.ToString().c_str());
      std::printf("(compile %lld us, execute %lld us)\n",
                  static_cast<long long>(last.report.compile.total_us()),
                  static_cast<long long>(last.report.exec.t_total_us));
      continue;
    }

    dkb::Status s = tb->Consult(input);
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
    }
  }
  std::printf("\n");
  return 0;
}
