#include "exec/binder.h"

#include "common/str_util.h"

namespace dkb::exec {

Status Scope::AddTable(std::string name, const ScanSource* table,
                       Epoch read_epoch) {
  for (const auto& b : bindings_) {
    if (EqualsIgnoreCase(b.name, name)) {
      return Status::InvalidArgument("duplicate table name/alias '" + name +
                                     "' in FROM list");
    }
  }
  bindings_.push_back(
      TableBinding{std::move(name), table, total_columns_, read_epoch});
  total_columns_ += table->schema().num_columns();
  return Status::OK();
}

Result<Scope::ResolvedColumn> Scope::Resolve(const std::string& qualifier,
                                             const std::string& column) const {
  // A dotted table name ("sys.query_log") may be qualified by its base name
  // ("query_log.ts_us"): expression grammar only supports one-part
  // qualifiers, so the schema prefix is dropped for matching.
  auto matches = [](const std::string& binding, const std::string& q) {
    if (EqualsIgnoreCase(binding, q)) return true;
    size_t dot = binding.rfind('.');
    return dot != std::string::npos &&
           EqualsIgnoreCase(binding.substr(dot + 1), q);
  };
  if (!qualifier.empty()) {
    for (size_t bi = 0; bi < bindings_.size(); ++bi) {
      const TableBinding& b = bindings_[bi];
      if (!matches(b.name, qualifier)) continue;
      auto ci = b.table->schema().FindColumn(column);
      if (!ci.has_value()) {
        return Status::NotFound("column " + column + " not found in " +
                                b.name);
      }
      return ResolvedColumn{bi, *ci, b.offset + *ci,
                            b.table->schema().column(*ci).type,
                            b.table->schema().column(*ci).name};
    }
    return Status::NotFound("unknown table or alias '" + qualifier + "'");
  }
  std::optional<ResolvedColumn> found;
  for (size_t bi = 0; bi < bindings_.size(); ++bi) {
    const TableBinding& b = bindings_[bi];
    auto ci = b.table->schema().FindColumn(column);
    if (!ci.has_value()) continue;
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column name '" + column + "'");
    }
    found = ResolvedColumn{bi, *ci, b.offset + *ci,
                           b.table->schema().column(*ci).type,
                           b.table->schema().column(*ci).name};
  }
  if (!found.has_value()) {
    return Status::NotFound("column '" + column + "' not found");
  }
  return *found;
}

namespace {

Result<BoundExprPtr> BindImpl(const sql::Expr& expr, const Scope& scope,
                              SlotMode mode, size_t local_binding,
                              const std::vector<Value>* params) {
  switch (expr.kind) {
    case sql::ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(Scope::ResolvedColumn rc,
                           scope.Resolve(ref.table, ref.column));
      if (mode == SlotMode::kTableLocal) {
        if (rc.binding != local_binding) {
          return Status::Internal("table-local binding crossed tables for " +
                                  ref.ToString());
        }
        return BoundExprPtr(std::make_unique<BoundColumn>(rc.column));
      }
      return BoundExprPtr(std::make_unique<BoundColumn>(rc.global_slot));
    }
    case sql::ExprKind::kLiteral: {
      const auto& lit = static_cast<const sql::LiteralExpr&>(expr);
      return BoundExprPtr(std::make_unique<BoundLiteral>(lit.value));
    }
    case sql::ExprKind::kParam: {
      const auto& p = static_cast<const sql::ParamExpr&>(expr);
      if (params == nullptr || p.index >= params->size()) {
        return Status::InvalidArgument(
            "parameter ?" + std::to_string(p.index + 1) + " is not bound");
      }
      return BoundExprPtr(std::make_unique<BoundLiteral>((*params)[p.index]));
    }
    case sql::ExprKind::kComparison: {
      const auto& cmp = static_cast<const sql::ComparisonExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                           BindImpl(*cmp.lhs, scope, mode, local_binding, params));
      DKB_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                           BindImpl(*cmp.rhs, scope, mode, local_binding, params));
      return BoundExprPtr(std::make_unique<BoundComparison>(
          cmp.op, std::move(lhs), std::move(rhs)));
    }
    case sql::ExprKind::kLogical: {
      const auto& log = static_cast<const sql::LogicalExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                           BindImpl(*log.lhs, scope, mode, local_binding, params));
      DKB_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                           BindImpl(*log.rhs, scope, mode, local_binding, params));
      return BoundExprPtr(std::make_unique<BoundLogical>(
          log.op, std::move(lhs), std::move(rhs)));
    }
    case sql::ExprKind::kNot: {
      const auto& n = static_cast<const sql::NotExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr child,
                           BindImpl(*n.child, scope, mode, local_binding, params));
      return BoundExprPtr(std::make_unique<BoundNot>(std::move(child)));
    }
    case sql::ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr needle,
                           BindImpl(*in.needle, scope, mode, local_binding, params));
      return BoundExprPtr(
          std::make_unique<BoundInList>(std::move(needle), in.values));
    }
  }
  return Status::Internal("unknown expression kind");
}

Status CollectBindings(const sql::Expr& expr, const Scope& scope,
                       std::set<size_t>* out) {
  switch (expr.kind) {
    case sql::ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(Scope::ResolvedColumn rc,
                           scope.Resolve(ref.table, ref.column));
      out->insert(rc.binding);
      return Status::OK();
    }
    case sql::ExprKind::kLiteral:
    case sql::ExprKind::kParam:
      return Status::OK();
    case sql::ExprKind::kComparison: {
      const auto& cmp = static_cast<const sql::ComparisonExpr&>(expr);
      DKB_RETURN_IF_ERROR(CollectBindings(*cmp.lhs, scope, out));
      return CollectBindings(*cmp.rhs, scope, out);
    }
    case sql::ExprKind::kLogical: {
      const auto& log = static_cast<const sql::LogicalExpr&>(expr);
      DKB_RETURN_IF_ERROR(CollectBindings(*log.lhs, scope, out));
      return CollectBindings(*log.rhs, scope, out);
    }
    case sql::ExprKind::kNot: {
      const auto& n = static_cast<const sql::NotExpr&>(expr);
      return CollectBindings(*n.child, scope, out);
    }
    case sql::ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      return CollectBindings(*in.needle, scope, out);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const Scope& scope,
                              SlotMode mode, size_t local_binding,
                              const std::vector<Value>* params) {
  return BindImpl(expr, scope, mode, local_binding, params);
}

const Value* ConstOperand(const sql::Expr& expr,
                          const std::vector<Value>* params) {
  if (expr.kind == sql::ExprKind::kLiteral) {
    return &static_cast<const sql::LiteralExpr&>(expr).value;
  }
  if (expr.kind == sql::ExprKind::kParam && params != nullptr) {
    const auto& p = static_cast<const sql::ParamExpr&>(expr);
    if (p.index < params->size()) return &(*params)[p.index];
  }
  return nullptr;
}

Result<std::set<size_t>> ReferencedBindings(const sql::Expr& expr,
                                            const Scope& scope) {
  std::set<size_t> out;
  DKB_RETURN_IF_ERROR(CollectBindings(expr, scope, &out));
  return out;
}

Result<BoundExprPtr> BindAgainstSchema(const sql::Expr& expr,
                                       const Schema& schema,
                                       const std::vector<Value>* params) {
  switch (expr.kind) {
    case sql::ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      if (!ref.table.empty()) {
        return Status::InvalidArgument(
            "qualified column '" + ref.ToString() +
            "' cannot be used here; refer to output columns by name");
      }
      auto idx = schema.FindColumn(ref.column);
      if (!idx.has_value()) {
        return Status::NotFound("column '" + ref.column +
                                "' is not an output column");
      }
      return BoundExprPtr(std::make_unique<BoundColumn>(*idx));
    }
    case sql::ExprKind::kLiteral: {
      const auto& lit = static_cast<const sql::LiteralExpr&>(expr);
      return BoundExprPtr(std::make_unique<BoundLiteral>(lit.value));
    }
    case sql::ExprKind::kParam: {
      const Value* v = ConstOperand(expr, params);
      if (v == nullptr) {
        return Status::InvalidArgument("parameter is not bound");
      }
      return BoundExprPtr(std::make_unique<BoundLiteral>(*v));
    }
    case sql::ExprKind::kComparison: {
      const auto& cmp = static_cast<const sql::ComparisonExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                           BindAgainstSchema(*cmp.lhs, schema, params));
      DKB_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                           BindAgainstSchema(*cmp.rhs, schema, params));
      return BoundExprPtr(std::make_unique<BoundComparison>(
          cmp.op, std::move(lhs), std::move(rhs)));
    }
    case sql::ExprKind::kLogical: {
      const auto& log = static_cast<const sql::LogicalExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                           BindAgainstSchema(*log.lhs, schema, params));
      DKB_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                           BindAgainstSchema(*log.rhs, schema, params));
      return BoundExprPtr(std::make_unique<BoundLogical>(
          log.op, std::move(lhs), std::move(rhs)));
    }
    case sql::ExprKind::kNot: {
      const auto& n = static_cast<const sql::NotExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr child,
                           BindAgainstSchema(*n.child, schema, params));
      return BoundExprPtr(std::make_unique<BoundNot>(std::move(child)));
    }
    case sql::ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      DKB_ASSIGN_OR_RETURN(BoundExprPtr needle,
                           BindAgainstSchema(*in.needle, schema, params));
      return BoundExprPtr(
          std::make_unique<BoundInList>(std::move(needle), in.values));
    }
  }
  return Status::Internal("unknown expression kind");
}

void SplitConjuncts(const sql::Expr* expr,
                    std::vector<const sql::Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == sql::ExprKind::kLogical) {
    const auto* log = static_cast<const sql::LogicalExpr*>(expr);
    if (log->op == sql::LogicalOp::kAnd) {
      SplitConjuncts(log->lhs.get(), out);
      SplitConjuncts(log->rhs.get(), out);
      return;
    }
  }
  out->push_back(expr);
}

}  // namespace dkb::exec
