#ifndef DKB_EXEC_BINDER_H_
#define DKB_EXEC_BINDER_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/expr.h"
#include "sql/ast.h"

namespace dkb::exec {

/// One FROM-list entry resolved against the catalog.
struct TableBinding {
  std::string name;         // effective (alias or table) name
  const ScanSource* table;  // resolved storage source (Table or ShardedTable)
  size_t offset;  // first slot of this table's columns in the joined row
  Epoch read_epoch = kLatestEpoch;  // epoch scans of this table read at
};

/// Name-resolution scope for a single SELECT core: the FROM-list tables in
/// order, with each table's columns occupying a contiguous slot range of the
/// (conceptual) fully-joined row.
class Scope {
 public:
  Status AddTable(std::string name, const ScanSource* table,
                  Epoch read_epoch = kLatestEpoch);

  const std::vector<TableBinding>& bindings() const { return bindings_; }
  size_t total_columns() const { return total_columns_; }

  struct ResolvedColumn {
    size_t binding;      // index into bindings()
    size_t column;       // column index within that table
    size_t global_slot;  // binding offset + column
    DataType type;
    std::string name;    // column name
  };

  /// Resolves `[qualifier.]column`. Unqualified names must be unambiguous.
  Result<ResolvedColumn> Resolve(const std::string& qualifier,
                                 const std::string& column) const;

 private:
  std::vector<TableBinding> bindings_;
  size_t total_columns_ = 0;
};

/// How slots are assigned when binding an expression.
enum class SlotMode {
  kGlobal,     // slots relative to the fully joined row (scope offsets)
  kTableLocal  // slots relative to a single table's row (offset ignored);
               // only valid when every column resolves to one binding
};

/// Binds `expr` against `scope`. In kTableLocal mode `local_binding` selects
/// which table the expression must be local to. `params` supplies values for
/// `?` placeholders (they bind as literals); an expression containing a
/// parameter with no bound value fails with InvalidArgument.
Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const Scope& scope,
                              SlotMode mode, size_t local_binding = 0,
                              const std::vector<Value>* params = nullptr);

/// Collects the set of binding indices referenced by `expr`.
Result<std::set<size_t>> ReferencedBindings(const sql::Expr& expr,
                                            const Scope& scope);

/// Splits a predicate tree into top-level AND conjuncts.
void SplitConjuncts(const sql::Expr* expr, std::vector<const sql::Expr*>* out);

/// Binds an expression against an operator's *output* schema (slots are
/// output column positions); used for HAVING. Column references must be
/// unqualified output names or aliases.
Result<BoundExprPtr> BindAgainstSchema(const sql::Expr& expr,
                                       const Schema& schema,
                                       const std::vector<Value>* params =
                                           nullptr);

/// Resolves an expression that must be constant at plan time: a literal, or a
/// `?` parameter with a bound value. Returns nullptr otherwise.
const Value* ConstOperand(const sql::Expr& expr,
                          const std::vector<Value>* params);

}  // namespace dkb::exec

#endif  // DKB_EXEC_BINDER_H_
