#include "exec/planner.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/str_util.h"
#include "exec/binder.h"

namespace dkb::exec {

namespace {

/// Per-conjunct classification used for access-path and join selection.
struct ConjunctInfo {
  const sql::Expr* expr = nullptr;
  std::set<size_t> tables;
  bool used = false;

  // Equi-join between two different tables: lhs/rhs resolved columns.
  bool is_equi = false;
  Scope::ResolvedColumn lhs_col{};
  Scope::ResolvedColumn rhs_col{};

  // Single-table sargable predicates.
  bool is_col_eq_lit = false;
  bool is_col_in_list = false;
  bool is_col_range = false;  // col OP literal, OP in {<, <=, >, >=}
  sql::CompareOp range_op = sql::CompareOp::kLt;
  Scope::ResolvedColumn col{};
  Value lit;
  std::vector<Value> in_values;
};

BoundExprPtr AndCombine(std::vector<BoundExprPtr> exprs) {
  if (exprs.empty()) return nullptr;
  BoundExprPtr acc = std::move(exprs[0]);
  for (size_t i = 1; i < exprs.size(); ++i) {
    acc = std::make_unique<BoundLogical>(sql::LogicalOp::kAnd, std::move(acc),
                                         std::move(exprs[i]));
  }
  return acc;
}

class Planner {
 public:
  Planner(const Catalog& catalog, ExecStats* stats,
          const std::vector<Value>* params)
      : catalog_(catalog), stats_(stats), params_(params) {}

  Result<PlanNodePtr> PlanStmt(const sql::SelectStmt& stmt);

 private:
  Result<PlanNodePtr> PlanCore(const sql::SelectCore& core);
  Result<PlanNodePtr> PlanAggregate(PlanNodePtr child,
                                    const sql::SelectCore& core,
                                    const Scope& scope);
  Result<ConjunctInfo> Classify(const sql::Expr* expr, const Scope& scope);
  /// Access path for one table given its unused single-table conjuncts
  /// (marks consumed conjuncts used). Slots are table-local.
  Result<PlanNodePtr> PlanAccessPath(const Scope& scope, size_t binding,
                                     std::vector<ConjunctInfo*> conjuncts);

  const Catalog& catalog_;
  ExecStats* stats_;
  const std::vector<Value>* params_;  // bound `?` values; may be null

 public:
  /// Virtual-table snapshots materialized while planning; the caller pins
  /// them to the plan root so they outlive planning.
  std::vector<std::shared_ptr<const ScanSource>> pinned_;
};

Result<ConjunctInfo> Planner::Classify(const sql::Expr* expr,
                                       const Scope& scope) {
  ConjunctInfo info;
  info.expr = expr;
  DKB_ASSIGN_OR_RETURN(info.tables, ReferencedBindings(*expr, scope));
  if (expr->kind == sql::ExprKind::kComparison) {
    const auto& cmp = static_cast<const sql::ComparisonExpr&>(*expr);
    if (cmp.op == sql::CompareOp::kEq) {
      const bool lhs_col = cmp.lhs->kind == sql::ExprKind::kColumnRef;
      const bool rhs_col = cmp.rhs->kind == sql::ExprKind::kColumnRef;
      if (lhs_col && rhs_col) {
        const auto& l = static_cast<const sql::ColumnRefExpr&>(*cmp.lhs);
        const auto& r = static_cast<const sql::ColumnRefExpr&>(*cmp.rhs);
        DKB_ASSIGN_OR_RETURN(auto lc, scope.Resolve(l.table, l.column));
        DKB_ASSIGN_OR_RETURN(auto rc, scope.Resolve(r.table, r.column));
        if (lc.binding != rc.binding) {
          info.is_equi = true;
          info.lhs_col = lc;
          info.rhs_col = rc;
        }
      } else if (lhs_col != rhs_col) {
        const auto& c = static_cast<const sql::ColumnRefExpr&>(
            lhs_col ? *cmp.lhs : *cmp.rhs);
        const Value* v =
            ConstOperand(lhs_col ? *cmp.rhs : *cmp.lhs, params_);
        if (v != nullptr) {
          DKB_ASSIGN_OR_RETURN(info.col, scope.Resolve(c.table, c.column));
          info.lit = *v;
          info.is_col_eq_lit = true;
        }
      }
    } else if (cmp.op == sql::CompareOp::kLt ||
               cmp.op == sql::CompareOp::kLe ||
               cmp.op == sql::CompareOp::kGt ||
               cmp.op == sql::CompareOp::kGe) {
      const bool lhs_col = cmp.lhs->kind == sql::ExprKind::kColumnRef;
      const bool rhs_col = cmp.rhs->kind == sql::ExprKind::kColumnRef;
      const Value* v = (lhs_col != rhs_col)
                           ? ConstOperand(lhs_col ? *cmp.rhs : *cmp.lhs,
                                          params_)
                           : nullptr;
      if (v != nullptr) {
        const auto& c = static_cast<const sql::ColumnRefExpr&>(
            lhs_col ? *cmp.lhs : *cmp.rhs);
        DKB_ASSIGN_OR_RETURN(info.col, scope.Resolve(c.table, c.column));
        info.lit = *v;
        info.is_col_range = true;
        // Normalize to "col OP literal".
        if (lhs_col) {
          info.range_op = cmp.op;
        } else {
          switch (cmp.op) {  // literal OP col  =>  col OP' literal
            case sql::CompareOp::kLt:
              info.range_op = sql::CompareOp::kGt;
              break;
            case sql::CompareOp::kLe:
              info.range_op = sql::CompareOp::kGe;
              break;
            case sql::CompareOp::kGt:
              info.range_op = sql::CompareOp::kLt;
              break;
            default:
              info.range_op = sql::CompareOp::kLe;
              break;
          }
        }
      }
    }
  } else if (expr->kind == sql::ExprKind::kInList) {
    const auto& in = static_cast<const sql::InListExpr&>(*expr);
    if (in.needle->kind == sql::ExprKind::kColumnRef) {
      const auto& c = static_cast<const sql::ColumnRefExpr&>(*in.needle);
      DKB_ASSIGN_OR_RETURN(info.col, scope.Resolve(c.table, c.column));
      info.in_values = in.values;
      info.is_col_in_list = true;
    }
  }
  return info;
}

Result<PlanNodePtr> Planner::PlanAccessPath(
    const Scope& scope, size_t binding,
    std::vector<ConjunctInfo*> conjuncts) {
  const ScanSource* table = scope.bindings()[binding].table;
  const Epoch epoch = scope.bindings()[binding].read_epoch;

  // Look for an equality/IN predicate matching a single-column index; if
  // none, a range predicate over an ordered index.
  ConjunctInfo* sarg = nullptr;
  const Index* index = nullptr;
  for (ConjunctInfo* ci : conjuncts) {
    if (ci->used) continue;
    if (ci->is_col_eq_lit || ci->is_col_in_list) {
      const Index* idx = table->FindIndexOn({ci->col.column});
      if (idx != nullptr) {
        sarg = ci;
        index = idx;
        break;
      }
    }
  }
  ConjunctInfo* range = nullptr;
  const OrderedIndex* ordered = nullptr;
  if (sarg == nullptr) {
    for (ConjunctInfo* ci : conjuncts) {
      if (ci->used || !ci->is_col_range) continue;
      const Index* idx = table->FindIndexOn({ci->col.column});
      if (idx != nullptr && idx->kind() == IndexKind::kOrdered) {
        range = ci;
        ordered = static_cast<const OrderedIndex*>(idx);
        break;
      }
    }
  }

  // The range conjunct stays in the residual filter (bounds are inclusive;
  // the filter restores strictness for < and >).
  std::vector<BoundExprPtr> residual;
  for (ConjunctInfo* ci : conjuncts) {
    if (ci->used || ci == sarg) continue;
    DKB_ASSIGN_OR_RETURN(
        BoundExprPtr bound,
        BindExpr(*ci->expr, scope, SlotMode::kTableLocal, binding, params_));
    residual.push_back(std::move(bound));
    ci->used = true;
  }

  if (sarg != nullptr) {
    sarg->used = true;
    std::vector<Tuple> keys;
    if (sarg->is_col_eq_lit) {
      keys.push_back(Tuple{sarg->lit});
    } else {
      keys.reserve(sarg->in_values.size());
      for (const Value& v : sarg->in_values) keys.push_back(Tuple{v});
    }
    return PlanNodePtr(std::make_unique<IndexScanNode>(
        table, index, std::move(keys), AndCombine(std::move(residual)),
        stats_, epoch));
  }
  if (range != nullptr) {
    std::optional<Value> lo;
    std::optional<Value> hi;
    if (range->range_op == sql::CompareOp::kGt ||
        range->range_op == sql::CompareOp::kGe) {
      lo = range->lit;
    } else {
      hi = range->lit;
    }
    return PlanNodePtr(std::make_unique<IndexRangeScanNode>(
        table, ordered, std::move(lo), std::move(hi),
        AndCombine(std::move(residual)), stats_, epoch));
  }
  return PlanNodePtr(std::make_unique<SeqScanNode>(
      table, AndCombine(std::move(residual)), stats_, epoch));
}

Result<PlanNodePtr> Planner::PlanCore(const sql::SelectCore& core) {
  if (core.sub_select != nullptr) {
    return PlanStmt(*core.sub_select);
  }
  if (core.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }

  Scope scope;
  for (const sql::TableRef& ref : core.from) {
    DKB_ASSIGN_OR_RETURN(ResolvedSource resolved,
                         catalog_.ResolveScanSource(ref.table));
    if (resolved.owned != nullptr) pinned_.push_back(resolved.owned);
    DKB_RETURN_IF_ERROR(scope.AddTable(ref.EffectiveName(), resolved.source,
                                       resolved.read_epoch));
  }

  std::vector<const sql::Expr*> raw_conjuncts;
  SplitConjuncts(core.where.get(), &raw_conjuncts);
  std::vector<ConjunctInfo> conjuncts;
  conjuncts.reserve(raw_conjuncts.size());
  for (const sql::Expr* e : raw_conjuncts) {
    DKB_ASSIGN_OR_RETURN(ConjunctInfo info, Classify(e, scope));
    conjuncts.push_back(std::move(info));
  }

  auto single_table_conjuncts = [&](size_t bi) {
    std::vector<ConjunctInfo*> out;
    for (ConjunctInfo& ci : conjuncts) {
      if (!ci.used && ci.tables.size() == 1 && *ci.tables.begin() == bi) {
        out.push_back(&ci);
      }
    }
    return out;
  };

  // Table 0: base access path.
  DKB_ASSIGN_OR_RETURN(PlanNodePtr plan,
                       PlanAccessPath(scope, 0, single_table_conjuncts(0)));

  // Join remaining tables left-to-right.
  for (size_t bi = 1; bi < scope.bindings().size(); ++bi) {
    const ScanSource* inner = scope.bindings()[bi].table;

    // Conjuncts that become fully bound once table bi joins.
    std::vector<ConjunctInfo*> available;
    for (ConjunctInfo& ci : conjuncts) {
      if (ci.used || ci.tables.count(bi) == 0) continue;
      bool all_bound = true;
      for (size_t t : ci.tables) {
        if (t > bi) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) available.push_back(&ci);
    }

    // Equi-join conjuncts between bi and earlier tables.
    struct EquiPair {
      ConjunctInfo* ci;
      size_t outer_slot;  // global slot (valid in the joined prefix)
      size_t inner_col;   // column index within the inner table
    };
    std::vector<EquiPair> equis;
    for (ConjunctInfo* ci : available) {
      if (!ci->is_equi) continue;
      const auto& l = ci->lhs_col;
      const auto& r = ci->rhs_col;
      if (l.binding == bi && r.binding < bi) {
        equis.push_back(EquiPair{ci, r.global_slot, l.column});
      } else if (r.binding == bi && l.binding < bi) {
        equis.push_back(EquiPair{ci, l.global_slot, r.column});
      }
    }

    auto bind_global_residual =
        [&](const std::vector<ConjunctInfo*>& cis) -> Result<BoundExprPtr> {
      std::vector<BoundExprPtr> bound;
      for (ConjunctInfo* ci : cis) {
        if (ci->used) continue;
        DKB_ASSIGN_OR_RETURN(BoundExprPtr b,
                             BindExpr(*ci->expr, scope, SlotMode::kGlobal, 0, params_));
        bound.push_back(std::move(b));
        ci->used = true;
      }
      return AndCombine(std::move(bound));
    };

    if (!equis.empty()) {
      // Try an index on exactly the equi columns of the inner table.
      std::vector<size_t> inner_cols;
      for (const EquiPair& ep : equis) inner_cols.push_back(ep.inner_col);
      const Index* index = inner->FindIndexOn(inner_cols);
      if (index == nullptr && equis.size() > 1) {
        // Fall back to a single-column index on any one equi column.
        for (const EquiPair& ep : equis) {
          index = inner->FindIndexOn({ep.inner_col});
          if (index != nullptr) {
            inner_cols = {ep.inner_col};
            break;
          }
        }
      }
      if (index != nullptr) {
        // Align outer key slots with the index's key column order; the
        // remaining equi conjuncts become residual predicates.
        std::vector<size_t> outer_slots;
        std::vector<ConjunctInfo*> key_cis;
        bool align_ok = true;
        for (size_t key_col : index->key_columns()) {
          bool found = false;
          for (const EquiPair& ep : equis) {
            if (ep.inner_col == key_col && !ep.ci->used) {
              outer_slots.push_back(ep.outer_slot);
              key_cis.push_back(ep.ci);
              found = true;
              break;
            }
          }
          if (!found) {
            align_ok = false;
            break;
          }
        }
        if (align_ok) {
          for (ConjunctInfo* ci : key_cis) ci->used = true;
          DKB_ASSIGN_OR_RETURN(BoundExprPtr residual,
                               bind_global_residual(available));
          plan = std::make_unique<IndexNLJoinNode>(
              std::move(plan), inner, index, std::move(outer_slots),
              std::move(residual), stats_, scope.bindings()[bi].read_epoch);
          continue;
        }
      }
      // Hash join: build side scans the inner table with its own filters.
      std::vector<size_t> left_keys;
      std::vector<size_t> right_keys;
      for (const EquiPair& ep : equis) {
        left_keys.push_back(ep.outer_slot);
        right_keys.push_back(ep.inner_col);
        ep.ci->used = true;
      }
      DKB_ASSIGN_OR_RETURN(
          PlanNodePtr build,
          PlanAccessPath(scope, bi, single_table_conjuncts(bi)));
      DKB_ASSIGN_OR_RETURN(BoundExprPtr residual,
                           bind_global_residual(available));
      plan = std::make_unique<HashJoinNode>(
          std::move(plan), std::move(build), std::move(left_keys),
          std::move(right_keys), std::move(residual), stats_);
      continue;
    }

    // No equi predicate: nested-loop join with whatever predicates bind now.
    DKB_ASSIGN_OR_RETURN(PlanNodePtr scan,
                         PlanAccessPath(scope, bi, single_table_conjuncts(bi)));
    DKB_ASSIGN_OR_RETURN(BoundExprPtr predicate,
                         bind_global_residual(available));
    plan = std::make_unique<NestedLoopJoinNode>(
        std::move(plan), std::move(scan), std::move(predicate), stats_);
  }

  // Any conjunct not yet applied (e.g. constant predicates) filters on top.
  {
    std::vector<BoundExprPtr> leftover;
    for (ConjunctInfo& ci : conjuncts) {
      if (ci.used) continue;
      DKB_ASSIGN_OR_RETURN(BoundExprPtr b,
                           BindExpr(*ci.expr, scope, SlotMode::kGlobal, 0, params_));
      leftover.push_back(std::move(b));
      ci.used = true;
    }
    if (!leftover.empty()) {
      plan = std::make_unique<FilterNode>(std::move(plan),
                                          AndCombine(std::move(leftover)));
    }
  }

  // Aggregation path: any aggregate select item or a GROUP BY clause.
  bool has_agg = !core.group_by.empty();
  for (const sql::SelectItem& item : core.items) {
    if (item.agg != sql::AggFn::kNone) has_agg = true;
  }
  if (has_agg) {
    DKB_ASSIGN_OR_RETURN(plan, PlanAggregate(std::move(plan), core, scope));
    if (core.having != nullptr) {
      DKB_ASSIGN_OR_RETURN(
          BoundExprPtr predicate,
          BindAgainstSchema(*core.having, plan->output_schema(), params_));
      plan = std::make_unique<FilterNode>(std::move(plan),
                                          std::move(predicate));
    }
    if (core.distinct) {
      plan = std::make_unique<DistinctNode>(std::move(plan));
    }
    return plan;
  }
  if (core.having != nullptr) {
    return Status::InvalidArgument("HAVING requires aggregation");
  }

  std::vector<BoundExprPtr> proj_exprs;
  std::vector<Column> out_columns;
  size_t anon = 0;
  for (const sql::SelectItem& item : core.items) {
    if (item.star) {
      for (const TableBinding& b : scope.bindings()) {
        for (size_t c = 0; c < b.table->schema().num_columns(); ++c) {
          proj_exprs.push_back(std::make_unique<BoundColumn>(b.offset + c));
          out_columns.push_back(b.table->schema().column(c));
        }
      }
      continue;
    }
    DKB_ASSIGN_OR_RETURN(BoundExprPtr bound,
                         BindExpr(*item.expr, scope, SlotMode::kGlobal, 0, params_));
    Column col;
    if (!item.alias.empty()) {
      col.name = item.alias;
    } else if (item.expr->kind == sql::ExprKind::kColumnRef) {
      col.name = static_cast<const sql::ColumnRefExpr&>(*item.expr).column;
    } else {
      col.name = "col" + std::to_string(anon++);
    }
    if (item.expr->kind == sql::ExprKind::kColumnRef) {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      DKB_ASSIGN_OR_RETURN(auto rc, scope.Resolve(ref.table, ref.column));
      col.type = rc.type;
    } else if (const Value* cv = ConstOperand(*item.expr, params_)) {
      col.type = cv->is_string() ? DataType::kVarchar : DataType::kInteger;
    } else {
      col.type = DataType::kInteger;  // boolean-ish expressions
    }
    proj_exprs.push_back(std::move(bound));
    out_columns.push_back(std::move(col));
  }
  plan = std::make_unique<ProjectNode>(std::move(plan), std::move(proj_exprs),
                                       Schema(std::move(out_columns)));
  if (core.distinct) {
    plan = std::make_unique<DistinctNode>(std::move(plan));
  }
  return plan;
}

Result<PlanNodePtr> Planner::PlanAggregate(PlanNodePtr child,
                                           const sql::SelectCore& core,
                                           const Scope& scope) {
  // Group keys must be column references.
  std::vector<BoundExprPtr> group_keys;
  std::vector<size_t> group_slots;
  std::vector<DataType> group_types;
  for (const sql::ExprPtr& expr : core.group_by) {
    if (expr->kind != sql::ExprKind::kColumnRef) {
      return Status::Unimplemented(
          "GROUP BY supports column references only");
    }
    const auto& ref = static_cast<const sql::ColumnRefExpr&>(*expr);
    DKB_ASSIGN_OR_RETURN(auto rc, scope.Resolve(ref.table, ref.column));
    group_keys.push_back(std::make_unique<BoundColumn>(rc.global_slot));
    group_slots.push_back(rc.global_slot);
    group_types.push_back(rc.type);
  }

  std::vector<AggregateNode::AggSpec> specs;
  std::vector<AggregateNode::OutputRef> outputs;
  std::vector<Column> out_columns;
  for (const sql::SelectItem& item : core.items) {
    if (item.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }
    Column col;
    if (item.agg == sql::AggFn::kNone) {
      if (item.expr->kind != sql::ExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "non-aggregate select items must be GROUP BY columns");
      }
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      DKB_ASSIGN_OR_RETURN(auto rc, scope.Resolve(ref.table, ref.column));
      size_t key_index = group_slots.size();
      for (size_t k = 0; k < group_slots.size(); ++k) {
        if (group_slots[k] == rc.global_slot) key_index = k;
      }
      if (key_index == group_slots.size()) {
        return Status::InvalidArgument("select item " + ref.ToString() +
                                       " is not in the GROUP BY list");
      }
      outputs.push_back(AggregateNode::OutputRef{false, key_index});
      col.name = item.alias.empty() ? rc.name : item.alias;
      col.type = rc.type;
      out_columns.push_back(std::move(col));
      continue;
    }
    AggregateNode::AggSpec spec;
    spec.fn = item.agg;
    DataType arg_type = DataType::kInteger;
    std::string arg_name;
    if (item.agg != sql::AggFn::kCountStar) {
      DKB_ASSIGN_OR_RETURN(spec.arg,
                           BindExpr(*item.expr, scope, SlotMode::kGlobal, 0, params_));
      if (item.expr->kind == sql::ExprKind::kColumnRef) {
        const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
        DKB_ASSIGN_OR_RETURN(auto rc, scope.Resolve(ref.table, ref.column));
        arg_type = rc.type;
        arg_name = rc.name;
      }
      if (item.agg == sql::AggFn::kSum && arg_type != DataType::kInteger) {
        return Status::TypeError("SUM requires an integer column");
      }
    }
    outputs.push_back(AggregateNode::OutputRef{true, specs.size()});
    specs.push_back(std::move(spec));
    if (!item.alias.empty()) {
      col.name = item.alias;
    } else if (item.agg == sql::AggFn::kCountStar) {
      col.name = "count";
    } else {
      col.name = AsciiLower(sql::AggFnName(item.agg)) +
                 (arg_name.empty() ? "" : "_" + arg_name);
    }
    switch (item.agg) {
      case sql::AggFn::kCountStar:
      case sql::AggFn::kCount:
      case sql::AggFn::kSum:
        col.type = DataType::kInteger;
        break;
      default:
        col.type = arg_type;
    }
    out_columns.push_back(std::move(col));
  }

  return PlanNodePtr(std::make_unique<AggregateNode>(
      std::move(child), std::move(group_keys), std::move(specs),
      std::move(outputs), Schema(std::move(out_columns))));
}

Result<PlanNodePtr> Planner::PlanStmt(const sql::SelectStmt& stmt) {
  DKB_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanCore(*stmt.cores[0]));
  for (size_t i = 1; i < stmt.cores.size(); ++i) {
    DKB_ASSIGN_OR_RETURN(PlanNodePtr rhs, PlanCore(*stmt.cores[i]));
    const Schema& ls = plan->output_schema();
    const Schema& rs = rhs->output_schema();
    if (ls.num_columns() != rs.num_columns()) {
      return Status::InvalidArgument(
          "set operation arity mismatch: " + std::to_string(ls.num_columns()) +
          " vs " + std::to_string(rs.num_columns()));
    }
    SetOpKind kind;
    switch (stmt.ops[i - 1]) {
      case sql::SetOp::kUnion:
        kind = SetOpKind::kUnion;
        break;
      case sql::SetOp::kUnionAll:
        kind = SetOpKind::kUnionAll;
        break;
      case sql::SetOp::kExcept:
        kind = SetOpKind::kExcept;
        break;
      case sql::SetOp::kIntersect:
        kind = SetOpKind::kIntersect;
        break;
      default:
        return Status::Internal("bad set op");
    }
    plan = std::make_unique<SetOpNode>(std::move(plan), std::move(rhs), kind);
  }

  if (!stmt.order_by.empty()) {
    const Schema& schema = plan->output_schema();
    std::vector<SortNode::SortKey> keys;
    for (const sql::OrderByItem& item : stmt.order_by) {
      SortNode::SortKey key;
      key.ascending = item.ascending;
      bool is_ordinal = !item.column.empty() &&
                        std::all_of(item.column.begin(), item.column.end(),
                                    [](char c) { return std::isdigit(c); });
      if (is_ordinal) {
        size_t ord = std::stoul(item.column);
        if (ord < 1 || ord > schema.num_columns()) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        key.slot = ord - 1;
      } else {
        auto idx = schema.FindColumn(item.column);
        if (!idx.has_value()) {
          return Status::NotFound("ORDER BY column '" + item.column +
                                  "' not in output");
        }
        key.slot = *idx;
      }
      keys.push_back(key);
    }
    plan = std::make_unique<SortNode>(std::move(plan), std::move(keys));
  }
  if (stmt.limit.has_value()) {
    plan = std::make_unique<LimitNode>(std::move(plan), *stmt.limit);
  }
  return plan;
}

}  // namespace

Result<PlanNodePtr> PlanSelect(const sql::SelectStmt& stmt,
                               const Catalog& catalog, ExecStats* stats,
                               const std::vector<Value>* params) {
  Planner planner(catalog, stats, params);
  DKB_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.PlanStmt(stmt));
  for (std::shared_ptr<const ScanSource>& source : planner.pinned_) {
    plan->PinSource(std::move(source));
  }
  return plan;
}

}  // namespace dkb::exec
