#ifndef DKB_EXEC_PLAN_H_
#define DKB_EXEC_PLAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/parallelism.h"
#include "common/row_batch.h"
#include "common/status.h"
#include "exec/expr.h"
#include "storage/scan_source.h"
#include "storage/table.h"

namespace dkb::exec {

/// Counters exposed by Database::stats(); used by tests to assert access-path
/// choices (e.g. that the relevant-rule extraction query really uses the
/// index on reachablepreds) and by benches as secondary evidence.
///
/// Counters are atomics so concurrent sessions and morsel workers can bump
/// them without a data race; increments are relaxed (counts need not be
/// ordered against anything, only eventually summed correctly). No mutex is
/// involved, so none of this is GUARDED_BY anything — the atomics are the
/// whole synchronization story, and ExecStatsSnapshot reads are likewise
/// relaxed (a snapshot racing live workers is approximate by design).
struct ExecStats {
  std::atomic<int64_t> rows_scanned{0};      // rows read by sequential scans
  std::atomic<int64_t> index_probes{0};      // index lookups performed
  std::atomic<int64_t> index_rows{0};        // rows produced via index lookups
  std::atomic<int64_t> join_output_rows{0};  // rows emitted by join operators
  std::atomic<int64_t> statements{0};        // SQL statements executed
  std::atomic<int64_t> statement_cache_hits{0};  // prepared-statement reuse
  std::atomic<int64_t> morsels{0};           // parallel morsels dispatched
  std::atomic<int64_t> batches{0};           // row batches drained at plan roots

  void Reset() {
    rows_scanned.store(0, std::memory_order_relaxed);
    index_probes.store(0, std::memory_order_relaxed);
    index_rows.store(0, std::memory_order_relaxed);
    join_output_rows.store(0, std::memory_order_relaxed);
    statements.store(0, std::memory_order_relaxed);
    statement_cache_hits.store(0, std::memory_order_relaxed);
    morsels.store(0, std::memory_order_relaxed);
    batches.store(0, std::memory_order_relaxed);
  }
};

/// Point-in-time copy of ExecStats, so callers can compute the counter
/// deltas attributable to one query (snapshot before, subtract after).
struct ExecStatsSnapshot {
  int64_t rows_scanned = 0;
  int64_t index_probes = 0;
  int64_t index_rows = 0;
  int64_t join_output_rows = 0;
  int64_t statements = 0;
  int64_t statement_cache_hits = 0;
  int64_t morsels = 0;
  int64_t batches = 0;

  static ExecStatsSnapshot Take(const ExecStats& s) {
    ExecStatsSnapshot snap;
    snap.rows_scanned = s.rows_scanned.load(std::memory_order_relaxed);
    snap.index_probes = s.index_probes.load(std::memory_order_relaxed);
    snap.index_rows = s.index_rows.load(std::memory_order_relaxed);
    snap.join_output_rows = s.join_output_rows.load(std::memory_order_relaxed);
    snap.statements = s.statements.load(std::memory_order_relaxed);
    snap.statement_cache_hits =
        s.statement_cache_hits.load(std::memory_order_relaxed);
    snap.morsels = s.morsels.load(std::memory_order_relaxed);
    snap.batches = s.batches.load(std::memory_order_relaxed);
    return snap;
  }

  ExecStatsSnapshot operator-(const ExecStatsSnapshot& rhs) const {
    ExecStatsSnapshot d;
    d.rows_scanned = rows_scanned - rhs.rows_scanned;
    d.index_probes = index_probes - rhs.index_probes;
    d.index_rows = index_rows - rhs.index_rows;
    d.join_output_rows = join_output_rows - rhs.join_output_rows;
    d.statements = statements - rhs.statements;
    d.statement_cache_hits = statement_cache_hits - rhs.statement_cache_hits;
    d.morsels = morsels - rhs.morsels;
    d.batches = batches - rhs.batches;
    return d;
  }
};

/// Relaxed counter bump; the idiom for all ExecStats updates.
inline void StatAdd(std::atomic<int64_t>& counter, int64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

/// Deprecated: the morsel thresholds moved to ParallelismPolicy
/// (common/parallelism.h) so all parallelism knobs live in one struct. The
/// alias and accessor delegate to the global policy for source compat.
using ParallelTuning = ParallelismPolicy;

[[deprecated("use GlobalParallelismPolicy() from common/parallelism.h")]]
inline ParallelTuning& GetParallelTuning() {
  return GlobalParallelismPolicy();
}

/// Volcano-style physical operator, batch-at-a-time. Open() may be called
/// repeatedly; each call resets the operator to produce its output from the
/// beginning (the nested-loop join relies on this for its inner side).
///
/// The data currency is RowBatch: NextBatch() fills the caller's batch with
/// up to RowBatch::kCapacity rows (joins may overshoot) and returns true iff
/// the batch is non-empty; false means end-of-stream. Operators exchange one
/// virtual call per batch, and predicates/projections run as vectorized
/// kernels over whole batches, so there are no per-row virtual calls in the
/// hot loops. (The old row-at-a-time Next(Tuple*) adapter is gone: all 14
/// operators are batch-native, and point consumers index into batches.)
///
/// Open/NextBatch are wrappers over the per-operator OpenImpl/NextBatchImpl.
/// With profiling off (the default) each wrapper costs a single predictable
/// null test; after EnableProfiling() they accumulate per-operator wall
/// time, batch count, and output cardinality into profile(), which EXPLAIN
/// ANALYZE renders alongside the plan tree.
class PlanNode {
 public:
  /// Per-operator runtime statistics, filled only after EnableProfiling().
  struct Profile {
    int64_t open_us = 0;   // time inside OpenImpl, cumulative over re-opens
    int64_t next_us = 0;   // time inside NextBatchImpl, summed over all calls
    int64_t rows_out = 0;  // rows produced by this operator
    int64_t batches = 0;   // non-empty batches produced by this operator
    int64_t morsels = 0;   // parallel morsels dispatched by this operator
  };

  virtual ~PlanNode() = default;

  PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  const Schema& output_schema() const { return schema_; }

  Status Open() {
    if (profile_ == nullptr) return OpenImpl();
    auto t0 = std::chrono::steady_clock::now();
    Status s = OpenImpl();
    profile_->open_us += ElapsedUs(t0);
    return s;
  }

  /// Fills *out with the next batch of rows; returns true iff *out is
  /// non-empty, false at end-of-stream. *out is reset by the callee.
  Result<bool> NextBatch(RowBatch* out) {
    if (profile_ == nullptr) return NextBatchImpl(out);
    auto t0 = std::chrono::steady_clock::now();
    Result<bool> r = NextBatchImpl(out);
    profile_->next_us += ElapsedUs(t0);
    if (r.ok() && *r) {
      ++profile_->batches;
      profile_->rows_out += static_cast<int64_t>(out->size());
    }
    return r;
  }

  void Close() { CloseImpl(); }

  /// Allocates a Profile for this operator and every descendant; the
  /// wrappers start accumulating into it from the next call on.
  void EnableProfiling();

  /// Null until EnableProfiling() has been called.
  const Profile* profile() const { return profile_.get(); }

  /// Shares ownership of a materialized virtual-table snapshot with this
  /// plan: scan operators reference snapshots by raw pointer, so the
  /// planner pins each snapshot to the root node to keep it alive for the
  /// plan's lifetime.
  void PinSource(std::shared_ptr<const ScanSource> source) {
    pinned_sources_.push_back(std::move(source));
  }

  /// Operator name for EXPLAIN-style rendering.
  virtual std::string Name() const = 0;

  /// Child operators, outer/left first (EXPLAIN tree rendering).
  virtual std::vector<const PlanNode*> Children() const { return {}; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextBatchImpl(RowBatch* out) = 0;
  virtual void CloseImpl() {}

  void set_schema(Schema schema) { schema_ = std::move(schema); }

  /// Column count for NextBatchImpl's out->Reset().
  size_t output_width() const { return schema_.num_columns(); }

  /// Morsel accounting for operators that fan work out to the pool.
  void CountMorsels(int64_t n) {
    if (profile_ != nullptr) profile_->morsels += n;
  }

 private:
  static int64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  Schema schema_;
  std::unique_ptr<Profile> profile_;
  std::vector<std::shared_ptr<const ScanSource>> pinned_sources_;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Full-table scan over a ScanSource with optional pushed-down filter,
/// batched straight off ScanSource::ScanBatch with the filter applied as a
/// selection vector. Shards scan in order, so output order is deterministic
/// for a given shard count.
///
/// Sources with at least ParallelismPolicy::seq_scan_min_rows total slots
/// are scanned as a shard × morsel work grid on GlobalThreadPool at Open
/// time; each grid cell filters its row range of one shard vectorized into
/// a private buffer, and buffers concatenate in grid order, so results are
/// identical to the serial path.
class SeqScanNode : public PlanNode {
 public:
  SeqScanNode(const ScanSource* source, BoundExprPtr filter, ExecStats* stats,
              Epoch epoch = kLatestEpoch);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override {
    return "SeqScan(" + source_->name() + ")";
  }

 private:
  const ScanSource* source_;
  BoundExprPtr filter_;  // may be null
  ExecStats* stats_;
  Epoch epoch_;  // read epoch for visibility checks
  size_t shard_ = 0;
  RowId cursor_ = 0;
  bool materialized_ = false;     // parallel path: rows_ holds the output
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
  std::vector<uint32_t> sel_scratch_;
};

/// Index lookup for one or more literal keys (supports `col = lit` and
/// `col IN (...)` access paths), with optional residual filter.
///
/// Index definitions are uniform across shards, so the node re-resolves the
/// shard-0 template index per shard and probes each key against every
/// shard — except single-column indexes on the partition column, where the
/// key's hash routes the probe to its one home shard.
class IndexScanNode : public PlanNode {
 public:
  IndexScanNode(const ScanSource* source, const Index* index,
                std::vector<Tuple> keys, BoundExprPtr filter,
                ExecStats* stats, Epoch epoch = kLatestEpoch);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Name() const override {
    return "IndexScan(" + source_->name() + "." + index_->name() + ")";
  }

 private:
  /// Probes keys_[key_pos_] into buffer_, advancing the (key, shard) grid.
  /// Returns false when all probes are done.
  bool NextProbe();

  const ScanSource* source_;
  const Index* index_;  // shard-0 template (name/columns)
  bool routed_;         // single-column index on the partition column
  std::vector<Tuple> keys_;
  BoundExprPtr filter_;
  ExecStats* stats_;
  Epoch epoch_;
  size_t key_pos_ = 0;
  size_t shard_pos_ = 0;       // next shard to probe for the current key
  size_t buffer_shard_ = 0;    // shard buffer_ row ids belong to
  std::vector<RowId> buffer_;
  size_t buffer_pos_ = 0;
  std::vector<uint32_t> sel_scratch_;
};

/// Ordered-index range scan for `col OP literal` predicates (OP one of
/// < <= > >=). Bounds are inclusive; the original comparison is always
/// applied as part of the residual filter, so exclusive bounds stay exact.
class IndexRangeScanNode : public PlanNode {
 public:
  IndexRangeScanNode(const ScanSource* source, const OrderedIndex* index,
                     std::optional<Value> lo, std::optional<Value> hi,
                     BoundExprPtr filter, ExecStats* stats,
                     Epoch epoch = kLatestEpoch);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Name() const override {
    return "IndexRangeScan(" + source_->name() + "." + index_->name() + ")";
  }

 private:
  /// Runs the range probe against shard_, refilling buffer_.
  void ProbeShard();

  const ScanSource* source_;
  const OrderedIndex* index_;  // shard-0 template
  std::optional<Value> lo_;
  std::optional<Value> hi_;
  BoundExprPtr filter_;
  ExecStats* stats_;
  Epoch epoch_;
  size_t shard_ = 0;           // shard buffer_ row ids belong to
  std::vector<RowId> buffer_;
  size_t buffer_pos_ = 0;
  std::vector<uint32_t> sel_scratch_;
};

/// Filters child batches by a predicate, narrowing the selection vector in
/// place (no row copies).
class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, BoundExprPtr predicate);

  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override { child_->Close(); }
  std::string Name() const override { return "Filter"; }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanNodePtr child_;
  BoundExprPtr predicate_;
  std::vector<uint32_t> sel_scratch_;
};

/// Projects child batches through expressions column-at-a-time; output
/// schema supplied by the planner (which knows names and inferred types).
class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> exprs,
              Schema schema);

  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override { child_->Close(); }
  std::string Name() const override { return "Project"; }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanNodePtr child_;
  std::vector<BoundExprPtr> exprs_;
  RowBatch in_batch_;
  std::vector<uint32_t> idx_scratch_;
};

/// Nested-loop join; the outer side is drained batch-at-a-time and the
/// inner (right) child is re-Opened per outer row. Output row = outer
/// columns ++ inner columns.
class NestedLoopJoinNode : public PlanNode {
 public:
  NestedLoopJoinNode(PlanNodePtr outer, PlanNodePtr inner,
                     BoundExprPtr predicate, ExecStats* stats);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override { return "NestedLoopJoin"; }

  std::vector<const PlanNode*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  PlanNodePtr outer_;
  PlanNodePtr inner_;
  BoundExprPtr predicate_;  // evaluated over combined row; may be null
  ExecStats* stats_;
  RowBatch outer_batch_;
  size_t outer_pos_ = 0;
  Tuple outer_row_;
  bool outer_valid_ = false;
  bool outer_done_ = false;
  RowBatch inner_batch_;
  std::vector<uint32_t> sel_scratch_;
};

/// Hash equi-join: builds a hash table over the right child, probes with
/// left-child batches. Output row = left columns ++ right columns.
///
/// Builds of at least ParallelismPolicy::hash_build_min_rows rows are
/// hash-partitioned: key hashes are computed in parallel, then each of P
/// partitions fills its own table concurrently (every row lands in exactly
/// one partition, chosen by hash % P, so no partition sees another's keys).
/// Probes address the owning partition directly.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanNodePtr left, PlanNodePtr right,
               std::vector<size_t> left_keys, std::vector<size_t> right_keys,
               BoundExprPtr residual, ExecStats* stats);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override { return "HashJoin"; }

  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PlanNodePtr left_;
  PlanNodePtr right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  BoundExprPtr residual_;  // may be null
  ExecStats* stats_;

  // Partitioned build; size 1 on the serial path.
  std::vector<std::unordered_multimap<Tuple, Tuple, TupleHash>> parts_;
  RowBatch left_batch_;
  size_t left_pos_ = 0;
  bool left_done_ = false;
  Tuple left_row_;
  Tuple key_scratch_;
  std::vector<const Tuple*> matches_;
  size_t match_pos_ = 0;
  std::vector<uint32_t> sel_scratch_;
};

/// Index nested-loop join: probes an index of the inner base source with
/// key values taken from outer-row slots. Output = outer ++ inner columns.
/// Probes fan out across shards like IndexScanNode's, with the same
/// partition-column routing shortcut.
class IndexNLJoinNode : public PlanNode {
 public:
  IndexNLJoinNode(PlanNodePtr outer, const ScanSource* inner,
                  const Index* index, std::vector<size_t> outer_key_slots,
                  BoundExprPtr residual, ExecStats* stats,
                  Epoch epoch = kLatestEpoch);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override {
    return "IndexNLJoin(" + inner_->name() + "." + index_->name() + ")";
  }

  std::vector<const PlanNode*> Children() const override {
    return {outer_.get()};
  }

 private:
  /// Probes key_scratch_ against the next shard; false when exhausted.
  bool ProbeNextShard();

  PlanNodePtr outer_;
  const ScanSource* inner_;
  const Index* index_;  // shard-0 template
  bool routed_;         // single-column index on the partition column
  std::vector<size_t> outer_key_slots_;  // aligned with index key columns
  BoundExprPtr residual_;
  ExecStats* stats_;
  Epoch epoch_;
  RowBatch outer_batch_;
  size_t outer_pos_ = 0;
  bool outer_done_ = false;
  Tuple outer_row_;
  Tuple key_scratch_;
  size_t shard_pos_ = 0;     // next shard to probe for the current key
  size_t buffer_shard_ = 0;  // shard buffer_ row ids belong to
  std::vector<RowId> buffer_;
  size_t buffer_pos_ = 0;
  std::vector<uint32_t> sel_scratch_;
};

/// Removes duplicate rows (hash-based, streaming; survivors selected via
/// the batch's selection vector).
class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanNodePtr child);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override { child_->Close(); }
  std::string Name() const override { return "Distinct"; }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanNodePtr child_;
  std::unordered_set<Tuple, TupleHash> seen_;
  std::vector<uint32_t> sel_scratch_;
};

enum class SetOpKind { kUnion, kUnionAll, kExcept, kIntersect };

/// SQL set operation with set (DISTINCT) semantics except kUnionAll.
class SetOpNode : public PlanNode {
 public:
  SetOpNode(PlanNodePtr left, PlanNodePtr right, SetOpKind kind);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override { return "SetOp"; }

  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Keeps only the rows of *batch that pass this set op's membership test
  /// (dedup against emitted_, EXCEPT/INTERSECT against right_set_).
  void FilterBatch(RowBatch* batch);

  PlanNodePtr left_;
  PlanNodePtr right_;
  SetOpKind kind_;
  bool left_done_ = false;
  std::unordered_set<Tuple, TupleHash> right_set_;
  std::unordered_set<Tuple, TupleHash> emitted_;
  std::vector<uint32_t> sel_scratch_;
};

/// Materializing sort; keys are output-column slots.
class SortNode : public PlanNode {
 public:
  struct SortKey {
    size_t slot;
    bool ascending;
  };

  SortNode(PlanNodePtr child, std::vector<SortKey> keys);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override { return "Sort"; }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanNodePtr child_;
  std::vector<SortKey> keys_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// Emits at most `limit` rows (by truncating child batches).
class LimitNode : public PlanNode {
 public:
  LimitNode(PlanNodePtr child, size_t limit);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override { child_->Close(); }
  std::string Name() const override { return "Limit"; }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanNodePtr child_;
  size_t limit_;
  size_t produced_ = 0;
};

/// Hash aggregation with optional GROUP BY. Group keys and aggregate
/// arguments are evaluated column-at-a-time per input batch; only the
/// accumulator update runs per row (non-virtual).
///
/// With group keys, one output row per distinct key; without, a single
/// global row (emitted even on empty input: COUNT = 0, SUM = 0,
/// MIN/MAX = NULL). COUNT(expr)/SUM/MIN/MAX skip NULL inputs; SUM requires
/// integer inputs.
class AggregateNode : public PlanNode {
 public:
  struct AggSpec {
    sql::AggFn fn;
    BoundExprPtr arg;  // null for COUNT(*)
  };
  /// One select-list output: a group key (index into the key list) or an
  /// aggregate (index into the spec list).
  struct OutputRef {
    bool is_agg;
    size_t index;
  };

  AggregateNode(PlanNodePtr child, std::vector<BoundExprPtr> group_keys,
                std::vector<AggSpec> specs, std::vector<OutputRef> outputs,
                Schema schema);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;
  std::string Name() const override { return "Aggregate"; }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  struct Acc {
    int64_t count = 0;
    int64_t sum = 0;
    bool has_value = false;
    Value min;
    Value max;
  };

  PlanNodePtr child_;
  std::vector<BoundExprPtr> group_keys_;
  std::vector<AggSpec> specs_;
  std::vector<OutputRef> outputs_;
  std::vector<std::pair<Tuple, std::vector<Acc>>> groups_;
  size_t pos_ = 0;
};

/// COUNT(*): consumes the child and emits one row [count].
class CountNode : public PlanNode {
 public:
  explicit CountNode(PlanNodePtr child, std::string column_name);

  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override { child_->Close(); }
  std::string Name() const override { return "Count"; }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanNodePtr child_;
  bool emitted_ = false;
};

}  // namespace dkb::exec

#endif  // DKB_EXEC_PLAN_H_
