#include "exec/plan.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/thread_pool.h"

namespace dkb::exec {

void PlanNode::EnableProfiling() {
  if (profile_ == nullptr) profile_ = std::make_unique<Profile>();
  // Children() exposes const pointers for EXPLAIN rendering; profiling
  // mutates bookkeeping only, never operator results.
  for (const PlanNode* child : Children()) {
    const_cast<PlanNode*>(child)->EnableProfiling();
  }
}

namespace {

/// Concatenates the output schemas of two join inputs.
Schema ConcatSchemas(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

/// Narrows *batch to the rows passing `filter` by composing a selection
/// vector (no row copies). No-op for a null filter.
void ApplyFilterToBatch(const BoundExpr* filter, RowBatch* batch,
                        std::vector<uint32_t>* scratch) {
  if (filter == nullptr || batch->size() == 0) return;
  scratch->resize(batch->size());
  std::iota(scratch->begin(), scratch->end(), 0u);
  filter->FilterSelection(*batch, scratch);
  batch->ComposeSelection(*scratch);
}

/// Per-shard index instance matching the shard-0 template: index definitions
/// are uniform across shards (Catalog::CreateIndex installs on every shard),
/// so a name lookup on shard `s` always finds the counterpart.
const Index* ShardIndex(const ScanSource& source, size_t s,
                        const Index* tmpl) {
  if (s == 0) return tmpl;
  for (const auto& idx : source.shard(s).indexes()) {
    if (idx->name() == tmpl->name()) return idx.get();
  }
  return nullptr;  // unreachable under the uniform-index invariant
}

/// True when every probe of `index` can be routed to one home shard: the
/// index key is exactly the partition column, so a key's hash decides the
/// only shard that can hold matching rows.
bool RoutableOnPartitionColumn(const ScanSource& source, const Index* index) {
  return source.shard_count() > 1 && index->key_columns().size() == 1 &&
         index->key_columns()[0] == source.partition_column();
}

}  // namespace

// ---------------------------------------------------------------------------
// SeqScan
// ---------------------------------------------------------------------------

SeqScanNode::SeqScanNode(const ScanSource* source, BoundExprPtr filter,
                         ExecStats* stats, Epoch epoch)
    : source_(source),
      filter_(std::move(filter)),
      stats_(stats),
      epoch_(epoch) {
  set_schema(source->schema());
}

Status SeqScanNode::OpenImpl() {
  shard_ = 0;
  cursor_ = 0;
  pos_ = 0;
  rows_.clear();
  materialized_ = false;

  const ParallelismPolicy& tuning = GlobalParallelismPolicy();
  const size_t nshards = source_->shard_count();
  size_t total_slots = 0;
  for (size_t sh = 0; sh < nshards; ++sh) {
    total_slots += source_->shard(sh).num_slots();
  }
  ThreadPool& pool = GlobalThreadPool();
  if (total_slots < tuning.seq_scan_min_rows || pool.num_threads() == 0) {
    return Status::OK();
  }

  // Shard × morsel grid: each cell batch-filters one row range of one shard
  // into a private buffer; buffers concatenate in grid order (shard-major,
  // then row order), matching the serial path exactly.
  materialized_ = true;
  const size_t morsel = std::max<size_t>(tuning.morsel_rows, 1);
  struct Cell {
    size_t shard;
    RowId lo;
    RowId hi;
  };
  std::vector<Cell> grid;
  for (size_t sh = 0; sh < nshards; ++sh) {
    const Table& shard = source_->shard(sh);
    const size_t n = shard.num_slots();
    const size_t cells = (n + morsel - 1) / morsel;
    if (cells > 0) shard.NoteMorsels(cells);
    for (size_t m = 0; m < cells; ++m) {
      grid.push_back(Cell{sh, static_cast<RowId>(m * morsel),
                          static_cast<RowId>(std::min(n, (m + 1) * morsel))});
    }
  }
  StatAdd(stats_->morsels, static_cast<int64_t>(grid.size()));
  CountMorsels(static_cast<int64_t>(grid.size()));
  std::vector<std::vector<Tuple>> buffers(grid.size());
  std::atomic<int64_t> scanned{0};
  pool.ParallelFor(0, grid.size(), [&](size_t g) {
    const Cell& cell = grid[g];
    const Table& shard = source_->shard(cell.shard);
    std::vector<Tuple>& buf = buffers[g];
    RowBatch batch;
    batch.Reset(shard.schema().num_columns());
    int64_t local = 0;
    for (RowId rid = cell.lo; rid < cell.hi; ++rid) {
      if (!shard.VisibleAt(rid, epoch_)) continue;
      ++local;
      batch.AppendRow(shard.Get(rid));
    }
    std::vector<uint32_t> sel;
    ApplyFilterToBatch(filter_.get(), &batch, &sel);
    buf.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      buf.push_back(batch.MaterializeTuple(i));
    }
    scanned.fetch_add(local, std::memory_order_relaxed);
  });
  StatAdd(stats_->rows_scanned, scanned.load(std::memory_order_relaxed));
  size_t total = 0;
  for (const auto& buf : buffers) total += buf.size();
  rows_.reserve(total);
  for (auto& buf : buffers) {
    for (Tuple& t : buf) rows_.push_back(std::move(t));
  }
  return Status::OK();
}

Result<bool> SeqScanNode::NextBatchImpl(RowBatch* out) {
  if (materialized_) {
    out->Reset(output_width());
    while (pos_ < rows_.size() && !out->full()) {
      out->AppendRow(std::move(rows_[pos_++]));
    }
    return !out->empty();
  }
  while (true) {
    cursor_ = source_->ScanBatch(shard_, cursor_, out, epoch_);
    if (out->physical_size() == 0) {
      // Shard exhausted; move to the next one.
      if (shard_ + 1 >= source_->shard_count()) return false;
      ++shard_;
      cursor_ = 0;
      continue;
    }
    StatAdd(stats_->rows_scanned,
            static_cast<int64_t>(out->physical_size()));
    ApplyFilterToBatch(filter_.get(), out, &sel_scratch_);
    if (!out->empty()) return true;
    // Whole window filtered out; pull the next one.
  }
}

void SeqScanNode::CloseImpl() {
  rows_.clear();
  materialized_ = false;
}

// ---------------------------------------------------------------------------
// IndexScan
// ---------------------------------------------------------------------------

IndexScanNode::IndexScanNode(const ScanSource* source, const Index* index,
                             std::vector<Tuple> keys, BoundExprPtr filter,
                             ExecStats* stats, Epoch epoch)
    : source_(source),
      index_(index),
      routed_(RoutableOnPartitionColumn(*source, index)),
      keys_(std::move(keys)),
      filter_(std::move(filter)),
      stats_(stats),
      epoch_(epoch) {
  set_schema(source->schema());
}

Status IndexScanNode::OpenImpl() {
  key_pos_ = 0;
  shard_pos_ = 0;
  buffer_shard_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  return Status::OK();
}

bool IndexScanNode::NextProbe() {
  const size_t nshards = source_->shard_count();
  while (key_pos_ < keys_.size()) {
    if (shard_pos_ >= nshards) {
      ++key_pos_;
      shard_pos_ = 0;
      continue;
    }
    const Tuple& key = keys_[key_pos_];
    size_t sh = shard_pos_;
    if (routed_) {
      // Single-column key on the partition column: only one shard can hold
      // matches, so skip the other probes for this key.
      sh = source_->ShardOfValue(key[0]);
      shard_pos_ = nshards;
    } else {
      ++shard_pos_;
    }
    buffer_.clear();
    buffer_pos_ = 0;
    buffer_shard_ = sh;
    StatAdd(stats_->index_probes);
    const Table& shard = source_->shard(sh);
    shard.ProbeIndex(ShardIndex(*source_, sh, index_), key, &buffer_);
    return true;
  }
  return false;
}

Result<bool> IndexScanNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    out->Reset(output_width());
    while (!out->full()) {
      if (buffer_pos_ < buffer_.size()) {
        RowId rid = buffer_[buffer_pos_++];
        const Table& shard = source_->shard(buffer_shard_);
        if (!shard.VisibleAt(rid, epoch_)) continue;
        StatAdd(stats_->index_rows);
        out->AppendRow(shard.Get(rid));
        continue;
      }
      if (!NextProbe()) break;
    }
    if (out->physical_size() == 0) return false;
    ApplyFilterToBatch(filter_.get(), out, &sel_scratch_);
    if (!out->empty()) return true;
  }
}

// ---------------------------------------------------------------------------
// IndexRangeScan
// ---------------------------------------------------------------------------

IndexRangeScanNode::IndexRangeScanNode(const ScanSource* source,
                                       const OrderedIndex* index,
                                       std::optional<Value> lo,
                                       std::optional<Value> hi,
                                       BoundExprPtr filter, ExecStats* stats,
                                       Epoch epoch)
    : source_(source),
      index_(index),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      filter_(std::move(filter)),
      stats_(stats),
      epoch_(epoch) {
  set_schema(source->schema());
}

void IndexRangeScanNode::ProbeShard() {
  Tuple lo_key;
  Tuple hi_key;
  if (lo_.has_value()) lo_key = Tuple{*lo_};
  if (hi_.has_value()) hi_key = Tuple{*hi_};
  StatAdd(stats_->index_probes);
  // Same index definition on every shard, so the same index kind too.
  const auto* index = static_cast<const OrderedIndex*>(
      ShardIndex(*source_, shard_, index_));
  source_->shard(shard_).ProbeIndexRange(
      index, lo_.has_value() ? &lo_key : nullptr,
      hi_.has_value() ? &hi_key : nullptr, &buffer_);
}

Status IndexRangeScanNode::OpenImpl() {
  shard_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  ProbeShard();
  return Status::OK();
}

Result<bool> IndexRangeScanNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    out->Reset(output_width());
    while (!out->full()) {
      if (buffer_pos_ < buffer_.size()) {
        RowId rid = buffer_[buffer_pos_++];
        const Table& shard = source_->shard(shard_);
        if (!shard.VisibleAt(rid, epoch_)) continue;
        StatAdd(stats_->index_rows);
        out->AppendRow(shard.Get(rid));
        continue;
      }
      if (shard_ + 1 >= source_->shard_count()) break;
      ++shard_;
      buffer_.clear();
      buffer_pos_ = 0;
      ProbeShard();
    }
    if (out->physical_size() == 0) return false;
    ApplyFilterToBatch(filter_.get(), out, &sel_scratch_);
    if (!out->empty()) return true;
  }
}

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

FilterNode::FilterNode(PlanNodePtr child, BoundExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  set_schema(child_->output_schema());
}

Result<bool> FilterNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    ApplyFilterToBatch(predicate_.get(), out, &sel_scratch_);
    if (!out->empty()) return true;
  }
}

ProjectNode::ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> exprs,
                         Schema schema)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  set_schema(std::move(schema));
}

Result<bool> ProjectNode::NextBatchImpl(RowBatch* out) {
  out->Reset(exprs_.size());
  DKB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in_batch_));
  if (!more) return false;
  idx_scratch_.resize(in_batch_.size());
  std::iota(idx_scratch_.begin(), idx_scratch_.end(), 0u);
  for (size_t c = 0; c < exprs_.size(); ++c) {
    exprs_[c]->EvaluateColumn(in_batch_, idx_scratch_, &out->column(c));
  }
  return true;
}

// ---------------------------------------------------------------------------
// NestedLoopJoin
// ---------------------------------------------------------------------------

NestedLoopJoinNode::NestedLoopJoinNode(PlanNodePtr outer, PlanNodePtr inner,
                                       BoundExprPtr predicate,
                                       ExecStats* stats)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)),
      stats_(stats) {
  set_schema(ConcatSchemas(outer_->output_schema(), inner_->output_schema()));
}

Status NestedLoopJoinNode::OpenImpl() {
  outer_batch_.Reset(0);
  outer_pos_ = 0;
  outer_valid_ = false;
  outer_done_ = false;
  return outer_->Open();
}

Result<bool> NestedLoopJoinNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    out->Reset(output_width());
    while (!out->full() && !outer_done_) {
      if (!outer_valid_) {
        if (outer_pos_ >= outer_batch_.size()) {
          DKB_ASSIGN_OR_RETURN(bool more, outer_->NextBatch(&outer_batch_));
          if (!more) {
            outer_done_ = true;
            break;
          }
          outer_pos_ = 0;
          continue;
        }
        outer_batch_.CopyRowTo(outer_pos_++, &outer_row_);
        outer_valid_ = true;
        DKB_RETURN_IF_ERROR(inner_->Open());
      }
      DKB_ASSIGN_OR_RETURN(bool more, inner_->NextBatch(&inner_batch_));
      if (!more) {
        outer_valid_ = false;
        continue;
      }
      for (size_t i = 0; i < inner_batch_.size(); ++i) {
        out->AppendConcat(outer_row_, inner_batch_, i);
      }
    }
    if (out->physical_size() == 0) return false;
    ApplyFilterToBatch(predicate_.get(), out, &sel_scratch_);
    if (!out->empty()) {
      StatAdd(stats_->join_output_rows, static_cast<int64_t>(out->size()));
      return true;
    }
  }
}

void NestedLoopJoinNode::CloseImpl() {
  outer_->Close();
  inner_->Close();
}

// ---------------------------------------------------------------------------
// HashJoin
// ---------------------------------------------------------------------------

HashJoinNode::HashJoinNode(PlanNodePtr left, PlanNodePtr right,
                           std::vector<size_t> left_keys,
                           std::vector<size_t> right_keys,
                           BoundExprPtr residual, ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      stats_(stats) {
  set_schema(ConcatSchemas(left_->output_schema(), right_->output_schema()));
}

Status HashJoinNode::OpenImpl() {
  parts_.clear();
  left_batch_.Reset(0);
  left_pos_ = 0;
  left_done_ = false;
  matches_.clear();
  match_pos_ = 0;

  // Drain the build side (materialized: build keys must outlive the probe).
  DKB_RETURN_IF_ERROR(right_->Open());
  std::vector<Tuple> build;
  RowBatch rb;
  while (true) {
    auto more = right_->NextBatch(&rb);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (size_t i = 0; i < rb.size(); ++i) {
      build.push_back(rb.MaterializeTuple(i));
    }
  }
  right_->Close();

  auto key_of = [this](const Tuple& r) {
    Tuple key;
    key.reserve(right_keys_.size());
    for (size_t k : right_keys_) key.push_back(r[k]);
    return key;
  };

  ThreadPool& pool = GlobalThreadPool();
  const ParallelismPolicy& tuning = GlobalParallelismPolicy();
  if (build.size() < tuning.hash_build_min_rows || pool.num_threads() == 0) {
    parts_.resize(1);
    for (Tuple& r : build) parts_[0].emplace(key_of(r), std::move(r));
    return left_->Open();
  }

  // Parallel partitioned build: hash every key, then let each partition
  // insert its own rows — disjoint ownership, no locks.
  const size_t num_parts = 2 * (pool.num_threads() + 1);
  StatAdd(stats_->morsels, static_cast<int64_t>(num_parts));
  CountMorsels(static_cast<int64_t>(num_parts));
  std::vector<size_t> hashes(build.size());
  pool.ParallelFor(
      0, build.size(),
      [&](size_t i) { hashes[i] = TupleHash{}(key_of(build[i])); },
      /*min_chunk=*/1024);
  parts_.resize(num_parts);
  pool.ParallelFor(0, num_parts, [&](size_t p) {
    auto& part = parts_[p];
    for (size_t i = 0; i < build.size(); ++i) {
      if (hashes[i] % num_parts != p) continue;
      part.emplace(key_of(build[i]), build[i]);
    }
  });
  return left_->Open();
}

Result<bool> HashJoinNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    out->Reset(output_width());
    while (!out->full()) {
      if (match_pos_ < matches_.size()) {
        out->AppendConcat(left_row_, *matches_[match_pos_++]);
        continue;
      }
      if (left_pos_ >= left_batch_.size()) {
        if (left_done_) break;
        DKB_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&left_batch_));
        if (!more) {
          left_done_ = true;
          break;
        }
        left_pos_ = 0;
        continue;
      }
      left_batch_.CopyRowTo(left_pos_++, &left_row_);
      key_scratch_.clear();
      for (size_t k : left_keys_) key_scratch_.push_back(left_row_[k]);
      matches_.clear();
      match_pos_ = 0;
      const auto& part =
          parts_.size() == 1 ? parts_[0]
                             : parts_[TupleHash{}(key_scratch_) % parts_.size()];
      auto [lo, hi] = part.equal_range(key_scratch_);
      for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
    }
    if (out->physical_size() == 0) return false;
    ApplyFilterToBatch(residual_.get(), out, &sel_scratch_);
    if (!out->empty()) {
      StatAdd(stats_->join_output_rows, static_cast<int64_t>(out->size()));
      return true;
    }
  }
}

void HashJoinNode::CloseImpl() {
  left_->Close();
  parts_.clear();
}

// ---------------------------------------------------------------------------
// IndexNLJoin
// ---------------------------------------------------------------------------

IndexNLJoinNode::IndexNLJoinNode(PlanNodePtr outer, const ScanSource* inner,
                                 const Index* index,
                                 std::vector<size_t> outer_key_slots,
                                 BoundExprPtr residual, ExecStats* stats,
                                 Epoch epoch)
    : outer_(std::move(outer)),
      inner_(inner),
      index_(index),
      routed_(RoutableOnPartitionColumn(*inner, index)),
      outer_key_slots_(std::move(outer_key_slots)),
      residual_(std::move(residual)),
      stats_(stats),
      epoch_(epoch) {
  set_schema(ConcatSchemas(outer_->output_schema(), inner->schema()));
}

Status IndexNLJoinNode::OpenImpl() {
  outer_batch_.Reset(0);
  outer_pos_ = 0;
  outer_done_ = false;
  // Start with the probe grid exhausted so the first iteration pulls an
  // outer row.
  shard_pos_ = inner_->shard_count();
  buffer_shard_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  return outer_->Open();
}

bool IndexNLJoinNode::ProbeNextShard() {
  const size_t nshards = inner_->shard_count();
  if (shard_pos_ >= nshards) return false;
  size_t sh = shard_pos_;
  if (routed_) {
    sh = inner_->ShardOfValue(key_scratch_[0]);
    shard_pos_ = nshards;  // one probe per key
  } else {
    ++shard_pos_;
  }
  buffer_.clear();
  buffer_pos_ = 0;
  buffer_shard_ = sh;
  StatAdd(stats_->index_probes);
  const Table& shard = inner_->shard(sh);
  shard.ProbeIndex(ShardIndex(*inner_, sh, index_), key_scratch_, &buffer_);
  return true;
}

Result<bool> IndexNLJoinNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    out->Reset(output_width());
    while (!out->full()) {
      if (buffer_pos_ < buffer_.size()) {
        RowId rid = buffer_[buffer_pos_++];
        const Table& shard = inner_->shard(buffer_shard_);
        if (!shard.VisibleAt(rid, epoch_)) continue;
        StatAdd(stats_->index_rows);
        out->AppendConcat(outer_row_, shard.Get(rid));
        continue;
      }
      if (ProbeNextShard()) continue;
      if (outer_pos_ >= outer_batch_.size()) {
        if (outer_done_) break;
        DKB_ASSIGN_OR_RETURN(bool more, outer_->NextBatch(&outer_batch_));
        if (!more) {
          outer_done_ = true;
          break;
        }
        outer_pos_ = 0;
        continue;
      }
      outer_batch_.CopyRowTo(outer_pos_++, &outer_row_);
      key_scratch_.clear();
      for (size_t s : outer_key_slots_) key_scratch_.push_back(outer_row_[s]);
      shard_pos_ = 0;
      buffer_.clear();
      buffer_pos_ = 0;
    }
    if (out->physical_size() == 0) return false;
    ApplyFilterToBatch(residual_.get(), out, &sel_scratch_);
    if (!out->empty()) {
      StatAdd(stats_->join_output_rows, static_cast<int64_t>(out->size()));
      return true;
    }
  }
}

void IndexNLJoinNode::CloseImpl() { outer_->Close(); }

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

DistinctNode::DistinctNode(PlanNodePtr child) : child_(std::move(child)) {
  set_schema(child_->output_schema());
}

Status DistinctNode::OpenImpl() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctNode::NextBatchImpl(RowBatch* out) {
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    sel_scratch_.clear();
    const size_t n = out->size();
    for (size_t i = 0; i < n; ++i) {
      if (seen_.insert(out->MaterializeTuple(i)).second) {
        sel_scratch_.push_back(static_cast<uint32_t>(i));
      }
    }
    if (!sel_scratch_.empty()) {
      out->ComposeSelection(sel_scratch_);
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// SetOp
// ---------------------------------------------------------------------------

SetOpNode::SetOpNode(PlanNodePtr left, PlanNodePtr right, SetOpKind kind)
    : left_(std::move(left)), right_(std::move(right)), kind_(kind) {
  set_schema(left_->output_schema());
}

Status SetOpNode::OpenImpl() {
  left_done_ = false;
  right_set_.clear();
  emitted_.clear();
  DKB_RETURN_IF_ERROR(left_->Open());
  if (kind_ == SetOpKind::kExcept || kind_ == SetOpKind::kIntersect) {
    DKB_RETURN_IF_ERROR(right_->Open());
    RowBatch rb;
    while (true) {
      auto more = right_->NextBatch(&rb);
      if (!more.ok()) return more.status();
      if (!*more) break;
      for (size_t i = 0; i < rb.size(); ++i) {
        right_set_.insert(rb.MaterializeTuple(i));
      }
    }
    right_->Close();
  }
  return Status::OK();
}

void SetOpNode::FilterBatch(RowBatch* batch) {
  sel_scratch_.clear();
  const size_t n = batch->size();
  for (size_t i = 0; i < n; ++i) {
    Tuple t = batch->MaterializeTuple(i);
    if (kind_ == SetOpKind::kExcept && right_set_.count(t) > 0) continue;
    if (kind_ == SetOpKind::kIntersect && right_set_.count(t) == 0) continue;
    if (emitted_.insert(std::move(t)).second) {
      sel_scratch_.push_back(static_cast<uint32_t>(i));
    }
  }
  batch->ComposeSelection(sel_scratch_);
}

Result<bool> SetOpNode::NextBatchImpl(RowBatch* out) {
  if (kind_ == SetOpKind::kUnionAll) {
    if (!left_done_) {
      DKB_ASSIGN_OR_RETURN(bool more, left_->NextBatch(out));
      if (more) return true;
      left_done_ = true;
      DKB_RETURN_IF_ERROR(right_->Open());
    }
    return right_->NextBatch(out);
  }
  // kUnion / kExcept / kIntersect: stream batches through the membership
  // filter (emitted_ dedup; EXCEPT/INTERSECT also consult right_set_).
  while (true) {
    bool more = false;
    if (!left_done_) {
      DKB_ASSIGN_OR_RETURN(more, left_->NextBatch(out));
      if (!more) {
        left_done_ = true;
        if (kind_ == SetOpKind::kUnion) {
          DKB_RETURN_IF_ERROR(right_->Open());
        }
        continue;
      }
    } else {
      if (kind_ != SetOpKind::kUnion) return false;
      DKB_ASSIGN_OR_RETURN(more, right_->NextBatch(out));
      if (!more) return false;
    }
    FilterBatch(out);
    if (!out->empty()) return true;
  }
}

void SetOpNode::CloseImpl() {
  left_->Close();
  right_->Close();
}

// ---------------------------------------------------------------------------
// Sort / Limit / Count
// ---------------------------------------------------------------------------

SortNode::SortNode(PlanNodePtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  set_schema(child_->output_schema());
}

Status SortNode::OpenImpl() {
  rows_.clear();
  pos_ = 0;
  DKB_RETURN_IF_ERROR(child_->Open());
  RowBatch rb;
  while (true) {
    auto more = child_->NextBatch(&rb);
    if (!more.ok()) return more.status();
    if (!*more) break;
    rows_.reserve(rows_.size() + rb.size());
    for (size_t i = 0; i < rb.size(); ++i) {
      rows_.push_back(rb.MaterializeTuple(i));
    }
  }
  child_->Close();
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const SortKey& k : keys_) {
                       if (a[k.slot] == b[k.slot]) continue;
                       bool lt = a[k.slot] < b[k.slot];
                       return k.ascending ? lt : !lt;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortNode::NextBatchImpl(RowBatch* out) {
  out->Reset(output_width());
  while (pos_ < rows_.size() && !out->full()) {
    out->AppendRow(std::move(rows_[pos_++]));
  }
  return !out->empty();
}

void SortNode::CloseImpl() { rows_.clear(); }

LimitNode::LimitNode(PlanNodePtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {
  set_schema(child_->output_schema());
}

Status LimitNode::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

Result<bool> LimitNode::NextBatchImpl(RowBatch* out) {
  if (produced_ >= limit_) return false;
  DKB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  out->Truncate(limit_ - produced_);
  produced_ += out->size();
  return !out->empty();
}

AggregateNode::AggregateNode(PlanNodePtr child,
                             std::vector<BoundExprPtr> group_keys,
                             std::vector<AggSpec> specs,
                             std::vector<OutputRef> outputs, Schema schema)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      specs_(std::move(specs)),
      outputs_(std::move(outputs)) {
  set_schema(std::move(schema));
}

Status AggregateNode::OpenImpl() {
  groups_.clear();
  pos_ = 0;
  std::unordered_map<Tuple, size_t, TupleHash> index;
  DKB_RETURN_IF_ERROR(child_->Open());
  RowBatch batch;
  std::vector<uint32_t> idx;
  // Per-batch column buffers: group keys and aggregate arguments are
  // evaluated vectorized; only the accumulator update runs per row.
  std::vector<std::vector<Value>> key_cols(group_keys_.size());
  std::vector<std::vector<Value>> arg_cols(specs_.size());
  Tuple key;
  while (true) {
    auto more = child_->NextBatch(&batch);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const size_t n = batch.size();
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), 0u);
    for (size_t k = 0; k < group_keys_.size(); ++k) {
      group_keys_[k]->EvaluateColumn(batch, idx, &key_cols[k]);
    }
    for (size_t s = 0; s < specs_.size(); ++s) {
      if (specs_[s].arg != nullptr) {
        specs_[s].arg->EvaluateColumn(batch, idx, &arg_cols[s]);
      }
    }
    for (size_t r = 0; r < n; ++r) {
      key.clear();
      for (size_t k = 0; k < key_cols.size(); ++k) {
        key.push_back(key_cols[k][r]);
      }
      auto [it, inserted] = index.emplace(key, groups_.size());
      if (inserted) {
        groups_.emplace_back(key, std::vector<Acc>(specs_.size()));
      }
      std::vector<Acc>& accs = groups_[it->second].second;
      for (size_t s = 0; s < specs_.size(); ++s) {
        const AggSpec& spec = specs_[s];
        Acc& acc = accs[s];
        if (spec.fn == sql::AggFn::kCountStar) {
          ++acc.count;
          continue;
        }
        const Value& v = arg_cols[s][r];
        if (v.is_null()) continue;
        switch (spec.fn) {
          case sql::AggFn::kCount:
            ++acc.count;
            break;
          case sql::AggFn::kSum:
            if (!v.is_int()) {
              return Status::TypeError("SUM over non-integer value " +
                                       v.ToString());
            }
            acc.sum += v.as_int();
            break;
          case sql::AggFn::kMin:
            if (!acc.has_value || v < acc.min) acc.min = v;
            break;
          case sql::AggFn::kMax:
            if (!acc.has_value || acc.max < v) acc.max = v;
            break;
          default:
            return Status::Internal("bad aggregate function");
        }
        acc.has_value = true;
      }
    }
  }
  child_->Close();
  // Global aggregation over an empty input still yields one row.
  if (group_keys_.empty() && groups_.empty()) {
    groups_.emplace_back(Tuple{}, std::vector<Acc>(specs_.size()));
  }
  return Status::OK();
}

Result<bool> AggregateNode::NextBatchImpl(RowBatch* out) {
  out->Reset(output_width());
  Tuple row;
  while (pos_ < groups_.size() && !out->full()) {
    const auto& [key, accs] = groups_[pos_++];
    row.clear();
    row.reserve(outputs_.size());
    for (const OutputRef& ref : outputs_) {
      if (!ref.is_agg) {
        row.push_back(key[ref.index]);
        continue;
      }
      const Acc& acc = accs[ref.index];
      switch (specs_[ref.index].fn) {
        case sql::AggFn::kCountStar:
        case sql::AggFn::kCount:
          row.push_back(Value(acc.count));
          break;
        case sql::AggFn::kSum:
          row.push_back(Value(acc.sum));
          break;
        case sql::AggFn::kMin:
          row.push_back(acc.has_value ? acc.min : Value::Null());
          break;
        case sql::AggFn::kMax:
          row.push_back(acc.has_value ? acc.max : Value::Null());
          break;
        default:
          return Status::Internal("bad aggregate function");
      }
    }
    out->AppendRow(row);
  }
  return !out->empty();
}

void AggregateNode::CloseImpl() { groups_.clear(); }

CountNode::CountNode(PlanNodePtr child, std::string column_name)
    : child_(std::move(child)) {
  set_schema(Schema({Column{std::move(column_name), DataType::kInteger}}));
}

Status CountNode::OpenImpl() {
  emitted_ = false;
  return child_->Open();
}

Result<bool> CountNode::NextBatchImpl(RowBatch* out) {
  out->Reset(1);
  if (emitted_) return false;
  int64_t count = 0;
  RowBatch scratch;
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&scratch));
    if (!more) break;
    count += static_cast<int64_t>(scratch.size());
  }
  emitted_ = true;
  out->AppendRow(Tuple{Value(count)});
  return true;
}

}  // namespace dkb::exec
