#include "exec/plan.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"

namespace dkb::exec {

ParallelTuning& GetParallelTuning() {
  static ParallelTuning tuning;
  return tuning;
}

void PlanNode::EnableProfiling() {
  if (profile_ == nullptr) profile_ = std::make_unique<Profile>();
  // Children() exposes const pointers for EXPLAIN rendering; profiling
  // mutates bookkeeping only, never operator results.
  for (const PlanNode* child : Children()) {
    const_cast<PlanNode*>(child)->EnableProfiling();
  }
}

namespace {

/// Concatenates the output schemas of two join inputs.
Schema ConcatSchemas(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

Tuple ConcatRows(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SeqScan
// ---------------------------------------------------------------------------

SeqScanNode::SeqScanNode(const Table* table, BoundExprPtr filter,
                         ExecStats* stats)
    : table_(table), filter_(std::move(filter)), stats_(stats) {
  set_schema(table->schema());
}

Status SeqScanNode::OpenImpl() {
  cursor_ = 0;
  pos_ = 0;
  rows_.clear();
  materialized_ = false;

  const ParallelTuning& tuning = GetParallelTuning();
  const size_t n = table_->num_slots();
  ThreadPool& pool = GlobalThreadPool();
  if (n < tuning.seq_scan_min_rows || pool.num_threads() == 0) {
    return Status::OK();
  }

  // Morsel path: each morsel filters its row range into a private buffer;
  // buffers concatenate in morsel order, preserving the serial row order.
  materialized_ = true;
  const size_t morsel = std::max<size_t>(tuning.morsel_rows, 1);
  const size_t num_morsels = (n + morsel - 1) / morsel;
  StatAdd(stats_->morsels, static_cast<int64_t>(num_morsels));
  CountMorsels(static_cast<int64_t>(num_morsels));
  std::vector<std::vector<Tuple>> buffers(num_morsels);
  std::atomic<int64_t> scanned{0};
  pool.ParallelFor(0, num_morsels, [&](size_t m) {
    const size_t lo = m * morsel;
    const size_t hi = std::min(n, lo + morsel);
    std::vector<Tuple>& buf = buffers[m];
    int64_t local = 0;
    for (RowId rid = lo; rid < hi; ++rid) {
      if (!table_->IsLive(rid)) continue;
      const Tuple& t = table_->Get(rid);
      ++local;
      if (filter_ != nullptr && !filter_->EvaluateBool(t)) continue;
      buf.push_back(t);
    }
    scanned.fetch_add(local, std::memory_order_relaxed);
  });
  StatAdd(stats_->rows_scanned, scanned.load(std::memory_order_relaxed));
  size_t total = 0;
  for (const auto& buf : buffers) total += buf.size();
  rows_.reserve(total);
  for (auto& buf : buffers) {
    for (Tuple& t : buf) rows_.push_back(std::move(t));
  }
  return Status::OK();
}

Result<bool> SeqScanNode::NextImpl(Tuple* row) {
  if (materialized_) {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    return true;
  }
  const size_t n = table_->num_slots();
  while (cursor_ < n) {
    RowId rid = cursor_++;
    if (!table_->IsLive(rid)) continue;
    const Tuple& t = table_->Get(rid);
    StatAdd(stats_->rows_scanned);
    if (filter_ != nullptr && !filter_->EvaluateBool(t)) continue;
    *row = t;
    return true;
  }
  return false;
}

void SeqScanNode::CloseImpl() {
  rows_.clear();
  materialized_ = false;
}

// ---------------------------------------------------------------------------
// IndexScan
// ---------------------------------------------------------------------------

IndexScanNode::IndexScanNode(const Table* table, const Index* index,
                             std::vector<Tuple> keys, BoundExprPtr filter,
                             ExecStats* stats)
    : table_(table),
      index_(index),
      keys_(std::move(keys)),
      filter_(std::move(filter)),
      stats_(stats) {
  set_schema(table->schema());
}

Status IndexScanNode::OpenImpl() {
  key_pos_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  return Status::OK();
}

Result<bool> IndexScanNode::NextImpl(Tuple* row) {
  while (true) {
    if (buffer_pos_ < buffer_.size()) {
      RowId rid = buffer_[buffer_pos_++];
      if (!table_->IsLive(rid)) continue;
      const Tuple& t = table_->Get(rid);
      StatAdd(stats_->index_rows);
      if (filter_ != nullptr && !filter_->EvaluateBool(t)) continue;
      *row = t;
      return true;
    }
    if (key_pos_ >= keys_.size()) return false;
    buffer_.clear();
    buffer_pos_ = 0;
    StatAdd(stats_->index_probes);
    index_->Probe(keys_[key_pos_++], &buffer_);
  }
}

// ---------------------------------------------------------------------------
// IndexRangeScan
// ---------------------------------------------------------------------------

IndexRangeScanNode::IndexRangeScanNode(const Table* table,
                                       const OrderedIndex* index,
                                       std::optional<Value> lo,
                                       std::optional<Value> hi,
                                       BoundExprPtr filter, ExecStats* stats)
    : table_(table),
      index_(index),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      filter_(std::move(filter)),
      stats_(stats) {
  set_schema(table->schema());
}

Status IndexRangeScanNode::OpenImpl() {
  buffer_.clear();
  buffer_pos_ = 0;
  Tuple lo_key;
  Tuple hi_key;
  if (lo_.has_value()) lo_key = Tuple{*lo_};
  if (hi_.has_value()) hi_key = Tuple{*hi_};
  StatAdd(stats_->index_probes);
  index_->RangeOpt(lo_.has_value() ? &lo_key : nullptr,
                   hi_.has_value() ? &hi_key : nullptr, &buffer_);
  return Status::OK();
}

Result<bool> IndexRangeScanNode::NextImpl(Tuple* row) {
  while (buffer_pos_ < buffer_.size()) {
    RowId rid = buffer_[buffer_pos_++];
    if (!table_->IsLive(rid)) continue;
    const Tuple& t = table_->Get(rid);
    StatAdd(stats_->index_rows);
    if (filter_ != nullptr && !filter_->EvaluateBool(t)) continue;
    *row = t;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

FilterNode::FilterNode(PlanNodePtr child, BoundExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  set_schema(child_->output_schema());
}

Result<bool> FilterNode::NextImpl(Tuple* row) {
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    if (predicate_->EvaluateBool(*row)) return true;
  }
}

ProjectNode::ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> exprs,
                         Schema schema)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  set_schema(std::move(schema));
}

Result<bool> ProjectNode::NextImpl(Tuple* row) {
  Tuple in;
  DKB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  Tuple out;
  out.reserve(exprs_.size());
  for (const auto& e : exprs_) out.push_back(e->Evaluate(in));
  *row = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// NestedLoopJoin
// ---------------------------------------------------------------------------

NestedLoopJoinNode::NestedLoopJoinNode(PlanNodePtr outer, PlanNodePtr inner,
                                       BoundExprPtr predicate,
                                       ExecStats* stats)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)),
      stats_(stats) {
  set_schema(ConcatSchemas(outer_->output_schema(), inner_->output_schema()));
}

Status NestedLoopJoinNode::OpenImpl() {
  outer_valid_ = false;
  return outer_->Open();
}

Result<bool> NestedLoopJoinNode::NextImpl(Tuple* row) {
  while (true) {
    if (!outer_valid_) {
      DKB_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
      if (!more) return false;
      outer_valid_ = true;
      DKB_RETURN_IF_ERROR(inner_->Open());
    }
    Tuple inner_row;
    DKB_ASSIGN_OR_RETURN(bool more, inner_->Next(&inner_row));
    if (!more) {
      outer_valid_ = false;
      continue;
    }
    Tuple combined = ConcatRows(outer_row_, inner_row);
    if (predicate_ == nullptr || predicate_->EvaluateBool(combined)) {
      StatAdd(stats_->join_output_rows);
      *row = std::move(combined);
      return true;
    }
  }
}

void NestedLoopJoinNode::CloseImpl() {
  outer_->Close();
  inner_->Close();
}

// ---------------------------------------------------------------------------
// HashJoin
// ---------------------------------------------------------------------------

HashJoinNode::HashJoinNode(PlanNodePtr left, PlanNodePtr right,
                           std::vector<size_t> left_keys,
                           std::vector<size_t> right_keys,
                           BoundExprPtr residual, ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      stats_(stats) {
  set_schema(ConcatSchemas(left_->output_schema(), right_->output_schema()));
}

Status HashJoinNode::OpenImpl() {
  parts_.clear();
  left_valid_ = false;
  matches_.clear();
  match_pos_ = 0;

  // Drain the build side (materialized: build keys must outlive the probe).
  DKB_RETURN_IF_ERROR(right_->Open());
  std::vector<Tuple> build;
  Tuple row;
  while (true) {
    auto more = right_->Next(&row);
    if (!more.ok()) return more.status();
    if (!*more) break;
    build.push_back(std::move(row));
  }
  right_->Close();

  auto key_of = [this](const Tuple& r) {
    Tuple key;
    key.reserve(right_keys_.size());
    for (size_t k : right_keys_) key.push_back(r[k]);
    return key;
  };

  ThreadPool& pool = GlobalThreadPool();
  const ParallelTuning& tuning = GetParallelTuning();
  if (build.size() < tuning.hash_build_min_rows || pool.num_threads() == 0) {
    parts_.resize(1);
    for (Tuple& r : build) parts_[0].emplace(key_of(r), std::move(r));
    return left_->Open();
  }

  // Parallel partitioned build: hash every key, then let each partition
  // insert its own rows — disjoint ownership, no locks.
  const size_t num_parts = 2 * (pool.num_threads() + 1);
  StatAdd(stats_->morsels, static_cast<int64_t>(num_parts));
  CountMorsels(static_cast<int64_t>(num_parts));
  std::vector<size_t> hashes(build.size());
  pool.ParallelFor(
      0, build.size(),
      [&](size_t i) { hashes[i] = TupleHash{}(key_of(build[i])); },
      /*min_chunk=*/1024);
  parts_.resize(num_parts);
  pool.ParallelFor(0, num_parts, [&](size_t p) {
    auto& part = parts_[p];
    for (size_t i = 0; i < build.size(); ++i) {
      if (hashes[i] % num_parts != p) continue;
      part.emplace(key_of(build[i]), build[i]);
    }
  });
  return left_->Open();
}

Result<bool> HashJoinNode::NextImpl(Tuple* row) {
  while (true) {
    if (match_pos_ < matches_.size()) {
      Tuple combined = ConcatRows(left_row_, *matches_[match_pos_++]);
      if (residual_ == nullptr || residual_->EvaluateBool(combined)) {
        StatAdd(stats_->join_output_rows);
        *row = std::move(combined);
        return true;
      }
      continue;
    }
    DKB_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
    if (!more) return false;
    Tuple key;
    key.reserve(left_keys_.size());
    for (size_t k : left_keys_) key.push_back(left_row_[k]);
    matches_.clear();
    match_pos_ = 0;
    const auto& part = parts_.size() == 1
                           ? parts_[0]
                           : parts_[TupleHash{}(key) % parts_.size()];
    auto [lo, hi] = part.equal_range(key);
    for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
  }
}

void HashJoinNode::CloseImpl() {
  left_->Close();
  parts_.clear();
}

// ---------------------------------------------------------------------------
// IndexNLJoin
// ---------------------------------------------------------------------------

IndexNLJoinNode::IndexNLJoinNode(PlanNodePtr outer, const Table* inner,
                                 const Index* index,
                                 std::vector<size_t> outer_key_slots,
                                 BoundExprPtr residual, ExecStats* stats)
    : outer_(std::move(outer)),
      inner_(inner),
      index_(index),
      outer_key_slots_(std::move(outer_key_slots)),
      residual_(std::move(residual)),
      stats_(stats) {
  set_schema(ConcatSchemas(outer_->output_schema(), inner->schema()));
}

Status IndexNLJoinNode::OpenImpl() {
  outer_valid_ = false;
  buffer_.clear();
  buffer_pos_ = 0;
  return outer_->Open();
}

Result<bool> IndexNLJoinNode::NextImpl(Tuple* row) {
  while (true) {
    if (buffer_pos_ < buffer_.size()) {
      RowId rid = buffer_[buffer_pos_++];
      if (!inner_->IsLive(rid)) continue;
      StatAdd(stats_->index_rows);
      Tuple combined = ConcatRows(outer_row_, inner_->Get(rid));
      if (residual_ == nullptr || residual_->EvaluateBool(combined)) {
        StatAdd(stats_->join_output_rows);
        *row = std::move(combined);
        return true;
      }
      continue;
    }
    DKB_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
    if (!more) return false;
    outer_valid_ = true;
    Tuple key;
    key.reserve(outer_key_slots_.size());
    for (size_t s : outer_key_slots_) key.push_back(outer_row_[s]);
    buffer_.clear();
    buffer_pos_ = 0;
    StatAdd(stats_->index_probes);
    index_->Probe(key, &buffer_);
  }
}

void IndexNLJoinNode::CloseImpl() { outer_->Close(); }

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

DistinctNode::DistinctNode(PlanNodePtr child) : child_(std::move(child)) {
  set_schema(child_->output_schema());
}

Status DistinctNode::OpenImpl() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctNode::NextImpl(Tuple* row) {
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    if (seen_.insert(*row).second) return true;
  }
}

// ---------------------------------------------------------------------------
// SetOp
// ---------------------------------------------------------------------------

SetOpNode::SetOpNode(PlanNodePtr left, PlanNodePtr right, SetOpKind kind)
    : left_(std::move(left)), right_(std::move(right)), kind_(kind) {
  set_schema(left_->output_schema());
}

Status SetOpNode::OpenImpl() {
  left_done_ = false;
  right_set_.clear();
  emitted_.clear();
  DKB_RETURN_IF_ERROR(left_->Open());
  if (kind_ == SetOpKind::kExcept || kind_ == SetOpKind::kIntersect) {
    DKB_RETURN_IF_ERROR(right_->Open());
    Tuple row;
    while (true) {
      auto more = right_->Next(&row);
      if (!more.ok()) return more.status();
      if (!*more) break;
      right_set_.insert(std::move(row));
    }
    right_->Close();
  }
  return Status::OK();
}

Result<bool> SetOpNode::NextImpl(Tuple* row) {
  if (kind_ == SetOpKind::kUnionAll) {
    if (!left_done_) {
      DKB_ASSIGN_OR_RETURN(bool more, left_->Next(row));
      if (more) return true;
      left_done_ = true;
      DKB_RETURN_IF_ERROR(right_->Open());
    }
    return right_->Next(row);
  }
  if (kind_ == SetOpKind::kUnion) {
    while (!left_done_) {
      DKB_ASSIGN_OR_RETURN(bool more, left_->Next(row));
      if (!more) {
        left_done_ = true;
        DKB_RETURN_IF_ERROR(right_->Open());
        break;
      }
      if (emitted_.insert(*row).second) return true;
    }
    while (true) {
      DKB_ASSIGN_OR_RETURN(bool more, right_->Next(row));
      if (!more) return false;
      if (emitted_.insert(*row).second) return true;
    }
  }
  // EXCEPT / INTERSECT: stream left against the materialized right set.
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, left_->Next(row));
    if (!more) return false;
    bool in_right = right_set_.count(*row) > 0;
    bool want = (kind_ == SetOpKind::kIntersect) ? in_right : !in_right;
    if (want && emitted_.insert(*row).second) return true;
  }
}

void SetOpNode::CloseImpl() {
  left_->Close();
  right_->Close();
}

// ---------------------------------------------------------------------------
// Sort / Limit / Count
// ---------------------------------------------------------------------------

SortNode::SortNode(PlanNodePtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  set_schema(child_->output_schema());
}

Status SortNode::OpenImpl() {
  rows_.clear();
  pos_ = 0;
  DKB_RETURN_IF_ERROR(child_->Open());
  Tuple row;
  while (true) {
    auto more = child_->Next(&row);
    if (!more.ok()) return more.status();
    if (!*more) break;
    rows_.push_back(std::move(row));
  }
  child_->Close();
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const SortKey& k : keys_) {
                       if (a[k.slot] == b[k.slot]) continue;
                       bool lt = a[k.slot] < b[k.slot];
                       return k.ascending ? lt : !lt;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortNode::NextImpl(Tuple* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

void SortNode::CloseImpl() { rows_.clear(); }

LimitNode::LimitNode(PlanNodePtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {
  set_schema(child_->output_schema());
}

Status LimitNode::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

Result<bool> LimitNode::NextImpl(Tuple* row) {
  if (produced_ >= limit_) return false;
  DKB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
  if (!more) return false;
  ++produced_;
  return true;
}

AggregateNode::AggregateNode(PlanNodePtr child,
                             std::vector<BoundExprPtr> group_keys,
                             std::vector<AggSpec> specs,
                             std::vector<OutputRef> outputs, Schema schema)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      specs_(std::move(specs)),
      outputs_(std::move(outputs)) {
  set_schema(std::move(schema));
}

Status AggregateNode::OpenImpl() {
  groups_.clear();
  pos_ = 0;
  std::unordered_map<Tuple, size_t, TupleHash> index;
  DKB_RETURN_IF_ERROR(child_->Open());
  Tuple row;
  while (true) {
    auto more = child_->Next(&row);
    if (!more.ok()) return more.status();
    if (!*more) break;
    Tuple key;
    key.reserve(group_keys_.size());
    for (const auto& k : group_keys_) key.push_back(k->Evaluate(row));
    auto [it, inserted] = index.emplace(key, groups_.size());
    if (inserted) {
      groups_.emplace_back(std::move(key),
                           std::vector<Acc>(specs_.size()));
    }
    std::vector<Acc>& accs = groups_[it->second].second;
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggSpec& spec = specs_[s];
      Acc& acc = accs[s];
      if (spec.fn == sql::AggFn::kCountStar) {
        ++acc.count;
        continue;
      }
      Value v = spec.arg->Evaluate(row);
      if (v.is_null()) continue;
      switch (spec.fn) {
        case sql::AggFn::kCount:
          ++acc.count;
          break;
        case sql::AggFn::kSum:
          if (!v.is_int()) {
            return Status::TypeError("SUM over non-integer value " +
                                     v.ToString());
          }
          acc.sum += v.as_int();
          break;
        case sql::AggFn::kMin:
          if (!acc.has_value || v < acc.min) acc.min = v;
          break;
        case sql::AggFn::kMax:
          if (!acc.has_value || acc.max < v) acc.max = v;
          break;
        default:
          return Status::Internal("bad aggregate function");
      }
      acc.has_value = true;
    }
  }
  child_->Close();
  // Global aggregation over an empty input still yields one row.
  if (group_keys_.empty() && groups_.empty()) {
    groups_.emplace_back(Tuple{}, std::vector<Acc>(specs_.size()));
  }
  return Status::OK();
}

Result<bool> AggregateNode::NextImpl(Tuple* row) {
  if (pos_ >= groups_.size()) return false;
  const auto& [key, accs] = groups_[pos_++];
  Tuple out;
  out.reserve(outputs_.size());
  for (const OutputRef& ref : outputs_) {
    if (!ref.is_agg) {
      out.push_back(key[ref.index]);
      continue;
    }
    const Acc& acc = accs[ref.index];
    switch (specs_[ref.index].fn) {
      case sql::AggFn::kCountStar:
      case sql::AggFn::kCount:
        out.push_back(Value(acc.count));
        break;
      case sql::AggFn::kSum:
        out.push_back(Value(acc.sum));
        break;
      case sql::AggFn::kMin:
        out.push_back(acc.has_value ? acc.min : Value::Null());
        break;
      case sql::AggFn::kMax:
        out.push_back(acc.has_value ? acc.max : Value::Null());
        break;
      default:
        return Status::Internal("bad aggregate function");
    }
  }
  *row = std::move(out);
  return true;
}

void AggregateNode::CloseImpl() { groups_.clear(); }

CountNode::CountNode(PlanNodePtr child, std::string column_name)
    : child_(std::move(child)) {
  set_schema(Schema({Column{std::move(column_name), DataType::kInteger}}));
}

Status CountNode::OpenImpl() {
  emitted_ = false;
  return child_->Open();
}

Result<bool> CountNode::NextImpl(Tuple* row) {
  if (emitted_) return false;
  int64_t count = 0;
  Tuple ignored;
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, child_->Next(&ignored));
    if (!more) break;
    ++count;
  }
  emitted_ = true;
  *row = Tuple{Value(count)};
  return true;
}

}  // namespace dkb::exec
