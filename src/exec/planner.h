#ifndef DKB_EXEC_PLANNER_H_
#define DKB_EXEC_PLANNER_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "sql/ast.h"

namespace dkb::exec {

/// Compiles a SELECT statement into a physical operator tree.
///
/// Planning heuristics (deliberately 1988-vintage, matching the paper's
/// commercial DBMS behaviour):
///  * tables join left-to-right in FROM order;
///  * per-table access path: index scan when an equality/IN predicate matches
///    an index, otherwise filtered sequential scan;
///  * join method: index nested-loop when the inner table has an index on
///    the equi-join columns, otherwise hash join on equi predicates,
///    otherwise tuple nested-loop.
Result<PlanNodePtr> PlanSelect(const sql::SelectStmt& stmt,
                               const Catalog& catalog, ExecStats* stats);

}  // namespace dkb::exec

#endif  // DKB_EXEC_PLANNER_H_
