#ifndef DKB_EXEC_PLANNER_H_
#define DKB_EXEC_PLANNER_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "sql/ast.h"

namespace dkb::exec {

/// Compiles a SELECT statement into a physical operator tree.
///
/// Planning heuristics (deliberately 1988-vintage, matching the paper's
/// commercial DBMS behaviour):
///  * tables join left-to-right in FROM order;
///  * per-table access path: index scan when an equality/IN predicate matches
///    an index, otherwise filtered sequential scan;
///  * join method: index nested-loop when the inner table has an index on
///    the equi-join columns, otherwise hash join on equi predicates,
///    otherwise tuple nested-loop.
/// `params` supplies bound values for `?` placeholders; they participate in
/// access-path selection exactly like literals (a fresh plan is built per
/// execution, so a parameterized key predicate still gets an index scan).
Result<PlanNodePtr> PlanSelect(const sql::SelectStmt& stmt,
                               const Catalog& catalog, ExecStats* stats,
                               const std::vector<Value>* params = nullptr);

}  // namespace dkb::exec

#endif  // DKB_EXEC_PLANNER_H_
