#ifndef DKB_EXEC_EXPR_H_
#define DKB_EXEC_EXPR_H_

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"
#include "storage/tuple.h"

namespace dkb::exec {

/// Bound (name-resolved) expression evaluated against a flat joined row.
///
/// Predicate semantics are two-valued: any comparison involving NULL is
/// false. The Datalog layer never produces NULLs, so this simplification
/// does not affect D/KB query results.
///
/// Expressions evaluate batch-at-a-time: FilterSelection narrows a set of
/// candidate rows and EvaluateColumn materializes one output column, each
/// costing one virtual call per expression node per batch. The per-row
/// Evaluate/EvaluateBool entry points remain for point lookups (index key
/// probes, REPL display) and as the fallback for node types without a
/// vectorized kernel.
class BoundExpr {
 public:
  virtual ~BoundExpr() = default;

  /// Evaluates to a value (column ref / literal).
  virtual Value Evaluate(const Tuple& row) const = 0;

  /// Evaluates as a predicate.
  virtual bool EvaluateBool(const Tuple& row) const {
    Value v = Evaluate(row);
    return v.is_int() && v.as_int() != 0;
  }

  /// Vectorized predicate. `rows` holds candidate *logical* row indexes of
  /// `batch` in ascending order; on return it holds the subset for which
  /// the predicate is true, order preserved. The base implementation
  /// materializes a scratch tuple per row (per-row virtual; subclasses
  /// override with column kernels).
  virtual void FilterSelection(const RowBatch& batch,
                               std::vector<uint32_t>* rows) const;

  /// Vectorized evaluation: appends one value per entry of `rows` (logical
  /// indexes into `batch`) to `*out`, which is cleared first.
  virtual void EvaluateColumn(const RowBatch& batch,
                              const std::vector<uint32_t>& rows,
                              std::vector<Value>* out) const;

  /// Largest row slot referenced (for prefix-safety checks); -1 if none.
  virtual int MaxSlot() const { return -1; }
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

class BoundColumn : public BoundExpr {
 public:
  explicit BoundColumn(size_t slot) : slot_(slot) {}
  Value Evaluate(const Tuple& row) const override { return row[slot_]; }
  void EvaluateColumn(const RowBatch& batch,
                      const std::vector<uint32_t>& rows,
                      std::vector<Value>* out) const override {
    out->clear();
    out->reserve(rows.size());
    for (uint32_t i : rows) out->push_back(batch.At(i, slot_));
  }
  int MaxSlot() const override { return static_cast<int>(slot_); }
  size_t slot() const { return slot_; }

 private:
  size_t slot_;
};

class BoundLiteral : public BoundExpr {
 public:
  explicit BoundLiteral(Value value) : value_(std::move(value)) {
    // Interned literals make equality probes against stored (interned)
    // VARCHARs an id compare.
    value_.InternInPlace();
  }
  Value Evaluate(const Tuple&) const override { return value_; }
  void EvaluateColumn(const RowBatch&, const std::vector<uint32_t>& rows,
                      std::vector<Value>* out) const override {
    out->assign(rows.size(), value_);
  }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class BoundComparison : public BoundExpr {
 public:
  BoundComparison(sql::CompareOp op, BoundExprPtr lhs, BoundExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Evaluate(const Tuple& row) const override {
    return Value(static_cast<int64_t>(EvaluateBool(row)));
  }
  bool EvaluateBool(const Tuple& row) const override;
  void FilterSelection(const RowBatch& batch,
                       std::vector<uint32_t>* rows) const override;
  int MaxSlot() const override {
    return std::max(lhs_->MaxSlot(), rhs_->MaxSlot());
  }

 private:
  sql::CompareOp op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

class BoundLogical : public BoundExpr {
 public:
  BoundLogical(sql::LogicalOp op, BoundExprPtr lhs, BoundExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Evaluate(const Tuple& row) const override {
    return Value(static_cast<int64_t>(EvaluateBool(row)));
  }
  bool EvaluateBool(const Tuple& row) const override {
    if (op_ == sql::LogicalOp::kAnd) {
      return lhs_->EvaluateBool(row) && rhs_->EvaluateBool(row);
    }
    return lhs_->EvaluateBool(row) || rhs_->EvaluateBool(row);
  }
  void FilterSelection(const RowBatch& batch,
                       std::vector<uint32_t>* rows) const override;
  int MaxSlot() const override {
    return std::max(lhs_->MaxSlot(), rhs_->MaxSlot());
  }

 private:
  sql::LogicalOp op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

class BoundNot : public BoundExpr {
 public:
  explicit BoundNot(BoundExprPtr child) : child_(std::move(child)) {}
  Value Evaluate(const Tuple& row) const override {
    return Value(static_cast<int64_t>(EvaluateBool(row)));
  }
  bool EvaluateBool(const Tuple& row) const override {
    return !child_->EvaluateBool(row);
  }
  void FilterSelection(const RowBatch& batch,
                       std::vector<uint32_t>* rows) const override;
  int MaxSlot() const override { return child_->MaxSlot(); }

 private:
  BoundExprPtr child_;
};

class BoundInList : public BoundExpr {
 public:
  BoundInList(BoundExprPtr needle, std::vector<Value> values)
      : needle_(std::move(needle)) {
    for (Value& v : values) {
      v.InternInPlace();
      set_.insert(std::move(v));
    }
  }

  Value Evaluate(const Tuple& row) const override {
    return Value(static_cast<int64_t>(EvaluateBool(row)));
  }
  bool EvaluateBool(const Tuple& row) const override {
    Value v = needle_->Evaluate(row);
    if (v.is_null()) return false;
    return set_.count(v) > 0;
  }
  void FilterSelection(const RowBatch& batch,
                       std::vector<uint32_t>* rows) const override;
  int MaxSlot() const override { return needle_->MaxSlot(); }

 private:
  BoundExprPtr needle_;
  std::unordered_set<Value, ValueHash> set_;
};

}  // namespace dkb::exec

#endif  // DKB_EXEC_EXPR_H_
