#include "exec/executor.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "common/str_util.h"
#include "exec/binder.h"
#include "exec/planner.h"

namespace dkb::exec {

std::string QueryResult::ToString() const {
  if (schema.num_columns() == 0) {
    return "(" + std::to_string(rows_affected) + " rows affected)";
  }
  std::vector<size_t> widths(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    widths[c] = schema.column(c).name.size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const Tuple& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      cells.push_back(row[c].ToString());
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  std::string out;
  auto pad = [](const std::string& s, size_t w) {
    std::string p = s;
    p.resize(w, ' ');
    return p;
  };
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    out += (c ? " | " : "") + pad(schema.column(c).name, widths[c]);
  }
  out += "\n";
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    out += (c ? "-+-" : "") + std::string(widths[c], '-');
  }
  out += "\n";
  for (const auto& cells : rendered) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += (c ? " | " : "") + pad(cells[c], widths[c]);
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

std::string RenderPlan(const PlanNode& root, bool with_stats) {
  std::string out;
  std::function<void(const PlanNode&, int)> walk = [&](const PlanNode& node,
                                                       int depth) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += node.Name();
    if (with_stats && node.profile() != nullptr) {
      const PlanNode::Profile& p = *node.profile();
      out += "  (rows=" + std::to_string(p.rows_out) +
             ", time=" + std::to_string(p.open_us + p.next_us) + "us";
      if (p.batches > 0) {
        char ratio[32];
        std::snprintf(ratio, sizeof(ratio), "%.1f",
                      static_cast<double>(p.rows_out) /
                          static_cast<double>(p.batches));
        out += ", batches=" + std::to_string(p.batches) + ", rows/batch=" +
               ratio;
      }
      if (p.morsels > 0) out += ", morsels=" + std::to_string(p.morsels);
      out += ")";
    }
    out += "\n";
    for (const PlanNode* child : node.Children()) walk(*child, depth + 1);
  };
  walk(root, 0);
  return out;
}

Result<QueryResult> Executor::Execute(const sql::Statement& stmt,
                                      const std::vector<Value>* params) {
  StatAdd(stats_->statements);
  const size_t bound = (params == nullptr) ? 0 : params->size();
  if (stmt.param_count > bound) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(stmt.param_count) +
        " parameter(s) but only " + std::to_string(bound) + " bound");
  }
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const sql::CreateTableStmt&>(stmt));
    case sql::StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const sql::DropTableStmt&>(stmt));
    case sql::StatementKind::kCreateIndex:
      return ExecuteCreateIndex(static_cast<const sql::CreateIndexStmt&>(stmt));
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(stmt), params);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(stmt), params);
    case sql::StatementKind::kSelect:
      return ExecuteSelect(
          *static_cast<const sql::SelectStatement&>(stmt).select, params);
    case sql::StatementKind::kExplain:
      return ExecuteExplain(static_cast<const sql::ExplainStmt&>(stmt));
  }
  return Status::Internal("unknown statement kind");
}

namespace {

/// System views answer SELECTs only; everything that would mutate or
/// restructure one is rejected up front with a targeted message (GetTable
/// would otherwise report them as nonexistent).
Status RejectSystemTable(const std::string& name, const char* op) {
  if (IsSystemTableName(name)) {
    return Status::InvalidArgument(std::string(op) + " on system view " +
                                   name + ": sys.* relations are read-only");
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> Executor::ExecuteExplain(const sql::ExplainStmt& stmt) {
  DKB_ASSIGN_OR_RETURN(PlanNodePtr plan,
                       PlanSelect(*stmt.select, *catalog_, stats_));
  if (stmt.analyze) {
    // EXPLAIN ANALYZE: run the query for real (discarding its rows) with
    // per-operator profiling on, then render the annotated plan.
    plan->EnableProfiling();
    DKB_RETURN_IF_ERROR(plan->Open());
    RowBatch batch;
    while (true) {
      DKB_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
      if (!more) break;
      StatAdd(stats_->batches);
    }
    plan->Close();
  }
  QueryResult result;
  result.schema = Schema({Column{"plan", DataType::kVarchar}});
  std::string rendered = RenderPlan(*plan, /*with_stats=*/stmt.analyze);
  for (const std::string& line : StrSplit(rendered, '\n')) {
    if (!line.empty()) result.rows.push_back(Tuple{Value(line)});
  }
  return result;
}

Result<QueryResult> Executor::ExecuteCreateTable(
    const sql::CreateTableStmt& stmt) {
  if (stmt.if_not_exists && catalog_->HasTable(stmt.table)) {
    return QueryResult{};
  }
  auto created = catalog_->CreateTable(stmt.table, stmt.schema);
  if (!created.ok()) return created.status();
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteDropTable(const sql::DropTableStmt& stmt) {
  DKB_RETURN_IF_ERROR(RejectSystemTable(stmt.table, "DROP TABLE"));
  if (stmt.if_exists && !catalog_->HasTable(stmt.table)) {
    return QueryResult{};
  }
  DKB_RETURN_IF_ERROR(catalog_->DropTable(stmt.table));
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteCreateIndex(
    const sql::CreateIndexStmt& stmt) {
  DKB_RETURN_IF_ERROR(RejectSystemTable(stmt.table, "CREATE INDEX"));
  DKB_RETURN_IF_ERROR(
      catalog_->CreateIndex(stmt.table, stmt.index, stmt.columns,
                            stmt.ordered));
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteInsert(const sql::InsertStmt& stmt,
                                            const std::vector<Value>* params) {
  DKB_RETURN_IF_ERROR(RejectSystemTable(stmt.table, "INSERT"));
  DKB_ASSIGN_OR_RETURN(ScanSource * table, catalog_->GetSource(stmt.table));
  QueryResult result;
  if (stmt.select != nullptr) {
    // Materialize the SELECT fully before inserting so that
    // `INSERT INTO t SELECT ... FROM t ...` cannot chase its own inserts.
    DKB_ASSIGN_OR_RETURN(PlanNodePtr plan,
                         PlanSelect(*stmt.select, *catalog_, stats_, params));
    if (plan->output_schema().num_columns() !=
        table->schema().num_columns()) {
      return Status::InvalidArgument(
          "INSERT SELECT arity mismatch for table " + stmt.table);
    }
    std::vector<RowBatch> buffered;
    int64_t buffered_rows = 0;
    DKB_RETURN_IF_ERROR(plan->Open());
    while (true) {
      RowBatch batch;
      DKB_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
      if (!more) break;
      StatAdd(stats_->batches);
      buffered_rows += static_cast<int64_t>(batch.size());
      buffered.push_back(std::move(batch));
    }
    plan->Close();
    for (const RowBatch& batch : buffered) {
      DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
    }
    result.rows_affected = buffered_rows;
    return result;
  }
  if (!stmt.param_cells.empty()) {
    // Substitute bound values into a copy of the VALUES matrix.
    std::vector<std::vector<Value>> rows = stmt.rows;
    for (const sql::InsertStmt::ParamCell& cell : stmt.param_cells) {
      rows[cell.row][cell.col] = (*params)[cell.param];
    }
    result.rows_affected = static_cast<int64_t>(rows.size());
    for (std::vector<Value>& row : rows) {
      DKB_ASSIGN_OR_RETURN(RowId rid, table->Insert(std::move(row)));
      (void)rid;
    }
    return result;
  }
  for (const std::vector<Value>& row : stmt.rows) {
    DKB_ASSIGN_OR_RETURN(RowId rid, table->Insert(row));
    (void)rid;
  }
  result.rows_affected = static_cast<int64_t>(stmt.rows.size());
  return result;
}

Result<QueryResult> Executor::ExecuteDelete(const sql::DeleteStmt& stmt,
                                            const std::vector<Value>* params) {
  DKB_RETURN_IF_ERROR(RejectSystemTable(stmt.table, "DELETE"));
  DKB_ASSIGN_OR_RETURN(ScanSource * table, catalog_->GetSource(stmt.table));
  QueryResult result;
  if (stmt.where == nullptr) {
    result.rows_affected = static_cast<int64_t>(table->num_tuples());
    table->Clear();
    return result;
  }
  Scope scope;
  DKB_RETURN_IF_ERROR(scope.AddTable(stmt.table, table));
  DKB_ASSIGN_OR_RETURN(
      BoundExprPtr predicate,
      BindExpr(*stmt.where, scope, SlotMode::kGlobal, 0, params));
  // RowIds are shard-local, so collect and delete within each shard.
  int64_t deleted = 0;
  for (size_t sh = 0; sh < table->shard_count(); ++sh) {
    Table& shard = table->shard(sh);
    std::vector<RowId> victims;
    shard.Scan([&](RowId rid, const Tuple& t) {
      if (predicate->EvaluateBool(t)) victims.push_back(rid);
    });
    for (RowId rid : victims) shard.Delete(rid);
    deleted += static_cast<int64_t>(victims.size());
  }
  result.rows_affected = deleted;
  return result;
}

Result<QueryResult> Executor::ExecuteSelect(const sql::SelectStmt& stmt,
                                            const std::vector<Value>* params) {
  DKB_ASSIGN_OR_RETURN(PlanNodePtr plan,
                       PlanSelect(stmt, *catalog_, stats_, params));
  QueryResult result;
  result.schema = plan->output_schema();
  DKB_RETURN_IF_ERROR(plan->Open());
  RowBatch batch;
  while (true) {
    DKB_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
    if (!more) break;
    StatAdd(stats_->batches);
    const size_t n = batch.size();
    result.rows.reserve(result.rows.size() + n);
    for (size_t i = 0; i < n; ++i) {
      result.rows.push_back(batch.MaterializeTuple(i));
    }
  }
  plan->Close();
  return result;
}

}  // namespace dkb::exec
