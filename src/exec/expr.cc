#include "exec/expr.h"

namespace dkb::exec {

namespace {

/// Non-virtual comparison kernel shared by the scalar and vector paths.
inline bool CompareValues(sql::CompareOp op, const Value& l, const Value& r) {
  switch (op) {
    case sql::CompareOp::kEq:
      return l == r;
    case sql::CompareOp::kNe:
      return l != r;
    case sql::CompareOp::kLt:
      return l < r;
    case sql::CompareOp::kLe:
      return l <= r;
    case sql::CompareOp::kGt:
      return l > r;
    case sql::CompareOp::kGe:
      return l >= r;
  }
  return false;
}

}  // namespace

void BoundExpr::FilterSelection(const RowBatch& batch,
                                std::vector<uint32_t>* rows) const {
  // Fallback for node types without a column kernel: one scratch tuple per
  // row. Every shipped node overrides this; it exists so future expression
  // types degrade gracefully instead of breaking the batch contract.
  Tuple scratch;
  size_t out = 0;
  for (uint32_t i : *rows) {
    batch.CopyRowTo(i, &scratch);
    if (EvaluateBool(scratch)) (*rows)[out++] = i;
  }
  rows->resize(out);
}

void BoundExpr::EvaluateColumn(const RowBatch& batch,
                               const std::vector<uint32_t>& rows,
                               std::vector<Value>* out) const {
  out->clear();
  out->reserve(rows.size());
  Tuple scratch;
  for (uint32_t i : rows) {
    batch.CopyRowTo(i, &scratch);
    out->push_back(Evaluate(scratch));
  }
}

bool BoundComparison::EvaluateBool(const Tuple& row) const {
  Value l = lhs_->Evaluate(row);
  Value r = rhs_->Evaluate(row);
  if (l.is_null() || r.is_null()) return false;
  return CompareValues(op_, l, r);
}

void BoundComparison::FilterSelection(const RowBatch& batch,
                                      std::vector<uint32_t>* rows) const {
  std::vector<Value> l, r;
  lhs_->EvaluateColumn(batch, *rows, &l);
  rhs_->EvaluateColumn(batch, *rows, &r);
  size_t out = 0;
  for (size_t k = 0; k < rows->size(); ++k) {
    if (!l[k].is_null() && !r[k].is_null() && CompareValues(op_, l[k], r[k])) {
      (*rows)[out++] = (*rows)[k];
    }
  }
  rows->resize(out);
}

void BoundLogical::FilterSelection(const RowBatch& batch,
                                   std::vector<uint32_t>* rows) const {
  if (op_ == sql::LogicalOp::kAnd) {
    // Short-circuit vectorized: the rhs only sees lhs survivors.
    lhs_->FilterSelection(batch, rows);
    rhs_->FilterSelection(batch, rows);
    return;
  }
  // OR: filter two copies and merge (both remain ascending subsequences of
  // the input selection, so a two-pointer union preserves order).
  std::vector<uint32_t> a = *rows;
  lhs_->FilterSelection(batch, &a);
  rhs_->FilterSelection(batch, rows);
  std::vector<uint32_t> merged;
  merged.reserve(a.size() + rows->size());
  std::set_union(a.begin(), a.end(), rows->begin(), rows->end(),
                 std::back_inserter(merged));
  *rows = std::move(merged);
}

void BoundNot::FilterSelection(const RowBatch& batch,
                               std::vector<uint32_t>* rows) const {
  std::vector<uint32_t> pass = *rows;
  child_->FilterSelection(batch, &pass);
  // Keep the complement: rows NOT in the child's survivor set.
  std::vector<uint32_t> keep;
  keep.reserve(rows->size() - pass.size());
  std::set_difference(rows->begin(), rows->end(), pass.begin(), pass.end(),
                      std::back_inserter(keep));
  *rows = std::move(keep);
}

void BoundInList::FilterSelection(const RowBatch& batch,
                                  std::vector<uint32_t>* rows) const {
  std::vector<Value> needle;
  needle_->EvaluateColumn(batch, *rows, &needle);
  size_t out = 0;
  for (size_t k = 0; k < rows->size(); ++k) {
    if (!needle[k].is_null() && set_.count(needle[k]) > 0) {
      (*rows)[out++] = (*rows)[k];
    }
  }
  rows->resize(out);
}

}  // namespace dkb::exec
