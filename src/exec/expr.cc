#include "exec/expr.h"

namespace dkb::exec {

bool BoundComparison::EvaluateBool(const Tuple& row) const {
  Value l = lhs_->Evaluate(row);
  Value r = rhs_->Evaluate(row);
  if (l.is_null() || r.is_null()) return false;
  switch (op_) {
    case sql::CompareOp::kEq:
      return l == r;
    case sql::CompareOp::kNe:
      return l != r;
    case sql::CompareOp::kLt:
      return l < r;
    case sql::CompareOp::kLe:
      return l <= r;
    case sql::CompareOp::kGt:
      return l > r;
    case sql::CompareOp::kGe:
      return l >= r;
  }
  return false;
}

}  // namespace dkb::exec
