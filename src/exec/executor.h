#ifndef DKB_EXEC_EXECUTOR_H_
#define DKB_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "sql/ast.h"

namespace dkb::exec {

/// Materialized result of one statement.
struct QueryResult {
  Schema schema;            // empty for DDL/DML
  std::vector<Tuple> rows;  // SELECT output
  int64_t rows_affected = 0;

  /// Aligned ASCII table rendering.
  std::string ToString() const;
};

/// Indented tree rendering of a physical plan (EXPLAIN). With `with_stats`,
/// operators that carry a Profile (EnableProfiling + execution) are
/// annotated with rows, time, and morsel counts (EXPLAIN ANALYZE).
std::string RenderPlan(const PlanNode& root, bool with_stats = false);

/// Executes parsed statements against a catalog.
class Executor {
 public:
  Executor(Catalog* catalog, ExecStats* stats)
      : catalog_(catalog), stats_(stats) {}

  /// `params` supplies values for the statement's `?` placeholders; required
  /// (and checked) when stmt.param_count > 0.
  Result<QueryResult> Execute(const sql::Statement& stmt,
                              const std::vector<Value>* params = nullptr);

 private:
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  Result<QueryResult> ExecuteDropTable(const sql::DropTableStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const sql::CreateIndexStmt& stmt);
  Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                    const std::vector<Value>* params);
  Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt,
                                    const std::vector<Value>* params);
  Result<QueryResult> ExecuteSelect(const sql::SelectStmt& stmt,
                                    const std::vector<Value>* params);
  Result<QueryResult> ExecuteExplain(const sql::ExplainStmt& stmt);

  Catalog* catalog_;
  ExecStats* stats_;
};

}  // namespace dkb::exec

#endif  // DKB_EXEC_EXECUTOR_H_
