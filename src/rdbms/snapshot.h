#ifndef DKB_RDBMS_SNAPSHOT_H_
#define DKB_RDBMS_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "rdbms/database.h"

namespace dkb {

/// Text snapshot of a whole database: every table's schema, indexes, and
/// rows. The format is line-oriented and versioned:
///
///   DKBSNAP 1
///   TABLE <name>
///   SCHEMA <col>:<INTEGER|VARCHAR>[,...]
///   INDEX <name> <hash|ordered> <col>[,<col>...]
///   ROW <field>\t<field>...        field = N | I<digits> | S<escaped>
///   ENDTABLE
///   ...
///   END
///
/// Strings escape backslash, tab and newline (\\, \t, \n).
Status SaveDatabase(const Database& db, const std::string& path);

/// Loads a snapshot into an *empty* database (fails on a non-empty one so
/// a stale handle cannot silently merge two states).
Status LoadDatabase(Database* db, const std::string& path);

/// In-memory round-trip used by tests and the save/load implementation.
std::string SerializeDatabase(const Database& db);
Status DeserializeDatabase(Database* db, const std::string& text);

/// Deep-copies `src` into the *empty* database `dst` (schemas, indexes,
/// rows). This is the copy-on-write step behind Testbed sessions: each
/// session clones the shared DBMS state and evaluates against its copy.
Status CloneDatabase(const Database& src, Database* dst);

}  // namespace dkb

#endif  // DKB_RDBMS_SNAPSHOT_H_
