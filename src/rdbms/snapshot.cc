#include "rdbms/snapshot.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace dkb {

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::InvalidArgument("dangling escape in snapshot string");
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        return Status::InvalidArgument("unknown escape in snapshot string");
    }
  }
  return out;
}

void AppendField(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += 'N';
  } else if (v.is_int()) {
    *out += 'I';
    *out += std::to_string(v.as_int());
  } else {
    *out += 'S';
    EscapeInto(v.as_string(), out);
  }
}

Result<Value> ParseField(const std::string& field) {
  if (field.empty()) {
    return Status::InvalidArgument("empty snapshot field");
  }
  switch (field[0]) {
    case 'N':
      return Value::Null();
    case 'I':
      return Value(static_cast<int64_t>(std::stoll(field.substr(1))));
    case 'S': {
      DKB_ASSIGN_OR_RETURN(std::string s, Unescape(field.substr(1)));
      return Value(std::move(s));
    }
    default:
      return Status::InvalidArgument("bad snapshot field tag '" +
                                     std::string(1, field[0]) + "'");
  }
}

}  // namespace

std::string SerializeDatabase(const Database& db) {
  std::string out = "DKBSNAP 1\n";
  std::vector<std::string> names = db.catalog().TableNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const ScanSource* table = *db.catalog().GetSource(name);
    out += "TABLE " + name + "\n";
    out += "SCHEMA ";
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      if (c > 0) out += ",";
      out += table->schema().column(c).name;
      out += ":";
      out += DataTypeName(table->schema().column(c).type);
    }
    out += "\n";
    if (table->shard_count() > 1) {
      // Physical layout marker; absent for unsharded tables so pre-sharding
      // snapshots and goldens parse unchanged.
      out += "SHARDS " + std::to_string(table->shard_count()) + " " +
             std::to_string(table->partition_column()) + "\n";
    }
    // Index definitions are uniform across shards; shard 0 is the template.
    for (const auto& index : table->shard(0).indexes()) {
      out += "INDEX " + index->name() + " ";
      out += index->kind() == IndexKind::kOrdered ? "ordered" : "hash";
      for (size_t i = 0; i < index->key_columns().size(); ++i) {
        out += (i == 0) ? " " : ",";
        out += table->schema().column(index->key_columns()[i]).name;
      }
      out += "\n";
    }
    table->Scan([&out](RowId, const Tuple& row) {
      out += "ROW ";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += '\t';
        AppendField(row[i], &out);
      }
      out += "\n";
    });
    out += "ENDTABLE\n";
  }
  out += "END\n";
  return out;
}

Status DeserializeDatabase(Database* db, const std::string& text) {
  if (db->catalog().num_tables() != 0) {
    return Status::InvalidArgument(
        "snapshot must be loaded into an empty database");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "DKBSNAP 1") {
    return Status::InvalidArgument("bad snapshot header");
  }
  ScanSource* table = nullptr;
  RowBatch pending;
  auto flush = [&]() -> Status {
    if (table == nullptr || pending.empty()) return Status::OK();
    Status s = table->AppendBatch(pending);
    pending.Reset(table->schema().num_columns());
    return s;
  };
  // One-line pushback so the TABLE branch can peek for an optional SHARDS
  // line between SCHEMA and the INDEX/ROW stream.
  std::string carry;
  bool has_carry = false;
  auto next_line = [&](std::string* l) -> bool {
    if (has_carry) {
      *l = std::move(carry);
      has_carry = false;
      return true;
    }
    return static_cast<bool>(std::getline(in, *l));
  };
  while (next_line(&line)) {
    if (line == "END") {
      DKB_RETURN_IF_ERROR(flush());
      return Status::OK();
    }
    if (line == "ENDTABLE") {
      DKB_RETURN_IF_ERROR(flush());
      table = nullptr;
      continue;
    }
    if (StartsWith(line, "TABLE ")) {
      // Schema line must follow.
      std::string name = line.substr(6);
      std::string schema_line;
      if (!std::getline(in, schema_line) ||
          !StartsWith(schema_line, "SCHEMA ")) {
        return Status::InvalidArgument("TABLE without SCHEMA in snapshot");
      }
      std::vector<Column> columns;
      for (const std::string& col : StrSplit(schema_line.substr(7), ',')) {
        std::vector<std::string> parts = StrSplit(col, ':');
        if (parts.size() != 2) {
          return Status::InvalidArgument("bad SCHEMA entry '" + col + "'");
        }
        DataType type = parts[1] == "INTEGER" ? DataType::kInteger
                                              : DataType::kVarchar;
        columns.push_back(Column{parts[0], type});
      }
      // Restore the recorded physical layout exactly: an explicit SHARDS
      // line wins; otherwise the table loads unsharded, as it was saved.
      size_t shard_count = 1;
      std::string peek;
      if (std::getline(in, peek)) {
        if (StartsWith(peek, "SHARDS ")) {
          std::vector<std::string> parts = StrSplit(peek.substr(7), ' ');
          if (parts.empty() || parts.size() > 2) {
            return Status::InvalidArgument("bad SHARDS line '" + peek + "'");
          }
          shard_count = static_cast<size_t>(std::stoul(parts[0]));
        } else {
          carry = std::move(peek);
          has_carry = true;
        }
      }
      DKB_ASSIGN_OR_RETURN(
          table, db->catalog().CreateTable(name, Schema(columns),
                                           shard_count));
      pending.Reset(table->schema().num_columns());
      continue;
    }
    if (StartsWith(line, "INDEX ")) {
      if (table == nullptr) {
        return Status::InvalidArgument("INDEX outside TABLE in snapshot");
      }
      std::vector<std::string> parts = StrSplit(line.substr(6), ' ');
      if (parts.size() != 3) {
        return Status::InvalidArgument("bad INDEX line '" + line + "'");
      }
      DKB_RETURN_IF_ERROR(db->catalog().CreateIndex(
          table->name(), parts[0], StrSplit(parts[2], ','),
          parts[1] == "ordered"));
      continue;
    }
    if (StartsWith(line, "ROW ")) {
      if (table == nullptr) {
        return Status::InvalidArgument("ROW outside TABLE in snapshot");
      }
      Tuple row;
      for (const std::string& field : StrSplit(line.substr(4), '\t')) {
        DKB_ASSIGN_OR_RETURN(Value v, ParseField(field));
        row.push_back(std::move(v));
      }
      if (row.size() != table->schema().num_columns()) {
        return Status::InvalidArgument("ROW arity mismatch in snapshot");
      }
      pending.AppendRow(std::move(row));
      if (pending.full()) DKB_RETURN_IF_ERROR(flush());
      continue;
    }
    if (line.empty()) continue;
    return Status::InvalidArgument("unrecognized snapshot line '" + line +
                                   "'");
  }
  return Status::InvalidArgument("snapshot missing END marker");
}

Status SaveDatabase(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << SerializeDatabase(db);
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Status LoadDatabase(Database* db, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeDatabase(db, buffer.str());
}

Status CloneDatabase(const Database& src, Database* dst) {
  // The text round-trip reuses the exhaustively tested snapshot format;
  // cloning is off the query path (it happens once per epoch change).
  return DeserializeDatabase(dst, SerializeDatabase(src));
}

}  // namespace dkb
