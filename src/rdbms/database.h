#ifndef DKB_RDBMS_DATABASE_H_
#define DKB_RDBMS_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/executor.h"

namespace dkb {

using exec::ExecStats;
using exec::QueryResult;

/// The relational DBMS layer of the testbed.
///
/// Stands in for the commercial SQL DBMS of the paper: it stores both the
/// extensional database (fact relations) and the intensional database
/// (rule-storage relations), and executes the SQL programs produced by the
/// Knowledge Manager. The string-SQL `Execute` entry point models the
/// embedded-SQL interface whose per-statement overhead the paper measures.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes a single SQL statement.
  ///
  /// Parsed statements are cached by text (the analogue of the embedded-SQL
  /// preprocessor in the paper's DBMS: the run time library re-executes the
  /// same statement text every LFP iteration). Planning/binding always runs
  /// fresh against the current catalog, so DDL needs no invalidation.
  Result<QueryResult> Execute(const std::string& sql);

  /// Disables/enables the prepared-statement cache (ablations).
  void set_statement_cache_enabled(bool enabled) {
    statement_cache_enabled_ = enabled;
    if (!enabled) statement_cache_.clear();
  }
  bool statement_cache_enabled() const { return statement_cache_enabled_; }

  /// Executes a ';'-separated script, stopping at the first error.
  Status ExecuteAll(const std::string& script);

  /// Convenience wrappers for the embedded-SQL idioms the run time library
  /// uses constantly.
  Result<int64_t> QueryCount(const std::string& sql);
  Result<std::vector<Tuple>> QueryRows(const std::string& sql);
  /// Single-value convenience: first column of first row; error if empty.
  Result<Value> QueryScalar(const std::string& sql);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ExecStats& stats() { return stats_; }

 private:
  /// Returns the parsed form of `sql`, from cache when possible.
  Result<const sql::Statement*> Prepare(const std::string& sql);

  Catalog catalog_;
  ExecStats stats_;
  bool statement_cache_enabled_ = true;
  std::unordered_map<std::string, sql::StatementPtr> statement_cache_;
  sql::StatementPtr uncached_;  // last statement parsed with the cache off
};

}  // namespace dkb

#endif  // DKB_RDBMS_DATABASE_H_
