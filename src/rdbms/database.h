#ifndef DKB_RDBMS_DATABASE_H_
#define DKB_RDBMS_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/sync.h"
#include "exec/executor.h"

namespace dkb {

using exec::ExecStats;
using exec::QueryResult;

class Database;

/// Bindable, repeatedly executable statement handle returned by
/// Database::Prepare — the embedded-SQL preprocessor of the paper's DBMS,
/// done right: parse once, then Bind/Execute each LFP iteration instead of
/// sprintf'ing constants into statement text.
///
/// Parameter indexes are 0-based in textual order of the `?` placeholders.
/// Every parameter must be bound before Execute; bindings persist across
/// executions until rebound or ClearBindings.
///
/// The handle shares ownership of the parsed statement, so it stays valid
/// even if the Database evicts its statement cache. A handle is tied to the
/// Database that prepared it and must not outlive it.
class PreparedStatement {
 public:
  PreparedStatement() = default;  // invalid; assign from Database::Prepare

  bool valid() const { return stmt_ != nullptr; }
  size_t param_count() const;

  /// Binds parameter `index` (0-based) to `value`.
  Status Bind(size_t index, Value value);

  /// Forgets all bindings (parameters must be re-bound before Execute).
  void ClearBindings();

  /// Plans and runs the statement with the current bindings. Planning is
  /// fresh per call, so bound values drive access-path selection like
  /// literals and DDL needs no invalidation.
  Result<QueryResult> Execute();

 private:
  friend class Database;
  PreparedStatement(Database* db,
                    std::shared_ptr<const sql::Statement> stmt);

  Database* db_ = nullptr;
  std::shared_ptr<const sql::Statement> stmt_;
  std::vector<Value> params_;
  std::vector<bool> bound_;
};

/// The relational DBMS layer of the testbed.
///
/// Stands in for the commercial SQL DBMS of the paper: it stores both the
/// extensional database (fact relations) and the intensional database
/// (rule-storage relations), and executes the SQL programs produced by the
/// Knowledge Manager. `Prepare` returns an explicit PreparedStatement handle;
/// the string-SQL `Execute` entry point is a thin wrapper over it that models
/// the per-statement overhead the paper measures.
///
/// Thread safety: Prepare/Execute may be called from concurrent readers (the
/// parsed-statement cache is mutex-guarded and hands out shared ownership);
/// statements that write table data must be serialized externally — the
/// session layer's reader-writer protocol does exactly that.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses `sql` (one statement, `?` placeholders allowed) into a bindable
  /// handle. Parsed forms are cached by text, so preparing the same text
  /// repeatedly is cheap.
  Result<PreparedStatement> Prepare(const std::string& sql);

  /// Parses and executes a single parameterless SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Disables/enables the parsed-statement cache (ablations).
  void set_statement_cache_enabled(bool enabled);
  bool statement_cache_enabled() const;

  /// Executes a ';'-separated script, stopping at the first error.
  Status ExecuteAll(const std::string& script);

  /// Convenience wrappers for the embedded-SQL idioms the run time library
  /// uses constantly.
  Result<int64_t> QueryCount(const std::string& sql);
  Result<std::vector<Tuple>> QueryRows(const std::string& sql);
  /// Single-value convenience: first column of first row; error if empty.
  Result<Value> QueryScalar(const std::string& sql);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ExecStats& stats() { return stats_; }

 private:
  friend class PreparedStatement;

  /// Returns the parsed form of `sql`, from cache when possible.
  Result<std::shared_ptr<const sql::Statement>> ParseCached(
      const std::string& sql);

  /// Runs a parsed statement with optional bound parameter values.
  Result<QueryResult> ExecuteParsed(const sql::Statement& stmt,
                                    const std::vector<Value>* params,
                                    const std::string& text);

  /// Parsed-statement cache. The enabled flag and the map change together
  /// (disabling clears the map), so both live under one Guarded lock; the
  /// cached statements themselves are immutable and handed out by
  /// shared_ptr, so they need no lock once returned.
  struct StatementCache {
    bool enabled = true;
    std::unordered_map<std::string, std::shared_ptr<const sql::Statement>>
        parsed;
  };

  Catalog catalog_;
  ExecStats stats_;
  mutable Guarded<StatementCache> cache_;
};

}  // namespace dkb

#endif  // DKB_RDBMS_DATABASE_H_
