#include "rdbms/database.h"

#include "sql/parser.h"

namespace dkb {

Result<const sql::Statement*> Database::Prepare(const std::string& sql) {
  if (!statement_cache_enabled_) {
    DKB_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
    // Keep exactly one uncached statement alive for the caller.
    uncached_ = std::move(stmt);
    return static_cast<const sql::Statement*>(uncached_.get());
  }
  auto it = statement_cache_.find(sql);
  if (it != statement_cache_.end()) {
    ++stats_.statement_cache_hits;
    return static_cast<const sql::Statement*>(it->second.get());
  }
  DKB_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  // Unbounded growth guard: rule programs reuse a modest set of texts, but
  // bulk INSERT VALUES strings are one-shot — evict wholesale when large.
  if (statement_cache_.size() >= 4096) statement_cache_.clear();
  const sql::Statement* raw = stmt.get();
  statement_cache_.emplace(sql, std::move(stmt));
  return raw;
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(const sql::Statement* stmt, Prepare(sql));
  exec::Executor executor(&catalog_, &stats_);
  auto result = executor.Execute(*stmt);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " [while executing: " + sql +
                      "]");
  }
  return result;
}

Status Database::ExecuteAll(const std::string& script) {
  DKB_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                       sql::ParseScript(script));
  exec::Executor executor(&catalog_, &stats_);
  for (const sql::StatementPtr& stmt : stmts) {
    auto result = executor.Execute(*stmt);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<int64_t> Database::QueryCount(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(Value v, QueryScalar(sql));
  if (!v.is_int()) {
    return Status::TypeError("QueryCount expects an integer result");
  }
  return v.as_int();
}

Result<std::vector<Tuple>> Database::QueryRows(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  return std::move(result.rows);
}

Result<Value> Database::QueryScalar(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  if (result.rows.empty() || result.rows[0].empty()) {
    return Status::NotFound("scalar query returned no rows: " + sql);
  }
  return result.rows[0][0];
}

}  // namespace dkb
