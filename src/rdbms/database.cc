#include "rdbms/database.h"

#include <algorithm>

#include "sql/parser.h"

namespace dkb {

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(
    Database* db, std::shared_ptr<const sql::Statement> stmt)
    : db_(db),
      stmt_(std::move(stmt)),
      params_(stmt_->param_count),
      bound_(stmt_->param_count, false) {}

size_t PreparedStatement::param_count() const {
  return stmt_ == nullptr ? 0 : stmt_->param_count;
}

Status PreparedStatement::Bind(size_t index, Value value) {
  if (stmt_ == nullptr) {
    return Status::InvalidArgument("Bind on an invalid PreparedStatement");
  }
  if (index >= params_.size()) {
    return Status::InvalidArgument(
        "parameter index " + std::to_string(index) + " out of range (" +
        std::to_string(params_.size()) + " parameter(s))");
  }
  params_[index] = std::move(value);
  bound_[index] = true;
  return Status::OK();
}

void PreparedStatement::ClearBindings() {
  std::fill(params_.begin(), params_.end(), Value::Null());
  std::fill(bound_.begin(), bound_.end(), false);
}

Result<QueryResult> PreparedStatement::Execute() {
  if (stmt_ == nullptr) {
    return Status::InvalidArgument("Execute on an invalid PreparedStatement");
  }
  for (size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i]) {
      return Status::InvalidArgument("parameter ?" + std::to_string(i + 1) +
                                     " is not bound");
    }
  }
  return db_->ExecuteParsed(*stmt_, params_.empty() ? nullptr : &params_,
                            "<prepared statement>");
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const sql::Statement>> Database::ParseCached(
    const std::string& sql) {
  {
    MutexLock lock(cache_.mu());
    const StatementCache& cache = cache_.Ref();
    if (cache.enabled) {
      auto it = cache.parsed.find(sql);
      if (it != cache.parsed.end()) {
        exec::StatAdd(stats_.statement_cache_hits);
        return it->second;
      }
    }
  }
  DKB_ASSIGN_OR_RETURN(sql::StatementPtr parsed, sql::ParseStatement(sql));
  std::shared_ptr<const sql::Statement> stmt(std::move(parsed));
  MutexLock lock(cache_.mu());
  StatementCache& cache = cache_.Ref();
  if (cache.enabled) {
    // Unbounded growth guard: rule programs reuse a modest set of texts, but
    // bulk INSERT VALUES strings are one-shot — evict wholesale when large.
    // Shared ownership keeps outstanding PreparedStatements valid.
    if (cache.parsed.size() >= 4096) cache.parsed.clear();
    cache.parsed.emplace(sql, stmt);
  }
  return stmt;
}

void Database::set_statement_cache_enabled(bool enabled) {
  MutexLock lock(cache_.mu());
  StatementCache& cache = cache_.Ref();
  cache.enabled = enabled;
  if (!enabled) cache.parsed.clear();
}

bool Database::statement_cache_enabled() const {
  MutexLock lock(cache_.mu());
  return cache_.Ref().enabled;
}

Result<QueryResult> Database::ExecuteParsed(const sql::Statement& stmt,
                                            const std::vector<Value>* params,
                                            const std::string& text) {
  exec::Executor executor(&catalog_, &stats_);
  auto result = executor.Execute(stmt, params);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " [while executing: " + text +
                      "]");
  }
  return result;
}

Result<PreparedStatement> Database::Prepare(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(std::shared_ptr<const sql::Statement> stmt,
                       ParseCached(sql));
  return PreparedStatement(this, std::move(stmt));
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(std::shared_ptr<const sql::Statement> stmt,
                       ParseCached(sql));
  return ExecuteParsed(*stmt, nullptr, sql);
}

Status Database::ExecuteAll(const std::string& script) {
  DKB_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                       sql::ParseScript(script));
  exec::Executor executor(&catalog_, &stats_);
  for (const sql::StatementPtr& stmt : stmts) {
    auto result = executor.Execute(*stmt);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<int64_t> Database::QueryCount(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(Value v, QueryScalar(sql));
  if (!v.is_int()) {
    return Status::TypeError("QueryCount expects an integer result");
  }
  return v.as_int();
}

Result<std::vector<Tuple>> Database::QueryRows(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  return std::move(result.rows);
}

Result<Value> Database::QueryScalar(const std::string& sql) {
  DKB_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  if (result.rows.empty() || result.rows[0].empty()) {
    return Status::NotFound("scalar query returned no rows: " + sql);
  }
  return result.rows[0][0];
}

}  // namespace dkb
