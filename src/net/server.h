#ifndef DKB_NET_SERVER_H_
#define DKB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/wire.h"
#include "testbed/testbed.h"

namespace dkb::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read the result from port()
  int backlog = 256;
  uint32_t max_frame_len = kDefaultMaxFrameLen;
  /// Network-layer slow-request threshold: any request whose arrival-to-
  /// response time exceeds this emits one structured line through the
  /// flight recorder's slow-query sink (stderr when none is set). < 0
  /// disables the log.
  int64_t slow_request_us = -1;
};

/// The dkb_server engine: a TCP accept loop (poll with a stop-flag
/// timeout) handing each connection to its own thread, which speaks the
/// length-prefixed protocol of net/wire.h and multiplexes onto one shared
/// Testbed.
///
/// Concurrency model per connection:
///   - Hello opens a COW Session (testbed/session.h); queries run against
///     that private snapshot, concurrently with every other connection.
///   - Mutating requests (Consult, AddRule, DefineBase, AddFacts, Sql,
///     UpdateStored, ClearWorkspace) go through the Testbed's writer-locked
///     entry points and bump the epoch, so other connections' snapshots
///     refresh on their next query.
///
/// Pipelining: a connection's frames are processed strictly in arrival
/// order and each produces exactly one response frame carrying the
/// request's id, so clients may keep many requests in flight and match
/// responses by request_id.
///
/// While started, the server installs its connection registry as the
/// testbed's sys.connections source and its request-lifecycle statistics
/// as the sys.server source.
///
/// Request lifecycle instrumentation (per request): queue (frame fully
/// received -> handling starts, i.e. pipeline backlog), decode (payload
/// parse), execute (engine work), encode (response rendering). Each phase
/// feeds a pow2 histogram here and in the global metrics registry
/// (dkb.server.*); sampled query requests additionally get a net.* span
/// tree wrapped around the engine's own spans and shipped back in the
/// response (wire.h, trace section).
class Server {
 public:
  Server() = default;
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. `testbed` must outlive
  /// Stop().
  Status Start(testbed::Testbed* testbed,
               const ServerOptions& options = ServerOptions{});

  /// Stops accepting, shuts down every live connection, and waits for all
  /// connection threads to drain. Idempotent.
  void Stop();

  /// The bound port (resolves kernel-assigned port 0).
  uint16_t port() const { return port_; }

  /// Live connections, in the sys.connections row shape.
  std::vector<testbed::Testbed::ConnectionInfo> Connections() const
      DKB_EXCLUDES(conns_mu_);

  /// The sys.server rows: uptime, connection lifecycle counts, framing
  /// rejections, per-phase latency histograms, and per-MsgType request
  /// counts/latencies (only types seen so far), in the sys.metrics row
  /// shape.
  std::vector<metrics::MetricSample> StatsSnapshot() const
      DKB_EXCLUDES(conns_mu_);

 private:
  /// Registry entry for one live connection. Counters are atomics so the
  /// sys.connections provider reads them without stalling the connection.
  struct Connection {
    int fd = -1;
    int64_t id = 0;
    std::string peer;
    std::chrono::steady_clock::time_point accepted_at;
    std::atomic<int64_t> session_id{0};
    std::atomic<int64_t> frames_received{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> errors{0};
  };

  /// Request-lifecycle statistics, updated with relaxed atomics from every
  /// connection thread and snapshotted by sys.server / kStats readers.
  /// Request types index the per-type arrays by their wire value
  /// (0x01..0x0F).
  struct Stats {
    static constexpr size_t kTypeSlots = 16;
    std::chrono::steady_clock::time_point started_at;
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> errored{0};  // closed after >= 1 error
    std::atomic<int64_t> frame_cap_rejections{0};
    std::atomic<int64_t> malformed_frames{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
    metrics::Counter requests[kTypeSlots];
    metrics::Histogram request_us[kTypeSlots];
    metrics::Histogram queue_us;
    metrics::Histogram decode_us;
    metrics::Histogram execute_us;
    metrics::Histogram encode_us;
  };

  /// Per-connection protocol state, owned by the connection's thread.
  struct ConnState;

  /// Timing context for one request: when its frame was fully received,
  /// how long it queued behind earlier pipelined requests, and the phase
  /// breakdown HandleRequest fills in on the paths that measure it
  /// (negative = not measured on this path).
  struct RequestContext {
    std::chrono::steady_clock::time_point arrival;
    int64_t queue_us = 0;
    int64_t decode_us = -1;
    int64_t execute_us = -1;
    int64_t encode_us = -1;

    /// Microseconds from frame arrival to now: the offset of "now" on the
    /// request's span timeline.
    int64_t SinceArrivalUs() const;
  };

  /// One goal of a kQuery/kExecute batch, normalized so both paths share
  /// RunQueries.
  struct QuerySpec {
    std::string goal;
    WireQueryOptions opts;
  };

  void AcceptLoop();
  void Serve(std::shared_ptr<Connection> conn);
  /// Dispatches one request frame, returning the encoded response frame.
  /// Sets *close_conn for CloseSession and fatal handshake errors.
  std::string HandleRequest(Connection* conn, ConnState* state,
                            const Frame& frame, RequestContext* rctx,
                            bool* close_conn);
  /// Shared execute+encode tail of kQuery/kExecute: runs each goal against
  /// the connection's session, wraps sampled queries' engine span trees in
  /// the request's net.* spans, encodes the kResultSets response (trace
  /// section included), and annotates the flight-recorder entries with the
  /// request/response frame sizes.
  std::string RunQueries(
      Connection* conn, ConnState* state, uint32_t request_id,
      std::vector<QuerySpec>& specs, RequestContext* rctx,
      size_t request_payload_bytes,
      const std::function<std::string(const Status&)>& error);
  /// The kStatsOk response for a sessionless (or in-session) Stats request.
  std::string BuildStatsReply(uint32_t request_id, uint8_t sections) const;
  bool SendAll(Connection* conn, std::string_view data);

  testbed::Testbed* testbed_ = nullptr;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  mutable Mutex conns_mu_;
  std::map<int64_t, std::shared_ptr<Connection>> conns_
      DKB_GUARDED_BY(conns_mu_);
  std::atomic<int64_t> next_conn_id_{1};
  Stats stats_;

  /// Connection threads are detached; Stop() waits for this count to drain
  /// after shutting their sockets down.
  Mutex active_mu_;
  CondVar active_cv_;
  int active_threads_ DKB_GUARDED_BY(active_mu_) = 0;
};

}  // namespace dkb::net

#endif  // DKB_NET_SERVER_H_
