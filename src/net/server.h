#ifndef DKB_NET_SERVER_H_
#define DKB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/wire.h"
#include "testbed/testbed.h"

namespace dkb::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read the result from port()
  int backlog = 256;
  uint32_t max_frame_len = kDefaultMaxFrameLen;
};

/// The dkb_server engine: a TCP accept loop (poll with a stop-flag
/// timeout) handing each connection to its own thread, which speaks the
/// length-prefixed protocol of net/wire.h and multiplexes onto one shared
/// Testbed.
///
/// Concurrency model per connection:
///   - Hello opens a COW Session (testbed/session.h); queries run against
///     that private snapshot, concurrently with every other connection.
///   - Mutating requests (Consult, AddRule, DefineBase, AddFacts, Sql,
///     UpdateStored, ClearWorkspace) go through the Testbed's writer-locked
///     entry points and bump the epoch, so other connections' snapshots
///     refresh on their next query.
///
/// Pipelining: a connection's frames are processed strictly in arrival
/// order and each produces exactly one response frame carrying the
/// request's id, so clients may keep many requests in flight and match
/// responses by request_id.
///
/// While started, the server installs its connection registry as the
/// testbed's sys.connections source.
class Server {
 public:
  Server() = default;
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. `testbed` must outlive
  /// Stop().
  Status Start(testbed::Testbed* testbed,
               const ServerOptions& options = ServerOptions{});

  /// Stops accepting, shuts down every live connection, and waits for all
  /// connection threads to drain. Idempotent.
  void Stop();

  /// The bound port (resolves kernel-assigned port 0).
  uint16_t port() const { return port_; }

  /// Live connections, in the sys.connections row shape.
  std::vector<testbed::Testbed::ConnectionInfo> Connections() const
      DKB_EXCLUDES(conns_mu_);

 private:
  /// Registry entry for one live connection. Counters are atomics so the
  /// sys.connections provider reads them without stalling the connection.
  struct Connection {
    int fd = -1;
    int64_t id = 0;
    std::string peer;
    std::atomic<int64_t> session_id{0};
    std::atomic<int64_t> frames_received{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
    std::atomic<int64_t> queries{0};
  };

  /// Per-connection protocol state, owned by the connection's thread.
  struct ConnState;

  void AcceptLoop();
  void Serve(std::shared_ptr<Connection> conn);
  /// Dispatches one request frame, returning the encoded response frame.
  /// Sets *close_conn for CloseSession and fatal handshake errors.
  std::string HandleRequest(Connection* conn, ConnState* state,
                            const Frame& frame, bool* close_conn);
  bool SendAll(Connection* conn, std::string_view data);

  testbed::Testbed* testbed_ = nullptr;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  mutable Mutex conns_mu_;
  std::map<int64_t, std::shared_ptr<Connection>> conns_
      DKB_GUARDED_BY(conns_mu_);
  std::atomic<int64_t> next_conn_id_{1};

  /// Connection threads are detached; Stop() waits for this count to drain
  /// after shutting their sockets down.
  Mutex active_mu_;
  CondVar active_cv_;
  int active_threads_ DKB_GUARDED_BY(active_mu_) = 0;
};

}  // namespace dkb::net

#endif  // DKB_NET_SERVER_H_
