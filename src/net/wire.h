#ifndef DKB_NET_WIRE_H_
#define DKB_NET_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/value.h"
#include "storage/codec.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "testbed/options.h"

namespace dkb::net {

/// Protocol version carried by Hello. Bump on any incompatible change to
/// the frame format or a payload encoding.
///
/// v2: query options carry a trace context (trace_id, parent span id,
/// sampled flag), kResultSets payloads end with a span-tree section, and
/// kStats/kStatsOk exist. The frame format itself is unchanged, so a v1
/// peer still parses v2 frames; it is the payload encodings that moved,
/// which is why Hello's version check rejects the mismatch cleanly before
/// any other payload is interpreted.
constexpr uint32_t kProtocolVersion = 2;

/// Frame layout (all integers little-endian):
///
///   u32 len        bytes that FOLLOW the length field (type + request_id
///                  + payload); valid frames satisfy kFrameHeaderLen <= len
///   u8  type       MsgType
///   u32 request_id client-chosen; the response echoes it, which is what
///                  lets pipelined requests match their replies
///   payload        len - kFrameHeaderLen bytes, encoding per type
constexpr size_t kFrameHeaderLen = 5;  // type + request_id

/// Hard ceiling a peer may impose on `len`. The default server/client limit
/// (16 MiB) comfortably fits the paper workloads' largest fact batches.
constexpr uint32_t kDefaultMaxFrameLen = 16u * 1024 * 1024;

/// Message types. Requests have the high bit clear, responses set it; the
/// values are wire-stable (append only, never renumber).
enum class MsgType : uint8_t {
  // Requests (client -> server).
  kHello = 0x01,          // u32 protocol_version
  kConsult = 0x02,        // str program_text
  kAddRule = 0x03,        // str rule_text
  kRetractRule = 0x04,    // str rule_text
  kDefineBase = 0x05,     // str pred, u16 n, n x u8 DataType
  kAddFacts = 0x06,       // str pred, u32 nrows, nrows x tuple
  kPrepare = 0x07,        // query options, str goal
  kExecute = 0x08,        // u32 n, n x u32 statement_id
  kQuery = 0x09,          // query options, u32 n, n x str goal
  kSql = 0x0A,            // str statement
  kUpdateStored = 0x0B,   // (empty)
  kClearWorkspace = 0x0C, // (empty)
  kListRules = 0x0D,      // (empty)
  kCloseSession = 0x0E,   // (empty); server replies kOk then closes
  kStats = 0x0F,          // u8 sections bitmask; sessionless (no Hello
                          // needed), so monitors never pay for a COW session

  // Responses (server -> client).
  kHelloOk = 0x81,     // u32 protocol_version, u64 session_id
  kOk = 0x82,          // (empty)
  kResultSets = 0x83,  // u32 n, n x result set, trace section (see below)
  kPrepared = 0x84,    // u32 statement_id
  kRuleList = 0x85,    // u32 n, n x str
  kUpdated = 0x86,     // i64 rules_stored, i64 total_us
  kStatsOk = 0x87,     // u8 sections echo, requested sections in order
  kError = 0xFF,       // u16 ErrorCode, str message
};

/// True for the type values a client may send (the request half of MsgType).
bool IsRequestType(uint8_t type);

/// Human-readable name of a message type ("Query", "HelloOk", ...);
/// "Unknown" for values outside the enum. Used for sys.server row names
/// and log lines.
const char* MsgTypeName(MsgType type);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  uint32_t request_id = 0;
  std::string payload;
};

/// Renders a complete frame (length prefix included) ready for the socket.
std::string EncodeFrame(MsgType type, uint32_t request_id,
                        std::string_view payload);

/// Incremental frame decoder: feed bytes as they arrive (in any split),
/// pull complete frames out. Framing violations (len below the header size
/// or above `max_frame_len`) are sticky errors — once the length prefix
/// cannot be trusted the stream has no recoverable frame boundary.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_len = kDefaultMaxFrameLen)
      : max_frame_len_(max_frame_len) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  enum class Next { kFrame, kNeedMore, kError };

  /// Which framing violation poisoned the stream (for the server's
  /// frame-cap vs malformed-frame rejection counters).
  enum class ErrorKind { kNone, kBelowHeader, kOverCap };

  /// Decodes the next complete frame into `out`. kNeedMore when the buffer
  /// holds only a partial frame; kError (with `error()` set) on a framing
  /// violation.
  Next Pop(Frame* out);

  const Status& error() const { return error_; }
  ErrorKind error_kind() const { return error_kind_; }

 private:
  uint32_t max_frame_len_;
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  Status error_;
  ErrorKind error_kind_ = ErrorKind::kNone;
};

// ---------------------------------------------------------------------------
// Payload encoding. The byte codec itself lives in the storage layer
// (storage/codec.h) so the WAL and checkpoint formats share it without
// inverting the library DAG; the wire names are aliases.

using WireWriter = ::dkb::codec::Writer;
using WireReader = ::dkb::codec::Reader;

// ---------------------------------------------------------------------------
// Composite payloads shared by client and server.

/// Which QueryReport renderings a query response should carry, as
/// pre-rendered strings. Since protocol v2 the span tree itself also
/// crosses the wire (see the trace section of kResultSets), so remote
/// clients are no longer limited to these strings: they reassemble the
/// same hierarchical tree — server-side net.* spans included — that an
/// in-process caller gets, and render it locally.
enum ReportFormat : uint8_t {
  kReportNone = 0,
  kReportText = 1,
  kReportJson = 2,
  kReportChrome = 4,
};

/// The per-query knobs that cross the wire (QueryOptions minus local-only
/// concerns), the requested report renderings, and the trace context the
/// request runs under. A zero trace_id means the caller did not start a
/// distributed trace; `sampled` asks the server to build and return span
/// trees (collect_trace in the embedded options implies it).
struct WireQueryOptions {
  testbed::QueryOptions options;
  uint8_t report_formats = kReportNone;
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;
};

void EncodeQueryOptions(WireWriter* w, const WireQueryOptions& opts);
bool DecodeQueryOptions(WireReader* r, WireQueryOptions* opts);

/// One query's answers plus the timing summary, in transport-neutral form.
/// (Defined here rather than in client.h so the codec does not depend on
/// the client library; dkb::Client re-exports it as QueryResultSet.)
struct WireResultSet {
  Schema schema;
  std::vector<Tuple> rows;
  int64_t rows_affected = 0;
  int64_t compile_us = 0;
  int64_t exec_us = 0;
  bool from_cache = false;
  std::string report_text;    // filled iff kReportText requested
  std::string report_json;    // filled iff kReportJson requested
  std::string report_chrome;  // filled iff kReportChrome requested
  /// The query's span tree as plain values, when tracing was on: the
  /// engine hierarchy for in-process queries, the same hierarchy under the
  /// server's net.* request spans for remote ones. shared_ptr (not a bare
  /// member) keeps WireResultSet cheap to copy through the client API.
  std::shared_ptr<const trace::SpanNode> trace;
};

void EncodeResultSet(WireWriter* w, const WireResultSet& rs);
bool DecodeResultSet(WireReader* r, WireResultSet* rs);

// ---------------------------------------------------------------------------
// Span trees on the wire (protocol v2).

/// Depth cap for decoded span trees; deeper payloads are malformed (real
/// traces are ~6 levels: request > query > execute > node > iteration).
constexpr int kMaxSpanDepth = 64;

void EncodeSpanNode(WireWriter* w, const trace::SpanNode& node);
bool DecodeSpanNode(WireReader* r, trace::SpanNode* node, int depth = 0);

/// The trace section closing every v2 kResultSets payload: u32 count
/// (0 or sets.size()) then per set a u8 presence flag + span tree. Written
/// after the result sets so the server's net.encode span can honestly
/// cover row encoding (only the tree serialization itself is excluded).
void EncodeTraceSection(WireWriter* w, const std::vector<WireResultSet>& sets);
/// Fills `trace` on each set. An empty remainder (v2 server with tracing
/// compiled out) decodes as "no traces" rather than an error.
bool DecodeTraceSection(WireReader* r, std::vector<WireResultSet>* sets);

// ---------------------------------------------------------------------------
// Stats (kStats / kStatsOk): the sessionless monitoring surface behind
// dkb_top and the CI metrics scrape.

/// Section bits for the kStats request; the reply echoes the bitmask and
/// carries the requested sections in this order.
constexpr uint8_t kStatsServer = 1;       // server + global metric samples
constexpr uint8_t kStatsConnections = 2;  // live connection registry
constexpr uint8_t kStatsPrometheus = 4;   // text exposition of the registry
constexpr uint8_t kStatsAll =
    kStatsServer | kStatsConnections | kStatsPrometheus;

/// One live connection as reported over the wire (mirrors
/// testbed::Testbed::ConnectionInfo without dragging the testbed facade
/// into the client's dependencies).
struct WireConnectionRow {
  int64_t connection_id = 0;
  std::string peer;
  int64_t session_id = 0;
  int64_t frames_received = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t queries = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t age_us = 0;
};

/// Decoded kStatsOk payload; only the sections named in `sections` are
/// filled.
struct StatsReply {
  uint8_t sections = 0;
  std::vector<metrics::MetricSample> server;
  std::vector<WireConnectionRow> connections;
  std::string prometheus;
};

std::string EncodeStatsRequest(uint8_t sections);
bool DecodeStatsRequest(std::string_view payload, uint8_t* sections);
void EncodeStatsReply(WireWriter* w, const StatsReply& reply);
bool DecodeStatsReply(WireReader* r, StatsReply* reply);

/// Error frames: u16 ErrorCode + message. Decode returns the round-tripped
/// Status (never OK — an OK code in an Error frame decodes as kInternal).
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

}  // namespace dkb::net

#endif  // DKB_NET_WIRE_H_
