#ifndef DKB_NET_WIRE_H_
#define DKB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "testbed/options.h"

namespace dkb::net {

/// Protocol version carried by Hello. Bump on any incompatible change to
/// the frame format or a payload encoding.
constexpr uint32_t kProtocolVersion = 1;

/// Frame layout (all integers little-endian):
///
///   u32 len        bytes that FOLLOW the length field (type + request_id
///                  + payload); valid frames satisfy kFrameHeaderLen <= len
///   u8  type       MsgType
///   u32 request_id client-chosen; the response echoes it, which is what
///                  lets pipelined requests match their replies
///   payload        len - kFrameHeaderLen bytes, encoding per type
constexpr size_t kFrameHeaderLen = 5;  // type + request_id

/// Hard ceiling a peer may impose on `len`. The default server/client limit
/// (16 MiB) comfortably fits the paper workloads' largest fact batches.
constexpr uint32_t kDefaultMaxFrameLen = 16u * 1024 * 1024;

/// Message types. Requests have the high bit clear, responses set it; the
/// values are wire-stable (append only, never renumber).
enum class MsgType : uint8_t {
  // Requests (client -> server).
  kHello = 0x01,          // u32 protocol_version
  kConsult = 0x02,        // str program_text
  kAddRule = 0x03,        // str rule_text
  kRetractRule = 0x04,    // str rule_text
  kDefineBase = 0x05,     // str pred, u16 n, n x u8 DataType
  kAddFacts = 0x06,       // str pred, u32 nrows, nrows x tuple
  kPrepare = 0x07,        // query options, str goal
  kExecute = 0x08,        // u32 n, n x u32 statement_id
  kQuery = 0x09,          // query options, u32 n, n x str goal
  kSql = 0x0A,            // str statement
  kUpdateStored = 0x0B,   // (empty)
  kClearWorkspace = 0x0C, // (empty)
  kListRules = 0x0D,      // (empty)
  kCloseSession = 0x0E,   // (empty); server replies kOk then closes

  // Responses (server -> client).
  kHelloOk = 0x81,     // u32 protocol_version, u64 session_id
  kOk = 0x82,          // (empty)
  kResultSets = 0x83,  // u32 n, n x result set
  kPrepared = 0x84,    // u32 statement_id
  kRuleList = 0x85,    // u32 n, n x str
  kUpdated = 0x86,     // i64 rules_stored, i64 total_us
  kError = 0xFF,       // u16 ErrorCode, str message
};

/// True for the type values a client may send (the request half of MsgType).
bool IsRequestType(uint8_t type);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  uint32_t request_id = 0;
  std::string payload;
};

/// Renders a complete frame (length prefix included) ready for the socket.
std::string EncodeFrame(MsgType type, uint32_t request_id,
                        std::string_view payload);

/// Incremental frame decoder: feed bytes as they arrive (in any split),
/// pull complete frames out. Framing violations (len below the header size
/// or above `max_frame_len`) are sticky errors — once the length prefix
/// cannot be trusted the stream has no recoverable frame boundary.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_len = kDefaultMaxFrameLen)
      : max_frame_len_(max_frame_len) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  enum class Next { kFrame, kNeedMore, kError };

  /// Decodes the next complete frame into `out`. kNeedMore when the buffer
  /// holds only a partial frame; kError (with `error()` set) on a framing
  /// violation.
  Next Pop(Frame* out);

  const Status& error() const { return error_; }

 private:
  uint32_t max_frame_len_;
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  Status error_;
};

// ---------------------------------------------------------------------------
// Payload encoding. Primitives are little-endian fixed width; strings are
// u32 length + bytes; values are 1-byte tagged.

class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(std::string_view s);
  void Val(const Value& v);
  void Row(const Tuple& t);
  void Cols(const Schema& s);

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a payload. Every accessor returns false once
/// the payload is exhausted or malformed; callers finish with a single
/// Status check via Done()/error().
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool Str(std::string* s);
  bool Val(Value* v);
  bool Row(Tuple* t);
  bool Cols(Schema* s);

  bool ok() const { return ok_; }
  /// True when every byte was consumed and no read failed.
  bool Done() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Composite payloads shared by client and server.

/// Which QueryReport renderings a query response should carry. The server
/// renders them (it owns the trace spans); remote clients receive strings.
enum ReportFormat : uint8_t {
  kReportNone = 0,
  kReportText = 1,
  kReportJson = 2,
  kReportChrome = 4,
};

/// The per-query knobs that cross the wire (QueryOptions minus local-only
/// concerns) plus the requested report renderings.
struct WireQueryOptions {
  testbed::QueryOptions options;
  uint8_t report_formats = kReportNone;
};

void EncodeQueryOptions(WireWriter* w, const WireQueryOptions& opts);
bool DecodeQueryOptions(WireReader* r, WireQueryOptions* opts);

/// One query's answers plus the timing summary, in transport-neutral form.
/// (Defined here rather than in client.h so the codec does not depend on
/// the client library; dkb::Client re-exports it as QueryResultSet.)
struct WireResultSet {
  Schema schema;
  std::vector<Tuple> rows;
  int64_t rows_affected = 0;
  int64_t compile_us = 0;
  int64_t exec_us = 0;
  bool from_cache = false;
  std::string report_text;    // filled iff kReportText requested
  std::string report_json;    // filled iff kReportJson requested
  std::string report_chrome;  // filled iff kReportChrome requested
};

void EncodeResultSet(WireWriter* w, const WireResultSet& rs);
bool DecodeResultSet(WireReader* r, WireResultSet* rs);

/// Error frames: u16 ErrorCode + message. Decode returns the round-tripped
/// Status (never OK — an OK code in an Error frame decodes as kInternal).
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

}  // namespace dkb::net

#endif  // DKB_NET_WIRE_H_
