#include "net/wire.h"

#include <cstring>

namespace dkb::net {

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kHello) &&
         type <= static_cast<uint8_t>(MsgType::kCloseSession);
}

std::string EncodeFrame(MsgType type, uint32_t request_id,
                        std::string_view payload) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(kFrameHeaderLen + payload.size()));
  w.U8(static_cast<uint8_t>(type));
  w.U32(request_id);
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameDecoder::Next FrameDecoder::Pop(Frame* out) {
  if (!error_.ok()) return Next::kError;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buffer_.size() - pos_;
  if (avail < 4) return Next::kNeedMore;
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + pos_, 4);
  if (len < kFrameHeaderLen) {
    error_ = Status::ProtocolError(
        "frame length " + std::to_string(len) + " below the " +
        std::to_string(kFrameHeaderLen) + "-byte frame header");
    return Next::kError;
  }
  if (len > max_frame_len_) {
    error_ = Status::ProtocolError(
        "frame length " + std::to_string(len) + " exceeds the " +
        std::to_string(max_frame_len_) + "-byte limit");
    return Next::kError;
  }
  if (avail < 4 + static_cast<size_t>(len)) return Next::kNeedMore;
  const char* p = buffer_.data() + pos_ + 4;
  out->type = static_cast<MsgType>(static_cast<uint8_t>(p[0]));
  uint32_t request_id = 0;
  std::memcpy(&request_id, p + 1, 4);
  out->request_id = request_id;
  out->payload.assign(p + kFrameHeaderLen, len - kFrameHeaderLen);
  pos_ += 4 + static_cast<size_t>(len);
  return Next::kFrame;
}

// ---------------------------------------------------------------------------
// WireWriter

void WireWriter::U16(uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  buf_.append(b, 2);
}

void WireWriter::U32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf_.append(b, 4);
}

void WireWriter::U64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireWriter::Val(const Value& v) {
  if (v.is_null()) {
    U8(0);
  } else if (v.is_int()) {
    U8(1);
    I64(v.as_int());
  } else {
    U8(2);
    Str(v.as_string());
  }
}

void WireWriter::Row(const Tuple& t) {
  U16(static_cast<uint16_t>(t.size()));
  for (const Value& v : t) Val(v);
}

void WireWriter::Cols(const Schema& s) {
  U16(static_cast<uint16_t>(s.num_columns()));
  for (const Column& c : s.columns()) {
    Str(c.name);
    U8(static_cast<uint8_t>(c.type));
  }
}

// ---------------------------------------------------------------------------
// WireReader

bool WireReader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::U16(uint16_t* v) {
  const char* p = nullptr;
  if (!Take(2, &p)) return false;
  std::memcpy(v, p, 2);
  return true;
}

bool WireReader::U32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  std::memcpy(v, p, 4);
  return true;
}

bool WireReader::U64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool WireReader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::Str(std::string* s) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  const char* p = nullptr;
  if (!Take(n, &p)) return false;
  s->assign(p, n);
  return true;
}

bool WireReader::Val(Value* v) {
  uint8_t tag = 0;
  if (!U8(&tag)) return false;
  switch (tag) {
    case 0:
      *v = Value::Null();
      return true;
    case 1: {
      int64_t i = 0;
      if (!I64(&i)) return false;
      *v = Value(i);
      return true;
    }
    case 2: {
      std::string s;
      if (!Str(&s)) return false;
      // Intern on arrival: remote rows behave like locally stored ones.
      *v = Value::Interned(s);
      return true;
    }
    default:
      ok_ = false;
      return false;
  }
}

bool WireReader::Row(Tuple* t) {
  uint16_t n = 0;
  if (!U16(&n)) return false;
  t->clear();
  t->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Value v;
    if (!Val(&v)) return false;
    t->push_back(std::move(v));
  }
  return true;
}

bool WireReader::Cols(Schema* s) {
  uint16_t n = 0;
  if (!U16(&n)) return false;
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Column c;
    uint8_t type = 0;
    if (!Str(&c.name) || !U8(&type)) return false;
    if (type > static_cast<uint8_t>(DataType::kVarchar)) {
      ok_ = false;
      return false;
    }
    c.type = static_cast<DataType>(type);
    cols.push_back(std::move(c));
  }
  *s = Schema(std::move(cols));
  return true;
}

// ---------------------------------------------------------------------------
// Composite payloads

void EncodeQueryOptions(WireWriter* w, const WireQueryOptions& opts) {
  const testbed::QueryOptions& o = opts.options;
  w->U8(o.use_magic ? 1 : 0);
  w->U8(o.supplementary ? 1 : 0);
  w->U8(o.adaptive_magic ? 1 : 0);
  w->U8(static_cast<uint8_t>(o.strategy));
  w->U8(o.use_cache ? 1 : 0);
  w->U8(static_cast<uint8_t>(o.explain));
  w->U8(o.collect_trace ? 1 : 0);
  w->U8(opts.report_formats);
  w->U32(static_cast<uint32_t>(o.lfp_parallelism));
}

bool DecodeQueryOptions(WireReader* r, WireQueryOptions* opts) {
  uint8_t use_magic = 0;
  uint8_t supplementary = 0;
  uint8_t adaptive = 0;
  uint8_t strategy = 0;
  uint8_t use_cache = 0;
  uint8_t explain = 0;
  uint8_t collect_trace = 0;
  uint32_t parallelism = 0;
  if (!r->U8(&use_magic) || !r->U8(&supplementary) || !r->U8(&adaptive) ||
      !r->U8(&strategy) || !r->U8(&use_cache) || !r->U8(&explain) ||
      !r->U8(&collect_trace) || !r->U8(&opts->report_formats) ||
      !r->U32(&parallelism)) {
    return false;
  }
  if (strategy > static_cast<uint8_t>(lfp::LfpStrategy::kNativeTc) ||
      explain > static_cast<uint8_t>(testbed::ExplainMode::kAnalyze)) {
    return false;
  }
  testbed::QueryOptions& o = opts->options;
  o.use_magic = use_magic != 0;
  o.supplementary = supplementary != 0;
  o.adaptive_magic = adaptive != 0;
  o.strategy = static_cast<lfp::LfpStrategy>(strategy);
  o.use_cache = use_cache != 0;
  o.explain = static_cast<testbed::ExplainMode>(explain);
  o.collect_trace = collect_trace != 0;
  o.lfp_parallelism = static_cast<int>(parallelism);
  return true;
}

void EncodeResultSet(WireWriter* w, const WireResultSet& rs) {
  w->Cols(rs.schema);
  w->U32(static_cast<uint32_t>(rs.rows.size()));
  for (const Tuple& row : rs.rows) w->Row(row);
  w->I64(rs.rows_affected);
  w->I64(rs.compile_us);
  w->I64(rs.exec_us);
  w->U8(rs.from_cache ? 1 : 0);
  w->Str(rs.report_text);
  w->Str(rs.report_json);
  w->Str(rs.report_chrome);
}

bool DecodeResultSet(WireReader* r, WireResultSet* rs) {
  uint32_t nrows = 0;
  if (!r->Cols(&rs->schema) || !r->U32(&nrows)) return false;
  // Each encoded row needs at least its 2-byte arity; anything claiming
  // more rows than remaining bytes is malformed, not a huge allocation.
  if (nrows > r->remaining() / 2) return false;
  rs->rows.clear();
  rs->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Tuple row;
    if (!r->Row(&row)) return false;
    rs->rows.push_back(std::move(row));
  }
  uint8_t from_cache = 0;
  if (!r->I64(&rs->rows_affected) || !r->I64(&rs->compile_us) ||
      !r->I64(&rs->exec_us) || !r->U8(&from_cache) ||
      !r->Str(&rs->report_text) || !r->Str(&rs->report_json) ||
      !r->Str(&rs->report_chrome)) {
    return false;
  }
  rs->from_cache = from_cache != 0;
  return true;
}

std::string EncodeErrorPayload(const Status& status) {
  WireWriter w;
  w.U16(ErrorCodeToWire(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeErrorPayload(std::string_view payload) {
  WireReader r(payload);
  uint16_t wire = 0;
  std::string message;
  if (!r.U16(&wire) || !r.Str(&message) || !r.Done()) {
    return Status::ProtocolError("malformed Error frame payload");
  }
  ErrorCode code = ErrorCodeFromWire(wire);
  if (code == ErrorCode::kOk) code = ErrorCode::kInternal;
  return Status(code, std::move(message));
}

}  // namespace dkb::net
