#include "net/wire.h"

#include <cstring>

namespace dkb::net {

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kHello) &&
         type <= static_cast<uint8_t>(MsgType::kStats);
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kConsult: return "Consult";
    case MsgType::kAddRule: return "AddRule";
    case MsgType::kRetractRule: return "RetractRule";
    case MsgType::kDefineBase: return "DefineBase";
    case MsgType::kAddFacts: return "AddFacts";
    case MsgType::kPrepare: return "Prepare";
    case MsgType::kExecute: return "Execute";
    case MsgType::kQuery: return "Query";
    case MsgType::kSql: return "Sql";
    case MsgType::kUpdateStored: return "UpdateStored";
    case MsgType::kClearWorkspace: return "ClearWorkspace";
    case MsgType::kListRules: return "ListRules";
    case MsgType::kCloseSession: return "CloseSession";
    case MsgType::kStats: return "Stats";
    case MsgType::kHelloOk: return "HelloOk";
    case MsgType::kOk: return "Ok";
    case MsgType::kResultSets: return "ResultSets";
    case MsgType::kPrepared: return "Prepared";
    case MsgType::kRuleList: return "RuleList";
    case MsgType::kUpdated: return "Updated";
    case MsgType::kStatsOk: return "StatsOk";
    case MsgType::kError: return "Error";
  }
  return "Unknown";
}

std::string EncodeFrame(MsgType type, uint32_t request_id,
                        std::string_view payload) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(kFrameHeaderLen + payload.size()));
  w.U8(static_cast<uint8_t>(type));
  w.U32(request_id);
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameDecoder::Next FrameDecoder::Pop(Frame* out) {
  if (!error_.ok()) return Next::kError;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buffer_.size() - pos_;
  if (avail < 4) return Next::kNeedMore;
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + pos_, 4);
  if (len < kFrameHeaderLen) {
    error_ = Status::ProtocolError(
        "frame length " + std::to_string(len) + " below the " +
        std::to_string(kFrameHeaderLen) + "-byte frame header");
    error_kind_ = ErrorKind::kBelowHeader;
    return Next::kError;
  }
  if (len > max_frame_len_) {
    error_ = Status::ProtocolError(
        "frame length " + std::to_string(len) + " exceeds the " +
        std::to_string(max_frame_len_) + "-byte limit");
    error_kind_ = ErrorKind::kOverCap;
    return Next::kError;
  }
  if (avail < 4 + static_cast<size_t>(len)) return Next::kNeedMore;
  const char* p = buffer_.data() + pos_ + 4;
  out->type = static_cast<MsgType>(static_cast<uint8_t>(p[0]));
  uint32_t request_id = 0;
  std::memcpy(&request_id, p + 1, 4);
  out->request_id = request_id;
  out->payload.assign(p + kFrameHeaderLen, len - kFrameHeaderLen);
  pos_ += 4 + static_cast<size_t>(len);
  return Next::kFrame;
}

// ---------------------------------------------------------------------------
// Composite payloads

void EncodeQueryOptions(WireWriter* w, const WireQueryOptions& opts) {
  const testbed::QueryOptions& o = opts.options;
  w->U8(o.use_magic ? 1 : 0);
  w->U8(o.supplementary ? 1 : 0);
  w->U8(o.adaptive_magic ? 1 : 0);
  w->U8(static_cast<uint8_t>(o.strategy));
  w->U8(o.use_cache ? 1 : 0);
  w->U8(static_cast<uint8_t>(o.explain));
  w->U8(o.collect_trace ? 1 : 0);
  w->U8(opts.report_formats);
  w->U32(static_cast<uint32_t>(o.EffectivePolicy().lfp_parallelism));
  // Trace context (v2): propagated so the server's spans join the
  // client's trace instead of starting an anonymous one.
  w->U64(opts.trace_id);
  w->U64(opts.parent_span_id);
  w->U8(opts.sampled ? 1 : 0);
}

bool DecodeQueryOptions(WireReader* r, WireQueryOptions* opts) {
  uint8_t use_magic = 0;
  uint8_t supplementary = 0;
  uint8_t adaptive = 0;
  uint8_t strategy = 0;
  uint8_t use_cache = 0;
  uint8_t explain = 0;
  uint8_t collect_trace = 0;
  uint32_t parallelism = 0;
  uint8_t sampled = 0;
  if (!r->U8(&use_magic) || !r->U8(&supplementary) || !r->U8(&adaptive) ||
      !r->U8(&strategy) || !r->U8(&use_cache) || !r->U8(&explain) ||
      !r->U8(&collect_trace) || !r->U8(&opts->report_formats) ||
      !r->U32(&parallelism) || !r->U64(&opts->trace_id) ||
      !r->U64(&opts->parent_span_id) || !r->U8(&sampled)) {
    return false;
  }
  opts->sampled = sampled != 0;
  if (strategy > static_cast<uint8_t>(lfp::LfpStrategy::kNativeTc) ||
      explain > static_cast<uint8_t>(testbed::ExplainMode::kAnalyze)) {
    return false;
  }
  testbed::QueryOptions& o = opts->options;
  o.use_magic = use_magic != 0;
  o.supplementary = supplementary != 0;
  o.adaptive_magic = adaptive != 0;
  o.strategy = static_cast<lfp::LfpStrategy>(strategy);
  o.use_cache = use_cache != 0;
  o.explain = static_cast<testbed::ExplainMode>(explain);
  o.collect_trace = collect_trace != 0;
  o.WithParallelism(static_cast<int>(parallelism));
  return true;
}

void EncodeResultSet(WireWriter* w, const WireResultSet& rs) {
  w->Cols(rs.schema);
  w->U32(static_cast<uint32_t>(rs.rows.size()));
  for (const Tuple& row : rs.rows) w->Row(row);
  w->I64(rs.rows_affected);
  w->I64(rs.compile_us);
  w->I64(rs.exec_us);
  w->U8(rs.from_cache ? 1 : 0);
  w->Str(rs.report_text);
  w->Str(rs.report_json);
  w->Str(rs.report_chrome);
}

bool DecodeResultSet(WireReader* r, WireResultSet* rs) {
  uint32_t nrows = 0;
  if (!r->Cols(&rs->schema) || !r->U32(&nrows)) return false;
  // Each encoded row needs at least its 2-byte arity; anything claiming
  // more rows than remaining bytes is malformed, not a huge allocation.
  if (nrows > r->remaining() / 2) return false;
  rs->rows.clear();
  rs->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Tuple row;
    if (!r->Row(&row)) return false;
    rs->rows.push_back(std::move(row));
  }
  uint8_t from_cache = 0;
  if (!r->I64(&rs->rows_affected) || !r->I64(&rs->compile_us) ||
      !r->I64(&rs->exec_us) || !r->U8(&from_cache) ||
      !r->Str(&rs->report_text) || !r->Str(&rs->report_json) ||
      !r->Str(&rs->report_chrome)) {
    return false;
  }
  rs->from_cache = from_cache != 0;
  return true;
}

void EncodeSpanNode(WireWriter* w, const trace::SpanNode& node) {
  w->Str(node.name);
  w->I64(node.start_us);
  w->I64(node.end_us);
  w->U32(node.tid);
  w->U16(static_cast<uint16_t>(node.tags.size()));
  for (const trace::TraceTag& tag : node.tags) {
    w->Str(tag.key);
    w->Str(tag.value);
    w->U8(tag.is_number ? 1 : 0);
  }
  w->U32(static_cast<uint32_t>(node.children.size()));
  for (const trace::SpanNode& child : node.children) {
    EncodeSpanNode(w, child);
  }
}

bool DecodeSpanNode(WireReader* r, trace::SpanNode* node, int depth) {
  if (depth >= kMaxSpanDepth) return false;
  uint16_t ntags = 0;
  if (!r->Str(&node->name) || !r->I64(&node->start_us) ||
      !r->I64(&node->end_us) || !r->U32(&node->tid) || !r->U16(&ntags)) {
    return false;
  }
  node->tags.clear();
  node->tags.reserve(ntags);
  for (uint16_t i = 0; i < ntags; ++i) {
    trace::TraceTag tag;
    uint8_t is_number = 0;
    if (!r->Str(&tag.key) || !r->Str(&tag.value) || !r->U8(&is_number)) {
      return false;
    }
    tag.is_number = is_number != 0;
    node->tags.push_back(std::move(tag));
  }
  uint32_t nchildren = 0;
  if (!r->U32(&nchildren)) return false;
  // Every encoded child costs at least its (empty) name length + times +
  // tid + tag and child counts; a count beyond remaining bytes is
  // malformed, not an allocation request.
  if (nchildren > r->remaining() / 4) return false;
  node->children.clear();
  node->children.reserve(nchildren);
  for (uint32_t i = 0; i < nchildren; ++i) {
    trace::SpanNode child;
    if (!DecodeSpanNode(r, &child, depth + 1)) return false;
    node->children.push_back(std::move(child));
  }
  return true;
}

void EncodeTraceSection(WireWriter* w,
                        const std::vector<WireResultSet>& sets) {
  bool any = false;
  for (const WireResultSet& rs : sets) any = any || rs.trace != nullptr;
  if (!any) {
    w->U32(0);
    return;
  }
  w->U32(static_cast<uint32_t>(sets.size()));
  for (const WireResultSet& rs : sets) {
    w->U8(rs.trace != nullptr ? 1 : 0);
    if (rs.trace != nullptr) EncodeSpanNode(w, *rs.trace);
  }
}

bool DecodeTraceSection(WireReader* r, std::vector<WireResultSet>* sets) {
  if (r->remaining() == 0) return true;  // no section: no traces
  uint32_t count = 0;
  if (!r->U32(&count)) return false;
  if (count == 0) return true;
  if (count != sets->size()) return false;
  for (WireResultSet& rs : *sets) {
    uint8_t present = 0;
    if (!r->U8(&present)) return false;
    if (present == 0) continue;
    auto node = std::make_shared<trace::SpanNode>();
    if (!DecodeSpanNode(r, node.get())) return false;
    rs.trace = std::move(node);
  }
  return true;
}

std::string EncodeStatsRequest(uint8_t sections) {
  WireWriter w;
  w.U8(sections);
  return w.Take();
}

bool DecodeStatsRequest(std::string_view payload, uint8_t* sections) {
  WireReader r(payload);
  return r.U8(sections) && r.Done() &&
         (*sections & ~kStatsAll) == 0 && *sections != 0;
}

void EncodeStatsReply(WireWriter* w, const StatsReply& reply) {
  w->U8(reply.sections);
  if ((reply.sections & kStatsServer) != 0) {
    w->U32(static_cast<uint32_t>(reply.server.size()));
    for (const metrics::MetricSample& s : reply.server) {
      w->Str(s.name);
      w->Str(s.kind);
      w->I64(s.value);
      w->I64(s.sum);
      w->I64(s.max);
      w->I64(s.p50);
      w->I64(s.p99);
    }
  }
  if ((reply.sections & kStatsConnections) != 0) {
    w->U32(static_cast<uint32_t>(reply.connections.size()));
    for (const WireConnectionRow& c : reply.connections) {
      w->I64(c.connection_id);
      w->Str(c.peer);
      w->I64(c.session_id);
      w->I64(c.frames_received);
      w->I64(c.bytes_in);
      w->I64(c.bytes_out);
      w->I64(c.queries);
      w->I64(c.requests);
      w->I64(c.errors);
      w->I64(c.age_us);
    }
  }
  if ((reply.sections & kStatsPrometheus) != 0) {
    w->Str(reply.prometheus);
  }
}

bool DecodeStatsReply(WireReader* r, StatsReply* reply) {
  if (!r->U8(&reply->sections)) return false;
  if ((reply->sections & ~kStatsAll) != 0) return false;
  if ((reply->sections & kStatsServer) != 0) {
    uint32_t n = 0;
    if (!r->U32(&n)) return false;
    if (n > r->remaining() / 8) return false;
    reply->server.clear();
    reply->server.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      metrics::MetricSample s;
      if (!r->Str(&s.name) || !r->Str(&s.kind) || !r->I64(&s.value) ||
          !r->I64(&s.sum) || !r->I64(&s.max) || !r->I64(&s.p50) ||
          !r->I64(&s.p99)) {
        return false;
      }
      reply->server.push_back(std::move(s));
    }
  }
  if ((reply->sections & kStatsConnections) != 0) {
    uint32_t n = 0;
    if (!r->U32(&n)) return false;
    if (n > r->remaining() / 8) return false;
    reply->connections.clear();
    reply->connections.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      WireConnectionRow c;
      if (!r->I64(&c.connection_id) || !r->Str(&c.peer) ||
          !r->I64(&c.session_id) || !r->I64(&c.frames_received) ||
          !r->I64(&c.bytes_in) || !r->I64(&c.bytes_out) ||
          !r->I64(&c.queries) || !r->I64(&c.requests) ||
          !r->I64(&c.errors) || !r->I64(&c.age_us)) {
        return false;
      }
      reply->connections.push_back(std::move(c));
    }
  }
  if ((reply->sections & kStatsPrometheus) != 0) {
    if (!r->Str(&reply->prometheus)) return false;
  }
  return r->Done();
}

std::string EncodeErrorPayload(const Status& status) {
  WireWriter w;
  w.U16(ErrorCodeToWire(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeErrorPayload(std::string_view payload) {
  WireReader r(payload);
  uint16_t wire = 0;
  std::string message;
  if (!r.U16(&wire) || !r.Str(&message) || !r.Done()) {
    return Status::ProtocolError("malformed Error frame payload");
  }
  ErrorCode code = ErrorCodeFromWire(wire);
  if (code == ErrorCode::kOk) code = ErrorCode::kInternal;
  return Status(code, std::move(message));
}

}  // namespace dkb::net
