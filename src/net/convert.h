#ifndef DKB_NET_CONVERT_H_
#define DKB_NET_CONVERT_H_

#include <cstdint>

#include "net/wire.h"
#include "testbed/testbed.h"

namespace dkb::net {

/// Flattens a QueryOutcome into the transport-neutral result-set form,
/// rendering the QueryReport into whichever string formats `report_formats`
/// (OR of ReportFormat bits) asks for. When the query was traced, the span
/// tree is snapshotted into WireResultSet::trace as plain values, so it can
/// cross the wire (protocol v2) and be rendered by either side. The server
/// replaces this raw engine tree with one wrapped in its net.* request
/// spans before encoding (see Server::RunQueries).
WireResultSet ResultSetFromOutcome(testbed::QueryOutcome&& outcome,
                                   uint8_t report_formats);

}  // namespace dkb::net

#endif  // DKB_NET_CONVERT_H_
