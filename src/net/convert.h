#ifndef DKB_NET_CONVERT_H_
#define DKB_NET_CONVERT_H_

#include <cstdint>

#include "net/wire.h"
#include "testbed/testbed.h"

namespace dkb::net {

/// Flattens a QueryOutcome into the transport-neutral result-set form,
/// rendering the QueryReport into whichever string formats `report_formats`
/// (OR of ReportFormat bits) asks for. The span tree itself never crosses
/// the wire — the side that ran the query renders it.
WireResultSet ResultSetFromOutcome(testbed::QueryOutcome&& outcome,
                                   uint8_t report_formats);

}  // namespace dkb::net

#endif  // DKB_NET_CONVERT_H_
