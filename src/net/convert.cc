#include "net/convert.h"

#include <memory>
#include <utility>

namespace dkb::net {

WireResultSet ResultSetFromOutcome(testbed::QueryOutcome&& outcome,
                                   uint8_t report_formats) {
  WireResultSet rs;
  rs.schema = std::move(outcome.result.schema);
  rs.rows = std::move(outcome.result.rows);
  rs.rows_affected = outcome.result.rows_affected;
  rs.compile_us = outcome.report.compile.total_us();
  rs.exec_us = outcome.report.exec.t_total_us;
  rs.from_cache = outcome.report.from_cache;
  if (report_formats & kReportText) {
    rs.report_text = outcome.report.ExplainText();
  }
  if (report_formats & kReportJson) {
    rs.report_json = outcome.report.ToJson();
  }
  if (report_formats & kReportChrome) {
    rs.report_chrome = outcome.report.ChromeTrace();
  }
  if (outcome.report.trace != nullptr) {
    rs.trace = std::make_shared<trace::SpanNode>(
        outcome.report.trace->Snapshot());
  }
  return rs;
}

}  // namespace dkb::net
