#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <system_error>
#include <utility>

#include "common/trace.h"
#include "datalog/parser.h"
#include "net/convert.h"
#include "testbed/session.h"

namespace dkb::net {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " +
         std::error_code(errno, std::generic_category()).message();
}

std::string FormatPeer(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {0};
  if (inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) {
    return "unknown";
  }
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

int64_t UsBetween(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// A value-tree span on the request timeline (offsets from frame arrival).
trace::SpanNode MakeSpan(std::string name, int64_t start_us, int64_t end_us) {
  trace::SpanNode node;
  node.name = std::move(name);
  node.start_us = start_us;
  node.end_us = end_us;
  node.tid = trace::TraceContext::CurrentThreadId();
  return node;
}

metrics::MetricSample HistogramSample(const std::string& name,
                                      const metrics::Histogram& h) {
  metrics::MetricSample s;
  s.name = name;
  s.kind = "histogram";
  s.value = h.count();
  s.sum = h.sum();
  s.max = h.max();
  s.p50 = h.ApproxQuantile(0.5);
  s.p99 = h.ApproxQuantile(0.99);
  return s;
}

metrics::MetricSample CounterSample(const std::string& name, int64_t value) {
  metrics::MetricSample s;
  s.name = name;
  s.kind = "counter";
  s.value = value;
  return s;
}

metrics::MetricSample GaugeSample(const std::string& name, int64_t value) {
  metrics::MetricSample s;
  s.name = name;
  s.kind = "gauge";
  s.value = value;
  return s;
}

/// One line for the network-layer slow-request log, mirroring the flight
/// recorder's slow-query record shape.
std::string FormatSlowRequest(int64_t conn_id, const std::string& peer,
                              MsgType type, int64_t total_us,
                              int64_t queue_us, size_t request_bytes,
                              size_t response_bytes, bool json) {
  if (json) {
    std::string out = "{\"slow_request\": true";
    out += ", \"connection_id\": " + std::to_string(conn_id);
    out += ", \"peer\": \"" + std::string(peer) + "\"";
    out += ", \"type\": \"" + std::string(MsgTypeName(type)) + "\"";
    out += ", \"total_us\": " + std::to_string(total_us);
    out += ", \"queue_us\": " + std::to_string(queue_us);
    out += ", \"bytes_received\": " + std::to_string(request_bytes);
    out += ", \"bytes_sent\": " + std::to_string(response_bytes) + "}";
    return out;
  }
  std::string out = "[dkb slow request]";
  out += " conn=" + std::to_string(conn_id);
  out += " peer=" + peer;
  out += std::string(" type=") + MsgTypeName(type);
  out += " total_us=" + std::to_string(total_us);
  out += " queue_us=" + std::to_string(queue_us);
  out += " bytes_received=" + std::to_string(request_bytes);
  out += " bytes_sent=" + std::to_string(response_bytes);
  return out;
}

}  // namespace

int64_t Server::RequestContext::SinceArrivalUs() const {
  return UsBetween(arrival, std::chrono::steady_clock::now());
}

/// Everything a connection accumulates beyond its registry counters: the
/// COW session opened by Hello and the prepared-statement table. Owned by
/// the connection's thread; never shared.
struct Server::ConnState {
  std::unique_ptr<testbed::Session> session;
  bool hello_done = false;

  struct PreparedStatement {
    std::string goal;
    testbed::QueryOptions options;
    uint8_t report_formats = kReportNone;
  };
  uint32_t next_statement_id = 1;
  std::map<uint32_t, PreparedStatement> prepared;
};

Server::~Server() { Stop(); }

Status Server::Start(testbed::Testbed* testbed, const ServerOptions& options) {
  if (started_) return Status::Internal("server already started");
  testbed_ = testbed;
  options_ = options;

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable(ErrnoMessage("socket"));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Unavailable(ErrnoMessage("bind"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) < 0) {
    Status status = Status::Unavailable(ErrnoMessage("listen"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stop_.store(false, std::memory_order_release);
  started_ = true;
  stats_.started_at = std::chrono::steady_clock::now();
  testbed_->SetConnectionsSource([this]() { return Connections(); });
  testbed_->SetServerStatsSource([this]() { return StatsSnapshot(); });
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every live connection out of its blocking read; each thread then
  // unwinds, unregisters, and decrements the active count.
  {
    MutexLock lock(conns_mu_);
    for (auto& [id, conn] : conns_) shutdown(conn->fd, SHUT_RDWR);
  }
  {
    MutexLock lock(active_mu_);
    while (active_threads_ > 0) active_cv_.Wait(lock);
  }
  testbed_->SetConnectionsSource(nullptr);
  testbed_->SetServerStatsSource(nullptr);
  started_ = false;
}

std::vector<testbed::Testbed::ConnectionInfo> Server::Connections() const {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(conns_mu_);
  std::vector<testbed::Testbed::ConnectionInfo> out;
  out.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    testbed::Testbed::ConnectionInfo info;
    info.connection_id = conn->id;
    info.peer = conn->peer;
    info.session_id = conn->session_id.load(std::memory_order_relaxed);
    info.frames_received =
        conn->frames_received.load(std::memory_order_relaxed);
    info.bytes_in = conn->bytes_in.load(std::memory_order_relaxed);
    info.bytes_out = conn->bytes_out.load(std::memory_order_relaxed);
    info.queries = conn->queries.load(std::memory_order_relaxed);
    info.requests = conn->requests.load(std::memory_order_relaxed);
    info.errors = conn->errors.load(std::memory_order_relaxed);
    info.age_us = UsBetween(conn->accepted_at, now);
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<metrics::MetricSample> Server::StatsSnapshot() const {
  const auto now = std::chrono::steady_clock::now();
  int64_t active = 0;
  {
    MutexLock lock(conns_mu_);
    active = static_cast<int64_t>(conns_.size());
  }
  auto relaxed = [](const std::atomic<int64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  std::vector<metrics::MetricSample> out;
  out.push_back(GaugeSample("uptime_us", UsBetween(stats_.started_at, now)));
  out.push_back(
      CounterSample("connections.accepted", relaxed(stats_.accepted)));
  out.push_back(GaugeSample("connections.active", active));
  out.push_back(
      CounterSample("connections.errored", relaxed(stats_.errored)));
  out.push_back(CounterSample("frame_cap_rejections",
                              relaxed(stats_.frame_cap_rejections)));
  out.push_back(
      CounterSample("malformed_frames", relaxed(stats_.malformed_frames)));
  out.push_back(CounterSample("bytes_in", relaxed(stats_.bytes_in)));
  out.push_back(CounterSample("bytes_out", relaxed(stats_.bytes_out)));
  out.push_back(HistogramSample("queue_us", stats_.queue_us));
  out.push_back(HistogramSample("decode_us", stats_.decode_us));
  out.push_back(HistogramSample("execute_us", stats_.execute_us));
  out.push_back(HistogramSample("encode_us", stats_.encode_us));
  for (size_t i = 0; i < Stats::kTypeSlots; ++i) {
    if (stats_.requests[i].value() == 0) continue;
    const char* name = MsgTypeName(static_cast<MsgType>(i));
    out.push_back(CounterSample(std::string("requests.") + name,
                                stats_.requests[i].value()));
    out.push_back(HistogramSample(std::string("request_us.") + name,
                                  stats_.request_us[i]));
  }
  return out;
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout (stop-flag check) or EINTR

    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                    &peer_len);
    if (fd < 0) continue;
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->peer = FormatPeer(peer);
    conn->accepted_at = std::chrono::steady_clock::now();
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(conns_mu_);
      conns_[conn->id] = conn;
    }
    {
      MutexLock lock(active_mu_);
      ++active_threads_;
    }
    std::thread([this, conn]() {
      Serve(conn);
      MutexLock lock(active_mu_);
      --active_threads_;
      active_cv_.NotifyAll();
    }).detach();
  }
}

bool Server::SendAll(Connection* conn, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(conn->fd, data.data() + off, data.size() - off,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  conn->bytes_out.fetch_add(static_cast<int64_t>(data.size()),
                            std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(static_cast<int64_t>(data.size()),
                             std::memory_order_relaxed);
  return true;
}

void Server::Serve(std::shared_ptr<Connection> conn) {
  ConnState state;
  FrameDecoder decoder(options_.max_frame_len);
  std::vector<char> buf(64 * 1024);
  // Complete frames waiting behind the one being handled. Frames are
  // timestamped the moment they are fully received, so queue_us measures
  // real pipeline backlog (time parked here), not just loop overhead.
  struct PendingFrame {
    Frame frame;
    std::chrono::steady_clock::time_point arrival;
  };
  std::deque<PendingFrame> pending;
  bool open = true;

  // Hot-path handles into the global registry (lookup once per connection,
  // not per request).
  metrics::MetricsRegistry& global = metrics::GlobalMetrics();
  metrics::Counter& g_requests = global.counter("dkb.server.requests");
  metrics::Histogram& g_queue = global.histogram("dkb.server.queue_us");
  metrics::Histogram& g_decode = global.histogram("dkb.server.decode_us");
  metrics::Histogram& g_execute = global.histogram("dkb.server.execute_us");
  metrics::Histogram& g_encode = global.histogram("dkb.server.encode_us");
  metrics::Histogram& g_request = global.histogram("dkb.server.request_us");

  while (open && !stop_.load(std::memory_order_acquire)) {
    ssize_t n = read(conn->fd, buf.data(), buf.size());
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: peer is gone
    conn->bytes_in.fetch_add(n, std::memory_order_relaxed);
    stats_.bytes_in.fetch_add(n, std::memory_order_relaxed);
    decoder.Append(buf.data(), static_cast<size_t>(n));

    for (;;) {
      Frame frame;
      FrameDecoder::Next next = decoder.Pop(&frame);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kError) {
        // The length prefix can no longer be trusted; report and close.
        if (decoder.error_kind() == FrameDecoder::ErrorKind::kOverCap) {
          stats_.frame_cap_rejections.fetch_add(1,
                                                std::memory_order_relaxed);
        } else {
          stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        }
        conn->errors.fetch_add(1, std::memory_order_relaxed);
        SendAll(conn.get(),
                EncodeFrame(MsgType::kError, 0,
                            EncodeErrorPayload(decoder.error())));
        open = false;
        break;
      }
      conn->frames_received.fetch_add(1, std::memory_order_relaxed);
      pending.push_back(
          PendingFrame{std::move(frame), std::chrono::steady_clock::now()});
    }

    while (open && !pending.empty()) {
      PendingFrame pf = std::move(pending.front());
      pending.pop_front();
      RequestContext rctx;
      rctx.arrival = pf.arrival;
      rctx.queue_us = rctx.SinceArrivalUs();
      conn->requests.fetch_add(1, std::memory_order_relaxed);
      g_requests.Add(1);
      stats_.queue_us.Observe(rctx.queue_us);
      g_queue.Observe(rctx.queue_us);

      bool close_conn = false;
      std::string response =
          HandleRequest(conn.get(), &state, pf.frame, &rctx, &close_conn);
      const bool is_error =
          response.size() > 4 &&
          static_cast<uint8_t>(response[4]) ==
              static_cast<uint8_t>(MsgType::kError);
      if (is_error) conn->errors.fetch_add(1, std::memory_order_relaxed);
      const bool sent = SendAll(conn.get(), response);
      const int64_t total_us = rctx.SinceArrivalUs();

      if (rctx.decode_us >= 0) {
        stats_.decode_us.Observe(rctx.decode_us);
        g_decode.Observe(rctx.decode_us);
      }
      if (rctx.execute_us >= 0) {
        stats_.execute_us.Observe(rctx.execute_us);
        g_execute.Observe(rctx.execute_us);
      }
      if (rctx.encode_us >= 0) {
        stats_.encode_us.Observe(rctx.encode_us);
        g_encode.Observe(rctx.encode_us);
      }
      g_request.Observe(total_us);
      const auto type_slot = static_cast<size_t>(pf.frame.type);
      if (type_slot < Stats::kTypeSlots) {
        stats_.requests[type_slot].Add(1);
        stats_.request_us[type_slot].Observe(total_us);
      }

      if (options_.slow_request_us >= 0 &&
          total_us > options_.slow_request_us) {
        const testbed::SlowQueryLogOptions slow =
            testbed_->recorder().slow_query_log();
        const std::string record = FormatSlowRequest(
            conn->id, conn->peer, pf.frame.type, total_us, rctx.queue_us,
            pf.frame.payload.size() + kFrameHeaderLen + 4, response.size(),
            slow.json);
        metrics::GlobalMetrics()
            .counter("dkb.server.slow_requests")
            .Add(1);
        if (slow.sink) {
          slow.sink(record);
        } else {
          std::fprintf(stderr, "%s\n", record.c_str());
        }
      }

      if (!sent || close_conn) open = false;
    }
  }

  if (conn->errors.load(std::memory_order_relaxed) > 0) {
    stats_.errored.fetch_add(1, std::memory_order_relaxed);
  }
  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->id);
  }
  close(conn->fd);
}

std::string Server::RunQueries(
    Connection* conn, ConnState* state, uint32_t request_id,
    std::vector<QuerySpec>& specs, RequestContext* rctx,
    size_t request_payload_bytes,
    const std::function<std::string(const Status&)>& error) {
  // Per-goal execution metadata kept alongside the result sets so the
  // encode loop below can build each goal's span tree.
  struct GoalMeta {
    bool sampled = false;
    bool has_engine = false;
    trace::SpanNode engine;
    int64_t query_id = 0;
    int64_t exec_start = 0;
    int64_t exec_end = 0;
  };
  std::vector<WireResultSet> sets;
  std::vector<GoalMeta> metas;
  sets.reserve(specs.size());
  metas.reserve(specs.size());

  for (QuerySpec& spec : specs) {
    GoalMeta meta;
    meta.sampled =
        spec.opts.sampled || spec.opts.options.collect_trace ||
        spec.opts.options.explain == testbed::ExplainMode::kAnalyze;
    testbed::QueryOptions qopts = spec.opts.options;
    // A sampled request turns on engine tracing even when the caller's
    // options alone would not have (the wire sampling flag is the
    // distributed-trace opt-in).
    if (meta.sampled) qopts.collect_trace = true;
    conn->queries.fetch_add(1, std::memory_order_relaxed);
    meta.exec_start = rctx->SinceArrivalUs();
    auto outcome = state->session->Query(spec.goal, qopts);
    if (!outcome.ok()) return error(outcome.status());
    meta.exec_end = rctx->SinceArrivalUs();
    meta.query_id = outcome->report.query_id;
    if (meta.sampled && outcome->report.trace != nullptr) {
      // Re-base the engine tree's offsets from its own epoch onto the
      // request timeline (frame arrival = 0) before grafting it under
      // net.execute.
      const int64_t base =
          UsBetween(rctx->arrival, outcome->report.trace->epoch());
      meta.engine =
          trace::SnapshotSpan(*outcome->report.trace->root(), base);
      meta.has_engine = true;
      // The conversion below would snapshot the tree a second time for
      // rs.trace, which is replaced by the wrapped net.* tree anyway; drop
      // the context first unless a pre-rendered report still needs it.
      if (spec.opts.report_formats == kReportNone) {
        outcome->report.trace.reset();
      }
    }
    // ResultSetFromOutcome attaches the raw engine tree (in-process
    // semantics); the wrapped net.* tree built below replaces it.
    sets.push_back(ResultSetFromOutcome(std::move(*outcome),
                                        spec.opts.report_formats));
    metas.push_back(std::move(meta));
  }
  int64_t exec_total = 0;
  for (const GoalMeta& meta : metas) {
    exec_total += meta.exec_end - meta.exec_start;
  }
  rctx->execute_us = exec_total;

  WireWriter w;
  w.U32(static_cast<uint32_t>(sets.size()));
  const int64_t encode_start = rctx->SinceArrivalUs();
  for (size_t i = 0; i < sets.size(); ++i) {
    const int64_t enc_start = rctx->SinceArrivalUs();
    EncodeResultSet(&w, sets[i]);
    const int64_t enc_end = rctx->SinceArrivalUs();
    GoalMeta& meta = metas[i];
    if (!meta.sampled) {
      sets[i].trace = nullptr;
      continue;
    }
    trace::SpanNode root = MakeSpan("net.request", 0, 0);
    root.tags.push_back({"request_id", std::to_string(request_id),
                         /*is_number=*/true});
    root.tags.push_back({"connection_id", std::to_string(conn->id),
                         /*is_number=*/true});
    if (specs[i].opts.trace_id != 0) {
      root.tags.push_back({"trace_id", std::to_string(specs[i].opts.trace_id),
                           /*is_number=*/true});
    }
    if (specs[i].opts.parent_span_id != 0) {
      root.tags.push_back(
          {"parent_span_id", std::to_string(specs[i].opts.parent_span_id),
           /*is_number=*/true});
    }
    root.children.push_back(MakeSpan("net.queue", 0, rctx->queue_us));
    root.children.push_back(MakeSpan(
        "net.decode", rctx->queue_us, rctx->queue_us + rctx->decode_us));
    trace::SpanNode exec =
        MakeSpan("net.execute", meta.exec_start, meta.exec_end);
    if (meta.has_engine) exec.children.push_back(std::move(meta.engine));
    root.children.push_back(std::move(exec));
    root.children.push_back(MakeSpan("net.encode", enc_start, enc_end));
    // The root closes here — everything after (trace serialization, the
    // send) cannot observe itself.
    root.end_us = rctx->SinceArrivalUs();
    sets[i].trace = std::make_shared<trace::SpanNode>(std::move(root));
  }
  rctx->encode_us = rctx->SinceArrivalUs() - encode_start;
  EncodeTraceSection(&w, sets);

  std::string response = EncodeFrame(MsgType::kResultSets, request_id,
                                     w.Take());
  const int64_t request_bytes =
      static_cast<int64_t>(request_payload_bytes + kFrameHeaderLen + 4);
  for (const GoalMeta& meta : metas) {
    testbed_->recorder().AnnotateBytes(
        meta.query_id, static_cast<int64_t>(response.size()), request_bytes);
  }
  return response;
}

std::string Server::BuildStatsReply(uint32_t request_id,
                                    uint8_t sections) const {
  StatsReply reply;
  reply.sections = sections;
  if ((sections & kStatsServer) != 0) reply.server = StatsSnapshot();
  if ((sections & kStatsConnections) != 0) {
    for (testbed::Testbed::ConnectionInfo& ci : Connections()) {
      WireConnectionRow row;
      row.connection_id = ci.connection_id;
      row.peer = std::move(ci.peer);
      row.session_id = ci.session_id;
      row.frames_received = ci.frames_received;
      row.bytes_in = ci.bytes_in;
      row.bytes_out = ci.bytes_out;
      row.queries = ci.queries;
      row.requests = ci.requests;
      row.errors = ci.errors;
      row.age_us = ci.age_us;
      reply.connections.push_back(std::move(row));
    }
  }
  if ((sections & kStatsPrometheus) != 0) {
    reply.prometheus = metrics::GlobalMetrics().RenderPrometheus();
  }
  WireWriter w;
  EncodeStatsReply(&w, reply);
  return EncodeFrame(MsgType::kStatsOk, request_id, w.Take());
}

std::string Server::HandleRequest(Connection* conn, ConnState* state,
                                  const Frame& frame, RequestContext* rctx,
                                  bool* close_conn) {
  const uint32_t id = frame.request_id;
  auto error = [this, id](const Status& status) {
    if (status.code() == ErrorCode::kProtocolError) {
      stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    }
    return EncodeFrame(MsgType::kError, id, EncodeErrorPayload(status));
  };
  auto ok = [id]() { return EncodeFrame(MsgType::kOk, id, ""); };

  if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
    return error(Status::ProtocolError(
        "unknown request type " +
        std::to_string(static_cast<unsigned>(frame.type))));
  }

  WireReader r(frame.payload);

  // Stats is sessionless: answered before (or without) Hello, so monitors
  // like dkb_top never open a COW session or change engine state.
  if (frame.type == MsgType::kStats) {
    uint8_t sections = 0;
    if (!DecodeStatsRequest(frame.payload, &sections)) {
      return error(Status::ProtocolError("malformed Stats payload"));
    }
    return BuildStatsReply(id, sections);
  }

  if (!state->hello_done) {
    if (frame.type != MsgType::kHello) {
      *close_conn = true;
      return error(Status::ProtocolError(
          "first frame on a connection must be Hello"));
    }
    uint32_t version = 0;
    if (!r.U32(&version) || !r.Done()) {
      *close_conn = true;
      return error(Status::ProtocolError("malformed Hello payload"));
    }
    if (version != kProtocolVersion) {
      *close_conn = true;
      return error(Status::ProtocolError(
          "protocol version mismatch: client " + std::to_string(version) +
          ", server " + std::to_string(kProtocolVersion)));
    }
    auto session = testbed_->OpenSession();
    if (!session.ok()) {
      *close_conn = true;
      return error(session.status());
    }
    state->session = std::move(*session);
    state->hello_done = true;
    conn->session_id.store(state->session->id(), std::memory_order_relaxed);
    WireWriter w;
    w.U32(kProtocolVersion);
    w.U64(static_cast<uint64_t>(state->session->id()));
    return EncodeFrame(MsgType::kHelloOk, id, w.Take());
  }

  switch (frame.type) {
    case MsgType::kHello:
      return error(Status::ProtocolError("duplicate Hello"));

    case MsgType::kConsult: {
      std::string program;
      if (!r.Str(&program) || !r.Done()) {
        return error(Status::ProtocolError("malformed Consult payload"));
      }
      Status status = testbed_->Consult(program);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kAddRule:
    case MsgType::kRetractRule: {
      std::string rule;
      if (!r.Str(&rule) || !r.Done()) {
        return error(Status::ProtocolError("malformed rule payload"));
      }
      Status status = frame.type == MsgType::kAddRule
                          ? testbed_->AddRule(rule)
                          : testbed_->RetractRule(rule);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kDefineBase: {
      std::string pred;
      uint16_t n = 0;
      if (!r.Str(&pred) || !r.U16(&n)) {
        return error(Status::ProtocolError("malformed DefineBase payload"));
      }
      km::PredicateTypes types;
      types.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        uint8_t type = 0;
        if (!r.U8(&type) ||
            type > static_cast<uint8_t>(DataType::kVarchar) ||
            type == static_cast<uint8_t>(DataType::kInvalid)) {
          return error(Status::ProtocolError("bad column type byte"));
        }
        types.push_back(static_cast<DataType>(type));
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed DefineBase payload"));
      }
      Status status = testbed_->DefineBase(pred, types);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kAddFacts: {
      std::string pred;
      uint32_t nrows = 0;
      if (!r.Str(&pred) || !r.U32(&nrows) ||
          nrows > r.remaining() / 2) {
        return error(Status::ProtocolError("malformed AddFacts payload"));
      }
      std::vector<Tuple> rows;
      rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) {
        Tuple row;
        if (!r.Row(&row)) {
          return error(Status::ProtocolError("malformed AddFacts row"));
        }
        rows.push_back(std::move(row));
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed AddFacts payload"));
      }
      Status status = testbed_->AddFacts(pred, rows);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kPrepare: {
      WireQueryOptions opts;
      std::string goal;
      if (!DecodeQueryOptions(&r, &opts) || !r.Str(&goal) || !r.Done()) {
        return error(Status::ProtocolError("malformed Prepare payload"));
      }
      auto parsed = datalog::ParseQuery(goal);
      if (!parsed.ok()) return error(parsed.status());
      uint32_t stmt_id = state->next_statement_id++;
      state->prepared[stmt_id] = ConnState::PreparedStatement{
          goal, opts.options, opts.report_formats};
      WireWriter w;
      w.U32(stmt_id);
      return EncodeFrame(MsgType::kPrepared, id, w.Take());
    }

    case MsgType::kExecute: {
      uint32_t n = 0;
      if (!r.U32(&n) || n > r.remaining() / 4 + 1) {
        return error(Status::ProtocolError("malformed Execute payload"));
      }
      std::vector<uint32_t> stmts;
      stmts.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t stmt_id = 0;
        if (!r.U32(&stmt_id)) {
          return error(Status::ProtocolError("malformed Execute payload"));
        }
        stmts.push_back(stmt_id);
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed Execute payload"));
      }
      rctx->decode_us = rctx->SinceArrivalUs() - rctx->queue_us;
      std::vector<QuerySpec> specs;
      specs.reserve(stmts.size());
      for (uint32_t stmt_id : stmts) {
        auto it = state->prepared.find(stmt_id);
        if (it == state->prepared.end()) {
          return error(Status::NotFound("no prepared statement with id " +
                                        std::to_string(stmt_id)));
        }
        // Prepared statements carry no per-execution trace context; an
        // Execute is traced only when its options asked for a trace at
        // Prepare time.
        WireQueryOptions opts;
        opts.options = it->second.options;
        opts.report_formats = it->second.report_formats;
        specs.push_back(QuerySpec{it->second.goal, opts});
      }
      return RunQueries(conn, state, id, specs, rctx,
                        frame.payload.size(), error);
    }

    case MsgType::kQuery: {
      WireQueryOptions opts;
      uint32_t n = 0;
      if (!DecodeQueryOptions(&r, &opts) || !r.U32(&n) ||
          n > r.remaining() / 4 + 1) {
        return error(Status::ProtocolError("malformed Query payload"));
      }
      std::vector<std::string> goals;
      goals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        std::string goal;
        if (!r.Str(&goal)) {
          return error(Status::ProtocolError("malformed Query payload"));
        }
        goals.push_back(std::move(goal));
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed Query payload"));
      }
      rctx->decode_us = rctx->SinceArrivalUs() - rctx->queue_us;
      std::vector<QuerySpec> specs;
      specs.reserve(goals.size());
      for (std::string& goal : goals) {
        specs.push_back(QuerySpec{std::move(goal), opts});
      }
      return RunQueries(conn, state, id, specs, rctx,
                        frame.payload.size(), error);
    }

    case MsgType::kSql: {
      std::string statement;
      if (!r.Str(&statement) || !r.Done()) {
        return error(Status::ProtocolError("malformed Sql payload"));
      }
      rctx->decode_us = rctx->SinceArrivalUs() - rctx->queue_us;
      const int64_t exec_start = rctx->SinceArrivalUs();
      auto result = testbed_->ExecuteSql(statement);
      if (!result.ok()) return error(result.status());
      rctx->execute_us = rctx->SinceArrivalUs() - exec_start;
      WireResultSet rs;
      rs.schema = std::move(result->schema);
      rs.rows = std::move(result->rows);
      rs.rows_affected = result->rows_affected;
      const int64_t encode_start = rctx->SinceArrivalUs();
      WireWriter w;
      w.U32(1);
      EncodeResultSet(&w, rs);
      rctx->encode_us = rctx->SinceArrivalUs() - encode_start;
      w.U32(0);  // trace section: SQL statements carry no span tree
      return EncodeFrame(MsgType::kResultSets, id, w.Take());
    }

    case MsgType::kUpdateStored: {
      if (!r.Done()) {
        return error(Status::ProtocolError("unexpected UpdateStored payload"));
      }
      auto stats = testbed_->UpdateStoredDkb();
      if (!stats.ok()) return error(stats.status());
      WireWriter w;
      w.I64(stats->rules_stored);
      w.I64(stats->total_us());
      return EncodeFrame(MsgType::kUpdated, id, w.Take());
    }

    case MsgType::kClearWorkspace: {
      if (!r.Done()) {
        return error(
            Status::ProtocolError("unexpected ClearWorkspace payload"));
      }
      testbed_->ClearWorkspace();
      return ok();
    }

    case MsgType::kListRules: {
      if (!r.Done()) {
        return error(Status::ProtocolError("unexpected ListRules payload"));
      }
      std::vector<std::string> rules = testbed_->ListRuleTexts();
      WireWriter w;
      w.U32(static_cast<uint32_t>(rules.size()));
      for (const std::string& rule : rules) w.Str(rule);
      return EncodeFrame(MsgType::kRuleList, id, w.Take());
    }

    case MsgType::kCloseSession: {
      *close_conn = true;
      return ok();
    }

    default:
      return error(Status::ProtocolError("unhandled request type"));
  }
}

}  // namespace dkb::net
