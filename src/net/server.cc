#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

#include "datalog/parser.h"
#include "net/convert.h"
#include "testbed/session.h"

namespace dkb::net {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " +
         std::error_code(errno, std::generic_category()).message();
}

std::string FormatPeer(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {0};
  if (inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) {
    return "unknown";
  }
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

/// Everything a connection accumulates beyond its registry counters: the
/// COW session opened by Hello and the prepared-statement table. Owned by
/// the connection's thread; never shared.
struct Server::ConnState {
  std::unique_ptr<testbed::Session> session;
  bool hello_done = false;

  struct PreparedStatement {
    std::string goal;
    testbed::QueryOptions options;
    uint8_t report_formats = kReportNone;
  };
  uint32_t next_statement_id = 1;
  std::map<uint32_t, PreparedStatement> prepared;
};

Server::~Server() { Stop(); }

Status Server::Start(testbed::Testbed* testbed, const ServerOptions& options) {
  if (started_) return Status::Internal("server already started");
  testbed_ = testbed;
  options_ = options;

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable(ErrnoMessage("socket"));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Unavailable(ErrnoMessage("bind"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) < 0) {
    Status status = Status::Unavailable(ErrnoMessage("listen"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stop_.store(false, std::memory_order_release);
  started_ = true;
  testbed_->SetConnectionsSource([this]() { return Connections(); });
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every live connection out of its blocking read; each thread then
  // unwinds, unregisters, and decrements the active count.
  {
    MutexLock lock(conns_mu_);
    for (auto& [id, conn] : conns_) shutdown(conn->fd, SHUT_RDWR);
  }
  {
    MutexLock lock(active_mu_);
    while (active_threads_ > 0) active_cv_.Wait(lock);
  }
  testbed_->SetConnectionsSource(nullptr);
  started_ = false;
}

std::vector<testbed::Testbed::ConnectionInfo> Server::Connections() const {
  MutexLock lock(conns_mu_);
  std::vector<testbed::Testbed::ConnectionInfo> out;
  out.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    testbed::Testbed::ConnectionInfo info;
    info.connection_id = conn->id;
    info.peer = conn->peer;
    info.session_id = conn->session_id.load(std::memory_order_relaxed);
    info.frames_received =
        conn->frames_received.load(std::memory_order_relaxed);
    info.bytes_in = conn->bytes_in.load(std::memory_order_relaxed);
    info.bytes_out = conn->bytes_out.load(std::memory_order_relaxed);
    info.queries = conn->queries.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout (stop-flag check) or EINTR

    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                    &peer_len);
    if (fd < 0) continue;
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->peer = FormatPeer(peer);
    {
      MutexLock lock(conns_mu_);
      conns_[conn->id] = conn;
    }
    {
      MutexLock lock(active_mu_);
      ++active_threads_;
    }
    std::thread([this, conn]() {
      Serve(conn);
      MutexLock lock(active_mu_);
      --active_threads_;
      active_cv_.NotifyAll();
    }).detach();
  }
}

bool Server::SendAll(Connection* conn, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(conn->fd, data.data() + off, data.size() - off,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  conn->bytes_out.fetch_add(static_cast<int64_t>(data.size()),
                            std::memory_order_relaxed);
  return true;
}

void Server::Serve(std::shared_ptr<Connection> conn) {
  ConnState state;
  FrameDecoder decoder(options_.max_frame_len);
  std::vector<char> buf(64 * 1024);
  bool open = true;

  while (open && !stop_.load(std::memory_order_acquire)) {
    ssize_t n = read(conn->fd, buf.data(), buf.size());
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: peer is gone
    conn->bytes_in.fetch_add(n, std::memory_order_relaxed);
    decoder.Append(buf.data(), static_cast<size_t>(n));

    Frame frame;
    for (;;) {
      FrameDecoder::Next next = decoder.Pop(&frame);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kError) {
        // The length prefix can no longer be trusted; report and close.
        SendAll(conn.get(),
                EncodeFrame(MsgType::kError, 0,
                            EncodeErrorPayload(decoder.error())));
        open = false;
        break;
      }
      conn->frames_received.fetch_add(1, std::memory_order_relaxed);
      bool close_conn = false;
      std::string response =
          HandleRequest(conn.get(), &state, frame, &close_conn);
      if (!SendAll(conn.get(), response) || close_conn) {
        open = false;
        break;
      }
    }
  }

  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->id);
  }
  close(conn->fd);
}

std::string Server::HandleRequest(Connection* conn, ConnState* state,
                                  const Frame& frame, bool* close_conn) {
  const uint32_t id = frame.request_id;
  auto error = [id](const Status& status) {
    return EncodeFrame(MsgType::kError, id, EncodeErrorPayload(status));
  };
  auto ok = [id]() { return EncodeFrame(MsgType::kOk, id, ""); };

  if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
    return error(Status::ProtocolError(
        "unknown request type " +
        std::to_string(static_cast<unsigned>(frame.type))));
  }

  WireReader r(frame.payload);

  if (!state->hello_done) {
    if (frame.type != MsgType::kHello) {
      *close_conn = true;
      return error(Status::ProtocolError(
          "first frame on a connection must be Hello"));
    }
    uint32_t version = 0;
    if (!r.U32(&version) || !r.Done()) {
      *close_conn = true;
      return error(Status::ProtocolError("malformed Hello payload"));
    }
    if (version != kProtocolVersion) {
      *close_conn = true;
      return error(Status::ProtocolError(
          "protocol version mismatch: client " + std::to_string(version) +
          ", server " + std::to_string(kProtocolVersion)));
    }
    auto session = testbed_->OpenSession();
    if (!session.ok()) {
      *close_conn = true;
      return error(session.status());
    }
    state->session = std::move(*session);
    state->hello_done = true;
    conn->session_id.store(state->session->id(), std::memory_order_relaxed);
    WireWriter w;
    w.U32(kProtocolVersion);
    w.U64(static_cast<uint64_t>(state->session->id()));
    return EncodeFrame(MsgType::kHelloOk, id, w.Take());
  }

  switch (frame.type) {
    case MsgType::kHello:
      return error(Status::ProtocolError("duplicate Hello"));

    case MsgType::kConsult: {
      std::string program;
      if (!r.Str(&program) || !r.Done()) {
        return error(Status::ProtocolError("malformed Consult payload"));
      }
      Status status = testbed_->Consult(program);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kAddRule:
    case MsgType::kRetractRule: {
      std::string rule;
      if (!r.Str(&rule) || !r.Done()) {
        return error(Status::ProtocolError("malformed rule payload"));
      }
      Status status = frame.type == MsgType::kAddRule
                          ? testbed_->AddRule(rule)
                          : testbed_->RetractRule(rule);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kDefineBase: {
      std::string pred;
      uint16_t n = 0;
      if (!r.Str(&pred) || !r.U16(&n)) {
        return error(Status::ProtocolError("malformed DefineBase payload"));
      }
      km::PredicateTypes types;
      types.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        uint8_t type = 0;
        if (!r.U8(&type) ||
            type > static_cast<uint8_t>(DataType::kVarchar) ||
            type == static_cast<uint8_t>(DataType::kInvalid)) {
          return error(Status::ProtocolError("bad column type byte"));
        }
        types.push_back(static_cast<DataType>(type));
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed DefineBase payload"));
      }
      Status status = testbed_->DefineBase(pred, types);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kAddFacts: {
      std::string pred;
      uint32_t nrows = 0;
      if (!r.Str(&pred) || !r.U32(&nrows) ||
          nrows > r.remaining() / 2) {
        return error(Status::ProtocolError("malformed AddFacts payload"));
      }
      std::vector<Tuple> rows;
      rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) {
        Tuple row;
        if (!r.Row(&row)) {
          return error(Status::ProtocolError("malformed AddFacts row"));
        }
        rows.push_back(std::move(row));
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed AddFacts payload"));
      }
      Status status = testbed_->AddFacts(pred, rows);
      return status.ok() ? ok() : error(status);
    }

    case MsgType::kPrepare: {
      WireQueryOptions opts;
      std::string goal;
      if (!DecodeQueryOptions(&r, &opts) || !r.Str(&goal) || !r.Done()) {
        return error(Status::ProtocolError("malformed Prepare payload"));
      }
      auto parsed = datalog::ParseQuery(goal);
      if (!parsed.ok()) return error(parsed.status());
      uint32_t stmt_id = state->next_statement_id++;
      state->prepared[stmt_id] = ConnState::PreparedStatement{
          goal, opts.options, opts.report_formats};
      WireWriter w;
      w.U32(stmt_id);
      return EncodeFrame(MsgType::kPrepared, id, w.Take());
    }

    case MsgType::kExecute: {
      uint32_t n = 0;
      if (!r.U32(&n) || n > r.remaining() / 4 + 1) {
        return error(Status::ProtocolError("malformed Execute payload"));
      }
      std::vector<uint32_t> stmts;
      stmts.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t stmt_id = 0;
        if (!r.U32(&stmt_id)) {
          return error(Status::ProtocolError("malformed Execute payload"));
        }
        stmts.push_back(stmt_id);
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed Execute payload"));
      }
      WireWriter w;
      w.U32(static_cast<uint32_t>(stmts.size()));
      for (uint32_t stmt_id : stmts) {
        auto it = state->prepared.find(stmt_id);
        if (it == state->prepared.end()) {
          return error(Status::NotFound("no prepared statement with id " +
                                        std::to_string(stmt_id)));
        }
        conn->queries.fetch_add(1, std::memory_order_relaxed);
        auto outcome =
            state->session->Query(it->second.goal, it->second.options);
        if (!outcome.ok()) return error(outcome.status());
        EncodeResultSet(&w, ResultSetFromOutcome(std::move(*outcome),
                                                 it->second.report_formats));
      }
      return EncodeFrame(MsgType::kResultSets, id, w.Take());
    }

    case MsgType::kQuery: {
      WireQueryOptions opts;
      uint32_t n = 0;
      if (!DecodeQueryOptions(&r, &opts) || !r.U32(&n) ||
          n > r.remaining() / 4 + 1) {
        return error(Status::ProtocolError("malformed Query payload"));
      }
      std::vector<std::string> goals;
      goals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        std::string goal;
        if (!r.Str(&goal)) {
          return error(Status::ProtocolError("malformed Query payload"));
        }
        goals.push_back(std::move(goal));
      }
      if (!r.Done()) {
        return error(Status::ProtocolError("malformed Query payload"));
      }
      WireWriter w;
      w.U32(static_cast<uint32_t>(goals.size()));
      for (const std::string& goal : goals) {
        conn->queries.fetch_add(1, std::memory_order_relaxed);
        auto outcome = state->session->Query(goal, opts.options);
        if (!outcome.ok()) return error(outcome.status());
        EncodeResultSet(&w, ResultSetFromOutcome(std::move(*outcome),
                                                 opts.report_formats));
      }
      return EncodeFrame(MsgType::kResultSets, id, w.Take());
    }

    case MsgType::kSql: {
      std::string statement;
      if (!r.Str(&statement) || !r.Done()) {
        return error(Status::ProtocolError("malformed Sql payload"));
      }
      auto result = testbed_->ExecuteSql(statement);
      if (!result.ok()) return error(result.status());
      WireResultSet rs;
      rs.schema = std::move(result->schema);
      rs.rows = std::move(result->rows);
      rs.rows_affected = result->rows_affected;
      WireWriter w;
      w.U32(1);
      EncodeResultSet(&w, rs);
      return EncodeFrame(MsgType::kResultSets, id, w.Take());
    }

    case MsgType::kUpdateStored: {
      if (!r.Done()) {
        return error(Status::ProtocolError("unexpected UpdateStored payload"));
      }
      auto stats = testbed_->UpdateStoredDkb();
      if (!stats.ok()) return error(stats.status());
      WireWriter w;
      w.I64(stats->rules_stored);
      w.I64(stats->total_us());
      return EncodeFrame(MsgType::kUpdated, id, w.Take());
    }

    case MsgType::kClearWorkspace: {
      if (!r.Done()) {
        return error(
            Status::ProtocolError("unexpected ClearWorkspace payload"));
      }
      testbed_->ClearWorkspace();
      return ok();
    }

    case MsgType::kListRules: {
      if (!r.Done()) {
        return error(Status::ProtocolError("unexpected ListRules payload"));
      }
      std::vector<std::string> rules = testbed_->ListRuleTexts();
      WireWriter w;
      w.U32(static_cast<uint32_t>(rules.size()));
      for (const std::string& rule : rules) w.Str(rule);
      return EncodeFrame(MsgType::kRuleList, id, w.Take());
    }

    case MsgType::kCloseSession: {
      *close_conn = true;
      return ok();
    }

    default:
      return error(Status::ProtocolError("unhandled request type"));
  }
}

}  // namespace dkb::net
