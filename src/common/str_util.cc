#include "common/str_util.h"

#include <cctype>
#include <cstdio>

namespace dkb {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dkb
