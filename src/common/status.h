#ifndef DKB_COMMON_STATUS_H_
#define DKB_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace dkb {

/// Error categories used across the testbed. Mirrors the failure surfaces of
/// the paper's two layers: SQL/DBMS errors and Knowledge Manager errors —
/// plus the transport-level categories the network server introduces.
///
/// The numeric values are the wire representation (u16 in Error frames, see
/// src/net/wire.h) and are therefore STABLE: never renumber or remove an
/// entry, only append, so server-side errors round-trip to remote clients
/// of any build with code + message intact.
enum class ErrorCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,  // malformed input (bad SQL, bad Horn clause, ...)
  kNotFound = 2,         // unknown table / predicate / column
  kAlreadyExists = 3,    // duplicate table / index name
  kTypeError = 4,        // type inference or type check failure
  kSemanticError = 5,    // undefined predicate, arity mismatch, unsafe rule
  kInternal = 6,         // invariant violation inside the engine
  kUnimplemented = 7,
  kUnavailable = 8,          // connection refused / reset / server shut down
  kProtocolError = 9,        // malformed or out-of-contract wire frame
  kFailedPrecondition = 10,  // system state rejects the op (non-empty target)
};

/// Historical name for ErrorCode; the enumerators predate the wire protocol
/// and both spellings are used interchangeably.
using StatusCode = ErrorCode;

/// Returns a short human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Maps a u16 read off the wire back to an ErrorCode. Values outside the
/// known range (a newer peer) degrade to kInternal rather than failing.
ErrorCode ErrorCodeFromWire(uint16_t wire);

/// The stable numeric wire form of `code`.
inline uint16_t ErrorCodeToWire(ErrorCode code) {
  return static_cast<uint16_t>(code);
}

/// Status carries success or an error code plus message. The library does not
/// throw; every fallible public entry point returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status by design: enables
  /// `return value;` and `return Status::NotFound(...);` in the same function.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define DKB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dkb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`.
#define DKB_ASSIGN_OR_RETURN(lhs, rexpr)         \
  DKB_ASSIGN_OR_RETURN_IMPL(                     \
      DKB_STATUS_CONCAT(_dkb_result, __LINE__), lhs, rexpr)

#define DKB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define DKB_STATUS_CONCAT_IMPL(x, y) x##y
#define DKB_STATUS_CONCAT(x, y) DKB_STATUS_CONCAT_IMPL(x, y)

}  // namespace dkb

#endif  // DKB_COMMON_STATUS_H_
