#ifndef DKB_COMMON_VALUE_H_
#define DKB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/interner.h"

namespace dkb {

/// Column data types supported by the relational engine. The 1988 testbed's
/// DBMS exposed `char` and `integer` columns (see the paper's dictionary
/// schemas); we match that surface.
enum class DataType : uint8_t {
  kInvalid = 0,
  kInteger,  // 64-bit signed
  kVarchar,  // variable-length string
};

/// Returns "INTEGER" / "VARCHAR" / "INVALID".
const char* DataTypeName(DataType type);

/// A single column value: NULL, integer, or string.
///
/// Strings come in two representations with identical observable semantics:
/// an owned std::string, or an interned reference (dense uint32 id) into the
/// process-wide StringDict. Interned values copy and hash in O(1) — copying
/// moves 4 bytes instead of a heap string, equality compares ids when both
/// sides are interned, and hashing reads the dictionary's precomputed
/// content hash (which agrees with hashing the same string un-interned, so
/// hash containers may mix both representations). Comparison, ordering,
/// rendering, and ToSqlLiteral are representation-blind.
///
/// Values are ordered and hashable so they can drive index keys, join keys,
/// and set operations. NULL compares equal to NULL and sorts first; that is
/// sufficient for the testbed, which never produces NULLs from Datalog
/// evaluation but allows them in raw SQL tables.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }

  /// An interned VARCHAR; falls back to the owned representation if the
  /// dictionary is full.
  static Value Interned(std::string_view s) {
    uint32_t id = GlobalStringDict().Intern(s);
    if (id == StringDict::kInvalidId) return Value(std::string(s));
    return Value(DictRef{id});
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(rep_) || is_interned();
  }
  /// True only for the interned string representation.
  bool is_interned() const { return std::holds_alternative<DictRef>(rep_); }

  /// Type of this value; NULL reports kInvalid (untyped).
  DataType type() const {
    if (is_int()) return DataType::kInteger;
    if (is_string()) return DataType::kVarchar;
    return DataType::kInvalid;
  }

  /// Requires is_int().
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  /// Requires is_string(). For interned values the reference points into
  /// the process-wide dictionary and is stable for the process lifetime.
  const std::string& as_string() const {
    if (const auto* ref = std::get_if<DictRef>(&rep_)) {
      return GlobalStringDict().Get(ref->id);
    }
    return std::get<std::string>(rep_);
  }
  /// Requires is_interned(): the dictionary id.
  uint32_t interned_id() const { return std::get<DictRef>(rep_).id; }

  /// Converts an owned VARCHAR to the interned representation in place
  /// (no-op for NULL, integers, and already-interned values). Storage does
  /// this on every insert so scans hand out cheap values.
  void InternInPlace() {
    if (const auto* s = std::get_if<std::string>(&rep_)) {
      uint32_t id = GlobalStringDict().Intern(*s);
      if (id != StringDict::kInvalidId) rep_ = DictRef{id};
    }
  }

  bool operator==(const Value& other) const {
    if (rep_.index() == other.rep_.index()) {
      // Same representation: interned compares ids (equal iff same string).
      return rep_ == other.rep_;
    }
    // Mixed representations are equal only if both are strings with the
    // same content.
    if (is_string() && other.is_string()) {
      return as_string() == other.as_string();
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// NULL < integers < strings; within a type, natural order.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  size_t Hash() const;

  /// SQL-literal rendering: NULL, 42, 'text' (with '' escaping).
  std::string ToSqlLiteral() const;
  /// Plain rendering without quotes (for result display).
  std::string ToString() const;

 private:
  /// Interned-string representation: index into GlobalStringDict.
  struct DictRef {
    uint32_t id;
    bool operator==(const DictRef& o) const { return id == o.id; }
    bool operator!=(const DictRef& o) const { return id != o.id; }
    bool operator<(const DictRef& o) const {
      // Never used for value ordering (Value::operator< resolves content);
      // defined only so the variant remains ordered.
      return id < o.id;
    }
  };

  explicit Value(DictRef ref) : rep_(ref) {}

  /// Ordering rank of the contained type: NULL < int < string. Both string
  /// representations share a rank so ordering is representation-blind.
  int TypeRank() const {
    if (is_null()) return 0;
    if (is_int()) return 1;
    return 2;
  }

  std::variant<std::monostate, int64_t, std::string, DictRef> rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dkb

#endif  // DKB_COMMON_VALUE_H_
