#ifndef DKB_COMMON_VALUE_H_
#define DKB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace dkb {

/// Column data types supported by the relational engine. The 1988 testbed's
/// DBMS exposed `char` and `integer` columns (see the paper's dictionary
/// schemas); we match that surface.
enum class DataType : uint8_t {
  kInvalid = 0,
  kInteger,  // 64-bit signed
  kVarchar,  // variable-length string
};

/// Returns "INTEGER" / "VARCHAR" / "INVALID".
const char* DataTypeName(DataType type);

/// A single column value: NULL, integer, or string.
///
/// Values are ordered and hashable so they can drive index keys, join keys,
/// and set operations. NULL compares equal to NULL and sorts first; that is
/// sufficient for the testbed, which never produces NULLs from Datalog
/// evaluation but allows them in raw SQL tables.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  /// Type of this value; NULL reports kInvalid (untyped).
  DataType type() const {
    if (is_int()) return DataType::kInteger;
    if (is_string()) return DataType::kVarchar;
    return DataType::kInvalid;
  }

  /// Requires is_int().
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  /// Requires is_string().
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return rep_ != other.rep_; }
  /// NULL < integers < strings; within a type, natural order.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  size_t Hash() const;

  /// SQL-literal rendering: NULL, 42, 'text' (with '' escaping).
  std::string ToSqlLiteral() const;
  /// Plain rendering without quotes (for result display).
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, std::string> rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dkb

#endif  // DKB_COMMON_VALUE_H_
