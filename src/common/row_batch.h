#ifndef DKB_COMMON_ROW_BATCH_H_
#define DKB_COMMON_ROW_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/value.h"

namespace dkb {

/// A row: fixed-length vector of values (declared here to keep RowBatch in
/// common/; storage/tuple.h re-exports the alias with its hash helpers).
using Tuple = std::vector<Value>;

/// The execution engine's unit of data flow: up to ~kCapacity rows stored
/// column-major (one std::vector<Value> per column) plus an optional
/// selection vector.
///
/// Physical rows are what AppendRow stored; the selection vector, when
/// active, names the visible subset as physical indexes in ascending order.
/// All logical accessors (size / At / CopyRowTo / MaterializeTuple) resolve
/// through the selection, so downstream operators never see filtered-out
/// rows. Filters narrow a batch in place with ComposeSelection instead of
/// copying survivors — with interned VARCHARs the values behind a batch are
/// cheap to copy, but not copying at all is cheaper still.
///
/// A batch may exceed kCapacity (joins append every match for a probe
/// batch); the cap is the producer's target, not an invariant.
class RowBatch {
 public:
  /// Target rows per batch; chosen so a batch of int64/interned values
  /// stays ~32KB per column group (L1/L2-friendly) while amortizing the
  /// per-batch virtual dispatch to noise.
  static constexpr size_t kCapacity = 1024;

  RowBatch() = default;

  /// Clears rows and selection and sets the column count. Column storage is
  /// retained across Reset so steady-state batches never reallocate.
  void Reset(size_t num_columns) {
    if (cols_.size() != num_columns) cols_.resize(num_columns);
    for (auto& col : cols_) col.clear();
    sel_.clear();
    sel_active_ = false;
  }

  size_t num_columns() const { return cols_.size(); }

  /// Rows stored, ignoring the selection.
  size_t physical_size() const { return cols_.empty() ? 0 : cols_[0].size(); }

  /// Visible rows (through the selection).
  size_t size() const {
    return sel_active_ ? sel_.size() : physical_size();
  }
  bool empty() const { return size() == 0; }

  bool full() const { return physical_size() >= kCapacity; }

  /// Physical index of visible row `i`.
  size_t PhysicalIndex(size_t i) const { return sel_active_ ? sel_[i] : i; }

  /// Value at visible row `i`, column `c`.
  const Value& At(size_t i, size_t c) const {
    return cols_[c][PhysicalIndex(i)];
  }

  /// Column accessors addressed by *physical* row index (for vectorized
  /// expression kernels that iterate a selection themselves).
  const Value& AtPhysical(size_t row, size_t c) const { return cols_[c][row]; }
  const std::vector<Value>& column(size_t c) const { return cols_[c]; }
  std::vector<Value>& column(size_t c) { return cols_[c]; }

  void AppendRow(const Tuple& row) {
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
  }
  void AppendRow(Tuple&& row) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(std::move(row[c]));
    }
  }
  /// Appends the concatenation of `left` and visible row `i` of `right`
  /// (hash/index join output).
  void AppendConcat(const Tuple& left, const RowBatch& right, size_t i) {
    size_t c = 0;
    for (; c < left.size(); ++c) cols_[c].push_back(left[c]);
    for (size_t rc = 0; rc < right.num_columns(); ++rc, ++c) {
      cols_[c].push_back(right.At(i, rc));
    }
  }
  void AppendConcat(const Tuple& left, const Tuple& right) {
    size_t c = 0;
    for (; c < left.size(); ++c) cols_[c].push_back(left[c]);
    for (size_t rc = 0; rc < right.size(); ++rc, ++c) {
      cols_[c].push_back(right[rc]);
    }
  }

  /// Copies visible row `i` into *out (resizing it to the column count).
  void CopyRowTo(size_t i, Tuple* out) const {
    const size_t p = PhysicalIndex(i);
    out->resize(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) (*out)[c] = cols_[c][p];
  }

  Tuple MaterializeTuple(size_t i) const {
    Tuple t;
    CopyRowTo(i, &t);
    return t;
  }

  /// Narrows visibility to the given *logical* row indexes (ascending).
  /// Composes with any active selection, so filters stack.
  void ComposeSelection(const std::vector<uint32_t>& keep) {
    std::vector<uint32_t> next;
    next.reserve(keep.size());
    for (uint32_t i : keep) {
      next.push_back(static_cast<uint32_t>(PhysicalIndex(i)));
    }
    sel_ = std::move(next);
    sel_active_ = true;
  }

  /// Keeps only the first `n` visible rows.
  void Truncate(size_t n) {
    if (n >= size()) return;
    if (!sel_active_) {
      sel_.resize(n);
      for (size_t i = 0; i < n; ++i) sel_[i] = static_cast<uint32_t>(i);
      sel_active_ = true;
    } else {
      sel_.resize(n);
    }
  }

  bool selection_active() const { return sel_active_; }

  /// Debug rendering: one line per visible row, values '|'-separated, with
  /// a physical/visible count header. Not for user-facing output.
  std::string ToString() const;

  void Swap(RowBatch& other) {
    cols_.swap(other.cols_);
    sel_.swap(other.sel_);
    std::swap(sel_active_, other.sel_active_);
  }

 private:
  std::vector<std::vector<Value>> cols_;
  std::vector<uint32_t> sel_;
  bool sel_active_ = false;
};

}  // namespace dkb

#endif  // DKB_COMMON_ROW_BATCH_H_
