#ifndef DKB_COMMON_METRICS_H_
#define DKB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace dkb::metrics {

/// Monotonic counter. Updates are relaxed atomics: increments from any
/// thread are cheap and eventually summed correctly; nothing orders
/// against them.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (pool sizes, cache entry counts).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two bucketed histogram of non-negative int64 samples
/// (microsecond latencies, cardinalities). Bucket i counts samples in
/// [2^(i-1), 2^i); bucket 0 counts zeros. Relaxed atomics throughout: a
/// snapshot taken while writers are active is approximate, which is fine
/// for observability.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Observe(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper bound of the bucket containing quantile `q` in [0, 1]
  /// (approximate: within 2x of the true value).
  int64_t ApproxQuantile(double q) const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Process-wide registry of named metrics.
///
/// Naming scheme (see DESIGN.md "Observability"): dot-separated lowercase
/// path `dkb.<layer>.<what>`, with `_us` suffix for time histograms, e.g.
/// dkb.query.count, dkb.query.total_us, dkb.storage.rows_inserted.
///
/// Lookup takes a mutex; hot call sites should cache the returned
/// reference (entries are never removed, so references stay valid for the
/// registry's lifetime):
///
///   static metrics::Counter& c =
///       metrics::GlobalMetrics().counter("dkb.sql.statements");
///   c.Add();
/// One metric rendered into plain integers, for tabular consumers
/// (sys.metrics). For counters and gauges only `value` is meaningful; for
/// histograms `value` carries the sample count and the remaining fields the
/// aggregate/quantile summary.
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  int64_t value = 0;
  int64_t sum = 0;
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) DKB_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) DKB_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) DKB_EXCLUDES(mu_);

  /// One JSON object with every registered metric, sorted by name:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count": .., "sum": .., "mean": .., "max": .., "p50": .., "p99": ..}}}.
  std::string SnapshotJson() const DKB_EXCLUDES(mu_);

  /// Every registered metric as a flat row list, counters then gauges then
  /// histograms, each group sorted by name. Values are read with relaxed
  /// loads, so a snapshot taken under concurrent writers is approximate.
  std::vector<MetricSample> Snapshot() const DKB_EXCLUDES(mu_);

  /// Prometheus text exposition (version 0.0.4) of every registered
  /// metric. Dots in metric names become underscores (`dkb.query.count` →
  /// `dkb_query_count`); counters and gauges emit one sample each,
  /// histograms emit `_count`/`_sum`/`_max`/`_p50`/`_p99` summary samples.
  /// Each family is preceded by `# TYPE` (histograms export as gauges of
  /// their summary values, which is what pull-based scrapers expect for
  /// pre-aggregated quantiles).
  std::string RenderPrometheus() const DKB_EXCLUDES(mu_);

  /// Zeroes every metric (tests and bench warmup isolation); the set of
  /// registered names is unchanged.
  void ResetAll() DKB_EXCLUDES(mu_);

 private:
  /// mu_ guards the name->metric maps only. The metric objects themselves
  /// are updated with relaxed atomics and are never removed, so references
  /// handed out by counter()/gauge()/histogram() stay valid and lock-free
  /// for the registry's lifetime.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DKB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DKB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DKB_GUARDED_BY(mu_);
};

/// The process-wide registry every layer reports into.
MetricsRegistry& GlobalMetrics();

/// Checks that `text` is well-formed Prometheus text exposition: every
/// non-comment line is `<name>[{labels}] <value>`, names match
/// [a-zA-Z_:][a-zA-Z0-9_:]*, values parse as numbers, and every `# TYPE`
/// names a valid metric type. On failure returns false and, when `error`
/// is non-null, stores a line-numbered description. Used by the CI smoke
/// step and dkb_top --check to validate the live /metrics payload.
bool ValidatePrometheusText(const std::string& text, std::string* error);

/// Test helper: zeroes every global metric on construction and again on
/// destruction, so a test body observes only its own activity and leaves
/// nothing behind for later tests. Cached `static Counter&` references at
/// call sites stay valid (the registry itself is never swapped).
class ScopedMetricsReset {
 public:
  ScopedMetricsReset() { GlobalMetrics().ResetAll(); }
  ~ScopedMetricsReset() { GlobalMetrics().ResetAll(); }
  ScopedMetricsReset(const ScopedMetricsReset&) = delete;
  ScopedMetricsReset& operator=(const ScopedMetricsReset&) = delete;
};

}  // namespace dkb::metrics

#endif  // DKB_COMMON_METRICS_H_
