#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/parallelism.h"

namespace dkb {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!HasWorkOrShutdown()) cv_.Wait(lock);
      if (queue_head_ < queue_.size()) {
        task = std::move(queue_[queue_head_]);
        ++queue_head_;
        if (queue_head_ == queue_.size()) {
          queue_.clear();
          queue_head_ = 0;
        }
      } else if (shutdown_) {
        return;
      }
    }
    if (task) task();
  }
}

void ThreadPool::ParallelForRanges(
    size_t begin, size_t end,
    const std::function<void(size_t slot, size_t lo, size_t hi)>& body,
    size_t min_chunk) {
  if (begin >= end) return;
  const size_t total = end - begin;
  min_chunk = std::max<size_t>(min_chunk, 1);
  const size_t max_participants = threads_.size() + 1;
  size_t num_chunks = std::min(total / min_chunk, 4 * max_participants);
  if (num_chunks <= 1 || threads_.empty()) {
    body(0, begin, end);
    return;
  }
  const size_t chunk = (total + num_chunks - 1) / num_chunks;

  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    // The mutex guards no data — done is atomic — it only serializes the
    // notify against the waiter's check-then-sleep below.
    Mutex mu;
    CondVar cv;
  };
  auto shared = std::make_shared<Shared>();
  const size_t helper_count = std::min(threads_.size(), num_chunks - 1);

  auto run_chunks = [shared, begin, end, chunk, num_chunks, &body](size_t slot) {
    while (true) {
      size_t c = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      size_t lo = begin + c * chunk;
      size_t hi = std::min(end, lo + chunk);
      if (lo < hi) body(slot, lo, hi);
      size_t finished = shared->done.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == num_chunks) {
        MutexLock lock(shared->mu);
        shared->cv.NotifyAll();
      }
    }
  };

  // Helpers capture `shared` by value; they may outlive this frame only
  // until their first cursor read, after which they exit immediately.
  for (size_t h = 0; h < helper_count; ++h) {
    size_t slot = h + 1;
    Submit([run_chunks, slot] { run_chunks(slot); });
  }
  run_chunks(0);

  MutexLock lock(shared->mu);
  while (shared->done.load(std::memory_order_acquire) < num_chunks) {
    shared->cv.Wait(lock);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body,
                             size_t min_chunk) {
  ParallelForRanges(
      begin, end,
      [&body](size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      min_chunk);
}

ThreadPool& GlobalThreadPool() {
  // Sized once from the global ParallelismPolicy (which folds in the legacy
  // DKB_THREADS environment variable); later policy changes don't resize.
  static ThreadPool* pool =
      new ThreadPool(GlobalParallelismPolicy().ResolvedThreads());
  return *pool;
}

}  // namespace dkb
