#include "common/rng.h"

namespace dkb {

Rng::Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ull) {
  // Warm up so nearby seeds diverge quickly.
  Next();
  Next();
}

uint64_t Rng::Next() {
  // splitmix64.
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) / 9007199254740992.0;  // 2^53
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace dkb
