#include "common/parallelism.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace dkb {

size_t ParallelismPolicy::ResolvedThreads() const {
  if (threads > 0) return static_cast<size_t>(threads);
  // Read once per call, before any dependent worker exists; nothing in the
  // process calls setenv.
  if (const char* env = std::getenv("DKB_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
    return static_cast<size_t>(std::max(0, std::atoi(env)));
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

ParallelismPolicy& GlobalParallelismPolicy() {
  // Leaked on purpose: read by the thread pool's initializer and by
  // operators at arbitrary shutdown order.
  static ParallelismPolicy* policy = new ParallelismPolicy();
  return *policy;
}

}  // namespace dkb
