#ifndef DKB_COMMON_PARALLELISM_H_
#define DKB_COMMON_PARALLELISM_H_

#include <cstddef>

namespace dkb {

/// The engine's parallelism knobs in one place. Historically these were
/// spread over three surfaces — exec::ParallelTuning (morsel thresholds),
/// lfp::EvalOptions::parallelism (wavefront width), and the DKB_THREADS
/// environment variable (pool size) — which made it impossible to reason
/// about a query's effective parallelism from any single struct. The old
/// surfaces survive as deprecated delegates; new code reads and writes this.
///
/// One policy instance is process-wide (GlobalParallelismPolicy); queries
/// may carry an override through testbed::QueryOptions::WithPolicy, which
/// wins for the fields a query-level knob exists for (lfp_parallelism).
struct ParallelismPolicy {
  /// Worker threads in the global pool. 0 = auto: DKB_THREADS when set,
  /// otherwise hardware_concurrency - 1 (the caller participates too).
  /// Read once at pool construction; later changes have no effect.
  int threads = 0;

  /// Rule-graph cliques (SCCs) the LFP run time may evaluate concurrently:
  /// 1 = serial, 0 = size to the pool, N > 1 = at most N at a time.
  int lfp_parallelism = 1;

  /// Minimum table slots before a sequential scan splits into shard × morsel
  /// grid cells on the pool; below it the serial path runs.
  size_t seq_scan_min_rows = 8192;
  /// Minimum build-side rows before a hash join hash-partitions its build.
  size_t hash_build_min_rows = 8192;
  /// Rows per scan morsel (grid-cell granularity within a shard).
  size_t morsel_rows = 4096;

  ParallelismPolicy& WithThreads(int n) {
    threads = n;
    return *this;
  }
  ParallelismPolicy& WithLfpParallelism(int n) {
    lfp_parallelism = n;
    return *this;
  }
  ParallelismPolicy& WithMorselRows(size_t n) {
    morsel_rows = n;
    return *this;
  }

  /// `threads` resolved against DKB_THREADS and the hardware: what the
  /// global pool is (or would be) sized to.
  size_t ResolvedThreads() const;
};

/// Process-wide policy. Mutable so benches and tests can force either the
/// serial or the parallel path; mutate only before spinning up work.
ParallelismPolicy& GlobalParallelismPolicy();

}  // namespace dkb

#endif  // DKB_COMMON_PARALLELISM_H_
