#ifndef DKB_COMMON_STR_UTIL_H_
#define DKB_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dkb {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// ASCII lower-casing (SQL keywords and identifiers are case-insensitive).
std::string AsciiLower(std::string_view s);
/// ASCII upper-casing.
std::string AsciiUpper(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string StrTrim(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// control characters). Shared by every JSON emitter in the tree so escaping
/// bugs are fixed in one place.
std::string JsonEscape(std::string_view s);

}  // namespace dkb

#endif  // DKB_COMMON_STR_UTIL_H_
