#ifndef DKB_COMMON_SYNC_H_
#define DKB_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

// ---------------------------------------------------------------------------
// Clang thread-safety annotations (-Wthread-safety).
//
// Every mutex, reader-writer lock, and condition variable in the engine goes
// through the dkb::Mutex / dkb::SharedMutex / dkb::CondVar wrappers below so
// that lock discipline is machine-checked at compile time: shared state is
// declared DKB_GUARDED_BY(its lock), functions that expect a lock held are
// declared DKB_REQUIRES(it), and clang refuses to build code that reads or
// writes guarded state without the right capability. GCC compiles the
// attributes away to nothing, so the annotations are free outside the CI
// static-analysis job (see DESIGN.md "Concurrency invariants & static
// analysis" and the `thread-safety` workflow job).
//
// The macro set mirrors the reference header in the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), DKB_-prefixed to
// stay out of other headers' way.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define DKB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DKB_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lock) type; the string names the
/// capability kind in diagnostics ("mutex", "shared_mutex").
#define DKB_CAPABILITY(x) DKB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define DKB_SCOPED_CAPABILITY DKB_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable only with the capability held (shared suffices for
/// reads, exclusive for writes).
#define DKB_GUARDED_BY(x) DKB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define DKB_PT_GUARDED_BY(x) DKB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations, checked under -Wthread-safety-beta: this
/// capability must be acquired before/after the listed ones.
#define DKB_ACQUIRED_BEFORE(...) \
  DKB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DKB_ACQUIRED_AFTER(...) \
  DKB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function precondition: caller holds the capability (exclusively / at
/// least shared). The function does not change the lock state.
#define DKB_REQUIRES(...) \
  DKB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DKB_REQUIRES_SHARED(...) \
  DKB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define DKB_ACQUIRE(...) \
  DKB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DKB_ACQUIRE_SHARED(...) \
  DKB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define DKB_RELEASE(...) \
  DKB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DKB_RELEASE_SHARED(...) \
  DKB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define DKB_RELEASE_GENERIC(...) \
  DKB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define DKB_TRY_ACQUIRE(...) \
  DKB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DKB_TRY_ACQUIRE_SHARED(...) \
  DKB_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function may not be called with the capability held (it acquires it
/// itself; calling it while holding would self-deadlock).
#define DKB_EXCLUDES(...) DKB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held here.
#define DKB_ASSERT_CAPABILITY(x) DKB_THREAD_ANNOTATION_(assert_capability(x))
#define DKB_ASSERT_SHARED_CAPABILITY(x) \
  DKB_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the named capability (accessor pattern:
/// callers may lock through the accessor and the analysis still unifies it
/// with direct member accesses).
#define DKB_RETURN_CAPABILITY(x) DKB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch. Allowed ONLY inside this header (the CI gate counts
/// occurrences elsewhere as review failures): the wrappers themselves are
/// where the analysis necessarily ends and std primitives begin.
#define DKB_NO_THREAD_SAFETY_ANALYSIS \
  DKB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dkb {

class CondVar;

/// Annotated std::mutex. Prefer the scoped MutexLock; Lock/Unlock exist for
/// the rare manually-paired case and for the wrappers below.
class DKB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DKB_ACQUIRE() { mu_.lock(); }
  void Unlock() DKB_RELEASE() { mu_.unlock(); }
  bool TryLock() DKB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated std::shared_mutex: one writer or many readers. Prefer the
/// scoped WriterLock / ReaderLock.
class DKB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DKB_ACQUIRE() { mu_.lock(); }
  void Unlock() DKB_RELEASE() { mu_.unlock(); }
  void LockShared() DKB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() DKB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (drop-in for std::lock_guard /
/// std::unique_lock, which the analysis cannot see through).
class DKB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DKB_ACQUIRE(mu) : mu_(mu) { mu.Lock(); }
  ~MutexLock() DKB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// RAII shared (read) lock on a SharedMutex.
class DKB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) DKB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu.LockShared();
  }
  ~ReaderLock() DKB_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (write) lock on a SharedMutex.
class DKB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DKB_ACQUIRE(mu) : mu_(mu) {
    mu.Lock();
  }
  ~WriterLock() DKB_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with dkb::Mutex.
///
/// Wait() releases and reacquires the mutex internally (via lock adoption on
/// the underlying std::mutex, so there is no extra cost over
/// std::condition_variable). That round-trip is invisible to the analysis,
/// which is sound here because the lock state on return equals the state on
/// entry. Callers must re-check their predicate in a loop; write the loop
/// with the condition inline (or in a DKB_REQUIRES helper) rather than a
/// lambda — the analysis checks lambda bodies as separate functions and
/// would not see the held lock:
///
///   MutexLock lock(mu_);
///   while (!done_) cv_.Wait(lock);   // done_ is DKB_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `lock` must be the
  /// currently-held lock protecting the wait predicate.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> inner(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // ownership stays with `lock`
  }

  /// Like Wait but gives up after `millis` milliseconds. Returns false on
  /// timeout, true when notified (or spuriously woken) first. Same
  /// predicate-loop discipline as Wait; periodic background threads use the
  /// timeout as their tick.
  bool WaitFor(MutexLock& lock, int64_t millis) {
    std::unique_lock<std::mutex> inner(lock.mu_.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(inner, std::chrono::milliseconds(millis));
    inner.release();  // ownership stays with `lock`
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated-member idiom: a value bundled with the mutex that guards it,
/// so the pairing is part of the type and cannot drift. Access only under
/// the lock obtained through mu():
///
///   Guarded<std::unordered_map<K, V>> cache_;
///   ...
///   MutexLock lock(cache_.mu());
///   cache_.Ref().emplace(k, v);      // checked: lock is held
///
/// The mu() accessor carries DKB_RETURN_CAPABILITY, so the analysis unifies
/// locks taken through it with the guarded member.
template <typename T>
class Guarded {
 public:
  Guarded() = default;
  template <typename... Args>
  explicit Guarded(Args&&... args) : value_(std::forward<Args>(args)...) {}

  Guarded(const Guarded&) = delete;
  Guarded& operator=(const Guarded&) = delete;

  Mutex& mu() const DKB_RETURN_CAPABILITY(mu_) { return mu_; }
  T& Ref() DKB_REQUIRES(mu_) { return value_; }
  const T& Ref() const DKB_REQUIRES(mu_) { return value_; }

 private:
  mutable Mutex mu_;
  T value_ DKB_GUARDED_BY(mu_);
};

}  // namespace dkb

#endif  // DKB_COMMON_SYNC_H_
