#include "common/metrics.h"

#include <cstdio>

#include "common/str_util.h"

namespace dkb::metrics {

namespace {

// Index of the power-of-two bucket holding `v`: 0 for v <= 0, else
// 1 + floor(log2(v)) clamped to the last bucket.
int BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  int idx = 1;
  uint64_t u = static_cast<uint64_t>(v);
  while (u > 1 && idx < Histogram::kBuckets - 1) {
    u >>= 1;
    ++idx;
  }
  return idx;
}

// Upper bound of bucket i (inclusive): 0, 1, 2, 4, 8, ...
int64_t BucketUpper(int i) {
  if (i <= 0) return 0;
  return int64_t{1} << (i - 1);
}

}  // namespace

void Histogram::Observe(int64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::ApproxQuantile(double q) const {
  int64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpper(i);
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    char mean_buf[48];
    std::snprintf(mean_buf, sizeof(mean_buf), "%.3f", h->mean());
    out += "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " +
           std::to_string(h->sum()) + ", \"mean\": " + mean_buf +
           ", \"max\": " + std::to_string(h->max()) + ", \"p50\": " +
           std::to_string(h->ApproxQuantile(0.5)) + ", \"p99\": " +
           std::to_string(h->ApproxQuantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = "counter";
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = "gauge";
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = "histogram";
    s.value = h->count();
    s.sum = h->sum();
    s.max = h->max();
    s.p50 = h->ApproxQuantile(0.5);
    s.p99 = h->ApproxQuantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dkb::metrics
