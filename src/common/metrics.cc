#include "common/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/str_util.h"

namespace dkb::metrics {

namespace {

// Index of the power-of-two bucket holding `v`: 0 for v <= 0, else
// 1 + floor(log2(v)) clamped to the last bucket.
int BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  int idx = 1;
  uint64_t u = static_cast<uint64_t>(v);
  while (u > 1 && idx < Histogram::kBuckets - 1) {
    u >>= 1;
    ++idx;
  }
  return idx;
}

// Upper bound of bucket i (inclusive): 0, 1, 2, 4, 8, ...
int64_t BucketUpper(int i) {
  if (i <= 0) return 0;
  return int64_t{1} << (i - 1);
}

}  // namespace

void Histogram::Observe(int64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::ApproxQuantile(double q) const {
  int64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpper(i);
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    char mean_buf[48];
    std::snprintf(mean_buf, sizeof(mean_buf), "%.3f", h->mean());
    out += "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " +
           std::to_string(h->sum()) + ", \"mean\": " + mean_buf +
           ", \"max\": " + std::to_string(h->max()) + ", \"p50\": " +
           std::to_string(h->ApproxQuantile(0.5)) + ", \"p99\": " +
           std::to_string(h->ApproxQuantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = "counter";
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = "gauge";
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = "histogram";
    s.value = h->count();
    s.sum = h->sum();
    s.max = h->max();
    s.p50 = h->ApproxQuantile(0.5);
    s.p99 = h->ApproxQuantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

// `dkb.query.total_us` -> `dkb_query_total_us`: Prometheus metric names
// allow [a-zA-Z0-9_:] only.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    // Each summary stat is its own single-sample gauge family, so every
    // sample line sits under a TYPE line whose family name matches it.
    const std::string p = PromName(name);
    const std::pair<const char*, int64_t> stats[] = {
        {"_count", h->count()},
        {"_sum", h->sum()},
        {"_max", h->max()},
        {"_p50", h->ApproxQuantile(0.5)},
        {"_p99", h->ApproxQuantile(0.99)},
    };
    for (const auto& [suffix, value] : stats) {
      out += "# TYPE " + p + suffix + " gauge\n";
      out += p + suffix + " " + std::to_string(value) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

bool IsMetricNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || (c >= '0' && c <= '9');
}

bool Fail(std::string* error, size_t lineno, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(lineno) + ": " + what;
  }
  return false;
}

}  // namespace

bool ValidatePrometheusText(const std::string& text, std::string* error) {
  size_t pos = 0;
  size_t lineno = 0;
  size_t samples = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" and "# HELP <name> <text>" comments are
      // meaningful; anything else after '#' is a free-form comment.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          return Fail(error, lineno, "TYPE line missing metric type");
        }
        const std::string type = rest.substr(sp + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return Fail(error, lineno, "unknown metric type '" + type + "'");
        }
      }
      continue;
    }
    // Sample line: <name>[{labels}] <value>[ <timestamp>]
    size_t i = 0;
    if (!IsMetricNameStart(line[0])) {
      return Fail(error, lineno, "invalid metric name start");
    }
    while (i < line.size() && IsMetricNameChar(line[i])) ++i;
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) {
        return Fail(error, lineno, "unterminated label set");
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Fail(error, lineno, "expected space before value");
    }
    const std::string value = line.substr(i + 1, line.find(' ', i + 1) - i - 1);
    if (value.empty()) return Fail(error, lineno, "missing value");
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    const bool numeric = end != nullptr && *end == '\0';
    if (!numeric && value != "NaN" && value != "+Inf" && value != "-Inf") {
      return Fail(error, lineno, "non-numeric value '" + value + "'");
    }
    ++samples;
  }
  if (samples == 0) {
    return Fail(error, lineno, "no metric samples in exposition");
  }
  return true;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dkb::metrics
