#ifndef DKB_COMMON_TRACE_H_
#define DKB_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace dkb::trace {

class TraceContext;

/// One key=value annotation on a span. Values are stored as strings;
/// numeric tags are rendered without quotes in JSON (is_number).
struct TraceTag {
  std::string key;
  std::string value;
  bool is_number = false;
};

/// One timed region of query processing, forming a tree: the root covers
/// the whole query, children cover phases (compile.setup, execute,
/// node:anc, iteration, ...). Times are microsecond offsets from the
/// owning TraceContext's epoch (steady clock), so spans from different
/// threads share one timeline.
///
/// Thread safety: AddChild/Adopt lock the span, so pool threads may attach
/// children to a shared parent concurrently; children() hands out a locked
/// snapshot. End() is an atomic first-write-wins stamp. Tags are
/// owner-thread operations (each span is written by the thread that created
/// it); readers (rendering) must run after execution has settled.
class TraceSpan {
 public:
  TraceSpan(const TraceContext* ctx, std::string name);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const std::string& name() const { return name_; }
  int64_t start_us() const { return start_us_; }
  /// End offset; equals start_us() until End() is called. Atomic so a
  /// renderer or sys-view reader racing a late End() observes either "not
  /// ended" or the final stamp, never a torn value.
  int64_t end_us() const {
    int64_t e = end_us_.load(std::memory_order_relaxed);
    return e < 0 ? start_us_ : e;
  }
  int64_t duration_us() const { return end_us() - start_us_; }
  uint32_t tid() const { return tid_; }
  /// The context owning this span's timeline (for Detach from deep layers).
  const TraceContext* context() const { return ctx_; }
  const std::vector<TraceTag>& tags() const { return tags_; }
  /// Point-in-time snapshot of the child list, taken under the span lock.
  /// The pointers stay valid for the span's lifetime (children are owned by
  /// the span and never removed); the vector itself is a copy, so callers
  /// never hold a reference into the guarded container.
  std::vector<const TraceSpan*> children() const DKB_EXCLUDES(mu_);

  /// Starts a child span now and returns it (owned by this span).
  TraceSpan* AddChild(std::string name) DKB_EXCLUDES(mu_);

  /// Attaches an already-built span subtree (created via
  /// TraceContext::Detach) as the last child. Used by the parallel LFP
  /// scheduler to merge per-node spans in program order regardless of the
  /// order pool threads finished in.
  void Adopt(std::unique_ptr<TraceSpan> child) DKB_EXCLUDES(mu_);

  void Tag(std::string key, std::string value);
  void Tag(std::string key, int64_t value);
  void Tag(std::string key, double value);

  /// Stamps the end time; idempotent (the first call wins).
  void End();

 private:
  const TraceContext* ctx_;
  std::string name_;
  uint32_t tid_;
  int64_t start_us_;
  /// -1 until End(); written once (first End() wins, enforced with a CAS).
  std::atomic<int64_t> end_us_{-1};
  /// Owner-thread only: tags are written by the thread that created the
  /// span, before it shares the span; readers run after execution settles.
  std::vector<TraceTag> tags_;
  mutable Mutex mu_;
  /// Pool threads attach children to a shared parent concurrently.
  std::vector<std::unique_ptr<TraceSpan>> children_ DKB_GUARDED_BY(mu_);
};

/// A span tree as plain values: what a TraceSpan tree looks like once
/// execution has settled. SpanNode is the unit the wire protocol encodes
/// (src/net/wire.h) and the renderers below consume, so a tree snapshotted
/// on a server, shipped over TCP, and rendered by a remote client produces
/// byte-identical output to rendering the live tree in-process.
struct SpanNode {
  std::string name;
  int64_t start_us = 0;
  int64_t end_us = 0;
  uint32_t tid = 0;
  std::vector<TraceTag> tags;
  std::vector<SpanNode> children;

  int64_t duration_us() const { return end_us - start_us; }
};

/// Deep-copies a settled TraceSpan tree into plain values. `base_us` is
/// added to every start/end offset, which lets a caller graft a subtree
/// recorded on its own timeline (a fresh TraceContext) into an enclosing
/// tree: pass the enclosing timeline's offset at the moment the subtree's
/// context was created.
SpanNode SnapshotSpan(const TraceSpan& span, int64_t base_us = 0);

/// Renderers over the value tree; TraceContext::Render* delegate here, so
/// these are the single source of truth for all three formats.
std::string RenderText(const SpanNode& node);
std::string RenderJson(const SpanNode& node);
std::string RenderChromeTrace(const SpanNode& node);

/// Owns one span tree and the steady-clock epoch its offsets are measured
/// from. A null TraceContext* (tracing disabled, the default) costs a
/// single pointer test at every instrumentation site.
class TraceContext {
 public:
  explicit TraceContext(std::string root_name);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  TraceSpan* root() { return root_.get(); }
  const TraceSpan* root() const { return root_.get(); }

  /// Microseconds since this context was created (steady clock).
  int64_t NowUs() const;

  /// The steady-clock instant all of this context's offsets are measured
  /// from. Lets an enclosing timeline (the server's per-request spans)
  /// compute the base offset for grafting this tree via SnapshotSpan.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Starts a parentless span on this context's timeline; attach it later
  /// with TraceSpan::Adopt.
  std::unique_ptr<TraceSpan> Detach(std::string name) const {
    return std::make_unique<TraceSpan>(this, std::move(name));
  }

  /// Small sequential id for the calling thread (stable per thread,
  /// process-wide; the main thread that first traces is usually 0).
  static uint32_t CurrentThreadId();

  /// Indented tree rendering: name, duration, tags.
  std::string RenderText() const { return trace::RenderText(Snapshot()); }

  /// Nested-object JSON: {"name": ..., "start_us": ..., "dur_us": ...,
  /// "tid": ..., "tags": {...}, "children": [...]}.
  std::string RenderJson() const { return trace::RenderJson(Snapshot()); }

  /// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
  /// {"traceEvents": [{"ph": "X", "name": ..., "ts": ..., "dur": ...}]}.
  std::string RenderChromeTrace() const {
    return trace::RenderChromeTrace(Snapshot());
  }

  /// Value-tree copy of the whole trace (see SnapshotSpan).
  SpanNode Snapshot() const { return SnapshotSpan(*root_); }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<TraceSpan> root_;
};

/// Null-safe span start: no-op (returns nullptr) when `parent` is null,
/// which is how disabled tracing propagates through the layers.
inline TraceSpan* StartSpan(TraceSpan* parent, std::string name) {
  return parent == nullptr ? nullptr : parent->AddChild(std::move(name));
}

/// RAII guard ending a (possibly null) span on scope exit.
class ScopedSpan {
 public:
  ScopedSpan(TraceSpan* parent, std::string name)
      : span_(StartSpan(parent, std::move(name))) {}
  explicit ScopedSpan(TraceSpan* span) : span_(span) {}
  ~ScopedSpan() {
    if (span_ != nullptr) span_->End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceSpan* get() const { return span_; }

  template <typename V>
  void Tag(std::string key, V value) {
    if (span_ != nullptr) span_->Tag(std::move(key), std::move(value));
  }

 private:
  TraceSpan* span_;
};

}  // namespace dkb::trace

#endif  // DKB_COMMON_TRACE_H_
