#ifndef DKB_COMMON_TIMER_H_
#define DKB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dkb {

/// Monotonic wall-clock stopwatch used for all t_c / t_e / t_u measurements.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds (floating point).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a counter across many scopes; used by the
/// LFP evaluators to attribute time to temp-table management, RHS
/// evaluation, and termination checking (paper Table 5).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(int64_t* sink_micros) : sink_(sink_micros) {}
  ~ScopedAccumulator() { *sink_ += timer_.ElapsedMicros(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  int64_t* sink_;
  WallTimer timer_;
};

}  // namespace dkb

#endif  // DKB_COMMON_TIMER_H_
