#include "common/row_batch.h"

#include <string>

namespace dkb {

std::string RowBatch::ToString() const {
  std::string out = "RowBatch(" + std::to_string(size()) + "/" +
                    std::to_string(physical_size()) + " rows, " +
                    std::to_string(num_columns()) + " cols" +
                    (sel_active_ ? ", selection" : "") + ")";
  for (size_t i = 0; i < size(); ++i) {
    out += "\n  ";
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += At(i, c).ToString();
    }
  }
  return out;
}

}  // namespace dkb
