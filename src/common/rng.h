#ifndef DKB_COMMON_RNG_H_
#define DKB_COMMON_RNG_H_

#include <cstdint>

namespace dkb {

/// Deterministic splitmix64/xorshift RNG so workload generation is
/// reproducible across runs and platforms (std::mt19937 distributions are
/// not guaranteed identical across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

 private:
  uint64_t state_;
};

}  // namespace dkb

#endif  // DKB_COMMON_RNG_H_
