#include "common/status.h"

namespace dkb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

ErrorCode ErrorCodeFromWire(uint16_t wire) {
  if (wire > static_cast<uint16_t>(ErrorCode::kFailedPrecondition)) {
    return ErrorCode::kInternal;
  }
  return static_cast<ErrorCode>(wire);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dkb
