#include "common/trace.h"

#include <atomic>
#include <cstdio>

#include "common/str_util.h"

namespace dkb::trace {

TraceSpan::TraceSpan(const TraceContext* ctx, std::string name)
    : ctx_(ctx),
      name_(std::move(name)),
      tid_(TraceContext::CurrentThreadId()),
      start_us_(ctx->NowUs()) {}

TraceSpan* TraceSpan::AddChild(std::string name) {
  auto child = std::make_unique<TraceSpan>(ctx_, std::move(name));
  TraceSpan* raw = child.get();
  MutexLock lock(mu_);
  children_.push_back(std::move(child));
  return raw;
}

void TraceSpan::Adopt(std::unique_ptr<TraceSpan> child) {
  if (child == nullptr) return;
  MutexLock lock(mu_);
  children_.push_back(std::move(child));
}

std::vector<const TraceSpan*> TraceSpan::children() const {
  MutexLock lock(mu_);
  std::vector<const TraceSpan*> out;
  out.reserve(children_.size());
  for (const auto& child : children_) out.push_back(child.get());
  return out;
}

void TraceSpan::Tag(std::string key, std::string value) {
  tags_.push_back({std::move(key), std::move(value), /*is_number=*/false});
}

void TraceSpan::Tag(std::string key, int64_t value) {
  tags_.push_back(
      {std::move(key), std::to_string(value), /*is_number=*/true});
}

void TraceSpan::Tag(std::string key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  tags_.push_back({std::move(key), buf, /*is_number=*/true});
}

void TraceSpan::End() {
  int64_t expected = -1;
  end_us_.compare_exchange_strong(expected, ctx_->NowUs(),
                                  std::memory_order_relaxed);
}

TraceContext::TraceContext(std::string root_name)
    : epoch_(std::chrono::steady_clock::now()) {
  // The root is created after epoch_, so its start offset is ~0.
  root_ = std::make_unique<TraceSpan>(this, std::move(root_name));
}

int64_t TraceContext::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t TraceContext::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanNode SnapshotSpan(const TraceSpan& span, int64_t base_us) {
  SpanNode node;
  node.name = span.name();
  node.start_us = base_us + span.start_us();
  node.end_us = base_us + span.end_us();
  node.tid = span.tid();
  node.tags = span.tags();
  const std::vector<const TraceSpan*> children = span.children();
  node.children.reserve(children.size());
  for (const TraceSpan* child : children) {
    node.children.push_back(SnapshotSpan(*child, base_us));
  }
  return node;
}

namespace {

void RenderTagsJson(const std::vector<TraceTag>& tags, std::string* out) {
  for (size_t i = 0; i < tags.size(); ++i) {
    const TraceTag& tag = tags[i];
    if (i > 0) *out += ", ";
    *out += "\"" + JsonEscape(tag.key) + "\": ";
    if (tag.is_number) {
      *out += tag.value;
    } else {
      *out += "\"" + JsonEscape(tag.value) + "\"";
    }
  }
}

void RenderTextRec(const SpanNode& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld us",
                static_cast<long long>(span.duration_us()));
  *out += span.name + "  " + buf;
  for (const TraceTag& tag : span.tags) {
    *out += "  " + tag.key + "=" + tag.value;
  }
  *out += "\n";
  for (const SpanNode& child : span.children) {
    RenderTextRec(child, depth + 1, out);
  }
}

void RenderJsonRec(const SpanNode& span, std::string* out) {
  *out += "{\"name\": \"" + JsonEscape(span.name) + "\"";
  *out += ", \"start_us\": " + std::to_string(span.start_us);
  *out += ", \"dur_us\": " + std::to_string(span.duration_us());
  *out += ", \"tid\": " + std::to_string(span.tid);
  if (!span.tags.empty()) {
    *out += ", \"tags\": {";
    RenderTagsJson(span.tags, out);
    *out += "}";
  }
  if (!span.children.empty()) {
    *out += ", \"children\": [";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) *out += ", ";
      RenderJsonRec(span.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

void RenderChromeRec(const SpanNode& span, bool* first, std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "    {\"ph\": \"X\", \"pid\": 1, \"tid\": " +
          std::to_string(span.tid) + ", \"name\": \"" +
          JsonEscape(span.name) + "\", \"ts\": " +
          std::to_string(span.start_us) + ", \"dur\": " +
          std::to_string(span.duration_us());
  if (!span.tags.empty()) {
    *out += ", \"args\": {";
    RenderTagsJson(span.tags, out);
    *out += "}";
  }
  *out += "}";
  for (const SpanNode& child : span.children) {
    RenderChromeRec(child, first, out);
  }
}

}  // namespace

std::string RenderText(const SpanNode& node) {
  std::string out;
  RenderTextRec(node, 0, &out);
  return out;
}

std::string RenderJson(const SpanNode& node) {
  std::string out;
  RenderJsonRec(node, &out);
  return out;
}

std::string RenderChromeTrace(const SpanNode& node) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  RenderChromeRec(node, &first, &out);
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

}  // namespace dkb::trace
