#include "common/value.h"

#include <functional>

namespace dkb {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kInvalid:
      return "INVALID";
  }
  return "INVALID";
}

bool Value::operator<(const Value& other) const {
  const int lr = TypeRank();
  const int rr = other.TypeRank();
  if (lr != rr) return lr < rr;
  switch (lr) {
    case 0:  // NULL == NULL
      return false;
    case 1:
      return as_int() < other.as_int();
    default: {
      // Equal interned ids mean equal strings; skip the content compare.
      if (is_interned() && other.is_interned() &&
          interned_id() == other.interned_id()) {
        return false;
      }
      return as_string() < other.as_string();
    }
  }
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_int()) return std::hash<int64_t>{}(as_int());
  if (is_interned()) {
    // Precomputed content hash: agrees with the un-interned branch below.
    return GlobalStringDict().HashOf(interned_id());
  }
  return std::hash<std::string>{}(as_string());
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  std::string out = "'";
  for (char c : as_string()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  return as_string();
}

}  // namespace dkb
