#include "common/value.h"

#include <functional>

namespace dkb {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kInvalid:
      return "INVALID";
  }
  return "INVALID";
}

bool Value::operator<(const Value& other) const {
  // variant's ordering compares alternative index first, which realizes
  // NULL < int < string, then the contained values.
  return rep_ < other.rep_;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_int()) return std::hash<int64_t>{}(as_int());
  return std::hash<std::string>{}(as_string());
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  std::string out = "'";
  for (char c : as_string()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  return as_string();
}

}  // namespace dkb
