#include "common/interner.h"

#include "common/metrics.h"

namespace dkb {

uint32_t StringDict::Intern(std::string_view s) {
  Segment& seg = segments_[SegmentOf(std::hash<std::string_view>{}(s))];
  {
    ReaderLock lock(seg.mu);
    auto it = seg.ids.find(s);
    if (it != seg.ids.end()) return it->second;
  }
  WriterLock lock(seg.mu);
  auto it = seg.ids.find(s);
  if (it != seg.ids.end()) return it->second;

  // Allocation is cross-segment state; all else is per-segment.
  MutexLock alloc(alloc_mu_);
  const uint32_t id = size_.load(std::memory_order_relaxed);
  if (id >= kMaxChunks * kChunkSize) {
    // Dictionary full (≈67M distinct strings): keep the process alive by
    // recycling the last slot. Values interned past this point alias, so we
    // stop handing out new ids instead — callers fall back to the inline
    // representation via the kInvalidId sentinel.
    return kInvalidId;
  }
  const uint32_t chunk = id >> kChunkBits;
  EntryRec* slab = chunks_[chunk].load(std::memory_order_relaxed);
  if (slab == nullptr) {
    slab = new EntryRec[kChunkSize];
    chunks_[chunk].store(slab, std::memory_order_release);
  }
  EntryRec& entry = slab[id & (kChunkSize - 1)];
  entry.str.assign(s.data(), s.size());
  // The contract is std::hash<std::string> agreement (see HashOf); hash the
  // owned string rather than assuming string/string_view hashes coincide.
  entry.hash = std::hash<std::string>{}(entry.str);
  seg.ids.emplace(std::string_view(entry.str), id);
  // Publish the entry: readers that see size_ > id observe a complete slot.
  size_.store(id + 1, std::memory_order_release);

  static metrics::Gauge& gauge =
      metrics::GlobalMetrics().gauge("dkb.common.interner_size");
  gauge.Set(static_cast<int64_t>(id) + 1);
  return id;
}

std::array<size_t, StringDict::kSegments> StringDict::SegmentSizes() const {
  std::array<size_t, kSegments> sizes{};
  for (size_t i = 0; i < kSegments; ++i) {
    ReaderLock lock(segments_[i].mu);
    sizes[i] = segments_[i].ids.size();
  }
  return sizes;
}

StringDict& GlobalStringDict() {
  // Leaked on purpose: interned ids live in Values of arbitrary lifetime
  // (including other static-duration objects), so the dictionary must
  // outlive every consumer.
  static StringDict* dict = new StringDict();
  return *dict;
}

}  // namespace dkb
