#ifndef DKB_COMMON_INTERNER_H_
#define DKB_COMMON_INTERNER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/sync.h"

namespace dkb {

/// Process-wide string dictionary backing Value's interned-VARCHAR
/// representation (DictRef). Interning maps each distinct string to a dense
/// uint32 id; ids are stable for the process lifetime and entries are never
/// removed, so two interned values are equal iff their ids are equal.
///
/// Each entry stores the string's content hash (std::hash<std::string> of
/// the content), so hashing an interned value is an O(1) table lookup that
/// agrees with hashing the same string un-interned — hash containers can mix
/// both representations freely.
///
/// Thread safety: the dedup map is segmented by content hash into
/// kSegments independently locked shards — Intern takes a shared lock on
/// its segment for the hit path and an exclusive one to insert, so
/// concurrent interning of distinct strings contends only on the short
/// id-allocation critical section (alloc_mu_). Get/HashOf are lock-free.
/// Entries live in fixed-size chunks whose slots are fully constructed
/// before the entry count is published (release store), so a reader that
/// obtained an id — necessarily after its publication — always observes a
/// complete entry via the acquire load in Get.
class StringDict {
 public:
  /// Sentinel for "not interned"; never returned by Intern.
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  /// Dedup-map segments (lock shards). Power of two so segment selection is
  /// a mask of the content hash.
  static constexpr size_t kSegments = 16;

  StringDict() = default;
  StringDict(const StringDict&) = delete;
  StringDict& operator=(const StringDict&) = delete;

  /// Returns the id for `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  /// Content of an interned string; the reference is stable for the
  /// process lifetime. Requires a valid id previously returned by Intern.
  const std::string& Get(uint32_t id) const { return Entry(id).str; }

  /// Precomputed std::hash<std::string> of the content (O(1)).
  size_t HashOf(uint32_t id) const { return Entry(id).hash; }

  /// Number of distinct strings interned so far.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Distinct strings per dedup segment (sys.shards reports one row each).
  /// Each segment is read under its own lock; the array as a whole is not a
  /// consistent snapshot.
  std::array<size_t, kSegments> SegmentSizes() const;

 private:
  struct EntryRec {
    std::string str;
    size_t hash = 0;
  };

  static constexpr uint32_t kChunkBits = 12;  // 4096 entries per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kMaxChunks = 1u << 14;  // ~67M strings

  const EntryRec& Entry(uint32_t id) const {
    // The caller holds an id, which was published by the release store of
    // size_ in Intern; the acquire load here (or in size()) establishes the
    // happens-before edge for the entry's contents.
    return chunks_[id >> kChunkBits].load(std::memory_order_acquire)
        [id & (kChunkSize - 1)];
  }

  struct Segment {
    mutable SharedMutex mu;
    // Dedup map; keys view into chunk-owned strings (stable addresses).
    std::unordered_map<std::string_view, uint32_t> ids DKB_GUARDED_BY(mu);
  };

  static size_t SegmentOf(size_t content_hash) {
    // The low bits feed unordered_map bucketing inside the segment; use
    // higher bits for segment selection so the two don't correlate.
    return (content_hash >> 7) & (kSegments - 1);
  }

  std::array<Segment, kSegments> segments_;
  // Serializes id allocation and chunk publication across segments.
  // Acquired after a segment lock, never the other way around.
  Mutex alloc_mu_;
  // Lock-free read path: chunk pointers and the entry count are published
  // with release stores under alloc_mu_ and read with acquire loads
  // anywhere (see Entry above). They are deliberately NOT guarded by a
  // mutex — the atomics themselves carry the synchronization, and
  // Get/HashOf must stay lock-free for the executor's hot paths.
  std::array<std::atomic<EntryRec*>, kMaxChunks> chunks_ = {};
  std::atomic<uint32_t> size_{0};
};

/// The dictionary every interned Value resolves through.
StringDict& GlobalStringDict();

}  // namespace dkb

#endif  // DKB_COMMON_INTERNER_H_
