#ifndef DKB_COMMON_THREAD_POOL_H_
#define DKB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dkb {

/// Fixed-size worker pool for intra-query and inter-session parallelism.
///
/// The pool is deliberately simple: a shared FIFO of std::function tasks.
/// What makes it safe for the engine's nested uses (a parallel LFP wavefront
/// whose nodes run parallel joins) is that ParallelFor never *waits* on pool
/// workers: the calling thread claims chunks from the same atomic cursor the
/// workers do, so the loop completes even if every worker is busy elsewhere.
/// A pool of size 0 degrades to fully inline execution.
///
/// Lock discipline (machine-checked, see common/sync.h): mu_ guards the task
/// FIFO and the shutdown flag; cv_ signals "queue non-empty or shutting
/// down". threads_ is written only during construction and joined in the
/// destructor, so it needs no lock.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task; it runs on some worker eventually. Fire-and-forget —
  /// callers that need completion should use ParallelFor.
  void Submit(std::function<void()> task) DKB_EXCLUDES(mu_);

  /// Runs body(i) for every i in [begin, end), splitting the range into
  /// contiguous chunks claimed by the caller plus up to num_threads()
  /// helpers. Blocks until every index has been processed, but the caller
  /// always participates, so nested ParallelFor calls cannot deadlock.
  /// `min_chunk` bounds scheduling overhead: no chunk is smaller than it
  /// (the last chunk excepted).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body,
                   size_t min_chunk = 1);

  /// Like ParallelFor but hands each helper a contiguous [lo, hi) range;
  /// `worker_slot` identifies the participant (0 = caller) so per-worker
  /// output buffers can be merged deterministically by slot order.
  void ParallelForRanges(
      size_t begin, size_t end,
      const std::function<void(size_t slot, size_t lo, size_t hi)>& body,
      size_t min_chunk = 1);

 private:
  void WorkerLoop() DKB_EXCLUDES(mu_);

  /// Wait predicate for the worker CV loop: a task is claimable or the pool
  /// is shutting down.
  bool HasWorkOrShutdown() const DKB_REQUIRES(mu_) {
    return shutdown_ || queue_head_ < queue_.size();
  }

  std::vector<std::thread> threads_;  // const after construction
  Mutex mu_;
  CondVar cv_;
  std::vector<std::function<void()>> queue_ DKB_GUARDED_BY(mu_);
  size_t queue_head_ DKB_GUARDED_BY(mu_) = 0;  // FIFO via index
  bool shutdown_ DKB_GUARDED_BY(mu_) = false;
};

/// Process-wide pool shared by the executor, the LFP evaluators, and the
/// session layer. Sized from DKB_THREADS when set, otherwise
/// hardware_concurrency - 1 (the caller is itself a participant).
ThreadPool& GlobalThreadPool();

}  // namespace dkb

#endif  // DKB_COMMON_THREAD_POOL_H_
