#ifndef DKB_COMMON_THREAD_POOL_H_
#define DKB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dkb {

/// Fixed-size worker pool for intra-query and inter-session parallelism.
///
/// The pool is deliberately simple: a shared FIFO of std::function tasks.
/// What makes it safe for the engine's nested uses (a parallel LFP wavefront
/// whose nodes run parallel joins) is that ParallelFor never *waits* on pool
/// workers: the calling thread claims chunks from the same atomic cursor the
/// workers do, so the loop completes even if every worker is busy elsewhere.
/// A pool of size 0 degrades to fully inline execution.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task; it runs on some worker eventually. Fire-and-forget —
  /// callers that need completion should use ParallelFor.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end), splitting the range into
  /// contiguous chunks claimed by the caller plus up to num_threads()
  /// helpers. Blocks until every index has been processed, but the caller
  /// always participates, so nested ParallelFor calls cannot deadlock.
  /// `min_chunk` bounds scheduling overhead: no chunk is smaller than it
  /// (the last chunk excepted).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body,
                   size_t min_chunk = 1);

  /// Like ParallelFor but hands each helper a contiguous [lo, hi) range;
  /// `worker_slot` identifies the participant (0 = caller) so per-worker
  /// output buffers can be merged deterministically by slot order.
  void ParallelForRanges(
      size_t begin, size_t end,
      const std::function<void(size_t slot, size_t lo, size_t hi)>& body,
      size_t min_chunk = 1);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> queue_;  // FIFO via index
  size_t queue_head_ = 0;
  bool shutdown_ = false;
};

/// Process-wide pool shared by the executor, the LFP evaluators, and the
/// session layer. Sized from DKB_THREADS when set, otherwise
/// hardware_concurrency - 1 (the caller is itself a participant).
ThreadPool& GlobalThreadPool();

}  // namespace dkb

#endif  // DKB_COMMON_THREAD_POOL_H_
