#ifndef DKB_STORAGE_TUPLE_H_
#define DKB_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "common/row_batch.h"  // defines Tuple and the RowBatch currency
#include "common/value.h"

namespace dkb {

/// Combines the hashes of all values (order-sensitive).
size_t HashTuple(const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};

/// "(v1, v2, ...)" rendering for diagnostics and result display.
std::string TupleToString(const Tuple& t);

}  // namespace dkb

#endif  // DKB_STORAGE_TUPLE_H_
