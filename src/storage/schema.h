#ifndef DKB_STORAGE_SCHEMA_H_
#define DKB_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace dkb {

/// One column of a relation: name plus type.
struct Column {
  std::string name;
  DataType type = DataType::kInvalid;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns describing a relation's tuples.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive), or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// "name TYPE, name TYPE, ..." rendering used in error messages.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace dkb

#endif  // DKB_STORAGE_SCHEMA_H_
