#ifndef DKB_STORAGE_EPOCH_H_
#define DKB_STORAGE_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace dkb {

/// Commit epoch. Every committed write batch advances the testbed epoch by
/// one; rows carry [begin, end) epoch stamps and a reader pinned at epoch E
/// sees exactly the rows with begin <= E < end.
using Epoch = uint64_t;

/// Sentinel read epoch: "latest" visibility — see whatever is currently
/// committed or in flight under the writer lock. This is the visibility of
/// the write path itself and of unversioned (session-local) tables.
inline constexpr Epoch kLatestEpoch = ~0ull;

/// Sentinel end stamp: the row has not been deleted.
inline constexpr Epoch kNeverEpoch = ~0ull;

/// The engine-wide epoch counter. One instance lives in the Testbed; tables
/// created by a versioning-enabled catalog stamp rows from it.
///
/// Thread safety: `Advance` is called by writers serialized on the testbed
/// writer lock; `committed`/`write_epoch` may be read from any thread.
class EpochSource {
 public:
  /// Epoch of the most recently committed write batch. Real epochs start
  /// at 1, so 0 is usable as a "not yet pinned" marker by session code.
  Epoch committed() const { return committed_.load(std::memory_order_acquire); }

  /// Epoch the in-flight write batch stamps its rows with. Becomes the
  /// committed epoch once the batch's EpochBump advances the counter.
  Epoch write_epoch() const { return committed() + 1; }

  /// Commits the in-flight batch; returns the new committed epoch.
  Epoch Advance() {
    return committed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Recovery only: restores the counter saved in a checkpoint so epochs
  /// keep ascending across restarts. Never valid once readers exist.
  void Restore(Epoch committed) {
    committed_.store(committed < 1 ? 1 : committed,
                     std::memory_order_release);
  }

 private:
  std::atomic<Epoch> committed_{1};
};

/// Visibility of a [begin, end) stamped row at read epoch `at`.
///
/// Unversioned rows are stamped begin = 0, end = kNeverEpoch (deleted:
/// end = 0), which makes them visible at every pinned epoch and at latest —
/// so unversioned tables behave identically under any read epoch.
inline bool EpochVisible(Epoch begin, Epoch end, Epoch at) {
  if (at == kLatestEpoch) return end == kNeverEpoch;
  return begin <= at && at < end;
}

}  // namespace dkb

#endif  // DKB_STORAGE_EPOCH_H_
