#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "common/row_batch.h"
#include "storage/codec.h"
#include "storage/index.h"
#include "storage/table.h"

namespace dkb {

namespace {

constexpr char kMagic[8] = {'D', 'K', 'B', 'C', 'K', 'P', 'T', '1'};

constexpr uint8_t kCellNull = 0;
constexpr uint8_t kCellInt = 1;
constexpr uint8_t kCellStr = 2;

/// File-local string dictionary built while encoding table data.
class DictBuilder {
 public:
  uint32_t IdOf(const std::string& s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.push_back(s);
    ids_.emplace(s, id);
    return id;
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> strings_;
};

void EncodeShardRows(const Table& shard, DictBuilder* dict,
                     codec::Writer* w) {
  // Materialize the shard's visible rows once, then lay them out
  // column-major (one tag stream per column compresses the common
  // all-int / all-string cases into tight runs).
  std::vector<Tuple> rows;
  rows.reserve(shard.num_tuples());
  RowBatch batch;
  RowId cursor = 0;
  for (;;) {
    cursor = shard.ScanBatch(cursor, &batch, kLatestEpoch);
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(batch.MaterializeTuple(i));
    }
  }
  w->U64(rows.size());
  const size_t ncols = shard.schema().num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    for (const Tuple& row : rows) {
      const Value& v = row[c];
      if (v.is_null()) {
        w->U8(kCellNull);
      } else if (v.is_int()) {
        w->U8(kCellInt);
        w->I64(v.as_int());
      } else {
        w->U8(kCellStr);
        w->U32(dict->IdOf(v.as_string()));
      }
    }
  }
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("checkpoint: open " + tmp + ": " +
                               std::strerror(errno));
  }
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Unavailable("checkpoint: write " + tmp + ": " +
                                 std::strerror(saved));
    }
    off += static_cast<size_t>(n);
  }
  if (::fdatasync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("checkpoint: sync " + tmp + ": " +
                               std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("checkpoint: rename to " + path + ": " +
                               std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("checkpoint: no file at " + path);
    }
    return Status::Unavailable("checkpoint: open " + path + ": " +
                               std::strerror(errno));
  }
  std::string data;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::Unavailable("checkpoint: read " + path + ": " +
                                 std::strerror(saved));
    }
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

/// Validates magic + CRC and returns the payload between them.
Result<std::string_view> CheckedPayload(const std::string& data,
                                        const std::string& path) {
  if (data.size() < sizeof(kMagic) + 4 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("checkpoint: " + path +
                                   " is not a DKBCKPT1 file");
  }
  std::string_view payload(data.data() + sizeof(kMagic),
                           data.size() - sizeof(kMagic) - 4);
  codec::Reader trailer(
      std::string_view(data.data() + data.size() - 4, 4));
  uint32_t stored_crc = 0;
  trailer.U32(&stored_crc);
  if (codec::Crc32(payload) != stored_crc) {
    return Status::InvalidArgument("checkpoint: " + path +
                                   " failed CRC check (torn or corrupt)");
  }
  return payload;
}

}  // namespace

Status WriteCheckpoint(const std::string& path, uint64_t last_lsn,
                       uint64_t epoch,
                       const std::vector<const ScanSource*>& tables,
                       const std::vector<std::string>& rules) {
  // Table data is encoded first (into its own buffer) so the dictionary it
  // discovers can be written ahead of it in the file.
  DictBuilder dict;
  codec::Writer body;
  body.U32(static_cast<uint32_t>(tables.size()));
  for (const ScanSource* table : tables) {
    body.Str(table->name());
    body.U32(static_cast<uint32_t>(table->shard_count()));
    body.U32(static_cast<uint32_t>(table->partition_column()));
    body.Cols(table->schema());
    const auto& indexes = table->shard(0).indexes();
    body.U16(static_cast<uint16_t>(indexes.size()));
    for (const auto& index : indexes) {
      body.Str(index->name());
      body.U8(index->kind() == IndexKind::kOrdered ? 1 : 0);
      body.U16(static_cast<uint16_t>(index->key_columns().size()));
      for (size_t col : index->key_columns()) {
        body.U16(static_cast<uint16_t>(col));
      }
    }
    for (size_t s = 0; s < table->shard_count(); ++s) {
      EncodeShardRows(table->shard(s), &dict, &body);
    }
  }

  codec::Writer payload;
  payload.U64(last_lsn);
  payload.U64(epoch);
  payload.U32(static_cast<uint32_t>(rules.size()));
  for (const std::string& rule : rules) payload.Str(rule);
  payload.U32(static_cast<uint32_t>(dict.strings().size()));
  for (const std::string& s : dict.strings()) payload.Str(s);

  std::string file(kMagic, sizeof(kMagic));
  file += payload.str();
  file += body.str();
  const uint32_t crc =
      codec::Crc32(std::string_view(file).substr(sizeof(kMagic)));
  codec::Writer trailer;
  trailer.U32(crc);
  file += trailer.str();

  DKB_RETURN_IF_ERROR(WriteFileAtomic(path, file));

  static metrics::Counter& writes =
      metrics::GlobalMetrics().counter("dkb.checkpoint.writes");
  static metrics::Counter& bytes =
      metrics::GlobalMetrics().counter("dkb.checkpoint.bytes");
  writes.Add();
  bytes.Add(static_cast<int64_t>(file.size()));
  return Status::OK();
}

Result<CheckpointInfo> ReadCheckpoint(const std::string& path,
                                      const TableFactory& factory,
                                      std::vector<std::string>* rules_out) {
  DKB_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  DKB_ASSIGN_OR_RETURN(std::string_view payload, CheckedPayload(data, path));
  codec::Reader r(payload);

  const auto malformed = [&path]() {
    return Status::InvalidArgument("checkpoint: " + path +
                                   " is malformed (truncated payload)");
  };

  CheckpointInfo info;
  uint32_t nrules = 0;
  if (!r.U64(&info.last_lsn) || !r.U64(&info.epoch) || !r.U32(&nrules)) {
    return malformed();
  }
  if (rules_out != nullptr) rules_out->clear();
  for (uint32_t i = 0; i < nrules; ++i) {
    std::string rule;
    if (!r.Str(&rule)) return malformed();
    if (rules_out != nullptr) rules_out->push_back(std::move(rule));
  }

  uint32_t ndict = 0;
  if (!r.U32(&ndict)) return malformed();
  std::vector<Value> dict;
  dict.reserve(ndict);
  for (uint32_t i = 0; i < ndict; ++i) {
    std::string s;
    if (!r.Str(&s)) return malformed();
    // Pre-intern once; cells then copy a 4-byte dictionary reference.
    dict.push_back(Value::Interned(s));
  }

  uint32_t ntables = 0;
  if (!r.U32(&ntables)) return malformed();
  for (uint32_t t = 0; t < ntables; ++t) {
    std::string name;
    uint32_t shard_count = 0;
    uint32_t partition_column = 0;
    Schema schema;
    if (!r.Str(&name) || !r.U32(&shard_count) || !r.U32(&partition_column) ||
        !r.Cols(&schema)) {
      return malformed();
    }
    if (shard_count == 0) return malformed();

    struct IndexSpec {
      std::string name;
      bool ordered;
      std::vector<size_t> key_columns;
    };
    uint16_t nindexes = 0;
    if (!r.U16(&nindexes)) return malformed();
    std::vector<IndexSpec> index_specs(nindexes);
    for (auto& spec : index_specs) {
      uint8_t ordered = 0;
      uint16_t ncols = 0;
      if (!r.Str(&spec.name) || !r.U8(&ordered) || !r.U16(&ncols)) {
        return malformed();
      }
      spec.ordered = ordered != 0;
      spec.key_columns.resize(ncols);
      for (auto& col : spec.key_columns) {
        uint16_t c = 0;
        if (!r.U16(&c)) return malformed();
        col = c;
      }
    }

    DKB_ASSIGN_OR_RETURN(
        ScanSource * source,
        factory(name, schema, shard_count, partition_column));
    if (source->shard_count() != shard_count) {
      return Status::Internal("checkpoint: factory created '" + name +
                              "' with " +
                              std::to_string(source->shard_count()) +
                              " shards, file has " +
                              std::to_string(shard_count));
    }

    const size_t ncols = schema.num_columns();
    for (uint32_t s = 0; s < shard_count; ++s) {
      uint64_t nrows = 0;
      if (!r.U64(&nrows)) return malformed();
      std::vector<std::vector<Value>> columns(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        columns[c].reserve(nrows);
        for (uint64_t i = 0; i < nrows; ++i) {
          uint8_t tag = 0;
          if (!r.U8(&tag)) return malformed();
          switch (tag) {
            case kCellNull:
              columns[c].push_back(Value::Null());
              break;
            case kCellInt: {
              int64_t v = 0;
              if (!r.I64(&v)) return malformed();
              columns[c].push_back(Value(v));
              break;
            }
            case kCellStr: {
              uint32_t id = 0;
              if (!r.U32(&id)) return malformed();
              if (id >= dict.size()) return malformed();
              columns[c].push_back(dict[id]);
              break;
            }
            default:
              return malformed();
          }
        }
      }
      // Rows go straight into their original shard — no re-hashing — so
      // the recovered layout is byte-for-byte the one that was saved.
      Table& shard = source->shard(s);
      RowBatch batch;
      batch.Reset(ncols);
      for (uint64_t i = 0; i < nrows; ++i) {
        Tuple row;
        row.reserve(ncols);
        for (size_t c = 0; c < ncols; ++c) row.push_back(columns[c][i]);
        batch.AppendRow(std::move(row));
        if (batch.full()) {
          DKB_RETURN_IF_ERROR(shard.AppendBatch(batch));
          batch.Reset(ncols);
        }
      }
      if (!batch.empty()) DKB_RETURN_IF_ERROR(shard.AppendBatch(batch));
    }

    for (const auto& spec : index_specs) {
      DKB_RETURN_IF_ERROR(
          source->AddIndexSpec(spec.name, spec.key_columns, spec.ordered));
    }
  }
  if (!r.Done()) {
    return Status::InvalidArgument("checkpoint: " + path +
                                   " has trailing garbage");
  }

  static metrics::Counter& loads =
      metrics::GlobalMetrics().counter("dkb.checkpoint.loads");
  loads.Add();
  return info;
}

Result<CheckpointInfo> PeekCheckpoint(const std::string& path) {
  DKB_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  DKB_ASSIGN_OR_RETURN(std::string_view payload, CheckedPayload(data, path));
  codec::Reader r(payload);
  CheckpointInfo info;
  if (!r.U64(&info.last_lsn) || !r.U64(&info.epoch)) {
    return Status::InvalidArgument("checkpoint: " + path +
                                   " is malformed (truncated payload)");
  }
  return info;
}

}  // namespace dkb
