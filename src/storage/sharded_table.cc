#include "storage/sharded_table.h"

#include <utility>

namespace dkb {

ShardedTable::ShardedTable(std::string name, Schema schema,
                           size_t shard_count, size_t key_column)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_column_(key_column) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    // Shards reuse the logical name: error messages and index bookkeeping
    // stay identical across shard counts.
    shards_.push_back(std::make_unique<Table>(name_, schema_));
  }
}

size_t ShardedTable::ShardOfValue(const Value& v) const {
  const size_t n = shards_.size();
  if (n == 1) return 0;
  // Finalizer-style mix: Value::Hash of small integers is nearly identity,
  // which would alias shards for sequential keys under plain modulo.
  size_t h = v.Hash();
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h % n;
}

}  // namespace dkb
