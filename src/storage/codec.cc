#include "storage/codec.h"

#include <array>
#include <cstring>

namespace dkb::codec {

// ---------------------------------------------------------------------------
// Writer

void Writer::U16(uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  buf_.append(b, 2);
}

void Writer::U32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf_.append(b, 4);
}

void Writer::U64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void Writer::Val(const Value& v) {
  if (v.is_null()) {
    U8(0);
  } else if (v.is_int()) {
    U8(1);
    I64(v.as_int());
  } else {
    U8(2);
    Str(v.as_string());
  }
}

void Writer::Row(const Tuple& t) {
  U16(static_cast<uint16_t>(t.size()));
  for (const Value& v : t) Val(v);
}

void Writer::Cols(const Schema& s) {
  U16(static_cast<uint16_t>(s.num_columns()));
  for (const Column& c : s.columns()) {
    Str(c.name);
    U8(static_cast<uint8_t>(c.type));
  }
}

// ---------------------------------------------------------------------------
// Reader

bool Reader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::U8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Reader::U16(uint16_t* v) {
  const char* p = nullptr;
  if (!Take(2, &p)) return false;
  std::memcpy(v, p, 2);
  return true;
}

bool Reader::U32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  std::memcpy(v, p, 4);
  return true;
}

bool Reader::U64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool Reader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Reader::Str(std::string* s) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  const char* p = nullptr;
  if (!Take(n, &p)) return false;
  s->assign(p, n);
  return true;
}

bool Reader::Val(Value* v) {
  uint8_t tag = 0;
  if (!U8(&tag)) return false;
  switch (tag) {
    case 0:
      *v = Value::Null();
      return true;
    case 1: {
      int64_t i = 0;
      if (!I64(&i)) return false;
      *v = Value(i);
      return true;
    }
    case 2: {
      std::string s;
      if (!Str(&s)) return false;
      // Intern on arrival: decoded rows behave like locally stored ones.
      *v = Value::Interned(s);
      return true;
    }
    default:
      ok_ = false;
      return false;
  }
}

bool Reader::Row(Tuple* t) {
  uint16_t n = 0;
  if (!U16(&n)) return false;
  t->clear();
  t->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Value v;
    if (!Val(&v)) return false;
    t->push_back(std::move(v));
  }
  return true;
}

bool Reader::Cols(Schema* s) {
  uint16_t n = 0;
  if (!U16(&n)) return false;
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Column c;
    uint8_t type = 0;
    if (!Str(&c.name) || !U8(&type)) return false;
    if (type > static_cast<uint8_t>(DataType::kVarchar)) {
      ok_ = false;
      return false;
    }
    c.type = static_cast<DataType>(type);
    cols.push_back(std::move(c));
  }
  *s = Schema(std::move(cols));
  return true;
}

// ---------------------------------------------------------------------------
// CRC-32

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dkb::codec
