#ifndef DKB_STORAGE_SCAN_SOURCE_H_
#define DKB_STORAGE_SCAN_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/epoch.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dkb {

class Table;

/// The storage abstraction every scan and mutation goes through: a named,
/// schema'd collection of rows partitioned into `shard_count()` independent
/// `Table` shards. `Table` itself is the single-shard case, `ShardedTable`
/// the hash-partitioned case, and `sys.*` virtual providers materialize
/// single-shard snapshots — the executor addresses all three uniformly as
/// a shard × morsel work grid and never special-cases concrete storage.
///
/// Invariants every implementation maintains:
///  - `ShardOf` is a pure function of the tuple (hash of the key column),
///    so identical tuples always land in the same shard. Per-shard set
///    operations (LFP's DiffInto) are therefore exact when two sources
///    share a shard count.
///  - All shards share one schema and identical index definitions
///    (AddIndexSpec applies to every shard).
///  - RowIds are shard-local; (shard, RowId) addresses a row.
///
/// Thread safety: externally synchronized like Table (see table.h), with
/// one refinement the sharded LFP path relies on: two threads may mutate
/// *different* shards concurrently, because shards share no state.
class ScanSource {
 public:
  virtual ~ScanSource() = default;

  ScanSource() = default;
  ScanSource(const ScanSource&) = delete;
  ScanSource& operator=(const ScanSource&) = delete;

  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  /// Number of hash partitions; ≥ 1 and fixed for the source's lifetime.
  virtual size_t shard_count() const = 0;

  /// Shard `s` as a plain Table; requires s < shard_count().
  virtual const Table& shard(size_t s) const = 0;
  virtual Table& shard(size_t s) = 0;

  /// The column whose value decides a row's home shard (0 by convention).
  virtual size_t partition_column() const { return 0; }

  /// Home shard of a partition-key value; a pure function of the value, so
  /// re-appending a scanned row reproduces the layout, and index probes on
  /// the partition column can be routed to a single shard.
  virtual size_t ShardOfValue(const Value&) const { return 0; }

  /// Home shard of a full row (rows too short to carry the partition column
  /// route to shard 0).
  size_t ShardOf(const Tuple& tuple) const {
    const size_t pc = partition_column();
    return pc < tuple.size() ? ShardOfValue(tuple[pc]) : 0;
  }

  /// Live tuples across all shards.
  virtual size_t num_tuples() const;

  /// Clears every shard (index definitions survive, contents reset).
  virtual void Clear();

  /// Batch scan of one shard: fills `out` with up to RowBatch::kCapacity
  /// rows visible at epoch `at` starting at slot `cursor` of shard `s`,
  /// returning the cursor for the next call. An empty result batch means
  /// that shard is done.
  RowId ScanBatch(size_t s, RowId cursor, RowBatch* out,
                  Epoch at = kLatestEpoch) const;

  /// Appends every visible row of `batch`, routing each row to its home
  /// shard. This is the hash-repartitioning ("delta exchange") primitive:
  /// appending rows scanned from a differently-sharded source re-shards
  /// them here.
  Status AppendBatch(const RowBatch& batch);

  /// Validated single-row insert, routed by ShardOf. The returned RowId is
  /// local to the row's home shard.
  Result<RowId> Insert(const Tuple& tuple);
  Result<RowId> Insert(Tuple&& tuple);

  /// Creates the index on every shard (same name/columns/kind per shard).
  Status AddIndexSpec(const std::string& index_name,
                      const std::vector<size_t>& key_columns, bool ordered);

  /// Index on shard 0 matching `key_columns`, or nullptr. Because index
  /// definitions are uniform across shards, the planner can use shard 0 as
  /// the template and execution re-resolves per shard by the same columns.
  const Index* FindIndexOn(const std::vector<size_t>& key_columns) const;

  /// Attaches the epoch counter to every shard (see Table::EnableVersioning).
  void EnableVersioning(const EpochSource* epochs);

  /// Invokes fn(rid, tuple) for every row visible at `at`, shard-major
  /// (shard 0's rows in slot order, then shard 1's, ...). RowIds are
  /// shard-local. Defined in table.h, where Table is complete.
  template <typename Fn>
  void Scan(Fn&& fn, Epoch at = kLatestEpoch) const;
};

}  // namespace dkb

#endif  // DKB_STORAGE_SCAN_SOURCE_H_
