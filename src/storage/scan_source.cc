#include "storage/scan_source.h"

#include <utility>

#include "storage/table.h"

namespace dkb {

size_t ScanSource::num_tuples() const {
  size_t total = 0;
  for (size_t s = 0; s < shard_count(); ++s) total += shard(s).num_tuples();
  return total;
}

void ScanSource::Clear() {
  for (size_t s = 0; s < shard_count(); ++s) shard(s).Clear();
}

RowId ScanSource::ScanBatch(size_t s, RowId cursor, RowBatch* out,
                            Epoch at) const {
  return shard(s).ScanBatch(cursor, out, at);
}

void ScanSource::EnableVersioning(const EpochSource* epochs) {
  for (size_t s = 0; s < shard_count(); ++s) {
    shard(s).EnableVersioning(epochs);
  }
}

Status ScanSource::AppendBatch(const RowBatch& batch) {
  if (shard_count() == 1) return shard(0).AppendBatch(batch);
  // Route rows to their home shards through per-shard staging batches so
  // each shard still sees the validated bulk path. This is the delta
  // exchange: rows scanned out of any source get re-partitioned here.
  std::vector<RowBatch> parts(shard_count());
  const size_t cols = batch.num_columns();
  for (RowBatch& p : parts) p.Reset(cols);
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    Tuple t = batch.MaterializeTuple(i);
    const size_t s = ShardOf(t);
    RowBatch& p = parts[s];
    p.AppendRow(std::move(t));
    if (p.full()) {
      DKB_RETURN_IF_ERROR(shard(s).AppendBatch(p));
      p.Reset(cols);
    }
  }
  for (size_t s = 0; s < parts.size(); ++s) {
    if (!parts[s].empty()) DKB_RETURN_IF_ERROR(shard(s).AppendBatch(parts[s]));
  }
  return Status::OK();
}

Result<RowId> ScanSource::Insert(const Tuple& tuple) {
  return shard(ShardOf(tuple)).Insert(tuple);
}

Result<RowId> ScanSource::Insert(Tuple&& tuple) {
  const size_t s = ShardOf(tuple);
  return shard(s).Insert(std::move(tuple));
}

Status ScanSource::AddIndexSpec(const std::string& index_name,
                                const std::vector<size_t>& key_columns,
                                bool ordered) {
  for (size_t s = 0; s < shard_count(); ++s) {
    std::unique_ptr<Index> index;
    if (ordered) {
      index = std::make_unique<OrderedIndex>(index_name, key_columns);
    } else {
      index = std::make_unique<HashIndex>(index_name, key_columns);
    }
    DKB_RETURN_IF_ERROR(shard(s).AddIndex(std::move(index)));
  }
  return Status::OK();
}

const Index* ScanSource::FindIndexOn(
    const std::vector<size_t>& key_columns) const {
  return shard(0).FindIndexOn(key_columns);
}

}  // namespace dkb
