#include "storage/tuple.h"

namespace dkb {

size_t HashTuple(const Tuple& t) {
  size_t h = 0x345678u;
  for (const Value& v : t) {
    h ^= v.Hash() + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dkb
