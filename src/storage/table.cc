#include "storage/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dkb {

Table::~Table() {
  for (std::atomic<Chunk*>& cptr : dir_) {
    Chunk* chunk = cptr.load(std::memory_order_relaxed);
    if (chunk == nullptr) continue;
    for (std::atomic<Segment*>& sptr : chunk->segs) {
      delete sptr.load(std::memory_order_relaxed);
    }
    delete chunk;
  }
}

Status Table::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " does not match " +
        name_ + " schema arity " + std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    if (tuple[i].type() != schema_.column(i).type) {
      return Status::TypeError("column " + schema_.column(i).name + " of " +
                               name_ + " expects " +
                               DataTypeName(schema_.column(i).type) +
                               " but got " + DataTypeName(tuple[i].type()));
    }
  }
  return Status::OK();
}

Table::Slot& Table::EnsureSlot(RowId rid) {
  const size_t seg = rid / kSegmentRows;
  const size_t ci = seg / kChunkSegments;
  if (ci >= kMaxChunks) {
    std::fprintf(stderr, "dkb: table %s exceeded %zu rows\n", name_.c_str(),
                 kMaxChunks * kChunkSegments * kSegmentRows);
    std::abort();
  }
  Chunk* chunk = dir_[ci].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    ++chunks_allocated_;
    dir_[ci].store(chunk, std::memory_order_release);
  }
  std::atomic<Segment*>& sptr = chunk->segs[seg % kChunkSegments];
  Segment* segment = sptr.load(std::memory_order_relaxed);
  if (segment == nullptr) {
    segment = new Segment();
    ++segments_allocated_;
    sptr.store(segment, std::memory_order_release);
  }
  return segment->slots[rid % kSegmentRows];
}

RowId Table::InsertRow(Tuple tuple) {
  // Intern before index maintenance so index keys share the cheap
  // representation with the stored tuple.
  for (auto& v : tuple) v.InternInPlace();
  const RowId rid = size_.load(std::memory_order_relaxed);
  Slot& slot = EnsureSlot(rid);
  slot.tuple = std::move(tuple);
  slot.begin.store(versioned() ? epochs_->write_epoch() : 0,
                   std::memory_order_relaxed);
  slot.end.store(kNeverEpoch, std::memory_order_relaxed);
  for (auto& index : indexes_) {
    index->Insert(index->MakeKey(slot.tuple), rid);
  }
  // Publish: everything above (directory pointers, the slot, index entries)
  // is sequenced before this release store, so a reader that observes the
  // new size sees a fully initialized slot.
  size_.store(rid + 1, std::memory_order_release);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return rid;
}

Result<RowId> Table::Insert(const Tuple& tuple) {
  DKB_RETURN_IF_ERROR(ValidateTuple(tuple));
  return InsertUnchecked(tuple);
}

Result<RowId> Table::Insert(Tuple&& tuple) {
  DKB_RETURN_IF_ERROR(ValidateTuple(tuple));
  return InsertUnchecked(std::move(tuple));
}

RowId Table::InsertUnchecked(Tuple tuple) {
  if (versioned()) {
    WriterLock lock(index_mu_);
    return InsertRow(std::move(tuple));
  }
  return InsertRow(std::move(tuple));
}

Status Table::AppendBatch(const RowBatch& batch) {
  if (batch.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "batch arity " + std::to_string(batch.num_columns()) +
        " does not match " + name_ + " schema arity " +
        std::to_string(schema_.num_columns()));
  }
  const size_t n = batch.size();
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const DataType want = schema_.column(c).type;
    for (size_t i = 0; i < n; ++i) {
      const Value& v = batch.At(i, c);
      if (v.is_null()) continue;
      if (v.type() != want) {
        return Status::TypeError("column " + schema_.column(c).name + " of " +
                                 name_ + " expects " + DataTypeName(want) +
                                 " but got " + DataTypeName(v.type()));
      }
    }
  }
  if (versioned()) {
    WriterLock lock(index_mu_);
    for (size_t i = 0; i < n; ++i) InsertRow(batch.MaterializeTuple(i));
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) InsertRow(batch.MaterializeTuple(i));
  return Status::OK();
}

RowId Table::ScanBatch(RowId cursor, RowBatch* out, Epoch at) const {
  out->Reset(schema_.num_columns());
  const RowId n = num_slots();
  while (cursor < n && !out->full()) {
    const Slot& slot = SlotRef(cursor);
    if (EpochVisible(slot.begin.load(std::memory_order_relaxed),
                     slot.end.load(std::memory_order_acquire), at)) {
      out->AppendRow(slot.tuple);
    }
    ++cursor;
  }
  if (!out->empty()) {
    scan_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

bool Table::Delete(RowId rid) {
  if (!IsLive(rid)) return false;
  Slot& slot = SlotRef(rid);
  if (versioned()) {
    // Index entries stay until Vacuum: a reader pinned before this delete
    // must still find the row through its indexes.
    slot.end.store(epochs_->write_epoch(), std::memory_order_release);
  } else {
    for (auto& index : indexes_) {
      index->Erase(index->MakeKey(slot.tuple), rid);
    }
    slot.end.store(0, std::memory_order_release);
  }
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Table::Clear() {
  const RowId n = num_slots();
  if (versioned()) {
    // Mass delete, not a physical reset: pinned readers keep their view and
    // Vacuum reclaims payloads and index entries once nobody can see them.
    const Epoch we = epochs_->write_epoch();
    for (RowId rid = 0; rid < n; ++rid) {
      Slot& slot = SlotRef(rid);
      if (slot.end.load(std::memory_order_relaxed) == kNeverEpoch) {
        slot.end.store(we, std::memory_order_release);
      }
    }
    live_count_.store(0, std::memory_order_relaxed);
    return;
  }
  // Unversioned: physical reset. Segments stay allocated so the LFP's
  // per-iteration temp churn does not round-trip the allocator.
  for (RowId rid = 0; rid < n; ++rid) {
    Slot& slot = SlotRef(rid);
    slot.tuple = Tuple{};
    slot.begin.store(0, std::memory_order_relaxed);
    slot.end.store(kNeverEpoch, std::memory_order_relaxed);
  }
  size_.store(0, std::memory_order_release);
  live_count_.store(0, std::memory_order_relaxed);
  // Rebuild empty indexes preserving their definitions.
  for (auto& index : indexes_) {
    std::unique_ptr<Index> fresh;
    if (index->kind() == IndexKind::kHash) {
      fresh = std::make_unique<HashIndex>(index->name(), index->key_columns());
    } else {
      fresh =
          std::make_unique<OrderedIndex>(index->name(), index->key_columns());
    }
    index = std::move(fresh);
  }
}

size_t Table::Vacuum(Epoch min_pinned) {
  if (!versioned()) return 0;
  WriterLock lock(index_mu_);
  const RowId n = num_slots();
  size_t reclaimed = 0;
  for (RowId rid = 0; rid < n; ++rid) {
    Slot& slot = SlotRef(rid);
    if (slot.begin.load(std::memory_order_relaxed) == kNeverEpoch) {
      continue;  // already reclaimed
    }
    const Epoch end = slot.end.load(std::memory_order_acquire);
    if (end == kNeverEpoch || end > min_pinned) continue;
    // Invisible at every pinned epoch and at latest: erase the deferred
    // index entries (key extracted before the payload goes away), free the
    // payload, and mark the slot reclaimed.
    for (auto& index : indexes_) {
      index->Erase(index->MakeKey(slot.tuple), rid);
    }
    slot.tuple = Tuple{};
    slot.begin.store(kNeverEpoch, std::memory_order_relaxed);
    ++reclaimed;
  }
  return reclaimed;
}

size_t Table::ApproxBytes() const {
  return segments_allocated_.load(std::memory_order_relaxed) *
             sizeof(Segment) +
         chunks_allocated_.load(std::memory_order_relaxed) * sizeof(Chunk) +
         num_slots() * schema_.num_columns() * sizeof(Value);
}

Status Table::AddIndex(std::unique_ptr<Index> index) {
  if (versioned()) {
    WriterLock lock(index_mu_);
    return AddIndexLocked(std::move(index));
  }
  return AddIndexLocked(std::move(index));
}

Status Table::AddIndexLocked(std::unique_ptr<Index> index) {
  for (const auto& existing : indexes_) {
    if (existing->name() == index->name()) {
      return Status::AlreadyExists("index " + index->name() +
                                   " already exists on " + name_);
    }
  }
  const RowId n = num_slots();
  for (RowId rid = 0; rid < n; ++rid) {
    const Slot& slot = SlotRef(rid);
    if (versioned()) {
      // Index every non-reclaimed slot: a dead row may still be visible to
      // a pinned reader, who must be able to probe it.
      if (slot.begin.load(std::memory_order_relaxed) == kNeverEpoch) continue;
    } else {
      if (slot.end.load(std::memory_order_relaxed) != kNeverEpoch) continue;
    }
    index->Insert(index->MakeKey(slot.tuple), rid);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const Index* Table::FindIndexOn(
    const std::vector<size_t>& key_columns) const {
  if (versioned()) {
    ReaderLock lock(index_mu_);
    return FindIndexOnLocked(key_columns);
  }
  return FindIndexOnLocked(key_columns);
}

const Index* Table::FindIndexOnLocked(
    const std::vector<size_t>& key_columns) const {
  std::vector<size_t> want = key_columns;
  std::sort(want.begin(), want.end());
  for (const auto& index : indexes_) {
    std::vector<size_t> have = index->key_columns();
    std::sort(have.begin(), have.end());
    if (have == want) return index.get();
  }
  return nullptr;
}

void Table::ProbeIndex(const Index* index, const Tuple& key,
                       std::vector<RowId>* out) const {
  if (versioned()) {
    ReaderLock lock(index_mu_);
    index->Probe(key, out);
    return;
  }
  index->Probe(key, out);
}

void Table::ProbeIndexRange(const OrderedIndex* index, const Tuple* lo,
                            const Tuple* hi, std::vector<RowId>* out) const {
  if (versioned()) {
    ReaderLock lock(index_mu_);
    index->RangeOpt(lo, hi, out);
    return;
  }
  index->RangeOpt(lo, hi, out);
}

}  // namespace dkb
