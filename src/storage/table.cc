#include "storage/table.h"

#include <algorithm>

namespace dkb {

Status Table::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " does not match " +
        name_ + " schema arity " + std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    if (tuple[i].type() != schema_.column(i).type) {
      return Status::TypeError("column " + schema_.column(i).name + " of " +
                               name_ + " expects " +
                               DataTypeName(schema_.column(i).type) +
                               " but got " + DataTypeName(tuple[i].type()));
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(const Tuple& tuple) {
  DKB_RETURN_IF_ERROR(ValidateTuple(tuple));
  return InsertUnchecked(tuple);
}

Result<RowId> Table::Insert(Tuple&& tuple) {
  DKB_RETURN_IF_ERROR(ValidateTuple(tuple));
  return InsertUnchecked(std::move(tuple));
}

RowId Table::InsertUnchecked(Tuple tuple) {
  // Intern before index maintenance so index keys share the cheap
  // representation with the stored tuple.
  for (auto& v : tuple) v.InternInPlace();
  RowId rid = rows_.size();
  for (auto& index : indexes_) {
    index->Insert(index->MakeKey(tuple), rid);
  }
  rows_.push_back(Slot{std::move(tuple), false});
  ++live_count_;
  return rid;
}

Status Table::AppendBatch(const RowBatch& batch) {
  if (batch.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "batch arity " + std::to_string(batch.num_columns()) +
        " does not match " + name_ + " schema arity " +
        std::to_string(schema_.num_columns()));
  }
  const size_t n = batch.size();
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const DataType want = schema_.column(c).type;
    for (size_t i = 0; i < n; ++i) {
      const Value& v = batch.At(i, c);
      if (v.is_null()) continue;
      if (v.type() != want) {
        return Status::TypeError("column " + schema_.column(c).name + " of " +
                                 name_ + " expects " + DataTypeName(want) +
                                 " but got " + DataTypeName(v.type()));
      }
    }
  }
  rows_.reserve(rows_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    InsertUnchecked(batch.MaterializeTuple(i));
  }
  return Status::OK();
}

RowId Table::ScanBatch(RowId cursor, RowBatch* out) const {
  out->Reset(schema_.num_columns());
  while (cursor < rows_.size() && !out->full()) {
    const Slot& slot = rows_[cursor];
    if (!slot.deleted) out->AppendRow(slot.tuple);
    ++cursor;
  }
  if (!out->empty()) {
    scan_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

bool Table::Delete(RowId rid) {
  if (!IsLive(rid)) return false;
  for (auto& index : indexes_) {
    index->Erase(index->MakeKey(rows_[rid].tuple), rid);
  }
  rows_[rid].deleted = true;
  --live_count_;
  return true;
}

void Table::Clear() {
  rows_.clear();
  live_count_ = 0;
  // Rebuild empty indexes preserving their definitions.
  for (auto& index : indexes_) {
    std::unique_ptr<Index> fresh;
    if (index->kind() == IndexKind::kHash) {
      fresh = std::make_unique<HashIndex>(index->name(), index->key_columns());
    } else {
      fresh =
          std::make_unique<OrderedIndex>(index->name(), index->key_columns());
    }
    index = std::move(fresh);
  }
}

Status Table::AddIndex(std::unique_ptr<Index> index) {
  for (const auto& existing : indexes_) {
    if (existing->name() == index->name()) {
      return Status::AlreadyExists("index " + index->name() +
                                   " already exists on " + name_);
    }
  }
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (!rows_[rid].deleted) {
      index->Insert(index->MakeKey(rows_[rid].tuple), rid);
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const Index* Table::FindIndexOn(
    const std::vector<size_t>& key_columns) const {
  std::vector<size_t> want = key_columns;
  std::sort(want.begin(), want.end());
  for (const auto& index : indexes_) {
    std::vector<size_t> have = index->key_columns();
    std::sort(have.begin(), have.end());
    if (have == want) return index.get();
  }
  return nullptr;
}

}  // namespace dkb
