#ifndef DKB_STORAGE_SHARDED_TABLE_H_
#define DKB_STORAGE_SHARDED_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/scan_source.h"
#include "storage/table.h"

namespace dkb {

/// Hash-partitioned table: N independent Table shards behind the ScanSource
/// interface, partitioned by the hash of one key column. Shards share no
/// state, so distinct shards may be read and written by distinct threads
/// concurrently — they are the engine's NUMA-friendly thread domains.
///
/// The partitioning function is `mix(tuple[key_column].Hash()) %
/// shard_count` (see ShardOf). It depends only on the tuple's key value,
/// never on arrival order, so: (a) re-appending rows scanned from any
/// source reproduces the layout (snapshot load, COW clones); (b) two
/// sources with equal shard counts and key column are *aligned* — identical
/// tuples occupy the same shard index in both, which is what makes
/// per-shard set difference (EvalContext::DiffInto) exact.
class ShardedTable : public ScanSource {
 public:
  /// `shard_count` must be ≥ 1; `key_column` is the partitioning column
  /// (clamped to shard 0 routing for tuples too short to have it).
  ShardedTable(std::string name, Schema schema, size_t shard_count,
               size_t key_column = 0);

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  size_t shard_count() const override { return shards_.size(); }
  const Table& shard(size_t s) const override { return *shards_[s]; }
  Table& shard(size_t s) override { return *shards_[s]; }
  size_t partition_column() const override { return key_column_; }
  size_t ShardOfValue(const Value& v) const override;

  size_t key_column() const { return key_column_; }

 private:
  std::string name_;
  Schema schema_;
  size_t key_column_;
  std::vector<std::unique_ptr<Table>> shards_;
};

}  // namespace dkb

#endif  // DKB_STORAGE_SHARDED_TABLE_H_
