#ifndef DKB_STORAGE_CODEC_H_
#define DKB_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/value.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dkb::codec {

/// Binary codec shared by the wire protocol, the WAL, and the checkpoint
/// format. Primitives are little-endian fixed width; strings are u32 length
/// + bytes; values are 1-byte tagged. It lives in the storage layer (below
/// net in the library DAG) so durability code can use it; net/wire.h
/// re-exports it as WireWriter/WireReader.

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(std::string_view s);
  void Val(const Value& v);
  void Row(const Tuple& t);
  void Cols(const Schema& s);

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a payload. Every accessor returns false once
/// the payload is exhausted or malformed; callers finish with a single
/// Status check via Done()/error().
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool Str(std::string* s);
  bool Val(Value* v);
  bool Row(Tuple* t);
  bool Cols(Schema* s);

  bool ok() const { return ok_; }
  /// True when every byte was consumed and no read failed.
  bool Done() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (the common reflected polynomial 0xEDB88320), used by the WAL
/// record framing and the checkpoint trailer to detect torn or corrupt
/// writes. `seed` chains incremental computations: Crc32(b, Crc32(a)) ==
/// Crc32(a + b).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace dkb::codec

#endif  // DKB_STORAGE_CODEC_H_
