#include "storage/index.h"

namespace dkb {

Tuple Index::MakeKey(const Tuple& row) const {
  Tuple key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void HashIndex::Insert(const Tuple& key, RowId rid) {
  map_.emplace(key, rid);
}

void HashIndex::Erase(const Tuple& key, RowId rid) {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      return;
    }
  }
}

void HashIndex::Probe(const Tuple& key, std::vector<RowId>* out) const {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out->push_back(it->second);
}

void OrderedIndex::Insert(const Tuple& key, RowId rid) {
  map_.emplace(key, rid);
}

void OrderedIndex::Erase(const Tuple& key, RowId rid) {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      return;
    }
  }
}

void OrderedIndex::Probe(const Tuple& key, std::vector<RowId>* out) const {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out->push_back(it->second);
}

void OrderedIndex::Range(const Tuple& lo, const Tuple& hi,
                         std::vector<RowId>* out) const {
  RangeOpt(&lo, &hi, out);
}

void OrderedIndex::RangeOpt(const Tuple* lo, const Tuple* hi,
                            std::vector<RowId>* out) const {
  auto it = (lo != nullptr) ? map_.lower_bound(*lo) : map_.begin();
  auto end = (hi != nullptr) ? map_.upper_bound(*hi) : map_.end();
  for (; it != end; ++it) out->push_back(it->second);
}

}  // namespace dkb
