#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "storage/codec.h"

namespace dkb {

namespace {

// u32 len | u32 crc | u64 lsn | u8 kind
constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 1;

uint32_t RecordCrc(uint64_t lsn, uint8_t kind, std::string_view payload) {
  codec::Writer w;
  w.U64(lsn);
  w.U8(kind);
  return codec::Crc32(payload, codec::Crc32(w.str()));
}

std::string EncodeFrame(uint64_t lsn, uint8_t kind, std::string_view payload) {
  codec::Writer w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(RecordCrc(lsn, kind, payload));
  w.U64(lsn);
  w.U8(kind);
  std::string out = std::move(w).Take();
  out.append(payload.data(), payload.size());
  return out;
}

Status ReadWholeFile(const std::string& path, std::string* out,
                     bool* exists) {
  *exists = false;
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::Unavailable("wal: open " + path + ": " +
                               std::strerror(errno));
  }
  *exists = true;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::Unavailable("wal: read " + path + ": " +
                                 std::strerror(saved));
    }
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

struct ScanResult {
  size_t valid_bytes = 0;  // length of the valid record prefix
  uint64_t last_lsn = 0;   // LSN of the last valid record (0 if none)
};

// Walks the frames in `data`, stopping at the first torn or corrupt one.
// Optionally invokes `fn` per valid record; a non-OK fn aborts the walk and
// is returned (distinguishable from a clean stop, which returns OK).
Status ScanRecords(
    std::string_view data, ScanResult* result,
    const std::function<Status(uint64_t, WalRecordKind, std::string_view)>*
        fn) {
  size_t off = 0;
  result->valid_bytes = 0;
  result->last_lsn = 0;
  while (data.size() - off >= kFrameHeaderBytes) {
    codec::Reader r(data.substr(off, kFrameHeaderBytes));
    uint32_t len = 0;
    uint32_t crc = 0;
    uint64_t lsn = 0;
    uint8_t kind = 0;
    if (!r.U32(&len) || !r.U32(&crc) || !r.U64(&lsn) || !r.U8(&kind)) break;
    if (data.size() - off - kFrameHeaderBytes < len) break;  // torn payload
    std::string_view payload = data.substr(off + kFrameHeaderBytes, len);
    if (RecordCrc(lsn, kind, payload) != crc) break;  // corrupt
    if (lsn <= result->last_lsn) break;               // LSNs must ascend
    if (fn != nullptr) {
      DKB_RETURN_IF_ERROR(
          (*fn)(lsn, static_cast<WalRecordKind>(kind), payload));
    }
    result->last_lsn = lsn;
    off += kFrameHeaderBytes + len;
    result->valid_bytes = off;
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       Options options) {
  std::string data;
  bool exists = false;
  DKB_RETURN_IF_ERROR(ReadWholeFile(path, &data, &exists));
  ScanResult scan;
  DKB_RETURN_IF_ERROR(ScanRecords(data, &scan, nullptr));

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Unavailable("wal: open " + path + ": " +
                               std::strerror(errno));
  }
  if (scan.valid_bytes < data.size()) {
    // Torn tail from a crash mid-write: drop it so the next append starts
    // on a clean frame boundary.
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      int saved = errno;
      ::close(fd);
      return Status::Unavailable("wal: truncate torn tail of " + path + ": " +
                                 std::strerror(saved));
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    int saved = errno;
    ::close(fd);
    return Status::Unavailable("wal: seek " + path + ": " +
                               std::strerror(saved));
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, options, scan.last_lsn));
}

Wal::Wal(std::string path, int fd, Options options, uint64_t last_lsn)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      last_lsn_(last_lsn),
      appended_lsn_(last_lsn),
      durable_lsn_(last_lsn) {
  if (options_.group_commit) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

Wal::~Wal() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::WriteAndSync(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("wal: write " + path_ + ": " +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (options_.fsync) {
    if (::fdatasync(fd_) != 0) {
      return Status::Unavailable("wal: fsync " + path_ + ": " +
                                 std::strerror(errno));
    }
    static metrics::Counter& fsync_counter =
        metrics::GlobalMetrics().counter("dkb.wal.fsyncs");
    fsync_counter.Add();
  }
  return Status::OK();
}

Result<uint64_t> Wal::Append(WalRecordKind kind, std::string_view payload) {
  static metrics::Counter& appends =
      metrics::GlobalMetrics().counter("dkb.wal.appends");
  static metrics::Counter& bytes =
      metrics::GlobalMetrics().counter("dkb.wal.bytes");

  MutexLock lock(mu_);
  if (!io_status_.ok()) return io_status_;
  const uint64_t lsn = ++last_lsn_;
  std::string frame = EncodeFrame(lsn, static_cast<uint8_t>(kind), payload);
  appends.Add();
  bytes.Add(static_cast<int64_t>(frame.size()));
  ++appends_;
  if (options_.group_commit) {
    pending_ += frame;
    ++pending_records_;
    appended_lsn_ = lsn;
    work_cv_.NotifyOne();
  } else {
    Status st = WriteAndSync(frame);
    if (options_.fsync) ++fsyncs_;
    if (!st.ok()) {
      io_status_ = st;
      return st;
    }
    appended_lsn_ = lsn;
    durable_lsn_ = lsn;
  }
  return lsn;
}

void Wal::FlusherLoop() {
  static metrics::Histogram& batch_hist =
      metrics::GlobalMetrics().histogram("dkb.wal.group_batch");
  for (;;) {
    std::string batch;
    uint64_t batch_last = 0;
    int64_t batch_records = 0;
    {
      MutexLock lock(mu_);
      while (!stop_ && pending_.empty()) work_cv_.Wait(lock);
      if (pending_.empty()) return;  // stop requested, nothing queued
      batch = std::move(pending_);
      pending_.clear();
      batch_last = appended_lsn_;
      batch_records = pending_records_;
      pending_records_ = 0;
    }
    Status st = WriteAndSync(batch);
    batch_hist.Observe(batch_records);
    {
      MutexLock lock(mu_);
      if (options_.fsync) ++fsyncs_;
      if (!st.ok() && io_status_.ok()) io_status_ = st;
      if (st.ok()) durable_lsn_ = batch_last;
    }
    durable_cv_.NotifyAll();
  }
}

Status Wal::WaitDurable(uint64_t lsn) {
  MutexLock lock(mu_);
  while (io_status_.ok() && durable_lsn_ < lsn) durable_cv_.Wait(lock);
  return io_status_;
}

Status Wal::Truncate() {
  MutexLock lock(mu_);
  // Drain the flusher first so a stale in-flight batch cannot land after
  // the truncation.
  while (io_status_.ok() && durable_lsn_ < last_lsn_) durable_cv_.Wait(lock);
  if (!io_status_.ok()) return io_status_;
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    io_status_ = Status::Unavailable("wal: truncate " + path_ + ": " +
                                     std::strerror(errno));
    return io_status_;
  }
  if (options_.fsync && ::fdatasync(fd_) != 0) {
    io_status_ = Status::Unavailable("wal: fsync " + path_ + ": " +
                                     std::strerror(errno));
    return io_status_;
  }
  return Status::OK();
}

void Wal::ReserveThrough(uint64_t lsn) {
  MutexLock lock(mu_);
  if (lsn > last_lsn_) {
    last_lsn_ = lsn;
    appended_lsn_ = lsn;
    durable_lsn_ = lsn;
  }
}

uint64_t Wal::last_lsn() const {
  MutexLock lock(mu_);
  return last_lsn_;
}

int64_t Wal::appends() const {
  MutexLock lock(mu_);
  return appends_;
}

int64_t Wal::fsyncs() const {
  MutexLock lock(mu_);
  return fsyncs_;
}

Status Wal::Replay(
    const std::string& path, uint64_t after_lsn,
    const std::function<Status(uint64_t lsn, WalRecordKind kind,
                               std::string_view payload)>& fn) {
  std::string data;
  bool exists = false;
  DKB_RETURN_IF_ERROR(ReadWholeFile(path, &data, &exists));
  if (!exists) return Status::OK();
  std::function<Status(uint64_t, WalRecordKind, std::string_view)> filtered =
      [&](uint64_t lsn, WalRecordKind kind, std::string_view payload) {
        if (lsn <= after_lsn) return Status::OK();
        return fn(lsn, kind, payload);
      };
  ScanResult scan;
  return ScanRecords(data, &scan, &filtered);
}

}  // namespace dkb
