#ifndef DKB_STORAGE_CHECKPOINT_H_
#define DKB_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/scan_source.h"

namespace dkb {

/// Columnar checkpoint files.
///
/// A checkpoint is a point-in-time image of every stored table plus the
/// workspace rule texts, written atomically (tmp + rename) so a crash during
/// checkpointing leaves the previous image intact. Together with the WAL it
/// forms the recovery pair: startup loads the newest checkpoint, then
/// replays WAL records with LSN > the checkpoint's last_lsn.
///
/// Layout (storage/codec.h primitives, all little-endian), CRC-32 trailer
/// over everything after the magic:
///
///   "DKBCKPT1"                       8-byte magic
///   u64 last_lsn                     WAL position the image includes
///   u64 epoch                        committed epoch at write time
///   u32 nrules, nrules x Str         workspace rule/program texts
///   u32 ndict,  ndict  x Str         file-local string dictionary
///   u32 ntables, per table:
///     Str  name
///     u32  shard_count               preserved so recovery reproduces the
///     u32  partition_column          exact hash-partition layout
///     Cols schema
///     u16  nindexes x { Str name, u8 ordered, u16 ncols, ncols x u16 }
///     per shard: u64 nrows, then column-major values:
///       u8 tag per cell — 0 NULL | 1 i64 follows | 2 u32 dict id follows
///   u32 crc
///
/// Strings are dictionary-coded per file: each distinct VARCHAR is stored
/// once and cells reference it by dense u32 id, mirroring the in-memory
/// interner and keeping string-heavy D/KB images compact.

/// Point-in-time metadata recovered from a checkpoint header.
struct CheckpointInfo {
  uint64_t last_lsn = 0;
  uint64_t epoch = 0;
};

/// Recreates one empty stored table during ReadCheckpoint: the callee
/// registers it (catalog / stored-DKB bookkeeping) and returns the storage
/// to load rows into. Shard count and partition column must be honored so
/// the on-disk per-shard row lists land back in their original shards.
using TableFactory = std::function<Result<ScanSource*>(
    const std::string& name, const Schema& schema, size_t shard_count,
    size_t partition_column)>;

/// Writes a checkpoint of `tables` (rows visible at the latest epoch) and
/// `rules` to `path` via a temp file + atomic rename. The caller must hold
/// the write side of the testbed lock so the image is a consistent cut.
Status WriteCheckpoint(const std::string& path, uint64_t last_lsn,
                       uint64_t epoch, const std::vector<const ScanSource*>& tables,
                       const std::vector<std::string>& rules);

/// Loads the checkpoint at `path`: calls `factory` once per table, appends
/// each shard's rows directly to the matching shard (preserving layout),
/// recreates index definitions, and fills `rules_out` with the saved rule
/// texts. Returns header metadata. The target system must be empty; loading
/// into a non-empty catalog is the caller's kFailedPrecondition to enforce.
Result<CheckpointInfo> ReadCheckpoint(const std::string& path,
                                      const TableFactory& factory,
                                      std::vector<std::string>* rules_out);

/// Reads just the header (last_lsn, epoch) without loading any data;
/// validates magic and CRC. Used by sys.checkpoints and tooling.
Result<CheckpointInfo> PeekCheckpoint(const std::string& path);

}  // namespace dkb

#endif  // DKB_STORAGE_CHECKPOINT_H_
