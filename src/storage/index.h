#ifndef DKB_STORAGE_INDEX_H_
#define DKB_STORAGE_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace dkb {

/// Stable identifier of a row within a Table (slot number).
using RowId = uint64_t;

enum class IndexKind {
  kHash,     // equality probes only
  kOrdered,  // equality probes + range scans (B-tree stand-in)
};

/// Secondary index over a subset of a table's columns.
///
/// Keys are projected sub-tuples; the index maps key -> row ids. Both kinds
/// allow duplicates (the testbed's `rulesource.headpredname` etc. are
/// non-unique). The paper's DBMS placed indexes on the rule-storage
/// relations' join columns; these classes provide the same effect.
class Index {
 public:
  Index(std::string name, std::vector<size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}
  virtual ~Index() = default;

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Extracts this index's key from a full table tuple.
  Tuple MakeKey(const Tuple& row) const;

  virtual IndexKind kind() const = 0;
  virtual void Insert(const Tuple& key, RowId rid) = 0;
  virtual void Erase(const Tuple& key, RowId rid) = 0;
  /// Appends all row ids whose key equals `key` to `out`.
  virtual void Probe(const Tuple& key, std::vector<RowId>* out) const = 0;
  virtual size_t num_entries() const = 0;

 private:
  std::string name_;
  std::vector<size_t> key_columns_;
};

/// Hash index: O(1) expected equality probe.
class HashIndex : public Index {
 public:
  HashIndex(std::string name, std::vector<size_t> key_columns)
      : Index(std::move(name), std::move(key_columns)) {}

  IndexKind kind() const override { return IndexKind::kHash; }
  void Insert(const Tuple& key, RowId rid) override;
  void Erase(const Tuple& key, RowId rid) override;
  void Probe(const Tuple& key, std::vector<RowId>* out) const override;
  size_t num_entries() const override { return map_.size(); }

 private:
  std::unordered_multimap<Tuple, RowId, TupleHash> map_;
};

/// Ordered index: logarithmic probe plus range scans; stands in for the
/// commercial DBMS's B-tree.
class OrderedIndex : public Index {
 public:
  OrderedIndex(std::string name, std::vector<size_t> key_columns)
      : Index(std::move(name), std::move(key_columns)) {}

  IndexKind kind() const override { return IndexKind::kOrdered; }
  void Insert(const Tuple& key, RowId rid) override;
  void Erase(const Tuple& key, RowId rid) override;
  void Probe(const Tuple& key, std::vector<RowId>* out) const override;
  size_t num_entries() const override { return map_.size(); }

  /// Appends row ids with lo <= key <= hi (lexicographic on the key tuple).
  void Range(const Tuple& lo, const Tuple& hi, std::vector<RowId>* out) const;

  /// Range scan with optional bounds (nullptr = unbounded); inclusive.
  void RangeOpt(const Tuple* lo, const Tuple* hi,
                std::vector<RowId>* out) const;

 private:
  std::multimap<Tuple, RowId> map_;
};

}  // namespace dkb

#endif  // DKB_STORAGE_INDEX_H_
