#ifndef DKB_STORAGE_TABLE_H_
#define DKB_STORAGE_TABLE_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "storage/epoch.h"
#include "storage/index.h"
#include "storage/scan_source.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dkb {

/// Heap table: an append-only, segmented in-memory store with per-row
/// [begin, end) epoch stamps and attached secondary indexes. The
/// single-shard ScanSource — every shard of a ShardedTable is one of these.
///
/// Rows live in fixed-size segments reached through a two-level directory of
/// atomic pointers, so slot addresses are stable for the lifetime of the
/// table and the directory grows without relocating anything a concurrent
/// reader might hold. Row ids are slot numbers and never change, which lets
/// indexes reference rows directly.
///
/// Versioning: a table attached to an EpochSource (EnableVersioning; done by
/// the catalog for the testbed's stored tables) stamps every insert with the
/// in-flight write epoch and turns deletes into end-stamps, so readers
/// pinned at an older epoch keep seeing the rows that were visible when they
/// pinned. Unversioned tables (LFP `#` temporaries, standalone databases)
/// stamp begin = 0 / end = kNever and behave exactly like the pre-MVCC
/// store: deletes erase index entries eagerly and Clear() resets physically.
///
/// Thread safety: writers are externally serialized (the testbed writer
/// lock). On *versioned* tables, readers pinned at an epoch run lock-free
/// against concurrent writers: slot visibility fields are atomics, new slots
/// are published by a release-store of size_, and the index *structures* are
/// protected by a per-table reader-writer lock that writers take per batch
/// and probes take per probe (see ProbeIndex). Index entries of deleted rows
/// are erased lazily by Vacuum once no pinned epoch can see them, so probes
/// must filter hits through VisibleAt. Unversioned tables keep the original
/// contract: no reader may overlap a mutation, and no locks are taken. See
/// DESIGN.md "Durability & MVCC".
class Table : public ScanSource {
 public:
  /// Rows per segment; one segment fills exactly one scan batch.
  static constexpr size_t kSegmentRows = 1024;
  static constexpr size_t kChunkSegments = 64;  // segments per chunk
  static constexpr size_t kMaxChunks = 1024;    // 64M rows per shard

  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  ~Table() override;

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  /// ScanSource: a Table is its own single shard.
  size_t shard_count() const override { return 1; }
  const Table& shard(size_t) const override { return *this; }
  Table& shard(size_t) override { return *this; }

  /// Attaches the epoch counter; rows inserted from here on are stamped.
  /// Must run before the first insert (the catalog calls it at CreateTable).
  void EnableVersioning(const EpochSource* epochs) { epochs_ = epochs; }
  bool versioned() const { return epochs_ != nullptr; }

  /// Number of rows visible at the latest epoch.
  size_t num_tuples() const override {
    return static_cast<size_t>(live_count_.load(std::memory_order_relaxed));
  }
  /// Total slots including dead ones; valid RowIds are < num_slots().
  size_t num_slots() const { return size_.load(std::memory_order_acquire); }

  /// Appends a tuple. The tuple must match the schema arity; values must be
  /// of the declared types (or NULL). Updates all indexes. VARCHAR values
  /// are interned on the way in, so stored tuples hand out O(1)-copy values.
  Result<RowId> Insert(const Tuple& tuple);
  /// Move overload for hot paths that give up their tuple.
  Result<RowId> Insert(Tuple&& tuple);

  /// Appends without validation; caller guarantees schema conformance.
  /// Used on hot bulk-load paths (workload generators, LFP deltas).
  RowId InsertUnchecked(Tuple tuple);

  /// Appends every visible row of `batch`. Validates the column count once
  /// and value types column-wise, then takes the unchecked path per row
  /// (index maintenance locked once for the whole batch when versioned).
  Status AppendBatch(const RowBatch& batch);

  /// Fills `out` with up to RowBatch::kCapacity rows visible at `at`,
  /// starting at slot `cursor`, and returns the cursor for the next call.
  /// `out` is reset to the schema arity; an empty result batch means the
  /// scan is exhausted (invisible windows are skipped, not surfaced as
  /// empty batches).
  RowId ScanBatch(RowId cursor, RowBatch* out, Epoch at = kLatestEpoch) const;

  /// End-stamps the row if visible at latest; returns false if already
  /// dead. Versioned tables keep the row's index entries until Vacuum;
  /// unversioned tables erase them eagerly.
  bool Delete(RowId rid);

  /// Removes every row visible at latest. Versioned: a mass end-stamp
  /// (slots, payloads, and index entries stay until Vacuum so pinned
  /// readers are unaffected). Unversioned: physical reset — payloads are
  /// freed, size drops to zero, indexes are rebuilt empty (segments stay
  /// allocated for reuse, which keeps LFP's per-iteration temp churn cheap).
  void Clear() override;

  /// Reclaims rows no reader can see: every slot whose end epoch is at or
  /// below `min_pinned` (the oldest pinned epoch, or the committed epoch
  /// when no session is pinned) has its index entries erased and its tuple
  /// payload freed. Slot headers remain (RowIds stay stable); the freed
  /// payloads and index entries are the O(data) part. Returns the number of
  /// slots reclaimed. Versioned tables only; excluded against writers by
  /// the caller (the testbed reclaimer serializes with its writer lock).
  size_t Vacuum(Epoch min_pinned);

  /// Rough resident footprint: allocated segments plus directory chunks.
  /// Interned VARCHAR payloads live in the global dictionary and are not
  /// counted.
  size_t ApproxBytes() const;

  /// Executor hook: scan morsels dispatched against this shard, for
  /// sys.shards. Relaxed counter — a statistic, not a synchronization.
  void NoteMorsels(uint64_t n) const {
    morsels_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t morsels_dispatched() const {
    return morsels_.load(std::memory_order_relaxed);
  }

  /// Non-empty batches ScanBatch has produced from this shard (same relaxed
  /// statistics-only discipline as the morsel counter), for sys.shards.
  uint64_t scan_batches() const {
    return scan_batches_.load(std::memory_order_relaxed);
  }

  /// Visibility of slot `rid` at read epoch `at` (kLatestEpoch = the write
  /// path's view). Safe to call concurrently with writers on versioned
  /// tables.
  bool VisibleAt(RowId rid, Epoch at) const {
    if (rid >= num_slots()) return false;
    const Slot& slot = SlotRef(rid);
    return EpochVisible(slot.begin.load(std::memory_order_relaxed),
                        slot.end.load(std::memory_order_acquire), at);
  }

  /// Visibility at latest; kept for write-path callers.
  bool IsLive(RowId rid) const { return VisibleAt(rid, kLatestEpoch); }

  /// Requires VisibleAt(rid, at) for the caller's read epoch (a visible
  /// row's payload is never touched by Vacuum).
  const Tuple& Get(RowId rid) const { return SlotRef(rid).tuple; }

  /// Invokes fn(rid, tuple) for every row visible at `at`, in slot order.
  template <typename Fn>
  void Scan(Fn&& fn, Epoch at = kLatestEpoch) const {
    const RowId n = num_slots();
    for (RowId rid = 0; rid < n; ++rid) {
      const Slot& slot = SlotRef(rid);
      if (EpochVisible(slot.begin.load(std::memory_order_relaxed),
                       slot.end.load(std::memory_order_acquire), at)) {
        fn(rid, slot.tuple);
      }
    }
  }

  /// Attaches a new index and bulk-builds it. Versioned tables index every
  /// non-reclaimed slot (dead-but-still-visible-somewhere rows included, so
  /// pinned readers can probe them); unversioned tables index live rows.
  /// Returns error if an index with the same name exists.
  Status AddIndex(std::unique_ptr<Index> index);

  /// Index whose key columns exactly equal `key_columns` (order-insensitive);
  /// nullptr if none. Used by the planner for index-scan and index-join
  /// selection. Takes the index lock shared on versioned tables (a
  /// concurrent CREATE INDEX may be growing the list).
  const Index* FindIndexOn(const std::vector<size_t>& key_columns) const;

  /// Equality probe through the per-table index lock (a no-op lock for
  /// unversioned tables). Hits must still be filtered with VisibleAt —
  /// versioned indexes retain entries for dead rows until Vacuum.
  void ProbeIndex(const Index* index, const Tuple& key,
                  std::vector<RowId>* out) const;

  /// Range probe over an ordered index, same locking and filtering contract
  /// as ProbeIndex. Bounds are inclusive; nullptr = unbounded.
  void ProbeIndexRange(const OrderedIndex* index, const Tuple* lo,
                       const Tuple* hi, std::vector<RowId>* out) const;

  /// Index definitions. Caller must not overlap a concurrent CREATE INDEX
  /// (write-path callers hold the testbed writer lock; the planner uses
  /// FindIndexOn instead).
  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

 private:
  struct Slot {
    Tuple tuple;
    /// Epoch the row became visible; kNeverEpoch marks a reclaimed slot.
    std::atomic<Epoch> begin{0};
    /// Epoch the row stopped being visible; kNeverEpoch = still live.
    std::atomic<Epoch> end{kNeverEpoch};
  };

  struct Segment {
    std::array<Slot, kSegmentRows> slots;
  };

  struct Chunk {
    std::array<std::atomic<Segment*>, kChunkSegments> segs{};
  };

  Status ValidateTuple(const Tuple& tuple) const;

  /// Slot address for an existing RowId (rid < num_slots()). Two acquire
  /// loads; the release-store publishing size_ ordered the directory writes
  /// before it, so readers never observe a null chunk or segment here.
  const Slot& SlotRef(RowId rid) const {
    const size_t seg = rid / kSegmentRows;
    const Chunk* chunk =
        dir_[seg / kChunkSegments].load(std::memory_order_acquire);
    return chunk->segs[seg % kChunkSegments]
        .load(std::memory_order_acquire)
        ->slots[rid % kSegmentRows];
  }
  Slot& SlotRef(RowId rid) {
    return const_cast<Slot&>(
        static_cast<const Table*>(this)->SlotRef(rid));
  }

  /// Writer-only: slot for the next insert, allocating directory levels as
  /// needed (published with release stores so readers racing on size_ see
  /// initialized pointers).
  Slot& EnsureSlot(RowId rid);

  /// Unlocked insert body; caller holds the index write lock if versioned.
  RowId InsertRow(Tuple tuple);

  /// Unlocked bodies of AddIndex / FindIndexOn; callers hold index_mu_ in
  /// the right mode when versioned.
  Status AddIndexLocked(std::unique_ptr<Index> index);
  const Index* FindIndexOnLocked(const std::vector<size_t>& key_columns) const;

  std::string name_;
  Schema schema_;
  const EpochSource* epochs_ = nullptr;

  /// Two-level segment directory: dir_[c] -> Chunk -> Segment. Entries are
  /// written once (by the serialized writer) and read lock-free.
  std::array<std::atomic<Chunk*>, kMaxChunks> dir_{};
  /// Slots in use; release-published after the slot is fully initialized.
  std::atomic<uint64_t> size_{0};
  std::atomic<int64_t> live_count_{0};
  /// Allocation counters for ApproxBytes (writer-bumped, readers relaxed).
  std::atomic<size_t> chunks_allocated_{0};
  std::atomic<size_t> segments_allocated_{0};

  /// Guards index structures (the indexes_ list and each index's map)
  /// against lock-free pinned readers — only ever locked on versioned
  /// tables, where writers take it exclusively per batch and probes take it
  /// shared. Not annotated: acquisition is conditional on versioned(), which
  /// the static analysis cannot express; the discipline is documented here
  /// and exercised under TSan instead.
  mutable SharedMutex index_mu_;
  std::vector<std::unique_ptr<Index>> indexes_;

  mutable std::atomic<uint64_t> morsels_{0};
  mutable std::atomic<uint64_t> scan_batches_{0};
};

// Defined here, where Table is complete: the generic Scan walks shards in
// order, dispatching statically to Table::Scan per shard.
template <typename Fn>
void ScanSource::Scan(Fn&& fn, Epoch at) const {
  for (size_t s = 0; s < shard_count(); ++s) shard(s).Scan(fn, at);
}

}  // namespace dkb

#endif  // DKB_STORAGE_TABLE_H_
