#ifndef DKB_STORAGE_TABLE_H_
#define DKB_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/index.h"
#include "storage/scan_source.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dkb {

/// Heap table: slotted in-memory store with tombstone deletes and attached
/// secondary indexes that are maintained on every mutation. The
/// single-shard ScanSource — every shard of a ShardedTable is one of these.
///
/// Row ids are stable for the lifetime of the table (slots are never
/// compacted), which lets indexes reference rows directly.
///
/// Thread safety: externally synchronized — the table itself holds no lock.
/// Mutations (Insert/AppendBatch/Delete/Clear/index maintenance) must be
/// serialized by the owner, and no reader may overlap them. In this engine
/// that owner is the session layer's reader-writer protocol on Testbed::mu_
/// (writers mutate tables; sessions read private clones); morsel workers
/// only ever read, via ScanBatch over an immutable slot prefix. See
/// DESIGN.md "Concurrency invariants & static analysis".
class Table : public ScanSource {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  /// ScanSource: a Table is its own single shard.
  size_t shard_count() const override { return 1; }
  const Table& shard(size_t) const override { return *this; }
  Table& shard(size_t) override { return *this; }

  /// Number of live (non-deleted) tuples.
  size_t num_tuples() const override { return live_count_; }
  /// Total slots including tombstones; valid RowIds are < num_slots().
  size_t num_slots() const { return rows_.size(); }

  /// Appends a tuple. The tuple must match the schema arity; values must be
  /// of the declared types (or NULL). Updates all indexes. VARCHAR values
  /// are interned on the way in, so stored tuples hand out O(1)-copy values.
  Result<RowId> Insert(const Tuple& tuple);
  /// Move overload for hot paths that give up their tuple.
  Result<RowId> Insert(Tuple&& tuple);

  /// Appends without validation; caller guarantees schema conformance.
  /// Used on hot bulk-load paths (workload generators, LFP deltas).
  RowId InsertUnchecked(Tuple tuple);

  /// Appends every visible row of `batch`. Validates the column count once
  /// and value types column-wise, then takes the unchecked path per row.
  Status AppendBatch(const RowBatch& batch);

  /// Fills `out` with up to RowBatch::kCapacity live rows starting at slot
  /// `cursor` and returns the cursor for the next call. `out` is reset to
  /// the schema arity; an empty result batch means the scan is exhausted
  /// (tombstone-only windows are skipped, not surfaced as empty batches).
  RowId ScanBatch(RowId cursor, RowBatch* out) const;

  /// Tombstones the row if live; returns false if already deleted.
  bool Delete(RowId rid);

  /// Removes every live tuple (indexes cleared too).
  void Clear() override;

  /// Rough resident footprint: slots plus inline value storage. Interned
  /// VARCHAR payloads live in the global dictionary and are not counted.
  size_t ApproxBytes() const {
    return rows_.size() *
           (sizeof(Slot) + schema_.num_columns() * sizeof(Value));
  }

  /// Executor hook: scan morsels dispatched against this shard, for
  /// sys.shards. Relaxed counter — a statistic, not a synchronization.
  void NoteMorsels(uint64_t n) const {
    morsels_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t morsels_dispatched() const {
    return morsels_.load(std::memory_order_relaxed);
  }

  /// Non-empty batches ScanBatch has produced from this shard (same relaxed
  /// statistics-only discipline as the morsel counter), for sys.shards.
  uint64_t scan_batches() const {
    return scan_batches_.load(std::memory_order_relaxed);
  }

  bool IsLive(RowId rid) const {
    return rid < rows_.size() && !rows_[rid].deleted;
  }

  /// Requires IsLive(rid).
  const Tuple& Get(RowId rid) const { return rows_[rid].tuple; }

  /// Invokes fn(rid, tuple) for every live row, in slot order.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    for (RowId rid = 0; rid < rows_.size(); ++rid) {
      if (!rows_[rid].deleted) fn(rid, rows_[rid].tuple);
    }
  }

  /// Attaches a new index and bulk-builds it over existing rows.
  /// Returns error if an index with the same name exists.
  Status AddIndex(std::unique_ptr<Index> index);

  /// Index whose key columns exactly equal `key_columns`, or one whose key
  /// columns are a prefix-permutation match; nullptr if none. Used by the
  /// planner for index-scan and index-join selection.
  const Index* FindIndexOn(const std::vector<size_t>& key_columns) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

 private:
  struct Slot {
    Tuple tuple;
    bool deleted = false;
  };

  Status ValidateTuple(const Tuple& tuple) const;

  std::string name_;
  Schema schema_;
  std::vector<Slot> rows_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
  mutable std::atomic<uint64_t> morsels_{0};
  mutable std::atomic<uint64_t> scan_batches_{0};
};

// Defined here, where Table is complete: the generic Scan walks shards in
// order, dispatching statically to Table::Scan per shard.
template <typename Fn>
void ScanSource::Scan(Fn&& fn) const {
  for (size_t s = 0; s < shard_count(); ++s) shard(s).Scan(fn);
}

}  // namespace dkb

#endif  // DKB_STORAGE_TABLE_H_
