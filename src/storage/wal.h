#ifndef DKB_STORAGE_WAL_H_
#define DKB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/status.h"
#include "common/sync.h"

namespace dkb {

/// Kinds of redo records. These are *logical* testbed operations, not
/// physical page deltas: replaying the sequence through the normal write
/// paths reproduces the exact post-crash state (the write paths are
/// deterministic, including hash-partition layout). Values are
/// format-stable — append only, never renumber.
enum class WalRecordKind : uint8_t {
  kConsult = 1,         // str program_text
  kAddRule = 2,         // str rule_text
  kRetractRule = 3,     // str rule_text
  kDefineBase = 4,      // str pred, u16 n, n x u8 DataType
  kAddFacts = 5,        // str pred, u32 nrows, nrows x Row
  kUpdateStored = 6,    // (empty)
  kClearWorkspace = 7,  // (empty)
  kSql = 8,             // str statement
};

/// Write-ahead redo log.
///
/// On-disk format: a sequence of records, each framed as
///
///   u32 len      payload bytes
///   u32 crc      CRC-32 over (lsn || kind || payload)
///   u64 lsn      monotonically increasing, never reused within a log's life
///   u8  kind     WalRecordKind
///   payload      len bytes (storage/codec.h encoding per kind)
///
/// A torn tail (short header, short payload, or CRC mismatch) marks the end
/// of the valid prefix: Open truncates it away, Replay stops there. Records
/// are logged *before* the operation applies (log-before-apply); replay
/// re-drives the same operations and ignores their errors, so an operation
/// that half-applied before the crash converges to the same state.
///
/// Durability: Append assigns the LSN and stages bytes; WaitDurable(lsn)
/// blocks until the record is written (and fsync'd, when Options::fsync).
/// With group commit a background flusher coalesces every record staged
/// since the last fsync into one write+fsync, so N writers waiting
/// concurrently cost one disk flush, not N. Without group commit Append
/// writes through synchronously.
///
/// Thread safety: Append calls are serialized by the caller (the testbed
/// writer lock). WaitDurable may be called from any thread and is designed
/// to be called *after* releasing the writer lock, so the next writer can
/// append (and join the same fsync batch) while this one waits.
class Wal {
 public:
  struct Options {
    bool fsync = true;         // fdatasync flushed batches
    bool group_commit = true;  // coalesce appends into batched fsyncs
  };

  /// Opens (creating if needed) the log at `path`, scans for the last valid
  /// record, truncates any torn tail, and starts the flusher thread.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           Options options);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record and returns its LSN. Not durable until
  /// WaitDurable(lsn) returns OK.
  Result<uint64_t> Append(WalRecordKind kind, std::string_view payload)
      DKB_EXCLUDES(mu_);

  /// Blocks until every record with LSN <= lsn has been flushed (and
  /// fsync'd when enabled). Returns the sticky I/O error if the log died.
  Status WaitDurable(uint64_t lsn) DKB_EXCLUDES(mu_);

  /// Empties the log after a checkpoint made its prefix redundant. LSNs
  /// keep ascending (they are never reused), so records appended after the
  /// truncation still sort after the checkpoint's last_lsn.
  Status Truncate() DKB_EXCLUDES(mu_);

  /// Raises the LSN counter to at least `lsn`. Called once at recovery with
  /// the checkpoint's last_lsn, so fresh appends (into the truncated log)
  /// still get LSNs above everything the checkpoint covers.
  void ReserveThrough(uint64_t lsn) DKB_EXCLUDES(mu_);

  uint64_t last_lsn() const DKB_EXCLUDES(mu_);

  /// Total records appended and fsyncs issued since Open (sys.wal).
  int64_t appends() const DKB_EXCLUDES(mu_);
  int64_t fsyncs() const DKB_EXCLUDES(mu_);

  /// Replays the valid prefix of the log at `path` in order, invoking fn
  /// for every record with LSN > after_lsn. Stops cleanly at a torn or
  /// corrupt record. A missing file replays nothing. fn's error aborts.
  static Status Replay(
      const std::string& path, uint64_t after_lsn,
      const std::function<Status(uint64_t lsn, WalRecordKind kind,
                                 std::string_view payload)>& fn);

 private:
  Wal(std::string path, int fd, Options options, uint64_t last_lsn);

  void FlusherLoop();
  /// Writes `data` at the log's tail and fsyncs if configured; returns the
  /// first I/O failure.
  Status WriteAndSync(std::string_view data);

  const std::string path_;
  const Options options_;
  int fd_;

  mutable Mutex mu_;
  uint64_t last_lsn_ DKB_GUARDED_BY(mu_);
  uint64_t appended_lsn_ DKB_GUARDED_BY(mu_);  // last staged for the flusher
  uint64_t durable_lsn_ DKB_GUARDED_BY(mu_);
  std::string pending_ DKB_GUARDED_BY(mu_);
  int64_t pending_records_ DKB_GUARDED_BY(mu_) = 0;
  int64_t appends_ DKB_GUARDED_BY(mu_) = 0;
  int64_t fsyncs_ DKB_GUARDED_BY(mu_) = 0;
  Status io_status_ DKB_GUARDED_BY(mu_);
  bool stop_ DKB_GUARDED_BY(mu_) = false;
  CondVar work_cv_;
  CondVar durable_cv_;
  std::thread flusher_;
};

}  // namespace dkb

#endif  // DKB_STORAGE_WAL_H_
