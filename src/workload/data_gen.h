#ifndef DKB_WORKLOAD_DATA_GEN_H_
#define DKB_WORKLOAD_DATA_GEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace dkb::workload {

/// A generated binary relation in its directed-graph representation
/// (paper §5.2): domain elements are nodes, tuples are edges.
struct EdgeSet {
  std::vector<std::pair<std::string, std::string>> edges;
  std::vector<std::string> roots;  // zero-fan-in entry points
  int64_t num_nodes = 0;

  size_t num_tuples() const { return edges.size(); }
  /// Edges as 2-column VARCHAR tuples for bulk loading.
  std::vector<Tuple> ToTuples() const;
};

/// `num_lists` disjoint lists of length `length` nodes each:
/// approximately num_lists * (length - 1) tuples.
EdgeSet MakeLists(int num_lists, int length);

/// `num_trees` full binary trees of depth `depth` (depth 1 = a single
/// node): per tree 2^depth - 1 nodes and 2^depth - 2 tuples, matching the
/// paper's n(2^d - 2) characterization.
EdgeSet MakeFullBinaryTrees(int num_trees, int depth);

/// Node label of position `index` (heap order, 0 = root) in tree `tree` of
/// a MakeFullBinaryTrees result; lets benches aim queries at sub-trees of a
/// chosen size (the D_rel parameter).
std::string TreeNodeName(int tree, int64_t index);

/// Layered directed acyclic graph: `levels` levels of `width` nodes;
/// each non-root node receives `fan_in` edges from distinct random nodes of
/// the previous level. Path length (paper's parameter) equals `levels`.
EdgeSet MakeDag(int levels, int width, int fan_in, uint64_t seed);

/// Cyclic graph: the layered DAG plus `num_cycles` back edges, each closing
/// a cycle of average length `cycle_length` levels.
EdgeSet MakeCyclicGraph(int levels, int width, int fan_in, int num_cycles,
                        int cycle_length, uint64_t seed);

/// Number of nodes in the full binary subtree of depth `depth` rooted at
/// level `level` of a depth-`tree_depth` tree: 2^(tree_depth - level) - 1.
int64_t SubtreeSize(int tree_depth, int level);

}  // namespace dkb::workload

#endif  // DKB_WORKLOAD_DATA_GEN_H_
