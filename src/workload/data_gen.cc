#include "workload/data_gen.h"

#include <set>

#include "common/rng.h"

namespace dkb::workload {

std::vector<Tuple> EdgeSet::ToTuples() const {
  std::vector<Tuple> out;
  out.reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    out.push_back(Tuple{Value(src), Value(dst)});
  }
  return out;
}

EdgeSet MakeLists(int num_lists, int length) {
  EdgeSet out;
  for (int l = 0; l < num_lists; ++l) {
    std::string prefix = "l" + std::to_string(l) + "_";
    out.roots.push_back(prefix + "0");
    for (int i = 0; i + 1 < length; ++i) {
      out.edges.emplace_back(prefix + std::to_string(i),
                             prefix + std::to_string(i + 1));
    }
    out.num_nodes += length;
  }
  return out;
}

std::string TreeNodeName(int tree, int64_t index) {
  return "t" + std::to_string(tree) + "_" + std::to_string(index);
}

EdgeSet MakeFullBinaryTrees(int num_trees, int depth) {
  EdgeSet out;
  const int64_t nodes = (int64_t{1} << depth) - 1;  // 2^d - 1
  for (int t = 0; t < num_trees; ++t) {
    out.roots.push_back(TreeNodeName(t, 0));
    for (int64_t i = 0; i < nodes; ++i) {
      int64_t left = 2 * i + 1;
      int64_t right = 2 * i + 2;
      if (left < nodes) {
        out.edges.emplace_back(TreeNodeName(t, i), TreeNodeName(t, left));
      }
      if (right < nodes) {
        out.edges.emplace_back(TreeNodeName(t, i), TreeNodeName(t, right));
      }
    }
    out.num_nodes += nodes;
  }
  return out;
}

namespace {

std::string DagNodeName(int level, int pos) {
  return "g" + std::to_string(level) + "_" + std::to_string(pos);
}

}  // namespace

EdgeSet MakeDag(int levels, int width, int fan_in, uint64_t seed) {
  EdgeSet out;
  Rng rng(seed);
  out.num_nodes = static_cast<int64_t>(levels) * width;
  for (int p = 0; p < width; ++p) out.roots.push_back(DagNodeName(0, p));
  for (int level = 1; level < levels; ++level) {
    for (int p = 0; p < width; ++p) {
      std::set<int> sources;
      int k = std::min(fan_in, width);
      while (static_cast<int>(sources.size()) < k) {
        sources.insert(static_cast<int>(rng.Uniform(0, width - 1)));
      }
      for (int s : sources) {
        out.edges.emplace_back(DagNodeName(level - 1, s),
                               DagNodeName(level, p));
      }
    }
  }
  return out;
}

EdgeSet MakeCyclicGraph(int levels, int width, int fan_in, int num_cycles,
                        int cycle_length, uint64_t seed) {
  EdgeSet out = MakeDag(levels, width, fan_in, seed);
  Rng rng(seed ^ 0xC1C1E5ull);
  for (int c = 0; c < num_cycles; ++c) {
    // Back edge from a node `cycle_length` levels down to an ancestor level.
    int hi = levels - 1;
    int span = std::min(cycle_length, hi);
    if (span < 1) break;
    int from_level = static_cast<int>(rng.Uniform(span, hi));
    int to_level = from_level - span;
    out.edges.emplace_back(
        DagNodeName(from_level, static_cast<int>(rng.Uniform(0, width - 1))),
        DagNodeName(to_level, static_cast<int>(rng.Uniform(0, width - 1))));
  }
  return out;
}

int64_t SubtreeSize(int tree_depth, int level) {
  if (level >= tree_depth) return 0;
  return (int64_t{1} << (tree_depth - level)) - 1;
}

}  // namespace dkb::workload
