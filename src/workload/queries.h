#ifndef DKB_WORKLOAD_QUERIES_H_
#define DKB_WORKLOAD_QUERIES_H_

#include <string>

#include "datalog/ast.h"

namespace dkb::workload {

/// The paper's ancestor program (right-linear form):
///   ancestor(X,Y) :- parent(X,Y).
///   ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).
std::string AncestorRules();

/// Non-linear (quadratic) ancestor:
///   ancestor(X,Y) :- parent(X,Y).
///   ancestor(X,Y) :- ancestor(X,Z), ancestor(Z,Y).
std::string AncestorRulesNonLinear();

/// Classic same-generation:
///   sg(X,Y) :- flat(X,Y).
///   sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
std::string SameGenerationRules();

/// "?- ancestor('<root>', W)." goal atom.
datalog::Atom AncestorQuery(const std::string& root);

}  // namespace dkb::workload

#endif  // DKB_WORKLOAD_QUERIES_H_
