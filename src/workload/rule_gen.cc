#include "workload/rule_gen.h"

namespace dkb::workload {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

Atom BinaryAtom(const std::string& pred) {
  Atom atom;
  atom.predicate = pred;
  atom.args = {Term::Variable("X"), Term::Variable("Y")};
  return atom;
}

Rule BridgeRule(const std::string& head, const std::string& body) {
  Rule rule;
  rule.head = BinaryAtom(head);
  rule.body = {BinaryAtom(body)};
  return rule;
}

/// Emits one chain family of `num_rules` rules rooted at `<prefix>_p0`.
/// Returns the number of derived predicates created.
int MakeFamily(const std::string& prefix, int num_rules, int rules_per_pred,
               std::vector<Rule>* rules, std::set<std::string>* base_preds) {
  if (num_rules <= 0) return 0;
  int num_preds = (num_rules + rules_per_pred - 1) / rules_per_pred;
  int emitted = 0;
  for (int j = 0; j < num_preds; ++j) {
    std::string pred = prefix + "_p" + std::to_string(j);
    int budget = std::min(rules_per_pred, num_rules - emitted);
    for (int k = 0; k < budget; ++k) {
      std::string body;
      if (k == 0 && j + 1 < num_preds) {
        body = prefix + "_p" + std::to_string(j + 1);  // chain link
      } else {
        body = prefix + "_b" + std::to_string(j) + "_" + std::to_string(k);
        base_preds->insert(body);
      }
      rules->push_back(BridgeRule(pred, body));
      ++emitted;
    }
  }
  return num_preds;
}

}  // namespace

GeneratedRuleBase MakeRuleBase(int total_rules, int relevant_rules,
                               int rules_per_pred) {
  GeneratedRuleBase out;
  if (rules_per_pred < 1) rules_per_pred = 1;
  if (relevant_rules > total_rules) relevant_rules = total_rules;

  // Relevant family, rooted at the query predicate.
  out.relevant_derived_preds = MakeFamily("q", relevant_rules, rules_per_pred,
                                          &out.rules, &out.base_preds);
  out.query_pred = "q_p0";
  out.relevant = out.rules;

  // Disconnected filler families pad the rule base to R_s.
  int remaining = total_rules - relevant_rules;
  int family = 0;
  out.total_derived_preds = out.relevant_derived_preds;
  while (remaining > 0) {
    int chunk = std::min(remaining, std::max(relevant_rules, 8));
    out.total_derived_preds +=
        MakeFamily("f" + std::to_string(family), chunk, rules_per_pred,
                   &out.rules, &out.base_preds);
    remaining -= chunk;
    ++family;
  }
  return out;
}

}  // namespace dkb::workload
