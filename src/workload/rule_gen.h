#ifndef DKB_WORKLOAD_RULE_GEN_H_
#define DKB_WORKLOAD_RULE_GEN_H_

#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace dkb::workload {

/// A synthetic rule base controlling the paper's compilation/update
/// parameters: R_s (total stored rules), R_rs (rules relevant to the
/// query), P_s / P_rs (total / relevant derived predicates).
struct GeneratedRuleBase {
  std::vector<datalog::Rule> rules;     // all rules, |rules| == R_s
  std::vector<datalog::Rule> relevant;  // the R_rs rules the query reaches
  std::set<std::string> base_preds;     // referenced base predicates (arity 2)
  std::string query_pred;               // head of the relevant chain
  int relevant_derived_preds = 0;       // P_rs
  int total_derived_preds = 0;          // P_s
};

/// Builds a non-recursive rule base of exactly `total_rules` rules in which
/// exactly `relevant_rules` are reachable from `query_pred`.
///
/// Structure: the relevant portion is a chain of derived predicates hanging
/// under the query predicate, each predicate defined by `rules_per_pred`
/// rules (one chains to the next predicate, the rest rewrite to fresh base
/// predicates); the filler portion repeats the same pattern in disconnected
/// families. `rules_per_pred` therefore sets the R_rs : P_rs ratio.
GeneratedRuleBase MakeRuleBase(int total_rules, int relevant_rules,
                               int rules_per_pred = 1);

}  // namespace dkb::workload

#endif  // DKB_WORKLOAD_RULE_GEN_H_
