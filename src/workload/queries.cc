#include "workload/queries.h"

namespace dkb::workload {

std::string AncestorRules() {
  return "ancestor(X, Y) :- parent(X, Y).\n"
         "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n";
}

std::string AncestorRulesNonLinear() {
  return "ancestor(X, Y) :- parent(X, Y).\n"
         "ancestor(X, Y) :- ancestor(X, Z), ancestor(Z, Y).\n";
}

std::string SameGenerationRules() {
  return "sg(X, Y) :- flat(X, Y).\n"
         "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n";
}

datalog::Atom AncestorQuery(const std::string& root) {
  datalog::Atom goal;
  goal.predicate = "ancestor";
  goal.args = {datalog::Term::Constant(Value(root)),
               datalog::Term::Variable("W")};
  return goal;
}

}  // namespace dkb::workload
