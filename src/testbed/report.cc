#include "testbed/report.h"

#include "common/str_util.h"

namespace dkb::testbed {

std::vector<PhaseTiming> QueryReport::Phases() const {
  std::vector<PhaseTiming> out = {
      {"t_setup", compile.t_setup_us},     {"t_extract", compile.t_extract_us},
      {"t_read", compile.t_read_us},       {"t_analyze", compile.t_analyze_us},
      {"t_opt", compile.t_opt_us},         {"t_eol", compile.t_eol_us},
      {"t_sem", compile.t_sem_us},         {"t_gen", compile.t_gen_us},
      {"t_comp", compile.t_comp_us},
  };
  if (executed) {
    out.push_back({"t_temp", exec.t_temp_us});
    out.push_back({"t_rhs", exec.t_rhs_us});
    out.push_back({"t_term", exec.t_term_us});
    out.push_back({"t_final", exec.t_final_us});
  }
  return out;
}

namespace {

std::string JoinDeltas(const std::vector<int64_t>& deltas) {
  std::string out = "[";
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(deltas[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string QueryReport::ExplainText() const {
  std::string out;
  out += "query: " + plan.query + "\n";
  out += "strategy: " + plan.strategy;
  out += "  magic: " + std::string(plan.magic_applied ? "on" : "off");
  out += "  parallelism: " + std::to_string(plan.parallelism);
  out += "  cache: " + std::string(from_cache ? "hit" : "miss") + "\n";
  out += "plan: " + std::to_string(plan.rules_relevant) + " relevant rule(s)";
  if (plan.rules_pruned > 0) {
    out += ", " + std::to_string(plan.rules_pruned) + " pruned";
  }
  out += "\n";
  for (const PlanSummary::Node& node : plan.nodes) {
    out += "  node " + node.label;
    out += node.is_clique ? " [clique]" : " [flat]";
    out += " exit=" + std::to_string(node.exit_rules);
    out += " rec=" + std::to_string(node.recursive_rules);
    out += "\n";
  }
  out += "  final: " + plan.final_select + "\n";

  if (!from_cache) {
    out += "compile: " + std::to_string(compile.total_us()) + " us\n ";
    const PhaseTiming compile_phases[] = {
        {"setup", compile.t_setup_us},     {"extract", compile.t_extract_us},
        {"read", compile.t_read_us},       {"analyze", compile.t_analyze_us},
        {"opt", compile.t_opt_us},         {"eol", compile.t_eol_us},
        {"sem", compile.t_sem_us},         {"gen", compile.t_gen_us},
        {"comp", compile.t_comp_us},
    };
    for (const PhaseTiming& phase : compile_phases) {
      out += " " + phase.name + "=" + std::to_string(phase.micros);
    }
    out += "\n";
  }

  if (executed) {
    out += "execute: " + std::to_string(exec.t_total_us) + " us\n";
    out += "  temp=" + std::to_string(exec.t_temp_us) +
           " rhs=" + std::to_string(exec.t_rhs_us) +
           " term=" + std::to_string(exec.t_term_us) +
           " final=" + std::to_string(exec.t_final_us) + "\n";
    for (const lfp::NodeStats& ns : exec.nodes) {
      out += "  node " + ns.label + ": " + std::to_string(ns.iterations) +
             " iteration(s), " + std::to_string(ns.tuples) + " tuple(s), " +
             std::to_string(ns.t_us) + " us";
      if (!ns.delta_sizes.empty()) {
        out += ", deltas=" + JoinDeltas(ns.delta_sizes);
      }
      out += "\n";
    }
    out += "  answers: " + std::to_string(exec.answer_tuples) + "\n";
    out += "counters: rows_scanned=" + std::to_string(db_delta.rows_scanned) +
           " index_probes=" + std::to_string(db_delta.index_probes) +
           " join_rows=" + std::to_string(db_delta.join_output_rows) +
           " statements=" + std::to_string(db_delta.statements) +
           " stmt_cache_hits=" +
           std::to_string(db_delta.statement_cache_hits) +
           " batches=" + std::to_string(db_delta.batches) +
           " morsels=" + std::to_string(db_delta.morsels) + "\n";
  }
  out += "total: " + std::to_string(total_us) + " us\n";

  if (trace != nullptr) {
    out += "trace:\n";
    for (const std::string& line : StrSplit(trace->RenderText(), '\n')) {
      if (!line.empty()) out += "  " + line + "\n";
    }
  }
  return out;
}

std::string QueryReport::ToJson() const {
  std::string out = "{";
  out += "\"query_id\": " + std::to_string(query_id);
  out += ", \"session_id\": " + std::to_string(session_id);
  out += ", \"query\": \"" + JsonEscape(plan.query) + "\"";
  out += ", \"strategy\": \"" + JsonEscape(plan.strategy) + "\"";
  out += ", \"magic_applied\": " + std::string(plan.magic_applied ? "true"
                                                                  : "false");
  out += ", \"parallelism\": " + std::to_string(plan.parallelism);
  out += ", \"shards\": " + std::to_string(plan.shards);
  out += ", \"from_cache\": " + std::string(from_cache ? "true" : "false");
  out += ", \"executed\": " + std::string(executed ? "true" : "false");
  out += ", \"total_us\": " + std::to_string(total_us);
  out += ", \"phases\": {";
  bool first = true;
  for (const PhaseTiming& phase : Phases()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(phase.name) +
           "\": " + std::to_string(phase.micros);
  }
  out += "}";
  out += ", \"compile_total_us\": " + std::to_string(compile.total_us());
  out += ", \"exec_total_us\": " + std::to_string(exec.t_total_us);
  out += ", \"plan\": {\"rules_relevant\": " +
         std::to_string(plan.rules_relevant) +
         ", \"rules_pruned\": " + std::to_string(plan.rules_pruned) +
         ", \"nodes\": [";
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanSummary::Node& node = plan.nodes[i];
    if (i > 0) out += ", ";
    out += "{\"label\": \"" + JsonEscape(node.label) + "\"";
    out += ", \"is_clique\": " + std::string(node.is_clique ? "true"
                                                            : "false");
    out += ", \"exit_rules\": " + std::to_string(node.exit_rules);
    out += ", \"recursive_rules\": " + std::to_string(node.recursive_rules);
    out += "}";
  }
  out += "], \"final_select\": \"" + JsonEscape(plan.final_select) + "\"}";
  if (executed) {
    out += ", \"iterations\": " + std::to_string(exec.iterations);
    out += ", \"answer_tuples\": " + std::to_string(exec.answer_tuples);
    out += ", \"nodes\": [";
    for (size_t i = 0; i < exec.nodes.size(); ++i) {
      const lfp::NodeStats& ns = exec.nodes[i];
      if (i > 0) out += ", ";
      out += "{\"label\": \"" + JsonEscape(ns.label) + "\"";
      out += ", \"is_clique\": " + std::string(ns.is_clique ? "true"
                                                             : "false");
      out += ", \"t_us\": " + std::to_string(ns.t_us);
      out += ", \"iterations\": " + std::to_string(ns.iterations);
      out += ", \"tuples\": " + std::to_string(ns.tuples);
      out += ", \"delta_sizes\": " + JoinDeltas(ns.delta_sizes);
      out += "}";
    }
    out += "]";
    out += ", \"db\": {\"rows_scanned\": " +
           std::to_string(db_delta.rows_scanned) +
           ", \"index_probes\": " + std::to_string(db_delta.index_probes) +
           ", \"index_rows\": " + std::to_string(db_delta.index_rows) +
           ", \"join_output_rows\": " +
           std::to_string(db_delta.join_output_rows) +
           ", \"statements\": " + std::to_string(db_delta.statements) +
           ", \"statement_cache_hits\": " +
           std::to_string(db_delta.statement_cache_hits) +
           ", \"batches\": " + std::to_string(db_delta.batches) +
           ", \"morsels\": " + std::to_string(db_delta.morsels) + "}";
  }
  if (trace != nullptr) {
    out += ", \"trace\": " + trace->RenderJson();
  }
  out += "}";
  return out;
}

std::string QueryReport::ChromeTrace() const {
  if (trace == nullptr) return "";
  return trace->RenderChromeTrace();
}

}  // namespace dkb::testbed
