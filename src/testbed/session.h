#ifndef DKB_TESTBED_SESSION_H_
#define DKB_TESTBED_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "km/stored_dkb.h"
#include "km/workspace.h"
#include "rdbms/database.h"
#include "testbed/options.h"
#include "testbed/query_cache.h"
#include "testbed/testbed.h"

namespace dkb::testbed {

/// A concurrent read-only query session over a Testbed.
///
/// The paper's testbed is single-user; Session adds the multi-user story
/// under a reader-writer protocol: any number of sessions may Query()
/// concurrently with each other, while the testbed's mutating operations
/// (Consult, AddFacts, UpdateStoredDkb, ...) serialize against them.
///
/// Each session owns a copy-on-write snapshot of the testbed state — a full
/// clone of the DBMS (facts, dictionaries, rule storage) plus the workspace
/// rules. LFP evaluation creates and drops temp tables, so a private clone
/// is what makes concurrent queries possible at all. The clone is taken
/// lazily: every Query() first compares the session's epoch against the
/// testbed's (which each committed write bumps) and re-clones only when
/// stale. Between writes, repeated queries pay nothing.
///
/// A Session must not outlive the Testbed that opened it. Sessions are not
/// themselves thread-safe; use one Session per thread.
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  /// Compiles and executes a query against this session's snapshot.
  /// Refreshes the snapshot first if the testbed has changed since the
  /// last call. Safe to call while other sessions query concurrently.
  Result<QueryOutcome> Query(const std::string& goal_text,
                             const QueryOptions& options = QueryOptions{});
  Result<QueryOutcome> Query(const datalog::Atom& goal,
                             const QueryOptions& options = QueryOptions{});

  /// Registry id of this session; sys.sessions and sys.query_log report
  /// queries under it (the testbed's own queries use session id 0).
  int64_t id() const { return id_; }

  /// The testbed epoch this session's snapshot was cloned at. Atomic so
  /// sys.sessions may observe it from other threads mid-query.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Queries this session has run (successful or not).
  int64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }

  /// This session's private precompiled-program cache (cleared whenever
  /// the snapshot refreshes).
  const QueryCache& query_cache() const { return cache_; }

 private:
  friend class Testbed;
  explicit Session(Testbed* testbed);

  /// Re-clones the testbed state if its epoch moved past ours. Takes the
  /// testbed's lock in shared mode, so clones never observe a half-applied
  /// write and writers are excluded only for the duration of the copy.
  Status Refresh();

  Testbed* testbed_;
  TestbedOptions options_;
  int64_t id_ = 0;
  std::atomic<uint64_t> epoch_{0};  // 0 = never cloned; real epochs start at 1
  std::atomic<int64_t> queries_{0};
  std::unique_ptr<Database> db_;
  km::Workspace workspace_;
  std::unique_ptr<km::StoredDkb> stored_;
  QueryCache cache_;
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_SESSION_H_
