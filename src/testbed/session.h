#ifndef DKB_TESTBED_SESSION_H_
#define DKB_TESTBED_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "km/stored_dkb.h"
#include "km/workspace.h"
#include "rdbms/database.h"
#include "testbed/options.h"
#include "testbed/query_cache.h"
#include "testbed/testbed.h"

namespace dkb::testbed {

/// A concurrent read-only query session over a Testbed.
///
/// The paper's testbed is single-user; Session adds the multi-user story
/// with epoch-based MVCC: any number of sessions may Query() concurrently
/// with each other *and* with the testbed's mutating operations (Consult,
/// AddFacts, UpdateStoredDkb, ...), because a session never reads live
/// state — it reads the shared stored tables at a pinned commit epoch.
///
/// Opening (and refreshing) a session is O(metadata), not O(database): the
/// session builds an overlay Database whose catalog falls through to the
/// testbed's for stored tables, pins the current commit epoch, and rebuilds
/// only the small stored-DKB dictionary caches plus a copy of the workspace
/// rules. Row versions below the pin are protected from the vacuum
/// reclaimer by the session registry. LFP scratch tables (`#` temporaries
/// and `idb_<pred>` results) are created in the overlay itself, which is
/// what makes concurrent evaluation possible.
///
/// The pin is taken lazily: every Query() first compares the session's
/// epoch against the testbed's (which each committed write advances) and
/// re-pins only when stale. Between writes, repeated queries pay nothing.
///
/// A Session must not outlive the Testbed that opened it. Sessions are not
/// themselves thread-safe; use one Session per thread.
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  /// Compiles and executes a query against this session's pinned epoch.
  /// Re-pins first if the testbed has changed since the last call. Safe to
  /// call while other sessions query and the testbed writes concurrently.
  Result<QueryOutcome> Query(const std::string& goal_text,
                             const QueryOptions& options = QueryOptions{});
  Result<QueryOutcome> Query(const datalog::Atom& goal,
                             const QueryOptions& options = QueryOptions{});

  /// Registry id of this session; sys.sessions and sys.query_log report
  /// queries under it (the testbed's own queries use session id 0).
  int64_t id() const { return id_; }

  /// The commit epoch this session reads at. Atomic so sys.sessions and the
  /// vacuum reclaimer may observe it from other threads mid-query; 0 means
  /// "registered, not yet pinned", which parks the vacuum floor.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Queries this session has run (successful or not).
  int64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }

  /// This session's private precompiled-program cache (cleared whenever
  /// the pin moves).
  const QueryCache& query_cache() const { return cache_; }

 private:
  friend class Testbed;
  explicit Session(Testbed* testbed);

  /// Re-pins to the current commit epoch if it moved past ours: builds a
  /// fresh overlay Database (so leftover scratch state and pinned base
  /// handles from the old epoch are dropped wholesale), restores the
  /// stored-DKB dictionary caches through it, and copies the workspace.
  /// Takes the testbed's lock in shared mode for the duration of the
  /// metadata copy only.
  Status Refresh();

  Testbed* testbed_;
  TestbedOptions options_;
  int64_t id_ = 0;
  std::atomic<uint64_t> epoch_{0};  // 0 = never pinned; real epochs start at 1
  std::atomic<int64_t> queries_{0};
  std::unique_ptr<Database> db_;
  km::Workspace workspace_;
  std::unique_ptr<km::StoredDkb> stored_;
  QueryCache cache_;
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_SESSION_H_
