#include "testbed/testbed.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <map>
#include <utility>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "datalog/parser.h"
#include "storage/codec.h"
#include "testbed/session.h"
#include "testbed/sys_views.h"

namespace dkb::testbed {

namespace {

/// Bumps the epoch when the enclosing writer scope exits, success or not:
/// a failed write may still have partially applied, and a conservative
/// refresh in open sessions is always correct.
class EpochBump {
 public:
  explicit EpochBump(std::function<void()> bump) : bump_(std::move(bump)) {}
  ~EpochBump() { bump_(); }

 private:
  std::function<void()> bump_;
};

/// Predicates defined by a program node, comma-joined (plan-summary label;
/// matches the labels the LFP run time puts on NodeStats and trace spans).
std::string NodeLabel(const km::ProgramNode& node) {
  std::string label;
  for (const std::string& p : node.predicates) {
    if (!label.empty()) label += ",";
    label += p;
  }
  return label;
}

/// A QueryResult whose rows are the lines of `text`, one VARCHAR column —
/// what EXPLAIN / EXPLAIN ANALYZE queries return instead of answers.
QueryResult TextResult(const std::string& text) {
  QueryResult result;
  result.schema = Schema({Column{"explain", DataType::kVarchar}});
  for (const std::string& line : StrSplit(text, '\n')) {
    if (!line.empty()) result.rows.push_back(Tuple{Value(line)});
  }
  return result;
}

// ---------------------------------------------------------------------------
// WAL payload encoding (storage/codec.h; formats documented per record kind
// in storage/wal.h).
// ---------------------------------------------------------------------------

std::string StrPayload(const std::string& s) {
  codec::Writer w;
  w.Str(s);
  return w.Take();
}

std::string DefineBasePayload(const std::string& pred,
                              const km::PredicateTypes& types) {
  codec::Writer w;
  w.Str(pred);
  w.U16(static_cast<uint16_t>(types.size()));
  for (DataType t : types) w.U8(static_cast<uint8_t>(t));
  return w.Take();
}

std::string AddFactsPayload(const std::string& pred,
                            const std::vector<Tuple>& rows) {
  codec::Writer w;
  w.Str(pred);
  w.U32(static_cast<uint32_t>(rows.size()));
  for (const Tuple& row : rows) w.Row(row);
  return w.Take();
}

/// SELECT / EXPLAIN statements leave no durable state behind and are not
/// logged; everything else (DDL, DML, pragmas we may grow) is.
bool IsReadOnlySql(const std::string& statement) {
  const size_t i = statement.find_first_not_of(" \t\r\n");
  if (i == std::string::npos) return true;
  const std::string head = AsciiLower(statement.substr(i, 8));
  return StartsWith(head, "select") || StartsWith(head, "explain");
}

Status MalformedWal(const char* kind) {
  return Status::InvalidArgument(std::string("malformed WAL payload for ") +
                                 kind + " record");
}

}  // namespace

Testbed::Testbed(TestbedOptions options)
    : options_(options),
      stored_(std::make_unique<km::StoredDkb>(&db_, options.stored)),
      recorder_(options.flight_recorder_capacity) {
  // Before any table exists: base tables and LFP temporaries created later
  // all inherit this count, keeping every stored source aligned.
  db_.catalog().SetDefaultShards(options.shards);
  // MVCC: every stored table the catalog creates stamps row visibility from
  // the testbed's epoch counter ('#' temporaries stay unversioned).
  db_.catalog().EnableVersioning(&epochs_);
  if (options.slow_query_threshold_us >= 0) {
    SlowQueryLogOptions slow;
    slow.threshold_us = options.slow_query_threshold_us;
    slow.json = options.slow_query_log_json;
    recorder_.SetSlowQueryLog(slow);
  }
}

Testbed::~Testbed() { StopVacuum(); }

Result<std::unique_ptr<Testbed>> Testbed::Create(TestbedOptions options) {
  std::unique_ptr<Testbed> testbed(new Testbed(options));
  if (!options.wal_dir.empty()) {
    DKB_RETURN_IF_ERROR(testbed->RecoverFromDisk());
  } else {
    DKB_RETURN_IF_ERROR(testbed->stored_->Initialize());
    DKB_RETURN_IF_ERROR(RegisterSystemViews(&testbed->db_, testbed.get()));
    // Initialize ran outside the logged write path; its rows carry the
    // in-flight write epoch. Commit them so pinned sessions see the
    // dictionary relations.
    testbed->epochs_.Advance();
  }
  testbed->StartVacuum();
  return testbed;
}

// ---------------------------------------------------------------------------
// Durability: WAL logging, recovery, checkpoints
// ---------------------------------------------------------------------------

Result<uint64_t> Testbed::LogWal(WalRecordKind kind,
                                 std::string_view payload) {
  if (wal_ == nullptr || wal_replaying_.load(std::memory_order_relaxed)) {
    return uint64_t{0};
  }
  return wal_->Append(kind, payload);
}

Status Testbed::WaitWal(uint64_t lsn) {
  if (lsn == 0 || wal_ == nullptr) return Status::OK();
  return wal_->WaitDurable(lsn);
}

Status Testbed::RecoverFromDisk() {
  if (::mkdir(options_.wal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable("mkdir " + options_.wal_dir + ": " +
                               std::strerror(errno));
  }
  ckpt_path_ = options_.wal_dir + "/dkb.ckpt";
  wal_path_ = options_.wal_dir + "/dkb.wal";

  uint64_t ckpt_lsn = 0;
  struct stat st;
  if (::stat(ckpt_path_.c_str(), &st) == 0) {
    DKB_ASSIGN_OR_RETURN(CheckpointInfo info,
                         LoadCheckpointInternal(ckpt_path_));
    ckpt_lsn = info.last_lsn;
  } else {
    DKB_RETURN_IF_ERROR(stored_->Initialize());
  }
  DKB_RETURN_IF_ERROR(RegisterSystemViews(&db_, this));
  // Rows materialized outside the logged write path (Initialize, checkpoint
  // load) carry the in-flight write epoch; commit them before replay.
  epochs_.Advance();

  Wal::Options wopts;
  wopts.fsync = options_.wal_fsync;
  wopts.group_commit = options_.wal_group_commit;
  DKB_ASSIGN_OR_RETURN(wal_, Wal::Open(wal_path_, wopts));
  // LSNs are never reused: records appended after recovery must sort after
  // everything the checkpoint already covers.
  wal_->ReserveThrough(ckpt_lsn);

  wal_replaying_.store(true, std::memory_order_release);
  Status replayed = Wal::Replay(
      wal_path_, ckpt_lsn,
      [this](uint64_t /*lsn*/, WalRecordKind kind, std::string_view payload) {
        return ApplyWalRecord(kind, payload);
      });
  wal_replaying_.store(false, std::memory_order_release);
  return replayed;
}

Status Testbed::ApplyWalRecord(WalRecordKind kind, std::string_view payload) {
  // Operation outcomes are deliberately dropped: the log is deterministic,
  // so an op that failed (or half-applied) before the crash fails the same
  // way here and the state still converges.
  codec::Reader r(payload);
  switch (kind) {
    case WalRecordKind::kConsult: {
      std::string text;
      if (!r.Str(&text) || !r.Done()) return MalformedWal("consult");
      (void)Consult(text);
      return Status::OK();
    }
    case WalRecordKind::kAddRule: {
      std::string text;
      if (!r.Str(&text) || !r.Done()) return MalformedWal("add-rule");
      (void)AddRule(text);
      return Status::OK();
    }
    case WalRecordKind::kRetractRule: {
      std::string text;
      if (!r.Str(&text) || !r.Done()) return MalformedWal("retract-rule");
      (void)RetractRule(text);
      return Status::OK();
    }
    case WalRecordKind::kDefineBase: {
      std::string pred;
      uint16_t n = 0;
      if (!r.Str(&pred) || !r.U16(&n)) return MalformedWal("define-base");
      km::PredicateTypes types;
      types.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        uint8_t t = 0;
        if (!r.U8(&t)) return MalformedWal("define-base");
        types.push_back(static_cast<DataType>(t));
      }
      if (!r.Done()) return MalformedWal("define-base");
      (void)DefineBase(pred, types);
      return Status::OK();
    }
    case WalRecordKind::kAddFacts: {
      std::string pred;
      uint32_t n = 0;
      if (!r.Str(&pred) || !r.U32(&n)) return MalformedWal("add-facts");
      std::vector<Tuple> rows;
      rows.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Tuple row;
        if (!r.Row(&row)) return MalformedWal("add-facts");
        rows.push_back(std::move(row));
      }
      if (!r.Done()) return MalformedWal("add-facts");
      (void)AddFacts(pred, rows);
      return Status::OK();
    }
    case WalRecordKind::kUpdateStored: {
      if (!r.Done()) return MalformedWal("update-stored");
      (void)UpdateStoredDkb();
      return Status::OK();
    }
    case WalRecordKind::kClearWorkspace: {
      if (!r.Done()) return MalformedWal("clear-workspace");
      ClearWorkspace();
      return Status::OK();
    }
    case WalRecordKind::kSql: {
      std::string statement;
      if (!r.Str(&statement) || !r.Done()) return MalformedWal("sql");
      (void)ExecuteSql(statement);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown WAL record kind " +
                                 std::to_string(static_cast<int>(kind)));
}

Result<CheckpointInfo> Testbed::LoadCheckpointInternal(
    const std::string& path) {
  std::vector<std::string> rules;
  TableFactory factory = [this](const std::string& name, const Schema& schema,
                                size_t shard_count,
                                size_t /*partition_column*/)
      -> Result<ScanSource*> {
    return db_.catalog().CreateTable(name, Schema(schema), shard_count);
  };
  DKB_ASSIGN_OR_RETURN(CheckpointInfo info,
                       ReadCheckpoint(path, factory, &rules));
  DKB_RETURN_IF_ERROR(stored_->RestoreFromDatabase());
  for (const std::string& text : rules) {
    DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(text));
    DKB_RETURN_IF_ERROR(workspace_.AddRule(std::move(rule)));
  }
  return info;
}

Status Testbed::WriteCheckpointTo(const std::string& path) {
  // Name-sorted order keeps images of identical states byte-identical.
  std::vector<std::shared_ptr<ScanSource>> held =
      db_.catalog().SnapshotTables();
  std::sort(held.begin(), held.end(),
            [](const std::shared_ptr<ScanSource>& a,
               const std::shared_ptr<ScanSource>& b) {
              return a->name() < b->name();
            });
  std::vector<const ScanSource*> tables;
  tables.reserve(held.size());
  for (const std::shared_ptr<ScanSource>& t : held) tables.push_back(t.get());
  std::vector<std::string> rules;
  rules.reserve(workspace_.rules().size());
  for (const datalog::Rule& rule : workspace_.rules()) {
    rules.push_back(rule.ToString());
  }
  const uint64_t last_lsn = wal_ == nullptr ? 0 : wal_->last_lsn();
  return WriteCheckpoint(path, last_lsn, epochs_.committed(), tables, rules);
}

Status Testbed::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "checkpointing requires TestbedOptions::wal_dir");
  }
  WriterLock lock(mu_);
  DKB_RETURN_IF_ERROR(WriteCheckpointTo(ckpt_path_));
  // The image covers every applied record; the log prefix is redundant.
  return wal_->Truncate();
}

Status Testbed::LoadCheckpoint(const std::string& path) {
  WriterLock lock(mu_);
  const size_t existing = db_.catalog().num_tables();
  if (existing > 0) {
    return Status::FailedPrecondition(
        "checkpoint load target must be empty; this testbed holds " +
        std::to_string(existing) + " stored tables");
  }
  auto loaded = LoadCheckpointInternal(path);
  if (!loaded.ok()) return loaded.status();
  BumpEpoch();
  return Status::OK();
}

Status Testbed::SaveSession(const std::string& path) {
  // Shared suffices: writers are excluded while the image is cut, and the
  // checkpoint encoder only reads.
  ReaderLock lock(mu_);
  return WriteCheckpointTo(path);
}

Result<std::unique_ptr<Testbed>> Testbed::LoadSession(
    const std::string& path, TestbedOptions options) {
  std::unique_ptr<Testbed> tb(new Testbed(options));
  auto loaded = tb->LoadCheckpointInternal(path);
  if (!loaded.ok()) return loaded.status();
  DKB_RETURN_IF_ERROR(RegisterSystemViews(&tb->db_, tb.get()));
  tb->epochs_.Advance();
  tb->StartVacuum();
  return tb;
}

Testbed::WalInfo Testbed::WalSnapshot() const {
  WalInfo info;
  if (wal_ == nullptr) return info;
  info.enabled = true;
  info.path = wal_path_;
  info.last_lsn = wal_->last_lsn();
  info.appends = wal_->appends();
  info.fsyncs = wal_->fsyncs();
  info.fsync = options_.wal_fsync;
  info.group_commit = options_.wal_group_commit;
  return info;
}

Testbed::CheckpointStat Testbed::CheckpointSnapshot() const {
  CheckpointStat stat;
  if (ckpt_path_.empty()) return stat;
  stat.path = ckpt_path_;
  auto info = PeekCheckpoint(ckpt_path_);
  if (!info.ok()) return stat;
  stat.exists = true;
  stat.last_lsn = info->last_lsn;
  stat.epoch = info->epoch;
  return stat;
}

// ---------------------------------------------------------------------------
// MVCC vacuum
// ---------------------------------------------------------------------------

void Testbed::StartVacuum() {
  if (options_.vacuum_interval_ms <= 0) return;
  vacuum_thread_ = std::thread([this]() { VacuumLoop(); });
}

void Testbed::StopVacuum() {
  if (!vacuum_thread_.joinable()) return;
  {
    MutexLock lock(vacuum_mu_);
    vacuum_stop_ = true;
  }
  vacuum_cv_.NotifyAll();
  vacuum_thread_.join();
}

void Testbed::VacuumLoop() {
  MutexLock lock(vacuum_mu_);
  while (!vacuum_stop_) {
    vacuum_cv_.WaitFor(lock, options_.vacuum_interval_ms);
    if (vacuum_stop_) break;
    VacuumPass();
  }
}

void Testbed::VacuumPass() {
  // Shared lock: Table::Vacuum must be excluded against writers. Session
  // queries keep running — they never touch versions below their pin, and
  // min_pinned is the floor of every open pin.
  ReaderLock lock(mu_);
  Epoch min_pinned = epochs_.committed();
  {
    MutexLock slock(sessions_mu_);
    for (const auto& [id, session] : sessions_) {
      const Epoch pinned = session->epoch();
      // 0 = registered but not yet pinned: reclaim nothing this pass.
      if (pinned < min_pinned) min_pinned = pinned;
    }
  }
  if (min_pinned == 0) return;
  int64_t reclaimed = 0;
  for (const std::shared_ptr<ScanSource>& table :
       db_.catalog().SnapshotTables()) {
    for (size_t s = 0; s < table->shard_count(); ++s) {
      reclaimed += static_cast<int64_t>(table->shard(s).Vacuum(min_pinned));
    }
  }
  if (reclaimed > 0) {
    vacuumed_rows_.fetch_add(reclaimed, std::memory_order_relaxed);
    static metrics::Counter& counter =
        metrics::GlobalMetrics().counter("dkb.mvcc.reclaimed_rows");
    counter.Add(reclaimed);
  }
}

// ---------------------------------------------------------------------------
// Write operations (logged, epoch-bumped)
// ---------------------------------------------------------------------------

Status Testbed::Consult(const std::string& program_text) {
  DKB_ASSIGN_OR_RETURN(datalog::Program program,
                       datalog::ParseProgram(program_text));
  if (!program.queries.empty()) {
    return Status::InvalidArgument(
        "consulted text contains a query; use Query() instead");
  }
  uint64_t lsn = 0;
  Status applied;
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    DKB_ASSIGN_OR_RETURN(lsn,
                         LogWal(WalRecordKind::kConsult,
                                StrPayload(program_text)));
    applied = [&]() -> Status {
      cache_.InvalidateOn(HeadsOf(program.rules));
      for (datalog::Rule& rule : program.rules) {
        DKB_RETURN_IF_ERROR(workspace_.AddRule(std::move(rule)));
      }
      // Group facts per predicate, auto-defining base predicates.
      std::map<std::string, std::vector<Tuple>> facts;
      std::map<std::string, km::PredicateTypes> types;
      for (const datalog::Rule& fact : program.facts) {
        const datalog::Atom& head = fact.head;
        km::PredicateTypes sig;
        Tuple row;
        for (const datalog::Term& t : head.args) {
          sig.push_back(t.value.type());
          row.push_back(t.value);
        }
        auto [it, inserted] = types.emplace(head.predicate, sig);
        if (!inserted && it->second != sig) {
          return Status::TypeError("facts for " + head.predicate +
                                   " have inconsistent column types");
        }
        facts[head.predicate].push_back(std::move(row));
      }
      for (auto& [pred, rows] : facts) {
        if (!stored_->HasBasePredicate(pred)) {
          DKB_RETURN_IF_ERROR(
              stored_->DefineBasePredicate(pred, types[pred]));
        }
        DKB_RETURN_IF_ERROR(stored_->InsertFacts(pred, rows));
      }
      return Status::OK();
    }();
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return applied;
}

std::set<std::string> Testbed::HeadsOf(
    const std::vector<datalog::Rule>& rules) {
  std::set<std::string> heads;
  for (const datalog::Rule& rule : rules) heads.insert(rule.head.predicate);
  return heads;
}

Status Testbed::AddRule(const std::string& rule_text) {
  DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(rule_text));
  uint64_t lsn = 0;
  Status applied;
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    DKB_ASSIGN_OR_RETURN(
        lsn, LogWal(WalRecordKind::kAddRule, StrPayload(rule_text)));
    cache_.InvalidateOn({rule.head.predicate});
    applied = workspace_.AddRule(std::move(rule));
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return applied;
}

Status Testbed::RetractRule(const std::string& rule_text) {
  DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(rule_text));
  uint64_t lsn = 0;
  Status applied;
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    DKB_ASSIGN_OR_RETURN(
        lsn, LogWal(WalRecordKind::kRetractRule, StrPayload(rule_text)));
    if (!workspace_.RemoveRule(rule)) {
      applied =
          Status::NotFound("no such workspace rule: " + rule.ToString());
    } else {
      cache_.InvalidateOn({rule.head.predicate});
      applied = Status::OK();
    }
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return applied;
}

Status Testbed::DefineBase(const std::string& pred,
                           const km::PredicateTypes& types) {
  uint64_t lsn = 0;
  Status applied;
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    DKB_ASSIGN_OR_RETURN(lsn, LogWal(WalRecordKind::kDefineBase,
                                     DefineBasePayload(pred, types)));
    applied = stored_->DefineBasePredicate(pred, types);
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return applied;
}

Status Testbed::AddFacts(const std::string& pred,
                         const std::vector<Tuple>& rows) {
  uint64_t lsn = 0;
  Status applied;
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    DKB_ASSIGN_OR_RETURN(
        lsn, LogWal(WalRecordKind::kAddFacts, AddFactsPayload(pred, rows)));
    applied = stored_->InsertFacts(pred, rows);
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return applied;
}

void Testbed::ClearWorkspace() {
  uint64_t lsn = 0;
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    auto logged = LogWal(WalRecordKind::kClearWorkspace, {});
    if (logged.ok()) lsn = *logged;
    workspace_.Clear();
    cache_.Clear();
  }
  (void)WaitWal(lsn);
}

Result<km::UpdateStats> Testbed::UpdateStoredDkb() {
  uint64_t lsn = 0;
  Result<km::UpdateStats> applied = Status::Internal("unreachable");
  {
    WriterLock lock(mu_);
    EpochBump bump([this]() { BumpEpoch(); });
    DKB_ASSIGN_OR_RETURN(lsn, LogWal(WalRecordKind::kUpdateStored, {}));
    cache_.InvalidateOn(HeadsOf(workspace_.rules()));
    km::UpdateProcessor processor(stored_.get());
    applied = processor.Update(workspace_);
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return applied;
}

Result<QueryResult> Testbed::ExecuteSql(const std::string& statement) {
  // Exclusive: arbitrary SQL may be DDL/DML, and even read-only statements
  // may scan sys.* virtual tables whose providers expect the writer-side
  // protocol of a running query.
  const bool read_only = IsReadOnlySql(statement);
  uint64_t lsn = 0;
  Result<QueryResult> result = Status::Internal("unreachable");
  {
    WriterLock lock(mu_);
    if (!read_only) {
      EpochBump bump([this]() { BumpEpoch(); });
      DKB_ASSIGN_OR_RETURN(
          lsn, LogWal(WalRecordKind::kSql, StrPayload(statement)));
      result = db_.Execute(statement);
    } else {
      result = db_.Execute(statement);
    }
  }
  DKB_RETURN_IF_ERROR(WaitWal(lsn));
  return result;
}

// ---------------------------------------------------------------------------
// Queries and sessions
// ---------------------------------------------------------------------------

Result<QueryOutcome> Testbed::Query(const std::string& goal_text,
                                    const QueryOptions& options) {
  DKB_ASSIGN_OR_RETURN(datalog::Atom goal, datalog::ParseQuery(goal_text));
  return Query(goal, options);
}

Result<QueryOutcome> Testbed::Query(const datalog::Atom& goal,
                                    const QueryOptions& options) {
  // Exclusive even though a query is logically a read: LFP evaluation
  // creates and drops scratch tables in db_. Concurrency comes from
  // sessions, which run QueryImpl against epoch-pinned overlays with no
  // testbed lock at all.
  WriterLock lock(mu_);
  return QueryImpl(&db_, &workspace_, stored_.get(), &cache_, goal, options,
                   &recorder_, /*session_id=*/0);
}

Result<QueryOutcome> Testbed::QueryImpl(Database* db,
                                        km::Workspace* workspace,
                                        km::StoredDkb* stored,
                                        QueryCache* cache,
                                        const datalog::Atom& goal,
                                        const QueryOptions& options,
                                        FlightRecorder* recorder,
                                        int64_t session_id) {
  QueryOutcome outcome;
  QueryReport& report = outcome.report;
  report.query_id = recorder == nullptr ? 0 : recorder->NextQueryId();
  report.session_id = session_id;

  // Tracing: EXPLAIN ANALYZE implies a span tree; collect_trace requests
  // one without changing what the query returns.
  const bool tracing =
      options.collect_trace || options.explain == ExplainMode::kAnalyze;
  trace::TraceSpan* root = nullptr;
  if (tracing) {
    report.trace =
        std::make_shared<trace::TraceContext>("query:" + goal.ToString());
    root = report.trace->root();
  }
  WallTimer total;
  const exec::ExecStatsSnapshot before =
      exec::ExecStatsSnapshot::Take(db->stats());

  std::string key = QueryCache::MakeKey(goal, options.use_magic,
                                        options.adaptive_magic);
  if (options.supplementary) key += "#sup";
  if (options.use_cache) {
    std::shared_ptr<const km::CompiledQuery> cached = cache->Lookup(key);
    if (cached != nullptr) {
      outcome.compiled = *cached;
      report.from_cache = true;
    }
  }
  if (!report.from_cache) {
    trace::ScopedSpan compile_span(root, "compile");
    DKB_ASSIGN_OR_RETURN(
        outcome.compiled,
        CompileImpl(workspace, stored, goal, options, &report.compile,
                    compile_span.get(), report.query_id));
    if (options.use_cache) {
      // Dependency set: every predicate the relevant rules mention plus the
      // query predicate itself.
      std::set<std::string> deps = {goal.predicate};
      for (const datalog::Rule& rule : outcome.compiled.relevant_rules) {
        deps.insert(rule.head.predicate);
        for (const datalog::Atom& atom : rule.body) {
          deps.insert(atom.predicate);
        }
      }
      cache->Insert(key, outcome.compiled, std::move(deps));
    }
  }

  // Plan summary: the EXPLAIN side of the report, filled whether or not the
  // query executes.
  report.plan.query = goal.ToString();
  report.plan.strategy = lfp::StrategyName(options.strategy);
  report.plan.magic_applied = report.compile.magic_applied;
  report.plan.parallelism = options.EffectivePolicy().lfp_parallelism;
  report.plan.shards = static_cast<int64_t>(db->catalog().default_shards());
  report.plan.rules_relevant = report.compile.rules_relevant;
  report.plan.rules_pruned = report.compile.rules_pruned;
  for (const km::ProgramNode& node : outcome.compiled.program.nodes) {
    PlanSummary::Node pn;
    pn.label = NodeLabel(node);
    pn.is_clique = node.is_clique;
    pn.exit_rules = static_cast<int64_t>(node.exit_rules.size());
    pn.recursive_rules = static_cast<int64_t>(node.recursive_rules.size());
    report.plan.nodes.push_back(std::move(pn));
  }
  report.plan.final_select = outcome.compiled.program.final_select;

  if (options.explain == ExplainMode::kPlan) {
    report.executed = false;
    report.total_us = total.ElapsedMicros();
    if (root != nullptr) root->End();
    if (recorder != nullptr) {
      recorder->Record(FlightRecorder::MakeEntry(report, report.query_id,
                                                 session_id, /*rows_out=*/0));
    }
    outcome.result = TextResult(report.ExplainText());
    return outcome;
  }

  lfp::EvalOptions eopts;
  eopts.strategy = options.strategy;
  eopts.parallelism = options.EffectivePolicy().lfp_parallelism;
  eopts.query_id = report.query_id;
  {
    trace::ScopedSpan exec_span(root, "execute");
    eopts.span = exec_span.get();
    DKB_ASSIGN_OR_RETURN(outcome.result,
                         lfp::ExecuteProgram(db, outcome.compiled.program,
                                             eopts, &report.exec));
  }
  report.executed = true;
  report.total_us = total.ElapsedMicros();
  report.db_delta = exec::ExecStatsSnapshot::Take(db->stats()) - before;
  if (root != nullptr) root->End();

  metrics::MetricsRegistry& metrics = metrics::GlobalMetrics();
  metrics.counter("dkb.query.count").Add(1);
  if (report.from_cache) metrics.counter("dkb.query.cache_hits").Add(1);
  metrics.counter("dkb.lfp.iterations").Add(report.exec.iterations);
  metrics.histogram("dkb.query.total_us").Observe(report.total_us);

  if (recorder != nullptr) {
    recorder->Record(FlightRecorder::MakeEntry(
        report, report.query_id, session_id,
        static_cast<int64_t>(outcome.result.rows.size())));
  }

  if (options.explain == ExplainMode::kAnalyze) {
    outcome.result = TextResult(report.ExplainText());
  }
  return outcome;
}

Result<km::CompiledQuery> Testbed::CompileOnly(const datalog::Atom& goal,
                                               const QueryOptions& options,
                                               km::CompilationStats* stats) {
  // Exclusive: rule extraction lazily maintains the reachability
  // dictionaries inside the DBMS.
  WriterLock lock(mu_);
  return CompileImpl(&workspace_, stored_.get(), goal, options, stats);
}

Result<km::CompiledQuery> Testbed::CompileImpl(km::Workspace* workspace,
                                               km::StoredDkb* stored,
                                               const datalog::Atom& goal,
                                               const QueryOptions& options,
                                               km::CompilationStats* stats,
                                               trace::TraceSpan* span,
                                               int64_t query_id) {
  km::QueryCompiler compiler(workspace, stored);
  km::CompilerOptions copts;
  copts.query_id = query_id;
  copts.magic_mode = options.adaptive_magic ? km::MagicMode::kAdaptive
                     : options.use_magic   ? km::MagicMode::kOn
                                           : km::MagicMode::kOff;
  copts.magic_variant = options.supplementary
                            ? magic::MagicVariant::kSupplementary
                            : magic::MagicVariant::kGeneralized;
  copts.span = span;
  return compiler.Compile(goal, copts, stats);
}

Result<std::unique_ptr<Session>> Testbed::OpenSession() {
  std::unique_ptr<Session> session(new Session(this));
  // Register before the first Refresh: a registered-but-unpinned session
  // (epoch 0) parks the vacuum floor at zero, so no version it might still
  // pin can be reclaimed during the window.
  session->id_ = RegisterSession(session.get());
  DKB_RETURN_IF_ERROR(session->Refresh());
  return session;
}

int64_t Testbed::RegisterSession(Session* session) {
  int64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(sessions_mu_);
  sessions_[id] = session;
  return id;
}

void Testbed::UnregisterSession(int64_t session_id) {
  MutexLock lock(sessions_mu_);
  sessions_.erase(session_id);
}

std::vector<std::string> Testbed::ListRuleTexts() const {
  ReaderLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(workspace_.rules().size());
  for (const datalog::Rule& rule : workspace_.rules()) {
    out.push_back(rule.ToString());
  }
  return out;
}

void Testbed::SetConnectionsSource(ConnectionsSource source) {
  MutexLock lock(connections_mu_);
  connections_source_ = std::move(source);
}

std::vector<Testbed::ConnectionInfo> Testbed::ConnectionsSnapshot() const {
  MutexLock lock(connections_mu_);
  if (!connections_source_) return {};
  return connections_source_();
}

void Testbed::SetServerStatsSource(ServerStatsSource source) {
  MutexLock lock(connections_mu_);
  server_stats_source_ = std::move(source);
}

std::vector<metrics::MetricSample> Testbed::ServerStatsSnapshot() const {
  MutexLock lock(connections_mu_);
  if (!server_stats_source_) return {};
  return server_stats_source_();
}

std::vector<Testbed::SessionInfo> Testbed::SessionSnapshot() const {
  MutexLock lock(sessions_mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    SessionInfo info;
    info.session_id = id;
    info.epoch = session->epoch();
    info.queries = session->queries();
    out.push_back(info);
  }
  return out;
}

Result<std::vector<km::analysis::Diagnostic>> Testbed::LintWorkspace() {
  WriterLock lock(mu_);
  // Pull in the stored rules the workspace depends on so mixed
  // workspace/stored programs analyze as the compiler would see them.
  std::set<std::string> undefined = workspace_.UndefinedBodyPredicates();
  DKB_ASSIGN_OR_RETURN(std::vector<datalog::Rule> stored_rules,
                       stored_->ExtractRelevantRules(undefined));
  km::analysis::AnalyzerInput input;
  input.rules = workspace_.rules();
  for (datalog::Rule& rule : stored_rules) {
    if (std::find(input.rules.begin(), input.rules.end(), rule) ==
        input.rules.end()) {
      input.rules.push_back(std::move(rule));
    }
  }
  for (const datalog::Rule& rule : input.rules) {
    for (const datalog::Atom& atom : rule.body) {
      if (!atom.is_builtin() && stored_->HasBasePredicate(atom.predicate)) {
        input.base_predicates.insert(atom.predicate);
      }
    }
  }
  return km::analysis::AnalyzeProgram(input).diagnostics();
}

}  // namespace dkb::testbed
