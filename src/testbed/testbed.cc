#include "testbed/testbed.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "datalog/parser.h"
#include "rdbms/snapshot.h"
#include "testbed/session.h"
#include "testbed/sys_views.h"

namespace dkb::testbed {

namespace {

/// Bumps the epoch when the enclosing writer scope exits, success or not:
/// a failed write may still have partially applied, and a conservative
/// refresh in open sessions is always correct.
class EpochBump {
 public:
  explicit EpochBump(std::function<void()> bump) : bump_(std::move(bump)) {}
  ~EpochBump() { bump_(); }

 private:
  std::function<void()> bump_;
};

/// Predicates defined by a program node, comma-joined (plan-summary label;
/// matches the labels the LFP run time puts on NodeStats and trace spans).
std::string NodeLabel(const km::ProgramNode& node) {
  std::string label;
  for (const std::string& p : node.predicates) {
    if (!label.empty()) label += ",";
    label += p;
  }
  return label;
}

/// A QueryResult whose rows are the lines of `text`, one VARCHAR column —
/// what EXPLAIN / EXPLAIN ANALYZE queries return instead of answers.
QueryResult TextResult(const std::string& text) {
  QueryResult result;
  result.schema = Schema({Column{"explain", DataType::kVarchar}});
  for (const std::string& line : StrSplit(text, '\n')) {
    if (!line.empty()) result.rows.push_back(Tuple{Value(line)});
  }
  return result;
}

}  // namespace

Testbed::Testbed(TestbedOptions options)
    : options_(options),
      stored_(std::make_unique<km::StoredDkb>(&db_, options.stored)),
      recorder_(options.flight_recorder_capacity) {
  // Before any table exists: base tables and LFP temporaries created later
  // all inherit this count, keeping every stored source aligned.
  db_.catalog().SetDefaultShards(options.shards);
  if (options.slow_query_threshold_us >= 0) {
    SlowQueryLogOptions slow;
    slow.threshold_us = options.slow_query_threshold_us;
    slow.json = options.slow_query_log_json;
    recorder_.SetSlowQueryLog(slow);
  }
}

Result<std::unique_ptr<Testbed>> Testbed::Create(TestbedOptions options) {
  std::unique_ptr<Testbed> testbed(new Testbed(options));
  DKB_RETURN_IF_ERROR(testbed->stored_->Initialize());
  DKB_RETURN_IF_ERROR(RegisterSystemViews(&testbed->db_, testbed.get()));
  return testbed;
}

Status Testbed::Consult(const std::string& program_text) {
  DKB_ASSIGN_OR_RETURN(datalog::Program program,
                       datalog::ParseProgram(program_text));
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  if (!program.queries.empty()) {
    return Status::InvalidArgument(
        "consulted text contains a query; use Query() instead");
  }
  cache_.InvalidateOn(HeadsOf(program.rules));
  for (datalog::Rule& rule : program.rules) {
    DKB_RETURN_IF_ERROR(workspace_.AddRule(std::move(rule)));
  }
  // Group facts per predicate, auto-defining base predicates.
  std::map<std::string, std::vector<Tuple>> facts;
  std::map<std::string, km::PredicateTypes> types;
  for (const datalog::Rule& fact : program.facts) {
    const datalog::Atom& head = fact.head;
    km::PredicateTypes sig;
    Tuple row;
    for (const datalog::Term& t : head.args) {
      sig.push_back(t.value.type());
      row.push_back(t.value);
    }
    auto [it, inserted] = types.emplace(head.predicate, sig);
    if (!inserted && it->second != sig) {
      return Status::TypeError("facts for " + head.predicate +
                               " have inconsistent column types");
    }
    facts[head.predicate].push_back(std::move(row));
  }
  for (auto& [pred, rows] : facts) {
    if (!stored_->HasBasePredicate(pred)) {
      DKB_RETURN_IF_ERROR(stored_->DefineBasePredicate(pred, types[pred]));
    }
    DKB_RETURN_IF_ERROR(stored_->InsertFacts(pred, rows));
  }
  return Status::OK();
}

std::set<std::string> Testbed::HeadsOf(
    const std::vector<datalog::Rule>& rules) {
  std::set<std::string> heads;
  for (const datalog::Rule& rule : rules) heads.insert(rule.head.predicate);
  return heads;
}

Status Testbed::AddRule(const std::string& rule_text) {
  DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(rule_text));
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  cache_.InvalidateOn({rule.head.predicate});
  return workspace_.AddRule(std::move(rule));
}

Status Testbed::RetractRule(const std::string& rule_text) {
  DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(rule_text));
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  if (!workspace_.RemoveRule(rule)) {
    return Status::NotFound("no such workspace rule: " + rule.ToString());
  }
  cache_.InvalidateOn({rule.head.predicate});
  return Status::OK();
}

Status Testbed::DefineBase(const std::string& pred,
                           const km::PredicateTypes& types) {
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  return stored_->DefineBasePredicate(pred, types);
}

Status Testbed::AddFacts(const std::string& pred,
                         const std::vector<Tuple>& rows) {
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  return stored_->InsertFacts(pred, rows);
}

void Testbed::ClearWorkspace() {
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  workspace_.Clear();
  cache_.Clear();
}

Result<QueryOutcome> Testbed::Query(const std::string& goal_text,
                                    const QueryOptions& options) {
  DKB_ASSIGN_OR_RETURN(datalog::Atom goal, datalog::ParseQuery(goal_text));
  return Query(goal, options);
}

Result<QueryOutcome> Testbed::Query(const datalog::Atom& goal,
                                    const QueryOptions& options) {
  // Exclusive even though a query is logically a read: LFP evaluation
  // creates and drops temp tables in db_. Concurrency comes from sessions,
  // which run QueryImpl against private clones under the shared side.
  WriterLock lock(mu_);
  return QueryImpl(&db_, &workspace_, stored_.get(), &cache_, goal, options,
                   &recorder_, /*session_id=*/0);
}

Result<QueryOutcome> Testbed::QueryImpl(Database* db,
                                        km::Workspace* workspace,
                                        km::StoredDkb* stored,
                                        QueryCache* cache,
                                        const datalog::Atom& goal,
                                        const QueryOptions& options,
                                        FlightRecorder* recorder,
                                        int64_t session_id) {
  QueryOutcome outcome;
  QueryReport& report = outcome.report;
  report.query_id = recorder == nullptr ? 0 : recorder->NextQueryId();
  report.session_id = session_id;

  // Tracing: EXPLAIN ANALYZE implies a span tree; collect_trace requests
  // one without changing what the query returns.
  const bool tracing =
      options.collect_trace || options.explain == ExplainMode::kAnalyze;
  trace::TraceSpan* root = nullptr;
  if (tracing) {
    report.trace =
        std::make_shared<trace::TraceContext>("query:" + goal.ToString());
    root = report.trace->root();
  }
  WallTimer total;
  const exec::ExecStatsSnapshot before =
      exec::ExecStatsSnapshot::Take(db->stats());

  std::string key = QueryCache::MakeKey(goal, options.use_magic,
                                        options.adaptive_magic);
  if (options.supplementary) key += "#sup";
  if (options.use_cache) {
    std::shared_ptr<const km::CompiledQuery> cached = cache->Lookup(key);
    if (cached != nullptr) {
      outcome.compiled = *cached;
      report.from_cache = true;
    }
  }
  if (!report.from_cache) {
    trace::ScopedSpan compile_span(root, "compile");
    DKB_ASSIGN_OR_RETURN(
        outcome.compiled,
        CompileImpl(workspace, stored, goal, options, &report.compile,
                    compile_span.get(), report.query_id));
    if (options.use_cache) {
      // Dependency set: every predicate the relevant rules mention plus the
      // query predicate itself.
      std::set<std::string> deps = {goal.predicate};
      for (const datalog::Rule& rule : outcome.compiled.relevant_rules) {
        deps.insert(rule.head.predicate);
        for (const datalog::Atom& atom : rule.body) {
          deps.insert(atom.predicate);
        }
      }
      cache->Insert(key, outcome.compiled, std::move(deps));
    }
  }

  // Plan summary: the EXPLAIN side of the report, filled whether or not the
  // query executes.
  report.plan.query = goal.ToString();
  report.plan.strategy = lfp::StrategyName(options.strategy);
  report.plan.magic_applied = report.compile.magic_applied;
  report.plan.parallelism = options.EffectivePolicy().lfp_parallelism;
  report.plan.shards = static_cast<int64_t>(db->catalog().default_shards());
  report.plan.rules_relevant = report.compile.rules_relevant;
  report.plan.rules_pruned = report.compile.rules_pruned;
  for (const km::ProgramNode& node : outcome.compiled.program.nodes) {
    PlanSummary::Node pn;
    pn.label = NodeLabel(node);
    pn.is_clique = node.is_clique;
    pn.exit_rules = static_cast<int64_t>(node.exit_rules.size());
    pn.recursive_rules = static_cast<int64_t>(node.recursive_rules.size());
    report.plan.nodes.push_back(std::move(pn));
  }
  report.plan.final_select = outcome.compiled.program.final_select;

  if (options.explain == ExplainMode::kPlan) {
    report.executed = false;
    report.total_us = total.ElapsedMicros();
    if (root != nullptr) root->End();
    if (recorder != nullptr) {
      recorder->Record(FlightRecorder::MakeEntry(report, report.query_id,
                                                 session_id, /*rows_out=*/0));
    }
    outcome.result = TextResult(report.ExplainText());
    return outcome;
  }

  lfp::EvalOptions eopts;
  eopts.strategy = options.strategy;
  eopts.parallelism = options.EffectivePolicy().lfp_parallelism;
  eopts.query_id = report.query_id;
  {
    trace::ScopedSpan exec_span(root, "execute");
    eopts.span = exec_span.get();
    DKB_ASSIGN_OR_RETURN(outcome.result,
                         lfp::ExecuteProgram(db, outcome.compiled.program,
                                             eopts, &report.exec));
  }
  report.executed = true;
  report.total_us = total.ElapsedMicros();
  report.db_delta = exec::ExecStatsSnapshot::Take(db->stats()) - before;
  if (root != nullptr) root->End();

  metrics::MetricsRegistry& metrics = metrics::GlobalMetrics();
  metrics.counter("dkb.query.count").Add(1);
  if (report.from_cache) metrics.counter("dkb.query.cache_hits").Add(1);
  metrics.counter("dkb.lfp.iterations").Add(report.exec.iterations);
  metrics.histogram("dkb.query.total_us").Observe(report.total_us);

  if (recorder != nullptr) {
    recorder->Record(FlightRecorder::MakeEntry(
        report, report.query_id, session_id,
        static_cast<int64_t>(outcome.result.rows.size())));
  }

  if (options.explain == ExplainMode::kAnalyze) {
    outcome.result = TextResult(report.ExplainText());
  }
  return outcome;
}

Result<km::CompiledQuery> Testbed::CompileOnly(const datalog::Atom& goal,
                                               const QueryOptions& options,
                                               km::CompilationStats* stats) {
  // Exclusive: rule extraction lazily maintains the reachability
  // dictionaries inside the DBMS.
  WriterLock lock(mu_);
  return CompileImpl(&workspace_, stored_.get(), goal, options, stats);
}

Result<km::CompiledQuery> Testbed::CompileImpl(km::Workspace* workspace,
                                               km::StoredDkb* stored,
                                               const datalog::Atom& goal,
                                               const QueryOptions& options,
                                               km::CompilationStats* stats,
                                               trace::TraceSpan* span,
                                               int64_t query_id) {
  km::QueryCompiler compiler(workspace, stored);
  km::CompilerOptions copts;
  copts.query_id = query_id;
  copts.magic_mode = options.adaptive_magic ? km::MagicMode::kAdaptive
                     : options.use_magic   ? km::MagicMode::kOn
                                           : km::MagicMode::kOff;
  copts.magic_variant = options.supplementary
                            ? magic::MagicVariant::kSupplementary
                            : magic::MagicVariant::kGeneralized;
  copts.span = span;
  return compiler.Compile(goal, copts, stats);
}

Result<std::unique_ptr<Session>> Testbed::OpenSession() {
  std::unique_ptr<Session> session(new Session(this));
  DKB_RETURN_IF_ERROR(session->Refresh());
  session->id_ = RegisterSession(session.get());
  return session;
}

int64_t Testbed::RegisterSession(Session* session) {
  int64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(sessions_mu_);
  sessions_[id] = session;
  return id;
}

void Testbed::UnregisterSession(int64_t session_id) {
  MutexLock lock(sessions_mu_);
  sessions_.erase(session_id);
}

Result<QueryResult> Testbed::ExecuteSql(const std::string& statement) {
  // Exclusive: arbitrary SQL may be DDL/DML, and even read-only statements
  // may scan sys.* virtual tables whose providers expect the writer-side
  // protocol of a running query.
  WriterLock lock(mu_);
  return db_.Execute(statement);
}

std::vector<std::string> Testbed::ListRuleTexts() const {
  ReaderLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(workspace_.rules().size());
  for (const datalog::Rule& rule : workspace_.rules()) {
    out.push_back(rule.ToString());
  }
  return out;
}

void Testbed::SetConnectionsSource(ConnectionsSource source) {
  MutexLock lock(connections_mu_);
  connections_source_ = std::move(source);
}

std::vector<Testbed::ConnectionInfo> Testbed::ConnectionsSnapshot() const {
  MutexLock lock(connections_mu_);
  if (!connections_source_) return {};
  return connections_source_();
}

void Testbed::SetServerStatsSource(ServerStatsSource source) {
  MutexLock lock(connections_mu_);
  server_stats_source_ = std::move(source);
}

std::vector<metrics::MetricSample> Testbed::ServerStatsSnapshot() const {
  MutexLock lock(connections_mu_);
  if (!server_stats_source_) return {};
  return server_stats_source_();
}

std::vector<Testbed::SessionInfo> Testbed::SessionSnapshot() const {
  MutexLock lock(sessions_mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    SessionInfo info;
    info.session_id = id;
    info.epoch = session->epoch();
    info.queries = session->queries();
    out.push_back(info);
  }
  return out;
}

Result<std::vector<km::analysis::Diagnostic>> Testbed::LintWorkspace() {
  WriterLock lock(mu_);
  // Pull in the stored rules the workspace depends on so mixed
  // workspace/stored programs analyze as the compiler would see them.
  std::set<std::string> undefined = workspace_.UndefinedBodyPredicates();
  DKB_ASSIGN_OR_RETURN(std::vector<datalog::Rule> stored_rules,
                       stored_->ExtractRelevantRules(undefined));
  km::analysis::AnalyzerInput input;
  input.rules = workspace_.rules();
  for (datalog::Rule& rule : stored_rules) {
    if (std::find(input.rules.begin(), input.rules.end(), rule) ==
        input.rules.end()) {
      input.rules.push_back(std::move(rule));
    }
  }
  for (const datalog::Rule& rule : input.rules) {
    for (const datalog::Atom& atom : rule.body) {
      if (!atom.is_builtin() && stored_->HasBasePredicate(atom.predicate)) {
        input.base_predicates.insert(atom.predicate);
      }
    }
  }
  return km::analysis::AnalyzeProgram(input).diagnostics();
}

Status Testbed::SaveSession(const std::string& path) {
  ReaderLock lock(mu_);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << SerializeDatabase(db_);
  out << "WORKSPACE\n";
  for (const datalog::Rule& rule : workspace_.rules()) {
    out << rule.ToString() << "\n";
  }
  out << "ENDWORKSPACE\n";
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<std::unique_ptr<Testbed>> Testbed::LoadSession(
    const std::string& path, TestbedOptions options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open session snapshot " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  // Split the database snapshot (terminated by a lone "END" line) from the
  // workspace section.
  size_t split;
  if (StartsWith(text, "END\n")) {
    split = 4;
  } else {
    size_t marker = text.find("\nEND\n");
    if (marker == std::string::npos) {
      return Status::InvalidArgument("session snapshot missing END marker");
    }
    split = marker + 5;
  }

  std::unique_ptr<Testbed> tb(new Testbed(options));
  DKB_RETURN_IF_ERROR(DeserializeDatabase(&tb->db_, text.substr(0, split)));
  DKB_RETURN_IF_ERROR(tb->stored_->RestoreFromDatabase());
  DKB_RETURN_IF_ERROR(RegisterSystemViews(&tb->db_, tb.get()));

  std::istringstream rest(text.substr(split));
  std::string line;
  bool in_workspace = false;
  while (std::getline(rest, line)) {
    if (line == "WORKSPACE") {
      in_workspace = true;
      continue;
    }
    if (line == "ENDWORKSPACE") break;
    if (!in_workspace || line.empty()) continue;
    DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(line));
    DKB_RETURN_IF_ERROR(tb->workspace_.AddRule(std::move(rule)));
  }
  return tb;
}

Result<km::UpdateStats> Testbed::UpdateStoredDkb() {
  WriterLock lock(mu_);
  EpochBump bump([this]() { BumpEpoch(); });
  cache_.InvalidateOn(HeadsOf(workspace_.rules()));
  km::UpdateProcessor processor(stored_.get());
  return processor.Update(workspace_);
}

}  // namespace dkb::testbed
