#include "testbed/sys_views.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/interner.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "testbed/flight_recorder.h"
#include "testbed/testbed.h"

namespace dkb::testbed {

namespace {

Value IntVal(int64_t v) { return Value(v); }
Value BoolVal(bool v) { return Value(static_cast<int64_t>(v ? 1 : 0)); }

Schema QueryLogSchema() {
  return Schema({
      {"query_id", DataType::kInteger},
      {"session_id", DataType::kInteger},
      {"ts_us", DataType::kInteger},
      {"query", DataType::kVarchar},
      {"strategy", DataType::kVarchar},
      {"magic", DataType::kInteger},
      {"from_cache", DataType::kInteger},
      {"executed", DataType::kInteger},
      {"rows_out", DataType::kInteger},
      {"iterations", DataType::kInteger},
      {"total_us", DataType::kInteger},
      {"t_setup_us", DataType::kInteger},
      {"t_extract_us", DataType::kInteger},
      {"t_read_us", DataType::kInteger},
      {"t_analyze_us", DataType::kInteger},
      {"t_opt_us", DataType::kInteger},
      {"t_eol_us", DataType::kInteger},
      {"t_sem_us", DataType::kInteger},
      {"t_gen_us", DataType::kInteger},
      {"t_comp_us", DataType::kInteger},
      {"t_temp_us", DataType::kInteger},
      {"t_rhs_us", DataType::kInteger},
      {"t_term_us", DataType::kInteger},
      {"t_final_us", DataType::kInteger},
      {"batches", DataType::kInteger},
      {"shards", DataType::kInteger},
      {"bytes_sent", DataType::kInteger},
      {"bytes_received", DataType::kInteger},
      {"trace", DataType::kVarchar},
  });
}

Schema LfpIterationsSchema() {
  return Schema({
      {"query_id", DataType::kInteger},
      {"node", DataType::kVarchar},
      {"is_clique", DataType::kInteger},
      {"iter", DataType::kInteger},
      {"delta_rows", DataType::kInteger},
  });
}

Schema MetricsSchema() {
  return Schema({
      {"name", DataType::kVarchar},
      {"kind", DataType::kVarchar},
      {"value", DataType::kInteger},
      {"sum", DataType::kInteger},
      {"max", DataType::kInteger},
      {"p50", DataType::kInteger},
      {"p99", DataType::kInteger},
  });
}

Schema SessionsSchema() {
  return Schema({
      {"session_id", DataType::kInteger},
      {"epoch", DataType::kInteger},
      {"testbed_epoch", DataType::kInteger},
      {"snapshot_age", DataType::kInteger},
      {"queries", DataType::kInteger},
  });
}

Schema ConnectionsSchema() {
  return Schema({
      {"connection_id", DataType::kInteger},
      {"peer", DataType::kVarchar},
      {"session_id", DataType::kInteger},
      {"frames_received", DataType::kInteger},
      {"bytes_in", DataType::kInteger},
      {"bytes_out", DataType::kInteger},
      {"queries", DataType::kInteger},
      {"requests", DataType::kInteger},
      {"errors", DataType::kInteger},
      {"age_us", DataType::kInteger},
  });
}

Schema ServerSchema() { return MetricsSchema(); }

Schema ShardsSchema() {
  return Schema({
      {"name", DataType::kVarchar},
      {"kind", DataType::kVarchar},
      {"shard", DataType::kInteger},
      {"rows", DataType::kInteger},
      {"bytes", DataType::kInteger},
      {"morsels", DataType::kInteger},
      {"scan_batches", DataType::kInteger},
  });
}

Schema WalSchema() {
  return Schema({
      {"enabled", DataType::kInteger},
      {"path", DataType::kVarchar},
      {"last_lsn", DataType::kInteger},
      {"appends", DataType::kInteger},
      {"fsyncs", DataType::kInteger},
      {"fsync", DataType::kInteger},
      {"group_commit", DataType::kInteger},
  });
}

Schema CheckpointsSchema() {
  return Schema({
      {"path", DataType::kVarchar},
      {"last_lsn", DataType::kInteger},
      {"epoch", DataType::kInteger},
  });
}

Schema SettingsSchema() {
  return Schema({
      {"name", DataType::kVarchar},
      {"value", DataType::kVarchar},
  });
}

/// Materializes `rows` into an anonymous snapshot table for one scan,
/// streaming them through the bulk AppendBatch path.
Result<std::shared_ptr<const Table>> Materialize(
    const std::string& name, const Schema& schema,
    std::vector<Tuple> rows) {
  auto table = std::make_shared<Table>(name, schema);
  RowBatch batch;
  batch.Reset(schema.num_columns());
  for (Tuple& row : rows) {
    batch.AppendRow(std::move(row));
    if (batch.full()) {
      DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
      batch.Reset(schema.num_columns());
    }
  }
  if (!batch.empty()) DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
  return std::shared_ptr<const Table>(std::move(table));
}

Result<std::shared_ptr<const Table>> QueryLogProvider(Testbed* tb) {
  std::vector<Tuple> rows;
  for (const QueryLogEntry& e : tb->recorder().Snapshot()) {
    // Phase columns follow Table 4/5 order; absent phases (compile-only
    // queries have no execution phases) render as 0.
    std::map<std::string, int64_t> phase;
    for (const PhaseTiming& p : e.phases) phase[p.name] = p.micros;
    auto us = [&phase](const char* name) { return IntVal(phase[name]); };
    rows.push_back(Tuple{
        IntVal(e.query_id), IntVal(e.session_id), IntVal(e.ts_us),
        Value(e.query), Value(e.strategy), BoolVal(e.magic),
        BoolVal(e.from_cache), BoolVal(e.executed), IntVal(e.rows_out),
        IntVal(e.iterations), IntVal(e.total_us), us("t_setup"),
        us("t_extract"), us("t_read"), us("t_analyze"), us("t_opt"),
        us("t_eol"), us("t_sem"), us("t_gen"), us("t_comp"), us("t_temp"),
        us("t_rhs"), us("t_term"), us("t_final"), IntVal(e.batches),
        IntVal(e.shards), IntVal(e.bytes_sent), IntVal(e.bytes_received),
        Value(e.trace == nullptr ? std::string()
                                 : e.trace->RenderChromeTrace())});
  }
  return Materialize("sys.query_log", QueryLogSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> LfpIterationsProvider(Testbed* tb) {
  std::vector<Tuple> rows;
  for (const QueryLogEntry& e : tb->recorder().Snapshot()) {
    for (const QueryLogEntry::LfpIteration& it : e.lfp_iterations) {
      rows.push_back(Tuple{IntVal(e.query_id), Value(it.node),
                           BoolVal(it.is_clique), IntVal(it.iter),
                           IntVal(it.delta_rows)});
    }
  }
  return Materialize("sys.lfp_iterations", LfpIterationsSchema(),
                     std::move(rows));
}

Result<std::shared_ptr<const Table>> MetricsProvider() {
  std::vector<Tuple> rows;
  for (const metrics::MetricSample& s : metrics::GlobalMetrics().Snapshot()) {
    rows.push_back(Tuple{Value(s.name), Value(s.kind), IntVal(s.value),
                         IntVal(s.sum), IntVal(s.max), IntVal(s.p50),
                         IntVal(s.p99)});
  }
  return Materialize("sys.metrics", MetricsSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> SessionsProvider(Testbed* tb) {
  const int64_t current = static_cast<int64_t>(tb->epoch());
  std::vector<Tuple> rows;
  for (const Testbed::SessionInfo& s : tb->SessionSnapshot()) {
    const int64_t epoch = static_cast<int64_t>(s.epoch);
    rows.push_back(Tuple{IntVal(s.session_id), IntVal(epoch),
                         IntVal(current), IntVal(current - epoch),
                         IntVal(s.queries)});
  }
  return Materialize("sys.sessions", SessionsSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> ConnectionsProvider(Testbed* tb) {
  std::vector<Tuple> rows;
  for (const Testbed::ConnectionInfo& c : tb->ConnectionsSnapshot()) {
    rows.push_back(Tuple{IntVal(c.connection_id), Value(c.peer),
                         IntVal(c.session_id), IntVal(c.frames_received),
                         IntVal(c.bytes_in), IntVal(c.bytes_out),
                         IntVal(c.queries), IntVal(c.requests),
                         IntVal(c.errors), IntVal(c.age_us)});
  }
  return Materialize("sys.connections", ConnectionsSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> ServerProvider(Testbed* tb) {
  std::vector<Tuple> rows;
  for (const metrics::MetricSample& s : tb->ServerStatsSnapshot()) {
    rows.push_back(Tuple{Value(s.name), Value(s.kind), IntVal(s.value),
                         IntVal(s.sum), IntVal(s.max), IntVal(s.p50),
                         IntVal(s.p99)});
  }
  return Materialize("sys.server", ServerSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> ShardsProvider(Testbed* tb) {
  // Approximate statistics, like sys.metrics: per-shard row counts and the
  // morsel counters are read without the session-layer lock, so a row may
  // reflect a write in progress. rows/bytes are 0 for interner segments
  // (rows = distinct strings there; payload bytes live in the dictionary).
  std::vector<Tuple> rows;
  Catalog& catalog = tb->db().catalog();
  std::vector<std::string> names = catalog.TableNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    auto source = catalog.GetSource(name);
    if (!source.ok()) continue;  // dropped since TableNames()
    const ScanSource& src = **source;
    for (size_t s = 0; s < src.shard_count(); ++s) {
      const Table& shard = src.shard(s);
      rows.push_back(Tuple{
          Value(src.name()), Value("table"), IntVal(static_cast<int64_t>(s)),
          IntVal(static_cast<int64_t>(shard.num_tuples())),
          IntVal(static_cast<int64_t>(shard.ApproxBytes())),
          IntVal(static_cast<int64_t>(shard.morsels_dispatched())),
          IntVal(static_cast<int64_t>(shard.scan_batches()))});
    }
  }
  const auto segments = GlobalStringDict().SegmentSizes();
  for (size_t i = 0; i < segments.size(); ++i) {
    rows.push_back(Tuple{Value("<interner>"), Value("interner"),
                         IntVal(static_cast<int64_t>(i)),
                         IntVal(static_cast<int64_t>(segments[i])), IntVal(0),
                         IntVal(0), IntVal(0)});
  }
  return Materialize("sys.shards", ShardsSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> WalProvider(Testbed* tb) {
  // Always one row; a disabled WAL renders as enabled=0 with empty path so
  // `SELECT * FROM sys.wal` is a valid liveness probe either way.
  const Testbed::WalInfo info = tb->WalSnapshot();
  std::vector<Tuple> rows;
  rows.push_back(Tuple{BoolVal(info.enabled), Value(info.path),
                       IntVal(static_cast<int64_t>(info.last_lsn)),
                       IntVal(info.appends), IntVal(info.fsyncs),
                       BoolVal(info.fsync), BoolVal(info.group_commit)});
  return Materialize("sys.wal", WalSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> CheckpointsProvider(Testbed* tb) {
  // Zero rows without a durable checkpoint on disk, one row with (peeked
  // fresh from the file so the view survives out-of-band tampering).
  const Testbed::CheckpointStat stat = tb->CheckpointSnapshot();
  std::vector<Tuple> rows;
  if (stat.exists) {
    rows.push_back(Tuple{Value(stat.path),
                         IntVal(static_cast<int64_t>(stat.last_lsn)),
                         IntVal(static_cast<int64_t>(stat.epoch))});
  }
  return Materialize("sys.checkpoints", CheckpointsSchema(), std::move(rows));
}

Result<std::shared_ptr<const Table>> SettingsProvider(Testbed* tb) {
  const TestbedOptions& opts = tb->options();
  const QueryOptions defaults;
  const SlowQueryLogOptions slow = tb->recorder().slow_query_log();
  // Read-only peek at the same variable GlobalThreadPool reads once at
  // startup; nothing in the process calls setenv, so the mt-unsafe getenv
  // race cannot occur here.
  const char* threads_env =
      std::getenv("DKB_THREADS");  // NOLINT(concurrency-mt-unsafe)
  std::vector<std::pair<std::string, std::string>> settings = {
      {"default_strategy", lfp::StrategyName(defaults.strategy)},
      {"default_use_magic", defaults.use_magic ? "on" : "off"},
      {"default_use_cache", defaults.use_cache ? "on" : "off"},
      {"default_lfp_parallelism",
       std::to_string(defaults.EffectivePolicy().lfp_parallelism)},
      {"edb_first_column_index",
       opts.stored.index_edb_first_column ? "on" : "off"},
      {"compiled_rule_storage",
       opts.stored.compiled_rule_storage ? "on" : "off"},
      {"default_shards", std::to_string(opts.shards)},
      {"wal_dir", opts.wal_dir},
      {"wal_fsync", opts.wal_fsync ? "on" : "off"},
      {"wal_group_commit", opts.wal_group_commit ? "on" : "off"},
      {"vacuum_interval_ms", std::to_string(opts.vacuum_interval_ms)},
      {"flight_recorder_capacity",
       std::to_string(tb->recorder().capacity())},
      {"slow_query_threshold_us", std::to_string(slow.threshold_us)},
      {"slow_query_log_format", slow.json ? "json" : "text"},
      {"dkb_threads_env", threads_env == nullptr ? "" : threads_env},
      {"hardware_threads",
       std::to_string(std::thread::hardware_concurrency())},
  };
  std::vector<Tuple> rows;
  rows.reserve(settings.size());
  for (auto& [name, value] : settings) {
    rows.push_back(Tuple{Value(std::move(name)), Value(std::move(value))});
  }
  return Materialize("sys.settings", SettingsSchema(), std::move(rows));
}

}  // namespace

const std::vector<SystemViewDef>& SystemViewDefs() {
  static const std::vector<SystemViewDef>* defs =
      new std::vector<SystemViewDef>{
          {"sys.query_log", QueryLogSchema(),
           "flight-recorder ring of completed queries (newest last)"},
          {"sys.lfp_iterations", LfpIterationsSchema(),
           "per-node per-iteration semi-naive delta cardinalities"},
          {"sys.metrics", MetricsSchema(),
           "live snapshot of the global metrics registry"},
          {"sys.sessions", SessionsSchema(),
           "open concurrent sessions and snapshot staleness"},
          {"sys.shards", ShardsSchema(),
           "per-shard row/byte/morsel statistics and interner segments"},
          {"sys.connections", ConnectionsSchema(),
           "live network connections (empty unless a dkb_server is "
           "attached)"},
          {"sys.server", ServerSchema(),
           "server request-lifecycle telemetry (empty unless a dkb_server "
           "is attached)"},
          {"sys.settings", SettingsSchema(),
           "effective testbed and query-default configuration"},
          {"sys.wal", WalSchema(),
           "write-ahead-log position and flush statistics"},
          {"sys.checkpoints", CheckpointsSchema(),
           "the durable checkpoint image in wal_dir (empty before the "
           "first Checkpoint())"},
      };
  return *defs;
}

Status RegisterSystemViews(Database* db, Testbed* testbed) {
  Catalog& catalog = db->catalog();
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.query_log", QueryLogSchema(),
      [testbed]() { return QueryLogProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.lfp_iterations", LfpIterationsSchema(),
      [testbed]() { return LfpIterationsProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.metrics", MetricsSchema(), []() { return MetricsProvider(); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.sessions", SessionsSchema(),
      [testbed]() { return SessionsProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.shards", ShardsSchema(),
      [testbed]() { return ShardsProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.connections", ConnectionsSchema(),
      [testbed]() { return ConnectionsProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.server", ServerSchema(),
      [testbed]() { return ServerProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.settings", SettingsSchema(),
      [testbed]() { return SettingsProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.wal", WalSchema(), [testbed]() { return WalProvider(testbed); }));
  DKB_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      "sys.checkpoints", CheckpointsSchema(),
      [testbed]() { return CheckpointsProvider(testbed); }));
  return Status::OK();
}

}  // namespace dkb::testbed
