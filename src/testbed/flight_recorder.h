#ifndef DKB_TESTBED_FLIGHT_RECORDER_H_
#define DKB_TESTBED_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "testbed/report.h"

namespace dkb::testbed {

/// One completed query as remembered by the flight recorder: the fields a
/// post-hoc observer needs, flattened out of the QueryReport. Phase timings
/// keep the paper's Table 4/5 order; per-iteration LFP deltas are kept as
/// their own sub-records so sys.lfp_iterations can expose one row each.
struct QueryLogEntry {
  int64_t query_id = 0;    // monotonic per recorder, assigned at Query()
  int64_t session_id = 0;  // 0 = the testbed itself, >0 = Session id
  int64_t ts_us = 0;       // wall-clock micros since Unix epoch, at completion
  std::string query;       // the goal as written
  std::string strategy;    // LFP strategy name
  bool magic = false;      // magic rewrite actually changed the rules
  bool from_cache = false;
  bool executed = false;   // false for EXPLAIN (compile-only) queries
  int64_t rows_out = 0;
  int64_t iterations = 0;  // summed over all cliques
  int64_t total_us = 0;
  int64_t batches = 0;     // row batches drained at plan roots (DBMS delta)
  int64_t shards = 1;      // catalog default shard count when the query ran
  /// Wire traffic attributed to this query, annotated after the fact by the
  /// network server (AnnotateBytes); both stay 0 for in-process queries.
  /// For a batched request the whole request/response frame is attributed
  /// to each query in the batch (the frame is the unit that crossed the
  /// wire).
  int64_t bytes_sent = 0;      // response frame bytes (server -> client)
  int64_t bytes_received = 0;  // request frame bytes (client -> server)
  std::vector<PhaseTiming> phases;  // Table-4 then Table-5 order

  struct LfpIteration {
    std::string node;  // predicates defined, comma-joined
    bool is_clique = false;
    int64_t iter = 0;  // 1-based iteration number within the node
    int64_t delta_rows = 0;
  };
  std::vector<LfpIteration> lfp_iterations;

  /// The query's settled trace context; null unless the query ran with
  /// tracing. Shared with QueryReport::trace (no per-query tree copy or
  /// string rendering on the record path) — sys.query_log snapshots and
  /// renders it on read. The context is immutable once the query returns.
  std::shared_ptr<const trace::TraceContext> trace;
};

/// Slow-query log configuration. Disabled by default; when a recorded
/// query's total_us exceeds `threshold_us`, exactly one structured record
/// (one line, text or JSON) is written to the sink.
struct SlowQueryLogOptions {
  int64_t threshold_us = -1;  // < 0 disables the log
  bool json = false;          // one-line JSON object instead of key=value
  /// Receives the formatted record (no trailing newline). Null writes the
  /// record plus '\n' to stderr.
  std::function<void(const std::string&)> sink;
};

/// Always-on ring buffer of the last N completed queries (the testbed's
/// flight recorder). Memory is bounded: the ring holds at most `capacity`
/// entries; traced entries share the query's settled TraceContext rather
/// than copying the span tree.
///
/// Thread safety: Record/Snapshot/SetCapacity take a short mutex;
/// NextQueryId is a lone atomic increment. Queries from concurrent sessions
/// record into the same ring.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  /// Monotonic query-id source; ids start at 1.
  int64_t NextQueryId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one completed query, evicting the oldest entry when the ring
  /// is full, and emits a slow-query record if the entry crossed the
  /// configured threshold.
  void Record(QueryLogEntry entry) DKB_EXCLUDES(mu_);

  /// Flattens a finished QueryReport into a QueryLogEntry (shared by the
  /// testbed recording hook and tests).
  static QueryLogEntry MakeEntry(const QueryReport& report, int64_t query_id,
                                 int64_t session_id, int64_t rows_out);

  /// Fills in the wire-traffic columns of an already-recorded entry (the
  /// network server learns the response size only after the query has been
  /// recorded). No-op when the entry has rotated out of the ring.
  void AnnotateBytes(int64_t query_id, int64_t bytes_sent,
                     int64_t bytes_received) DKB_EXCLUDES(mu_);

  /// Oldest-first copy of the ring.
  std::vector<QueryLogEntry> Snapshot() const DKB_EXCLUDES(mu_);

  /// Shrinks/grows the ring; excess oldest entries are dropped immediately.
  void SetCapacity(size_t capacity) DKB_EXCLUDES(mu_);
  size_t capacity() const DKB_EXCLUDES(mu_);
  size_t size() const DKB_EXCLUDES(mu_);
  void Clear() DKB_EXCLUDES(mu_);

  void SetSlowQueryLog(SlowQueryLogOptions options) DKB_EXCLUDES(mu_);
  SlowQueryLogOptions slow_query_log() const DKB_EXCLUDES(mu_);

  /// The one-line record the slow-query log emits for `entry`.
  static std::string FormatSlowRecord(const QueryLogEntry& entry, bool json);

 private:
  std::atomic<int64_t> next_id_{1};
  /// Guards the ring, its capacity, and the slow-log options. Held only for
  /// queue surgery and config copies; slow-log emission and metrics updates
  /// happen outside it (see Record).
  mutable Mutex mu_;
  size_t capacity_ DKB_GUARDED_BY(mu_);
  std::deque<QueryLogEntry> ring_ DKB_GUARDED_BY(mu_);
  SlowQueryLogOptions slow_ DKB_GUARDED_BY(mu_);
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_FLIGHT_RECORDER_H_
