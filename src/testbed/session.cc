#include "testbed/session.h"

#include "common/sync.h"
#include "datalog/parser.h"

namespace dkb::testbed {

Session::Session(Testbed* testbed)
    : testbed_(testbed), options_(testbed->options_) {}

Session::~Session() { testbed_->UnregisterSession(id_); }

Status Session::Refresh() {
  ReaderLock lock(testbed_->mu_);
  uint64_t current = testbed_->epoch();
  if (db_ != nullptr && current == epoch()) return Status::OK();
  // A brand-new overlay per pin: scratch tables, pinned base handles, and
  // prepared statements from the old epoch all die with the old Database,
  // so nothing can leak a stale read epoch into the new one.
  auto db = std::make_unique<Database>();
  // The default matters for the LFP `#` temporaries this session will
  // create, which must shard identically to the base tables they are
  // diffed against.
  db->catalog().SetDefaultShards(options_.shards);
  db->catalog().SetBase(&testbed_->db_.catalog());
  db->catalog().SetReadEpoch(current);
  // O(metadata): rebuilds the dictionary caches by querying the small
  // edbrel/idbrel/rulesource relations through the overlay at the pinned
  // epoch. No fact rows are copied.
  auto stored = std::make_unique<km::StoredDkb>(db.get(), options_.stored);
  DKB_RETURN_IF_ERROR(stored->RestoreFromDatabase());
  workspace_ = testbed_->workspace_;
  db_ = std::move(db);
  stored_ = std::move(stored);
  cache_.Clear();
  epoch_.store(current, std::memory_order_release);
  return Status::OK();
}

Result<QueryOutcome> Session::Query(const std::string& goal_text,
                                    const QueryOptions& options) {
  DKB_ASSIGN_OR_RETURN(datalog::Atom goal, datalog::ParseQuery(goal_text));
  return Query(goal, options);
}

Result<QueryOutcome> Session::Query(const datalog::Atom& goal,
                                    const QueryOptions& options) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  DKB_RETURN_IF_ERROR(Refresh());
  // No testbed lock held here: all stored-table reads go through the pinned
  // epoch, and scratch tables live in the session's own overlay.
  return Testbed::QueryImpl(db_.get(), &workspace_, stored_.get(), &cache_,
                            goal, options, &testbed_->recorder_, id_);
}

}  // namespace dkb::testbed
