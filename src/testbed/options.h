#ifndef DKB_TESTBED_OPTIONS_H_
#define DKB_TESTBED_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/parallelism.h"
#include "km/stored_dkb.h"
#include "lfp/evaluator.h"

namespace dkb::testbed {

/// Configuration of a testbed instance (paper Table 1's architecture
/// parameters).
struct TestbedOptions {
  km::StoredDkb::Options stored;

  /// Flight-recorder ring size: how many completed queries sys.query_log
  /// remembers. Always on; memory is bounded by this.
  size_t flight_recorder_capacity = 256;
  /// Slow-query log: queries whose total time exceeds this emit one
  /// structured record. Negative disables (the default).
  int64_t slow_query_threshold_us = -1;
  /// Slow-query records as one-line JSON instead of key=value text.
  bool slow_query_log_json = false;
  /// Shards per stored table (1 = plain Table, the classic layout). Applied
  /// as the catalog's default shard count before any table is created, so
  /// base tables and the LFP's `#` temporaries partition identically and
  /// stay aligned for per-shard set operations. Snapshot loads restore each
  /// table's own recorded layout regardless of this value.
  size_t shards = 1;

  /// Durability directory. Empty (the default) keeps the classic in-memory
  /// testbed. When set, the directory holds the write-ahead log (dkb.wal)
  /// and the newest checkpoint (dkb.ckpt): every mutating operation is
  /// logged before it applies, Checkpoint() writes a columnar image and
  /// truncates the log, and Create() recovers by loading the checkpoint and
  /// replaying the WAL tail.
  std::string wal_dir;
  /// fdatasync WAL batches before a write returns (crash durability). Off
  /// trades durability of the last few records for speed.
  bool wal_fsync = true;
  /// Coalesce concurrent commits into batched fsyncs (group commit).
  bool wal_group_commit = true;
  /// MVCC garbage collection tick: how often the background reclaimer frees
  /// row versions no pinned session can see. <= 0 disables the thread.
  int64_t vacuum_interval_ms = 100;

  /// Rule storage without the compiled form (paper Fig 15's ablation).
  static TestbedOptions SourceOnlyRules() {
    TestbedOptions o;
    o.stored.compiled_rule_storage = false;
    return o;
  }

  TestbedOptions& WithEdbIndex(bool on) {
    stored.index_edb_first_column = on;
    return *this;
  }
  TestbedOptions& WithCompiledRuleStorage(bool on) {
    stored.compiled_rule_storage = on;
    return *this;
  }
  TestbedOptions& WithFlightRecorderCapacity(size_t n) {
    flight_recorder_capacity = n;
    return *this;
  }
  TestbedOptions& WithSlowQueryThreshold(int64_t micros, bool json = false) {
    slow_query_threshold_us = micros;
    slow_query_log_json = json;
    return *this;
  }
  TestbedOptions& WithShards(size_t n) {
    shards = n == 0 ? 1 : n;
    return *this;
  }
  TestbedOptions& WithWalDir(std::string dir) {
    wal_dir = std::move(dir);
    return *this;
  }
  TestbedOptions& WithWalFsync(bool on) {
    wal_fsync = on;
    return *this;
  }
  TestbedOptions& WithWalGroupCommit(bool on) {
    wal_group_commit = on;
    return *this;
  }
  TestbedOptions& WithVacuumInterval(int64_t millis) {
    vacuum_interval_ms = millis;
    return *this;
  }
};

/// What a query should produce besides (or instead of) its answers.
enum class ExplainMode {
  kNone,     // run normally
  kPlan,     // compile only; the result rows are the rendered plan
  kAnalyze,  // run with tracing on; the result rows are the full report
};

/// Per-query knobs: optimization strategy and LFP evaluation method.
///
/// The named presets cover the paper's strategy matrix; the fluent
/// With* modifiers layer the orthogonal knobs (evaluation strategy,
/// precompiled-program cache, LFP parallelism) on top:
///
///   tb->Query(goal, QueryOptions::Magic().WithCache());
///   tb->Query(goal, QueryOptions::SemiNaive().WithParallelism(4));
struct QueryOptions {
  bool use_magic = false;
  /// With use_magic: materialize prefix joins in supplementary predicates
  /// (the supplementary magic sets variant of paper §2.5).
  bool supplementary = false;
  /// Overrides use_magic: let the compiler decide per query from a bounded
  /// selectivity estimate (paper conclusion #4's dynamic strategy).
  bool adaptive_magic = false;
  lfp::LfpStrategy strategy = lfp::LfpStrategy::kSemiNaive;
  /// Reuse precompiled programs for repeated queries (paper conclusion #3).
  /// Cached entries are invalidated when rules defining any predicate the
  /// program depends on change.
  bool use_cache = false;
  /// Full parallelism override for this query. When set it wins over the
  /// process-wide GlobalParallelismPolicy(). WithParallelism(n) is the
  /// shorthand that adjusts just the LFP clique parallelism within it.
  std::optional<ParallelismPolicy> policy;
  /// EXPLAIN / EXPLAIN ANALYZE behaviour (see ExplainMode).
  ExplainMode explain = ExplainMode::kNone;
  /// Collect the hierarchical span tree into QueryReport::trace without
  /// changing what the query returns. Off by default: tracing costs one
  /// pointer test per instrumentation site when disabled.
  bool collect_trace = false;

  /// Naive LFP evaluation, no magic rewrite (paper §3.3 baseline).
  static QueryOptions Naive() {
    QueryOptions o;
    o.strategy = lfp::LfpStrategy::kNaive;
    return o;
  }
  /// Semi-naive differential evaluation (the testbed default).
  static QueryOptions SemiNaive() { return QueryOptions{}; }
  /// Generalized magic sets rewrite + semi-naive (paper §2.5).
  static QueryOptions Magic() {
    QueryOptions o;
    o.use_magic = true;
    return o;
  }
  /// Supplementary magic sets variant (materialized prefix joins).
  static QueryOptions SupplementaryMagic() {
    QueryOptions o;
    o.use_magic = true;
    o.supplementary = true;
    return o;
  }
  /// Per-query compiler choice between magic and plain (conclusion #4).
  static QueryOptions Adaptive() {
    QueryOptions o;
    o.adaptive_magic = true;
    return o;
  }

  QueryOptions& WithStrategy(lfp::LfpStrategy s) {
    strategy = s;
    return *this;
  }
  QueryOptions& WithCache(bool on = true) {
    use_cache = on;
    return *this;
  }
  /// Sets the LFP clique parallelism (1 = serial, 0 = size to the global
  /// worker pool, N > 1 = at most N concurrent cliques), materializing the
  /// per-query policy from the process-wide one if not already set.
  QueryOptions& WithParallelism(int n) {
    if (!policy.has_value()) policy = GlobalParallelismPolicy();
    policy->lfp_parallelism = n;
    return *this;
  }
  QueryOptions& WithPolicy(ParallelismPolicy p) {
    policy = p;
    return *this;
  }
  /// The parallelism knobs this query runs with: the explicit per-query
  /// policy when set, otherwise the process-wide policy.
  ParallelismPolicy EffectivePolicy() const {
    if (policy.has_value()) return *policy;
    return GlobalParallelismPolicy();
  }
  QueryOptions& WithExplain(ExplainMode mode) {
    explain = mode;
    return *this;
  }
  QueryOptions& WithTrace(bool on = true) {
    collect_trace = on;
    return *this;
  }
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_OPTIONS_H_
