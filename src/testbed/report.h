#ifndef DKB_TESTBED_REPORT_H_
#define DKB_TESTBED_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/plan.h"
#include "km/compiler.h"
#include "lfp/evaluator.h"

namespace dkb::testbed {

/// One named phase timing. Names follow the paper's Table 4 (compilation:
/// t_setup .. t_comp) and Table 5 (execution: t_temp, t_rhs, t_term,
/// t_final) so report consumers can line results up with the published
/// breakdowns directly.
struct PhaseTiming {
  std::string name;
  int64_t micros = 0;
};

/// Static summary of the compiled query program (the EXPLAIN side of a
/// report: what would run, independent of whether it did).
struct PlanSummary {
  std::string query;            // the goal as written
  std::string strategy;         // lfp::StrategyName of the evaluation mode
  bool magic_applied = false;   // the rewrite actually changed the rules
  int parallelism = 1;          // LFP wavefront knob as resolved at Query()
  int64_t shards = 1;           // catalog default shard count at Query()
  int64_t rules_relevant = 0;
  int64_t rules_pruned = 0;

  struct Node {
    std::string label;  // predicates defined, comma-joined
    bool is_clique = false;
    int64_t exit_rules = 0;
    int64_t recursive_rules = 0;
  };
  std::vector<Node> nodes;    // program order
  std::string final_select;   // answer-retrieval SQL
};

/// Unified observability record for one D/KB query: phase timings matching
/// the paper's tables, per-node LFP statistics with per-iteration delta
/// cardinalities, the DBMS counter deltas attributable to the query, and —
/// when tracing was requested — the full hierarchical span tree.
///
/// Move-only (it may own a TraceContext).
struct QueryReport {
  /// Flight-recorder identity: the id assigned by FlightRecorder::NextQueryId
  /// (0 when recording is off) and the session that ran the query (0 = the
  /// testbed itself). sys.lfp_iterations joins to sys.query_log on query_id.
  int64_t query_id = 0;
  int64_t session_id = 0;
  km::CompilationStats compile;  // all zeros on a precompiled-cache hit
  lfp::ExecutionStats exec;      // zeros when only compiled (ExplainMode::kPlan)
  bool from_cache = false;       // compiled program came from the query cache
  bool executed = false;         // false for compile-only (EXPLAIN) queries
  int64_t total_us = 0;          // wall time of the whole Query() call
  exec::ExecStatsSnapshot db_delta;  // DBMS counter deltas for this query
  PlanSummary plan;
  /// Span tree; non-null only when the query ran with tracing
  /// (QueryOptions::collect_trace or ExplainMode::kAnalyze). Shared, not
  /// unique: the flight recorder's query-log entry keeps a reference to
  /// the same settled context instead of deep-copying the tree on every
  /// traced query.
  std::shared_ptr<trace::TraceContext> trace;

  /// Compilation then execution phases in table order (t_setup ... t_comp,
  /// t_temp, t_rhs, t_term, t_final). Execution entries are present only
  /// when the query executed.
  std::vector<PhaseTiming> Phases() const;

  /// Human-readable EXPLAIN (plan only) / EXPLAIN ANALYZE (plan + timings,
  /// per-node iterations and delta sizes, counters, trace tree) rendering.
  std::string ExplainText() const;

  /// The whole report as one JSON object (schema documented in DESIGN.md
  /// "Observability").
  std::string ToJson() const;

  /// Chrome trace-event JSON for the span tree; empty when no trace was
  /// collected. Load in chrome://tracing or Perfetto.
  std::string ChromeTrace() const;
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_REPORT_H_
