#ifndef DKB_TESTBED_QUERY_CACHE_H_
#define DKB_TESTBED_QUERY_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/sync.h"
#include "km/codegen.h"
#include "km/compiler.h"

namespace dkb::testbed {

/// Precompiled-query store (paper conclusion #3).
///
/// Compilation dominates short D/KB interactions, so frequently-issued
/// queries are worth precompiling. The price the paper identifies is
/// bookkeeping: each cached program records the predicates it depends on,
/// and rule-base updates invalidate every program whose dependency set
/// intersects the updated predicates.
class QueryCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidated = 0;  // entries dropped by updates
  };

  /// Cache key: the query text plus the option bits that change the
  /// compiled program.
  static std::string MakeKey(const datalog::Atom& goal, bool use_magic,
                             bool adaptive_magic = false);

  /// Returns shared ownership of the cached program, or null on a miss.
  /// The returned program stays valid for as long as the caller holds the
  /// pointer, even across a concurrent Insert/InvalidateOn/Clear — lookups
  /// never hand out references into the guarded map.
  std::shared_ptr<const km::CompiledQuery> Lookup(const std::string& key)
      DKB_EXCLUDES(mu_);

  /// Stores a compiled program. `dependencies` must cover every predicate
  /// whose rules or schema the program depends on (the compiler's relevant
  /// predicate set plus base predicates).
  void Insert(const std::string& key, km::CompiledQuery compiled,
              std::set<std::string> dependencies) DKB_EXCLUDES(mu_);

  /// Drops every entry depending on any of `updated_preds`.
  void InvalidateOn(const std::set<std::string>& updated_preds)
      DKB_EXCLUDES(mu_);

  /// Drops everything (workspace edits change rule visibility wholesale).
  void Clear() DKB_EXCLUDES(mu_);

  Stats stats() const DKB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  size_t size() const DKB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const km::CompiledQuery> compiled;
    std::set<std::string> dependencies;
  };

  /// Guards the map and counters so concurrent lookups (hit bookkeeping
  /// mutates stats_) stay race-free. Entry programs are immutable once
  /// inserted and shared out by shared_ptr, so they need no lock.
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ DKB_GUARDED_BY(mu_);
  Stats stats_ DKB_GUARDED_BY(mu_);
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_QUERY_CACHE_H_
