#ifndef DKB_TESTBED_QUERY_CACHE_H_
#define DKB_TESTBED_QUERY_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "km/codegen.h"
#include "km/compiler.h"

namespace dkb::testbed {

/// Precompiled-query store (paper conclusion #3).
///
/// Compilation dominates short D/KB interactions, so frequently-issued
/// queries are worth precompiling. The price the paper identifies is
/// bookkeeping: each cached program records the predicates it depends on,
/// and rule-base updates invalidate every program whose dependency set
/// intersects the updated predicates.
class QueryCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidated = 0;  // entries dropped by updates
  };

  /// Cache key: the query text plus the option bits that change the
  /// compiled program.
  static std::string MakeKey(const datalog::Atom& goal, bool use_magic,
                             bool adaptive_magic = false);

  /// Returns the cached program or nullptr. The pointer stays valid until
  /// the next Insert/InvalidateOn/Clear; callers that mutate the cache
  /// concurrently (the testbed does so only under its writer lock) must
  /// copy before releasing their lock.
  const km::CompiledQuery* Lookup(const std::string& key);

  /// Stores a compiled program. `dependencies` must cover every predicate
  /// whose rules or schema the program depends on (the compiler's relevant
  /// predicate set plus base predicates).
  void Insert(const std::string& key, km::CompiledQuery compiled,
              std::set<std::string> dependencies);

  /// Drops every entry depending on any of `updated_preds`.
  void InvalidateOn(const std::set<std::string>& updated_preds);

  /// Drops everything (workspace edits change rule visibility wholesale).
  void Clear();

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    km::CompiledQuery compiled;
    std::set<std::string> dependencies;
  };

  /// Guards the map and counters so concurrent lookups (hit bookkeeping
  /// mutates stats_) stay race-free; entry lifetime is the caller's
  /// responsibility per Lookup's contract.
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_QUERY_CACHE_H_
