#include "testbed/flight_recorder.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/metrics.h"
#include "common/str_util.h"

namespace dkb::testbed {

namespace {

int64_t NowWallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryLogEntry FlightRecorder::MakeEntry(const QueryReport& report,
                                        int64_t query_id, int64_t session_id,
                                        int64_t rows_out) {
  QueryLogEntry entry;
  entry.query_id = query_id;
  entry.session_id = session_id;
  entry.ts_us = NowWallMicros();
  entry.query = report.plan.query;
  entry.strategy = report.plan.strategy;
  entry.magic = report.plan.magic_applied;
  entry.from_cache = report.from_cache;
  entry.executed = report.executed;
  entry.rows_out = rows_out;
  entry.iterations = report.exec.iterations;
  entry.total_us = report.total_us;
  entry.batches = report.db_delta.batches;
  entry.shards = report.plan.shards;
  entry.phases = report.Phases();
  for (const lfp::NodeStats& node : report.exec.nodes) {
    for (size_t i = 0; i < node.delta_sizes.size(); ++i) {
      QueryLogEntry::LfpIteration it;
      it.node = node.label;
      it.is_clique = node.is_clique;
      it.iter = static_cast<int64_t>(i) + 1;
      it.delta_rows = node.delta_sizes[i];
      entry.lfp_iterations.push_back(std::move(it));
    }
  }
  entry.trace = report.trace;
  return entry;
}

void FlightRecorder::Record(QueryLogEntry entry) {
  metrics::GlobalMetrics().counter("dkb.recorder.recorded").Add(1);
  bool slow = false;
  std::string record;
  SlowQueryLogOptions slow_opts;
  int64_t evicted = 0;
  {
    MutexLock lock(mu_);
    slow = slow_.threshold_us >= 0 && entry.total_us > slow_.threshold_us;
    if (slow) {
      record = FormatSlowRecord(entry, slow_.json);
      slow_opts = slow_;
    }
    ring_.push_back(std::move(entry));
    while (ring_.size() > capacity_) {
      ring_.pop_front();
      ++evicted;
    }
  }
  // Metrics registry lookup and counter bump happen after unlock: the
  // registry has its own lock, and nesting it under mu_ on every eviction
  // would serialize concurrent recorders for no benefit.
  if (evicted > 0) {
    metrics::GlobalMetrics().counter("dkb.recorder.evicted").Add(evicted);
  }
  if (!slow) return;
  // Emit outside the lock: a user-provided sink may be arbitrarily slow.
  metrics::GlobalMetrics().counter("dkb.slowlog.records").Add(1);
  if (slow_opts.sink) {
    slow_opts.sink(record);
  } else {
    std::fprintf(stderr, "%s\n", record.c_str());
  }
}

void FlightRecorder::AnnotateBytes(int64_t query_id, int64_t bytes_sent,
                                   int64_t bytes_received) {
  MutexLock lock(mu_);
  // Scan newest-first: the entry being annotated almost always is the one
  // just recorded at the back of the ring.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->query_id == query_id) {
      it->bytes_sent = bytes_sent;
      it->bytes_received = bytes_received;
      return;
    }
  }
}

std::vector<QueryLogEntry> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<QueryLogEntry>(ring_.begin(), ring_.end());
}

void FlightRecorder::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t FlightRecorder::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

size_t FlightRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

void FlightRecorder::SetSlowQueryLog(SlowQueryLogOptions options) {
  MutexLock lock(mu_);
  slow_ = std::move(options);
}

SlowQueryLogOptions FlightRecorder::slow_query_log() const {
  MutexLock lock(mu_);
  return slow_;
}

std::string FlightRecorder::FormatSlowRecord(const QueryLogEntry& entry,
                                             bool json) {
  if (json) {
    std::string out = "{\"slow_query\": true";
    out += ", \"query_id\": " + std::to_string(entry.query_id);
    out += ", \"session_id\": " + std::to_string(entry.session_id);
    out += ", \"ts_us\": " + std::to_string(entry.ts_us);
    out += ", \"total_us\": " + std::to_string(entry.total_us);
    out += ", \"strategy\": \"" + JsonEscape(entry.strategy) + "\"";
    out += std::string(", \"magic\": ") + (entry.magic ? "true" : "false");
    out += std::string(", \"from_cache\": ") +
           (entry.from_cache ? "true" : "false");
    out += ", \"rows_out\": " + std::to_string(entry.rows_out);
    out += ", \"iterations\": " + std::to_string(entry.iterations);
    out += ", \"query\": \"" + JsonEscape(entry.query) + "\"}";
    return out;
  }
  std::string out = "[dkb slow query]";
  out += " id=" + std::to_string(entry.query_id);
  out += " session=" + std::to_string(entry.session_id);
  out += " total_us=" + std::to_string(entry.total_us);
  out += " strategy=" + entry.strategy;
  out += std::string(" magic=") + (entry.magic ? "1" : "0");
  out += std::string(" cache=") + (entry.from_cache ? "1" : "0");
  out += " rows=" + std::to_string(entry.rows_out);
  out += " iterations=" + std::to_string(entry.iterations);
  out += " query=\"" + entry.query + "\"";
  return out;
}

}  // namespace dkb::testbed
