#ifndef DKB_TESTBED_TESTBED_H_
#define DKB_TESTBED_TESTBED_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "storage/checkpoint.h"
#include "storage/epoch.h"
#include "storage/wal.h"

#include "km/compiler.h"
#include "km/stored_dkb.h"
#include "km/update.h"
#include "km/workspace.h"
#include "lfp/evaluator.h"
#include "rdbms/database.h"
#include "testbed/flight_recorder.h"
#include "testbed/options.h"
#include "testbed/query_cache.h"
#include "testbed/report.h"

namespace dkb::testbed {

class Session;

/// Everything a D/KB query session produces: the answers, the compiled
/// program, and a unified QueryReport carrying the paper's two headline
/// measures — t_c (compilation) and t_e (execution) — broken into their
/// components, plus counters and (when requested) the span tree.
///
/// Move-only: the report may own a TraceContext.
struct QueryOutcome {
  QueryResult result;
  km::CompiledQuery compiled;
  QueryReport report;
};

/// The D/KBMS testbed facade (paper Fig 5): a Workspace DKB, a Stored DKB
/// living inside the relational DBMS, the query compiler, and the run time
/// library, wired together behind the session operations a user performs.
class Testbed {
 public:
  /// Builds a testbed with freshly initialized Stored-DKB relations. With
  /// TestbedOptions::wal_dir set this is also the recovery entry point:
  /// the newest checkpoint in the directory is loaded and the WAL tail
  /// (records past the checkpoint) is replayed before the testbed opens.
  static Result<std::unique_ptr<Testbed>> Create(
      TestbedOptions options = TestbedOptions{});

  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Loads a Datalog program: proper rules go to the Workspace DKB, ground
  /// facts to the extensional database (base predicates are auto-defined
  /// from the types of the first fact's constants). Queries in the text are
  /// rejected — use Query().
  Status Consult(const std::string& program_text) DKB_EXCLUDES(mu_);

  /// Adds a single rule ("anc(X,Y) :- par(X,Y).") to the workspace.
  Status AddRule(const std::string& rule_text) DKB_EXCLUDES(mu_);

  /// Removes a workspace rule by structural equality (the paper's workspace
  /// editing loop). Rules already committed to the Stored DKB are
  /// unaffected. Returns NotFound if no such workspace rule exists.
  Status RetractRule(const std::string& rule_text) DKB_EXCLUDES(mu_);

  /// Declares a base predicate with explicit column types.
  Status DefineBase(const std::string& pred,
                    const km::PredicateTypes& types) DKB_EXCLUDES(mu_);

  /// Bulk-loads facts for a base predicate.
  Status AddFacts(const std::string& pred, const std::vector<Tuple>& rows)
      DKB_EXCLUDES(mu_);

  /// Compiles and executes a D/KB query ("?- anc(john, X)." or just
  /// "anc(john, X)").
  Result<QueryOutcome> Query(const std::string& goal_text,
                             const QueryOptions& options = QueryOptions{})
      DKB_EXCLUDES(mu_);
  Result<QueryOutcome> Query(const datalog::Atom& goal,
                             const QueryOptions& options = QueryOptions{})
      DKB_EXCLUDES(mu_);

  /// Compiles without executing (used by the compilation benches).
  Result<km::CompiledQuery> CompileOnly(const datalog::Atom& goal,
                                        const QueryOptions& options,
                                        km::CompilationStats* stats)
      DKB_EXCLUDES(mu_);

  /// Runs the goal-independent static-analysis passes over the workspace
  /// rules merged with the stored rules they depend on; base predicates are
  /// resolved against the Stored D/KB. Nothing is modified — this is the
  /// interactive `dkb_lint` surface of the session.
  Result<std::vector<km::analysis::Diagnostic>> LintWorkspace()
      DKB_EXCLUDES(mu_);

  /// Commits the Workspace rules into the Stored DKB (paper §4.3).
  Result<km::UpdateStats> UpdateStoredDkb() DKB_EXCLUDES(mu_);

  /// Runs one raw SQL statement under the writer lock. This is the safe
  /// SQL entry point for concurrent callers (the network server, tools):
  /// the bare db() accessor bypasses the reader-writer protocol and is for
  /// single-threaded use only.
  Result<QueryResult> ExecuteSql(const std::string& statement)
      DKB_EXCLUDES(mu_);

  /// The current workspace rules rendered back to source form, under the
  /// reader lock (safe against concurrent AddRule/RetractRule).
  std::vector<std::string> ListRuleTexts() const DKB_EXCLUDES(mu_);

  /// Persists the whole session — the DBMS state (facts, stored rules,
  /// dictionaries, compiled rule storage) plus the workspace rules — to a
  /// columnar checkpoint file (storage/checkpoint.h).
  Status SaveSession(const std::string& path) DKB_EXCLUDES(mu_);

  /// Restores a session saved with SaveSession. `options` must describe
  /// the same storage configuration the snapshot was created with.
  static Result<std::unique_ptr<Testbed>> LoadSession(
      const std::string& path, TestbedOptions options = TestbedOptions{});

  /// Writes a checkpoint to wal_dir/dkb.ckpt and truncates the WAL: the
  /// durable image "moves forward" so recovery replays only records after
  /// it. FailedPrecondition without a wal_dir.
  Status Checkpoint() DKB_EXCLUDES(mu_);

  /// Loads a checkpoint file into this testbed. The target must be empty —
  /// a testbed that has initialized or recovered stored relations answers
  /// FailedPrecondition (loads never merge into live state).
  Status LoadCheckpoint(const std::string& path) DKB_EXCLUDES(mu_);

  /// Opens a concurrent read-only query session pinned to the current
  /// commit epoch (see testbed/session.h). O(metadata), not O(data): the
  /// session overlays the shared catalog instead of cloning the database.
  /// Any number of sessions may Query() in parallel; the testbed's mutating
  /// operations take the writer side of the lock and advance the epoch,
  /// making open sessions re-pin on their next query.
  Result<std::unique_ptr<Session>> OpenSession() DKB_EXCLUDES(mu_);

  /// Monotonic state version: advanced by every committed write. Rows are
  /// stamped with [begin, end) epochs; a session pinned at epoch E sees
  /// exactly the rows with begin <= E < end (storage/epoch.h).
  uint64_t epoch() const { return epochs_.committed(); }

  void ClearWorkspace() DKB_EXCLUDES(mu_);

  /// One row of sys.sessions: an open Session's id, the epoch its snapshot
  /// was cloned at, and how many queries it has run.
  struct SessionInfo {
    int64_t session_id = 0;
    uint64_t epoch = 0;
    int64_t queries = 0;
  };
  std::vector<SessionInfo> SessionSnapshot() const
      DKB_EXCLUDES(sessions_mu_);

  /// One row of sys.connections: a live network connection as reported by
  /// the server's connection registry (testbed/sys_views.cc renders these).
  /// Defined here rather than in src/net/ so the view can exist — empty —
  /// when no server is attached, without testbed depending on net.
  struct ConnectionInfo {
    int64_t connection_id = 0;
    std::string peer;        // "addr:port" of the remote end
    int64_t session_id = 0;  // the COW Session serving this connection
    int64_t frames_received = 0;
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
    int64_t queries = 0;
    int64_t requests = 0;  // request frames dispatched (>= queries)
    int64_t errors = 0;    // requests answered with an Error frame
    int64_t age_us = 0;    // microseconds since the connection was accepted
  };
  using ConnectionsSource = std::function<std::vector<ConnectionInfo>()>;

  /// Installs (or, with nullptr, removes) the provider behind
  /// sys.connections. The server installs its registry on Start and removes
  /// it on Stop; with none installed the view is empty.
  void SetConnectionsSource(ConnectionsSource source)
      DKB_EXCLUDES(connections_mu_);

  /// Snapshot of the installed connections source (empty without one).
  std::vector<ConnectionInfo> ConnectionsSnapshot() const
      DKB_EXCLUDES(connections_mu_);

  /// Provider behind sys.server: the attached server's request-lifecycle
  /// statistics in the sys.metrics row shape (name/kind/value/sum/max/
  /// p50/p99). Same install/remove discipline and locking constraints as
  /// the connections source: the callback must never re-enter Testbed
  /// entry points that take mu_.
  using ServerStatsSource =
      std::function<std::vector<metrics::MetricSample>()>;
  void SetServerStatsSource(ServerStatsSource source)
      DKB_EXCLUDES(connections_mu_);

  /// Snapshot of the installed server-stats source (empty without one).
  std::vector<metrics::MetricSample> ServerStatsSnapshot() const
      DKB_EXCLUDES(connections_mu_);

  /// One row of sys.wal: live write-ahead-log state. `enabled` is false
  /// (and the rest zero) without a wal_dir.
  struct WalInfo {
    bool enabled = false;
    std::string path;
    uint64_t last_lsn = 0;
    int64_t appends = 0;
    int64_t fsyncs = 0;
    bool fsync = true;
    bool group_commit = true;
  };
  WalInfo WalSnapshot() const;

  /// One row of sys.checkpoints: the durable checkpoint in wal_dir (peeked
  /// from disk; `exists` false when none was written yet or no wal_dir).
  struct CheckpointStat {
    bool exists = false;
    std::string path;
    uint64_t last_lsn = 0;
    uint64_t epoch = 0;
  };
  CheckpointStat CheckpointSnapshot() const;

  /// Rows reclaimed by the MVCC vacuum thread since startup.
  int64_t vacuumed_rows() const {
    return vacuumed_rows_.load(std::memory_order_relaxed);
  }

  Database& db() { return db_; }
  km::Workspace& workspace() { return workspace_; }
  km::StoredDkb& stored() { return *stored_; }
  const QueryCache& query_cache() const { return cache_; }
  /// The always-on query flight recorder behind sys.query_log and the
  /// slow-query log.
  FlightRecorder& recorder() { return recorder_; }
  const TestbedOptions& options() const { return options_; }

 private:
  friend class Session;

  explicit Testbed(TestbedOptions options);

  /// Predicates whose programs must be invalidated when `rules` are added.
  static std::set<std::string> HeadsOf(
      const std::vector<datalog::Rule>& rules);

  /// The compile-then-evaluate pipeline shared by Testbed::Query (against
  /// the testbed's own state, under the writer lock) and Session::Query
  /// (against the session's private snapshot, with no lock at all).
  static Result<QueryOutcome> QueryImpl(Database* db,
                                        km::Workspace* workspace,
                                        km::StoredDkb* stored,
                                        QueryCache* cache,
                                        const datalog::Atom& goal,
                                        const QueryOptions& options,
                                        FlightRecorder* recorder,
                                        int64_t session_id);
  static Result<km::CompiledQuery> CompileImpl(km::Workspace* workspace,
                                               km::StoredDkb* stored,
                                               const datalog::Atom& goal,
                                               const QueryOptions& options,
                                               km::CompilationStats* stats,
                                               trace::TraceSpan* span = nullptr,
                                               int64_t query_id = 0);

  /// Commits the in-flight write batch: advance under the writer lock so
  /// session pins (shared lock) always pair an epoch with the state it
  /// describes. Rows stamped during the batch carried write_epoch() ==
  /// committed()+1 and become visible exactly here.
  void BumpEpoch() { epochs_.Advance(); }

  /// Appends one redo record under the writer lock; returns its LSN, or 0
  /// when no WAL is configured or the record is itself being replayed.
  /// Callers release the lock, then WaitWal(lsn) — so the next writer can
  /// append into the same group-commit fsync batch while this one waits.
  Result<uint64_t> LogWal(WalRecordKind kind, std::string_view payload)
      DKB_REQUIRES(mu_);
  Status WaitWal(uint64_t lsn) DKB_EXCLUDES(mu_);

  /// Recovery: decodes one WAL record and re-drives the matching public
  /// operation. Operation errors are swallowed — replay of a deterministic
  /// log converges to the pre-crash state even through ops that failed.
  Status ApplyWalRecord(WalRecordKind kind, std::string_view payload);

  /// Create() with wal_dir: load checkpoint (or initialize fresh), open the
  /// WAL, replay the tail.
  Status RecoverFromDisk();

  /// Reads `path` into this (empty) testbed: tables through the catalog,
  /// stored-DKB state, workspace rules.
  Result<CheckpointInfo> LoadCheckpointInternal(const std::string& path);

  /// Writes the current state to `path`. Caller holds mu_ (shared is
  /// enough: writers are excluded while the image is cut).
  Status WriteCheckpointTo(const std::string& path);

  void StartVacuum();
  void StopVacuum();
  void VacuumLoop();
  void VacuumPass() DKB_EXCLUDES(mu_, sessions_mu_);

  /// Session registry behind sys.sessions. Sessions register on open and
  /// unregister in their destructor; the registry mutex is independent of
  /// mu_ so sys-view providers never contend with running queries.
  int64_t RegisterSession(Session* session) DKB_EXCLUDES(sessions_mu_);
  void UnregisterSession(int64_t session_id) DKB_EXCLUDES(sessions_mu_);

  TestbedOptions options_;
  /// Reader-writer protocol: sessions clone under shared locks; every
  /// mutating testbed operation (including Query, which creates and drops
  /// LFP temp tables in db_) holds the lock exclusively. The protected
  /// state (db_, workspace_, stored_, cache_, recorder_) is not annotated
  /// GUARDED_BY because the public accessors below deliberately hand out
  /// references for single-threaded use — the protocol, documented in
  /// DESIGN.md "Concurrency invariants", is what keeps concurrent sessions
  /// safe, and the annotated Session/Testbed entry points enforce it.
  ///
  /// Lock order: mu_ before sessions_mu_ (Query, holding mu_, may resolve
  /// sys.sessions, whose provider takes sessions_mu_). The converse never
  /// happens: registry operations touch nothing under mu_.
  mutable SharedMutex mu_ DKB_ACQUIRED_BEFORE(sessions_mu_);
  /// MVCC epoch counter; stored tables stamp row visibility from it (the
  /// catalog attaches it to every non-temporary table it creates).
  EpochSource epochs_;
  Database db_;
  km::Workspace workspace_;
  std::unique_ptr<km::StoredDkb> stored_;
  QueryCache cache_;
  FlightRecorder recorder_;
  /// Guards the connections-source hook only. A sys.connections scan may
  /// run under mu_ (queries resolve virtual tables), so the order is mu_
  /// before connections_mu_; the source callback must therefore never call
  /// back into Testbed entry points that take mu_.
  mutable Mutex connections_mu_;
  ConnectionsSource connections_source_ DKB_GUARDED_BY(connections_mu_);
  ServerStatsSource server_stats_source_ DKB_GUARDED_BY(connections_mu_);

  /// Guards the open-session registry only; independent of mu_ so
  /// sys.sessions never contends with running queries.
  mutable Mutex sessions_mu_;
  std::atomic<int64_t> next_session_id_{1};
  std::map<int64_t, Session*> sessions_ DKB_GUARDED_BY(sessions_mu_);

  /// Durability (empty/null without TestbedOptions::wal_dir). wal_ is set
  /// once during Create and never reassigned, so lock-free reads after
  /// construction are safe; Append calls are serialized by mu_.
  std::string wal_path_;
  std::string ckpt_path_;
  std::unique_ptr<Wal> wal_;
  /// True while Create replays the log: replayed operations re-enter the
  /// public write paths and must not re-log themselves.
  std::atomic<bool> wal_replaying_{false};

  /// Background MVCC reclaimer: frees row versions no pinned session can
  /// see. Takes mu_ shared (Table::Vacuum must exclude writers) and
  /// sessions_mu_ (pin scan) but never blocks session queries, which run
  /// lock-free.
  std::thread vacuum_thread_;
  mutable Mutex vacuum_mu_;
  CondVar vacuum_cv_;
  bool vacuum_stop_ DKB_GUARDED_BY(vacuum_mu_) = false;
  std::atomic<int64_t> vacuumed_rows_{0};
};

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_TESTBED_H_
