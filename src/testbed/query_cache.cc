#include "testbed/query_cache.h"

#include <memory>
#include <utility>

namespace dkb::testbed {

std::string QueryCache::MakeKey(const datalog::Atom& goal, bool use_magic,
                                bool adaptive_magic) {
  if (adaptive_magic) return goal.ToString() + "#adaptive";
  return goal.ToString() + (use_magic ? "#magic" : "#plain");
}

std::shared_ptr<const km::CompiledQuery> QueryCache::Lookup(
    const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second.compiled;
}

void QueryCache::Insert(const std::string& key, km::CompiledQuery compiled,
                        std::set<std::string> dependencies) {
  auto program =
      std::make_shared<const km::CompiledQuery>(std::move(compiled));
  MutexLock lock(mu_);
  entries_[key] = Entry{std::move(program), std::move(dependencies)};
}

void QueryCache::InvalidateOn(const std::set<std::string>& updated_preds) {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool hit = false;
    for (const std::string& p : updated_preds) {
      if (it->second.dependencies.count(p) > 0) {
        hit = true;
        break;
      }
    }
    if (hit) {
      ++stats_.invalidated;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

}  // namespace dkb::testbed
