#ifndef DKB_TESTBED_SYS_VIEWS_H_
#define DKB_TESTBED_SYS_VIEWS_H_

#include <string>
#include <vector>

#include "rdbms/database.h"

namespace dkb::testbed {

class Testbed;

/// Name, schema, and one-line description of a system view (the `\sys`
/// REPL listing and the schema golden test read these).
struct SystemViewDef {
  std::string name;
  Schema schema;
  std::string description;
};

/// The five sys.* views, in a fixed order:
///   sys.query_log       flight-recorder ring of completed queries
///   sys.lfp_iterations  per-SCC-node per-iteration delta cardinalities
///   sys.metrics         live snapshot of the global metrics registry
///   sys.sessions        open concurrent sessions and snapshot staleness
///   sys.settings        effective testbed/query configuration
const std::vector<SystemViewDef>& SystemViewDefs();

/// Registers every sys.* view on `db`'s catalog as a lazily-materialized
/// virtual table backed by `testbed`'s flight recorder, session registry,
/// options, and the process-wide metrics registry. Each SELECT sees a fresh
/// snapshot; the views join and filter like ordinary tables and reject all
/// writes. `testbed` must outlive the registrations.
Status RegisterSystemViews(Database* db, Testbed* testbed);

}  // namespace dkb::testbed

#endif  // DKB_TESTBED_SYS_VIEWS_H_
