#include "magic/magic_sets.h"

#include <deque>
#include <map>

#include "magic/adornment.h"

namespace dkb::magic {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

/// Arguments of `atom` at the 'b' positions of `a`.
std::vector<Term> BoundArgs(const Atom& atom, const Adornment& a) {
  std::vector<Term> out;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 'b') out.push_back(atom.args[i]);
  }
  return out;
}

void AddVars(const Atom& atom, std::set<std::string>* vars) {
  for (const Term& t : atom.args) {
    if (t.is_variable()) vars->insert(t.var);
  }
}

}  // namespace

namespace {

/// Builds the supplementary-variant rewrite of one guarded, multi-atom
/// adorned rule. Returns false (emitting nothing) when a supplementary
/// predicate would be nullary; the caller then falls back to the
/// generalized scheme for this rule.
///
/// `adorned_body` holds the body atoms already rewritten onto adorned
/// names; `body_adornments[i]` is the adornment of body atom i when it is a
/// guarded derived atom (empty string otherwise); `original` gives access
/// to the pre-rewrite predicate names for magic naming.
bool EmitSupplementaryRule(const Rule& original, const Atom& magic_guard,
                           const std::string& adorned_head,
                           const std::vector<Atom>& adorned_body,
                           const std::vector<Adornment>& body_adornments,
                           int rule_counter, MagicRewrite* out) {
  const size_t n = adorned_body.size();
  // Variables appearing in atoms i..n-1 or the head (computed backward).
  std::vector<std::set<std::string>> needed_after(n + 1);
  for (const Term& t : original.head.args) {
    if (t.is_variable()) needed_after[n].insert(t.var);
  }
  for (size_t i = n; i-- > 0;) {
    needed_after[i] = needed_after[i + 1];
    for (const Term& t : adorned_body[i].args) {
      if (t.is_variable()) needed_after[i].insert(t.var);
    }
  }

  std::set<std::string> bound_so_far;
  AddVars(magic_guard, &bound_so_far);

  std::vector<Rule> pending;  // only committed on success
  std::set<std::string> pending_sups;
  Atom prev = magic_guard;  // sup_{i-1}; the guard plays sup_0
  for (size_t i = 0; i < n; ++i) {
    // Magic rule for a guarded derived atom: m_q(bound args) :- sup_{i-1}.
    if (!body_adornments[i].empty()) {
      Rule magic_rule;
      magic_rule.head.predicate =
          MagicName(original.body[i].predicate, body_adornments[i]);
      magic_rule.head.args =
          BoundArgs(original.body[i], body_adornments[i]);
      magic_rule.body = {prev};
      pending.push_back(std::move(magic_rule));
    }
    AddVars(adorned_body[i], &bound_so_far);
    if (i + 1 == n) {
      // Modified rule: head :- sup_{n-1}, B'_n.
      Rule modified;
      modified.head.predicate = adorned_head;
      modified.head.args = original.head.args;
      modified.body = {prev, adorned_body[i]};
      pending.push_back(std::move(modified));
      break;
    }
    // Materialize sup_i over the variables still needed downstream.
    std::vector<std::string> keep;
    for (const std::string& v : bound_so_far) {
      if (needed_after[i + 1].count(v) > 0) keep.push_back(v);
    }
    if (keep.empty()) return false;  // nullary sup: fall back
    Atom sup;
    sup.predicate = "sup" + std::to_string(rule_counter) + "_" +
                    std::to_string(i + 1) + "__" + adorned_head;
    for (const std::string& v : keep) sup.args.push_back(Term::Variable(v));
    Rule sup_rule;
    sup_rule.head = sup;
    sup_rule.body = {prev, adorned_body[i]};
    pending.push_back(std::move(sup_rule));
    pending_sups.insert(sup.predicate);
    prev = std::move(sup);
  }

  for (Rule& rule : pending) out->rules.push_back(std::move(rule));
  out->supplementary_predicates.insert(pending_sups.begin(),
                                       pending_sups.end());
  return true;
}

}  // namespace

Result<MagicRewrite> ApplyGeneralizedMagicSets(
    const std::vector<Rule>& rules, const Atom& query,
    const std::set<std::string>& derived, MagicVariant variant,
    const AdornmentFilter* filter) {
  MagicRewrite out;

  // Identity cases: base-predicate query, no constant in the query to pass
  // sideways, a query adornment outside the analyzer-supplied filter, or
  // stratified negation in the rule set (magic sets with negation requires
  // the stratification-preserving variants, which this testbed does not
  // implement — documented in DESIGN.md).
  Adornment query_adornment = AdornAtom(query, /*bound_vars=*/{});
  bool has_negation = false;
  for (const Rule& rule : rules) {
    for (const Atom& atom : rule.body) {
      if (atom.negated) has_negation = true;
    }
  }
  if (derived.count(query.predicate) == 0 || !HasBound(query_adornment) ||
      has_negation ||
      (filter != nullptr &&
       !filter->Allows(query.predicate, query_adornment))) {
    out.rules = rules;
    out.adorned_query = query;
    out.rewritten = false;
    return out;
  }

  std::map<std::string, std::vector<const Rule*>> rules_by_head;
  for (const Rule& rule : rules) {
    rules_by_head[rule.head.predicate].push_back(&rule);
  }

  // Adornment propagation worklist.
  std::set<std::pair<std::string, Adornment>> done;
  std::deque<std::pair<std::string, Adornment>> worklist;
  worklist.emplace_back(query.predicate, query_adornment);
  done.insert({query.predicate, query_adornment});
  int supplementary_rule_counter = 0;

  while (!worklist.empty()) {
    auto [pred, adornment] = worklist.front();
    worklist.pop_front();
    std::string adorned_head = AdornedName(pred, adornment);
    out.adorned_predicates.insert(adorned_head);
    const bool guarded = HasBound(adornment);
    if (guarded) out.magic_predicates.insert(MagicName(pred, adornment));

    auto rules_it = rules_by_head.find(pred);
    if (rules_it == rules_by_head.end()) continue;  // caught by typecheck
    for (const Rule* rule : rules_it->second) {
      // Bound variables: head variables at bound positions.
      std::set<std::string> bound_vars;
      for (size_t i = 0; i < adornment.size(); ++i) {
        if (adornment[i] == 'b' && rule->head.args[i].is_variable()) {
          bound_vars.insert(rule->head.args[i].var);
        }
      }

      Atom magic_guard;
      if (guarded) {
        magic_guard.predicate = MagicName(pred, adornment);
        magic_guard.args = BoundArgs(rule->head, adornment);
      }

      // First pass: adorn the body left-to-right, recording per-atom
      // adornments (empty for base or unguarded atoms) and pushing newly
      // discovered adorned predicates onto the worklist.
      std::vector<Atom> adorned_body;
      std::vector<Adornment> body_adornments;  // "" when no magic guard
      bool has_builtin = false;
      for (const Atom& atom : rule->body) {
        if (atom.is_builtin()) {
          // Comparison filters pass through untouched and bind nothing.
          adorned_body.push_back(atom);
          body_adornments.emplace_back();
          has_builtin = true;
          continue;
        }
        if (derived.count(atom.predicate) == 0) {
          adorned_body.push_back(atom);
          body_adornments.emplace_back();
          AddVars(atom, &bound_vars);
          continue;
        }
        Adornment body_ad = AdornAtom(atom, bound_vars);
        // Unreachable adornments (per the static analyzer's dataflow) are
        // never expanded: no worklist visit and no magic rule for them.
        const bool expand =
            filter == nullptr || filter->Allows(atom.predicate, body_ad);
        if (expand && done.insert({atom.predicate, body_ad}).second) {
          worklist.emplace_back(atom.predicate, body_ad);
        }
        Atom adorned_atom;
        adorned_atom.predicate = AdornedName(atom.predicate, body_ad);
        adorned_atom.args = atom.args;
        adorned_body.push_back(std::move(adorned_atom));
        body_adornments.push_back(expand && HasBound(body_ad)
                                      ? body_ad
                                      : Adornment());
        AddVars(atom, &bound_vars);
      }

      // Supplementary variant: guarded rules with several body atoms share
      // their prefix joins through sup_i predicates. Rules with comparison
      // filters keep the generalized scheme (a filter's variables may be
      // bound only after its body position, which the staged sup chain
      // cannot express).
      if (variant == MagicVariant::kSupplementary && guarded &&
          !has_builtin && rule->body.size() > 1) {
        ++supplementary_rule_counter;
        if (EmitSupplementaryRule(*rule, magic_guard, adorned_head,
                                  adorned_body, body_adornments,
                                  supplementary_rule_counter, &out)) {
          continue;
        }
      }

      // Generalized scheme: one magic rule per guarded derived atom, each
      // re-joining the guard with the rewritten prefix. Comparison filters
      // in the prefix are kept only when their variables are bound within
      // the magic rule (dropping a filter merely over-approximates the
      // magic set, which is sound).
      auto magic_prefix = [&](size_t upto) {
        std::vector<Atom> prefix;
        std::set<std::string> prefix_vars;
        if (guarded) AddVars(magic_guard, &prefix_vars);
        for (size_t j = 0; j < upto; ++j) {
          if (adorned_body[j].is_builtin()) continue;
          prefix.push_back(adorned_body[j]);
          AddVars(adorned_body[j], &prefix_vars);
        }
        for (size_t j = 0; j < upto; ++j) {
          if (!adorned_body[j].is_builtin()) continue;
          bool covered = true;
          for (const Term& t : adorned_body[j].args) {
            if (t.is_variable() && prefix_vars.count(t.var) == 0) {
              covered = false;
            }
          }
          if (covered) prefix.push_back(adorned_body[j]);
        }
        return prefix;
      };
      for (size_t i = 0; i < adorned_body.size(); ++i) {
        if (body_adornments[i].empty()) continue;
        Rule magic_rule;
        magic_rule.head.predicate =
            MagicName(rule->body[i].predicate, body_adornments[i]);
        magic_rule.head.args = BoundArgs(rule->body[i], body_adornments[i]);
        if (guarded) magic_rule.body.push_back(magic_guard);
        std::vector<Atom> prefix = magic_prefix(i);
        magic_rule.body.insert(magic_rule.body.end(), prefix.begin(),
                               prefix.end());
        out.rules.push_back(std::move(magic_rule));
      }

      // Modified rule: p^a(args) :- guard, rewritten body.
      Rule modified;
      modified.head.predicate = adorned_head;
      modified.head.args = rule->head.args;
      if (guarded) modified.body.push_back(magic_guard);
      modified.body.insert(modified.body.end(), adorned_body.begin(),
                           adorned_body.end());
      out.rules.push_back(std::move(modified));
    }
  }

  // Magic seed: m_q^a0(query constants).
  Rule seed;
  seed.head.predicate = MagicName(query.predicate, query_adornment);
  seed.head.args = BoundArgs(query, query_adornment);
  out.rules.push_back(std::move(seed));

  out.adorned_query.predicate =
      AdornedName(query.predicate, query_adornment);
  out.adorned_query.args = query.args;
  out.rewritten = true;
  return out;
}

}  // namespace dkb::magic
