#include "magic/adornment.h"

#include "common/str_util.h"

namespace dkb::magic {

Adornment AdornAtom(const datalog::Atom& atom,
                    const std::set<std::string>& bound_vars) {
  Adornment a;
  a.reserve(atom.args.size());
  for (const datalog::Term& t : atom.args) {
    if (t.is_constant() || bound_vars.count(t.var) > 0) {
      a += 'b';
    } else {
      a += 'f';
    }
  }
  return a;
}

bool HasBound(const Adornment& a) {
  return a.find('b') != std::string::npos;
}

std::string AdornedName(const std::string& pred, const Adornment& a) {
  return pred + "__" + a;
}

std::string MagicName(const std::string& pred, const Adornment& a) {
  return "m_" + AdornedName(pred, a);
}

bool IsMagicPredicateName(const std::string& pred) {
  return StartsWith(pred, "m_");
}

}  // namespace dkb::magic
