#ifndef DKB_MAGIC_ADORNMENT_H_
#define DKB_MAGIC_ADORNMENT_H_

#include <set>
#include <string>

#include "datalog/ast.h"

namespace dkb::magic {

/// An adornment is a string over {'b','f'}, one character per argument
/// position: 'b' = bound at call time, 'f' = free.
using Adornment = std::string;

/// Adornment of an atom given the set of currently-bound variables:
/// constants and bound variables are 'b', the rest 'f'.
Adornment AdornAtom(const datalog::Atom& atom,
                    const std::set<std::string>& bound_vars);

/// True if `a` contains at least one 'b'.
bool HasBound(const Adornment& a);

/// Name of the adorned version of `pred`, e.g. anc + "bf" -> "anc__bf".
std::string AdornedName(const std::string& pred, const Adornment& a);

/// Name of the magic predicate for `pred` adorned with `a`,
/// e.g. "m_anc__bf".
std::string MagicName(const std::string& pred, const Adornment& a);

/// True if `pred` looks like a magic predicate (names the Fig 14 bench uses
/// to attribute clique time to the magic vs modified LFP computations).
bool IsMagicPredicateName(const std::string& pred);

}  // namespace dkb::magic

#endif  // DKB_MAGIC_ADORNMENT_H_
