#ifndef DKB_MAGIC_MAGIC_SETS_H_
#define DKB_MAGIC_MAGIC_SETS_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "magic/adornment.h"

namespace dkb::magic {

/// Restricts the rewrite to a precomputed achievable adornment set — the
/// static analyzer's adornment-dataflow result (km/analysis). When given,
/// the rewrite refuses to expand any (predicate, adornment) pair outside
/// `allowed`: no worklist visit, no magic rules, no modified rules for it.
///
/// Invariant: `allowed` must be a superset of the adornments reachable from
/// the query over the rewritten rule set (the analyzer guarantees this by
/// running the identical left-to-right SIP dataflow over the same rules);
/// otherwise the output program would reference undefined adorned
/// predicates.
struct AdornmentFilter {
  std::set<std::pair<std::string, Adornment>> allowed;

  bool Allows(const std::string& pred, const Adornment& a) const {
    return allowed.count({pred, a}) > 0;
  }
};

/// Which information-passing rewrite to apply (paper §2.5 lists both).
enum class MagicVariant {
  kGeneralized,    // magic rules re-join the rule prefix each time
  kSupplementary,  // prefix joins are materialized once in sup_i predicates
                   // shared by the magic rules and the modified rule
};

/// Output of the generalized magic sets rewrite (Beeri & Ramakrishnan; the
/// paper's Optimizer, §3.2.5).
struct MagicRewrite {
  /// Adorned ("modified") rules, magic rules, and the magic seed fact.
  std::vector<datalog::Rule> rules;
  /// The query rewritten onto the adorned predicate.
  datalog::Atom adorned_query;
  /// False when the rewrite is the identity (no bound argument in the query
  /// or query over a base predicate): `rules` then holds the input rules
  /// and `adorned_query` the input query.
  bool rewritten = false;
  /// Predicates introduced as magic predicates / adorned (modified-rule)
  /// predicates; used to attribute evaluation time (paper Fig 14).
  std::set<std::string> magic_predicates;
  std::set<std::string> adorned_predicates;
  /// Materialized prefix-join predicates (supplementary variant only).
  std::set<std::string> supplementary_predicates;
};

/// Applies the generalized magic sets transformation with a left-to-right
/// sideways-information-passing strategy (full SIPS: every evaluated body
/// atom binds all of its variables for the atoms to its right).
///
/// `derived` is the set of predicates defined by `rules`; every other
/// predicate in a body is a base predicate. Body atoms whose adornment is
/// all-free map to an adorned predicate with no magic guard (their full
/// relation is computed, as in the standard transformation).
///
/// With MagicVariant::kSupplementary, guarded rules with more than one body
/// atom additionally materialize supplementary predicates:
///
///   sup_r_1(V1) :- m_p(..), B1'.        magic rule for B2: m_q(..) :- sup_r_1.
///   sup_r_i(Vi) :- sup_r_{i-1}, Bi'.    ...
///   p'(..)      :- sup_r_{n-1}, Bn'.
///
/// where Vi keeps every variable bound so far that is still needed by a
/// later atom or the head. If a supplementary predicate would be nullary
/// the rewrite falls back to the generalized scheme for that rule.
///
/// `filter`, when non-null, bounds the adornments the rewrite may generate
/// (see AdornmentFilter); a query whose own adornment is filtered out
/// degrades to the identity rewrite.
Result<MagicRewrite> ApplyGeneralizedMagicSets(
    const std::vector<datalog::Rule>& rules, const datalog::Atom& query,
    const std::set<std::string>& derived,
    MagicVariant variant = MagicVariant::kGeneralized,
    const AdornmentFilter* filter = nullptr);

}  // namespace dkb::magic

#endif  // DKB_MAGIC_MAGIC_SETS_H_
