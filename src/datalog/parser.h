#ifndef DKB_DATALOG_PARSER_H_
#define DKB_DATALOG_PARSER_H_

#include <string>

#include "common/status.h"
#include "datalog/ast.h"

namespace dkb::datalog {

/// Parses a Datalog program:
///
///   % comment (to end of line)
///   ancestor(X, Y) :- parent(X, Y).
///   ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
///   parent(john, mary).
///   ?- ancestor(john, W).
///
/// Variables start with an upper-case letter or '_'; lower-case identifiers
/// and quoted strings are string constants; digit sequences are integer
/// constants. Facts must be ground (no variables).
Result<Program> ParseProgram(const std::string& input);

/// Parses a single clause ("p(X) :- q(X)." or "p(a)."). The trailing '.' is
/// optional for this entry point.
Result<Rule> ParseRule(const std::string& input);

/// Parses a single goal atom ("ancestor(john, W)"), with optional leading
/// "?-" and trailing ".".
Result<Atom> ParseQuery(const std::string& input);

}  // namespace dkb::datalog

#endif  // DKB_DATALOG_PARSER_H_
