#include "datalog/parser.h"

#include <cctype>
#include <cstdint>
#include <limits>

namespace dkb::datalog {

namespace {

/// Hand-rolled scanner/parser for the Horn clause syntax. Small enough that
/// a token stream abstraction would add more weight than it removes.
class ClauseParser {
 public:
  explicit ClauseParser(const std::string& input) : in_(input) {}

  Result<Program> ParseProgram() {
    Program program;
    SkipSpace();
    while (!AtEnd()) {
      size_t clause_begin = pos_;
      if (Match("?-")) {
        DKB_ASSIGN_OR_RETURN(Atom goal, ParseAtom());
        DKB_RETURN_IF_ERROR(ExpectChar('.'));
        program.queries.push_back(std::move(goal));
      } else {
        DKB_ASSIGN_OR_RETURN(Rule rule, ParseClause());
        DKB_RETURN_IF_ERROR(ExpectChar('.'));
        rule.span = SpanFrom(clause_begin);
        DKB_RETURN_IF_ERROR(Classify(std::move(rule), &program));
      }
      SkipSpace();
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    SkipSpace();
    size_t clause_begin = pos_;
    DKB_ASSIGN_OR_RETURN(Rule rule, ParseClause());
    MatchChar('.');
    rule.span = SpanFrom(clause_begin);
    SkipSpace();
    if (!AtEnd()) return Error("unexpected trailing input");
    return rule;
  }

  Result<Atom> ParseSingleQuery() {
    SkipSpace();
    Match("?-");
    DKB_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    MatchChar('.');
    SkipSpace();
    if (!AtEnd()) return Error("unexpected trailing input");
    return atom;
  }

 private:
  static Status Classify(Rule rule, Program* program) {
    if (rule.body.empty()) {
      for (const Term& t : rule.head.args) {
        if (t.is_variable()) {
          return Status::SemanticError("fact " + rule.head.ToString() +
                                       " contains variable " + t.var);
        }
      }
      program->facts.push_back(std::move(rule));
    } else {
      program->rules.push_back(std::move(rule));
    }
    return Status::OK();
  }

  Result<Rule> ParseClause() {
    Rule rule;
    DKB_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (rule.head.negated) {
      return Error("rule head cannot be negated");
    }
    SkipSpace();
    if (Match(":-")) {
      do {
        DKB_ASSIGN_OR_RETURN(Atom atom, ParseBodyLiteral());
        rule.body.push_back(std::move(atom));
        SkipSpace();
      } while (MatchChar(','));
    }
    return rule;
  }

  /// Body literal: an atom (optionally negated with "not " or "\+") or an
  /// infix built-in comparison ("X < Y", "Cost != 0").
  Result<Atom> ParseBodyLiteral() {
    SkipSpace();
    bool negated = false;
    if (Match("\\+")) {
      negated = true;
    } else if (in_.compare(pos_, 3, "not") == 0 && pos_ + 3 < in_.size() &&
               std::isspace(static_cast<unsigned char>(in_[pos_ + 3]))) {
      pos_ += 3;
      negated = true;
    }
    if (!negated) {
      // Try "term OP term" first; fall back to a regular atom.
      size_t save = pos_;
      Result<Atom> builtin = TryParseBuiltin();
      if (builtin.ok()) return builtin;
      pos_ = save;
    }
    DKB_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (atom.is_builtin()) {
      return Error("built-in comparisons cannot be negated or used as "
                   "predicates");
    }
    atom.negated = negated;
    return atom;
  }

  /// "term OP term" with OP in {<=, >=, !=, \=, <, >, =}. Fails (without
  /// consuming definitively; caller rewinds) when no operator follows the
  /// first term.
  Result<Atom> TryParseBuiltin() {
    DKB_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    SkipSpace();
    const char* op = nullptr;
    if (Match("<=")) {
      op = "<=";
    } else if (Match(">=")) {
      op = ">=";
    } else if (Match("!=") || Match("\\=")) {
      op = "!=";
    } else if (!AtEnd() && in_[pos_] == '<') {
      ++pos_;
      op = "<";
    } else if (!AtEnd() && in_[pos_] == '>') {
      ++pos_;
      op = ">";
    } else if (!AtEnd() && in_[pos_] == '=') {
      ++pos_;
      op = "=";
    } else {
      return Error("not a built-in comparison");
    }
    DKB_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    Atom atom;
    atom.predicate = op;
    atom.args = {std::move(lhs), std::move(rhs)};
    return atom;
  }

  Result<Atom> ParseAtom() {
    SkipSpace();
    Atom atom;
    DKB_ASSIGN_OR_RETURN(atom.predicate, ParsePredicateName());
    DKB_RETURN_IF_ERROR(ExpectChar('('));
    SkipSpace();
    if (MatchChar(')')) return atom;  // 0-ary predicate
    do {
      DKB_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.args.push_back(std::move(term));
      SkipSpace();
    } while (MatchChar(','));
    DKB_RETURN_IF_ERROR(ExpectChar(')'));
    return atom;
  }

  Result<std::string> ParsePredicateName() {
    SkipSpace();
    if (AtEnd() || (!std::isalpha(Byte()) && Byte() != '_')) {
      return Error("expected predicate name");
    }
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(Byte()) || Byte() == '_')) ++pos_;
    return in_.substr(start, pos_ - start);
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    if (AtEnd()) return Error("expected term");
    char c = in_[pos_];
    if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(Byte()) || Byte() == '_')) ++pos_;
      return Term::Variable(in_.substr(start, pos_ - start));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < in_.size() &&
         std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
      // Accumulate with an overflow check instead of std::stoll: the
      // library is no-throw by contract, and stoll throws on out-of-range
      // literals.
      const bool negative = c == '-';
      if (negative) ++pos_;
      const uint64_t max_magnitude =
          static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) +
          (negative ? 1 : 0);
      uint64_t magnitude = 0;
      while (!AtEnd() && std::isdigit(Byte())) {
        const uint64_t digit = Byte() - '0';
        if (magnitude > max_magnitude / 10 ||
            (magnitude == max_magnitude / 10 &&
             digit > max_magnitude % 10)) {
          return Error("integer literal out of range");
        }
        magnitude = magnitude * 10 + digit;
        ++pos_;
      }
      const int64_t value =
          negative ? static_cast<int64_t>(-magnitude)
                   : static_cast<int64_t>(magnitude);
      return Term::Constant(Value(value));
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++pos_;
      std::string text;
      while (!AtEnd() && in_[pos_] != quote) {
        if (in_[pos_] == '\\' && pos_ + 1 < in_.size()) ++pos_;
        text += in_[pos_++];
      }
      if (AtEnd()) return Error("unterminated quoted constant");
      ++pos_;  // closing quote
      return Term::Constant(Value(std::move(text)));
    }
    if (std::islower(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(Byte()) || Byte() == '_')) ++pos_;
      return Term::Constant(Value(in_.substr(start, pos_ - start)));
    }
    return Error(std::string("unexpected character '") + c + "' in term");
  }

  void SkipSpace() {
    while (!AtEnd()) {
      if (std::isspace(Byte())) {
        ++pos_;
      } else if (in_[pos_] == '%') {
        while (!AtEnd() && in_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  unsigned char Byte() const { return static_cast<unsigned char>(in_[pos_]); }

  bool Match(const char* s) {
    SkipSpace();
    size_t len = std::char_traits<char>::length(s);
    if (in_.compare(pos_, len, s) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool MatchChar(char c) {
    SkipSpace();
    if (!AtEnd() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectChar(char c) {
    if (!MatchChar(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  /// Span from `begin` to the current position; line computed on demand
  /// (program texts are small, so the rescan is cheap).
  SourceSpan SpanFrom(size_t begin) const {
    SourceSpan span;
    span.begin = begin;
    span.end = pos_;
    span.line = 1;
    for (size_t i = 0; i < begin && i < in_.size(); ++i) {
      if (in_[i] == '\n') ++span.line;
    }
    return span;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& input) {
  return ClauseParser(input).ParseProgram();
}

Result<Rule> ParseRule(const std::string& input) {
  return ClauseParser(input).ParseSingleRule();
}

Result<Atom> ParseQuery(const std::string& input) {
  return ClauseParser(input).ParseSingleQuery();
}

}  // namespace dkb::datalog
