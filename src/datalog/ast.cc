#include "datalog/ast.h"

#include <cctype>

namespace dkb::datalog {

namespace {

/// True if `s` can be printed as a bare Datalog symbol (lower-case start,
/// alphanumeric/underscore body).
bool IsBareSymbol(const std::string& s) {
  if (s.empty()) return false;
  if (!std::islower(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace

std::string Term::ToString() const {
  if (is_variable()) return var;
  if (value.is_int()) return std::to_string(value.as_int());
  if (value.is_null()) return "null";
  const std::string& s = value.as_string();
  if (IsBareSymbol(s)) return s;
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else out += c;
  }
  out += "'";
  return out;
}

bool IsBuiltinComparison(const std::string& predicate) {
  return predicate == "<" || predicate == "<=" || predicate == ">" ||
         predicate == ">=" || predicate == "=" || predicate == "!=";
}

std::string Atom::ToString() const {
  if (is_builtin() && args.size() == 2) {
    return args[0].ToString() + " " + predicate + " " + args[1].ToString();
  }
  std::string out = negated ? "not " + predicate : predicate;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

bool Rule::is_fact() const {
  if (!body.empty()) return false;
  for (const Term& t : head.args) {
    if (t.is_variable()) return false;
  }
  return true;
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

}  // namespace dkb::datalog
