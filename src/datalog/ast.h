#ifndef DKB_DATALOG_AST_H_
#define DKB_DATALOG_AST_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace dkb::datalog {

/// A term in an atomic formula: a variable or a constant.
///
/// Following Prolog convention, variables start with an upper-case letter or
/// '_'; everything else is a constant. The testbed handles pure,
/// function-free Horn clauses, so there are no compound terms.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kConstant;
  std::string var;  // variable name when kind == kVariable
  Value value;      // constant value when kind == kConstant

  static Term Variable(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Constant(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.value = std::move(v);
    return t;
  }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  bool operator==(const Term& other) const {
    if (kind != other.kind) return false;
    return is_variable() ? var == other.var : value == other.value;
  }

  /// Datalog rendering: variable name, bare symbol, integer, or 'quoted'.
  std::string ToString() const;
};

/// True for the built-in comparison predicates usable in rule bodies:
/// "<", "<=", ">", ">=", "=", "!=".
bool IsBuiltinComparison(const std::string& predicate);

/// A predicate applied to terms: p(X, 'a', 3). In rule bodies an atom may
/// be negated ("not p(X)"); heads and queries are always positive.
/// Negation is interpreted under stratified semantics (no recursion through
/// negation; checked by the evaluation-order builder).
///
/// Bodies may also contain built-in comparison atoms, written infix
/// ("X < Y", "Z != 3") and stored with the operator as the predicate name.
/// Built-ins are filters: every variable they mention must be bound by a
/// regular positive body atom.
struct Atom {
  std::string predicate;
  std::vector<Term> args;
  bool negated = false;

  size_t arity() const { return args.size(); }

  /// True if this is a built-in comparison filter.
  bool is_builtin() const { return IsBuiltinComparison(predicate); }

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args &&
           negated == other.negated;
  }

  std::string ToString() const;
};

/// Source location of a clause within the program text it was parsed from.
/// Default-constructed (line 0) for rules built programmatically; ignored by
/// structural equality so spans never affect rule identity.
struct SourceSpan {
  int line = 0;        // 1-based line of the clause's first token
  size_t begin = 0;    // byte offset of the first token
  size_t end = 0;      // byte offset one past the final '.'

  bool valid() const { return line > 0; }
};

/// A Horn clause: head :- body. A fact is a clause with an empty body and a
/// variable-free head.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  SourceSpan span;  // where the clause came from; not part of identity

  bool is_fact() const;

  bool operator==(const Rule& other) const {
    return head == other.head && body == other.body;
  }

  /// Renders "head." for facts and "head :- b1, b2." for rules; the parser
  /// accepts this output verbatim (round-trip property).
  std::string ToString() const;
};

/// A parsed D/KB input: rules, facts, and queries (goal atoms).
struct Program {
  std::vector<Rule> rules;   // proper rules (non-empty body)
  std::vector<Rule> facts;   // ground facts
  std::vector<Atom> queries;  // ?- goals
};

}  // namespace dkb::datalog

#endif  // DKB_DATALOG_AST_H_
