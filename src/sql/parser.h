#ifndef DKB_SQL_PARSER_H_
#define DKB_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace dkb::sql {

/// Parses one SQL statement (a trailing ';' is allowed).
Result<StatementPtr> ParseStatement(const std::string& input);

/// Parses a ';'-separated script into a statement list.
Result<std::vector<StatementPtr>> ParseScript(const std::string& input);

/// Recursive-descent parser over the token stream. Exposed as a class so the
/// tests can exercise sub-grammars directly.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseSingleStatement();
  Result<std::vector<StatementPtr>> ParseStatements();

  /// Grammar entry points (public for tests).
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();
  Result<ExprPtr> ParseCondition();

 private:
  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool MatchKeyword(const char* kw);
  bool MatchSymbol(const char* sym);
  Status ExpectKeyword(const char* kw);
  Status ExpectSymbol(const char* sym);
  Status ErrorHere(const std::string& message) const;

  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseDelete();

  Result<std::unique_ptr<SelectCore>> ParseSelectCore();
  Result<SelectItem> ParseSelectItem();
  Result<ExprPtr> ParseAndChain();
  Result<ExprPtr> ParseNotExpr();
  Result<ExprPtr> ParsePrimaryCondition();
  Result<ExprPtr> ParseOperand();
  Result<Value> ParseLiteralValue();
  Result<DataType> ParseType();
  Result<std::string> ParseIdentifier(const char* what);
  /// True when the next token is an aggregate keyword (COUNT/SUM/MIN/MAX)
  /// used as a bare name, i.e. not followed by '('. Such tokens demote to
  /// ordinary lowercase column identifiers (sys.metrics exposes `sum`/`max`).
  bool IsBareAggregateName() const;
  /// `[schema.]name` — a plain identifier or a dotted two-part name, joined
  /// back with '.' (the reserved `sys` schema's views are addressed this
  /// way: `sys.query_log`).
  Result<std::string> ParseTableName(const char* what);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t param_count_ = 0;  // `?` placeholders seen in the current statement
};

}  // namespace dkb::sql

#endif  // DKB_SQL_PARSER_H_
