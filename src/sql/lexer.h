#ifndef DKB_SQL_LEXER_H_
#define DKB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dkb::sql {

enum class TokenType {
  kIdentifier,   // table / column names (also '#'-prefixed temp names)
  kKeyword,      // upper-cased SQL keyword
  kInteger,      // integer literal
  kString,       // 'quoted' string literal, quotes stripped, '' unescaped
  kSymbol,       // punctuation: ( ) , . * = <> != < <= > >= ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // keyword text is upper-cased; identifiers keep case
  int64_t int_value = 0;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; anything identifier-shaped that is not a
/// keyword stays an identifier.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace dkb::sql

#endif  // DKB_SQL_LEXER_H_
