#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace dkb::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "DISTINCT", "FROM",      "WHERE",  "AND",    "OR",
      "NOT",    "INSERT",   "INTO",      "VALUES", "DELETE", "CREATE",
      "DROP",   "TABLE",    "INDEX",     "ON",     "AS",     "UNION",
      "ALL",    "EXCEPT",   "INTERSECT", "ORDER",  "BY",     "ASC",
      "DESC",   "COUNT",    "IN",        "NULL",   "INT",    "INTEGER",
      "VARCHAR", "CHAR",    "ORDERED",   "EXISTS", "IF",     "LIMIT",
      "EXPLAIN", "GROUP",  "SUM",       "MIN",    "MAX",    "HAVING",
      "ANALYZE",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      ++i;  // consume start char (may be '#')
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = AsciiUpper(word);
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      tok.type = TokenType::kInteger;
      tok.text = input.substr(start, i - start);
      tok.int_value = std::stoll(tok.text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += input[i];
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = (i + 1 < n) ? input.substr(i, 2) : std::string();
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
      tok.type = TokenType::kSymbol;
      tok.text = two;
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::string("(),.*=<>;?").find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dkb::sql
