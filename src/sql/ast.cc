#include "sql/ast.h"

namespace dkb::sql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "";
    case AggFn::kCountStar:
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "";
}

std::string InListExpr::ToString() const {
  std::string out = needle->ToString() + " IN (";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToSqlLiteral();
  }
  out += ")";
  return out;
}

}  // namespace dkb::sql
