#ifndef DKB_SQL_AST_H_
#define DKB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/schema.h"

namespace dkb::sql {

// ---------------------------------------------------------------------------
// Expressions (unbound; names are resolved by the binder).
// ---------------------------------------------------------------------------

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kParam,
  kComparison,
  kLogical,
  kNot,
  kInList,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns "=", "<>", ... for `op`.
const char* CompareOpName(CompareOp op);

struct Expr {
  virtual ~Expr() = default;
  explicit Expr(ExprKind kind) : kind(kind) {}
  ExprKind kind;

  /// Renders back to SQL text (used by tests and the code generator).
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string table, std::string column)
      : Expr(ExprKind::kColumnRef),
        table(std::move(table)),
        column(std::move(column)) {}
  std::string table;  // may be empty (unqualified)
  std::string column;
  std::string ToString() const override {
    return table.empty() ? column : table + "." + column;
  }
};

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value(std::move(value)) {}
  Value value;
  std::string ToString() const override { return value.ToSqlLiteral(); }
};

/// `?` placeholder, numbered left-to-right within one statement. Values are
/// supplied at execution time through PreparedStatement::Bind; the binder
/// rejects statements executed with unbound parameters.
struct ParamExpr : Expr {
  explicit ParamExpr(size_t index) : Expr(ExprKind::kParam), index(index) {}
  size_t index;
  std::string ToString() const override { return "?"; }
};

struct ComparisonExpr : Expr {
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kComparison),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  CompareOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  std::string ToString() const override {
    return lhs->ToString() + " " + CompareOpName(op) + " " + rhs->ToString();
  }
};

enum class LogicalOp { kAnd, kOr };

struct LogicalExpr : Expr {
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kLogical),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  LogicalOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  std::string ToString() const override {
    const char* name = (op == LogicalOp::kAnd) ? " AND " : " OR ";
    return "(" + lhs->ToString() + name + rhs->ToString() + ")";
  }
};

struct NotExpr : Expr {
  explicit NotExpr(ExprPtr child)
      : Expr(ExprKind::kNot), child(std::move(child)) {}
  ExprPtr child;
  std::string ToString() const override {
    return "NOT (" + child->ToString() + ")";
  }
};

/// `expr IN (lit, lit, ...)` — used heavily by the Stored DKB Manager's
/// relevant-rule extraction queries.
struct InListExpr : Expr {
  InListExpr(ExprPtr needle, std::vector<Value> values)
      : Expr(ExprKind::kInList),
        needle(std::move(needle)),
        values(std::move(values)) {}
  ExprPtr needle;
  std::vector<Value> values;
  std::string ToString() const override;
};

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

struct TableRef {
  std::string table;
  std::string alias;  // empty => use table name

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

/// Aggregate function applied by a select item (kNone = plain expression).
enum class AggFn { kNone, kCountStar, kCount, kSum, kMin, kMax };

/// Returns "COUNT", "SUM", ... ("" for kNone).
const char* AggFnName(AggFn fn);

struct SelectItem {
  // Exactly one of the following shapes:
  //   star:              SELECT *
  //   agg == kCountStar: SELECT COUNT(*)
  //   agg != kNone:      SELECT SUM(expr) / MIN / MAX / COUNT(expr)
  //   expr:              SELECT a.x AS name
  bool star = false;
  AggFn agg = AggFn::kNone;
  ExprPtr expr;       // aggregate argument when agg != kNone/kCountStar
  std::string alias;  // optional output name
};

struct SelectCore;
struct SelectStmt;

enum class SetOp { kNone, kUnion, kUnionAll, kExcept, kIntersect };

struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  /// GROUP BY expressions (column references). Non-aggregate select items
  /// must be among them.
  std::vector<ExprPtr> group_by;
  /// HAVING condition over the aggregate output columns (by output name or
  /// alias); may be null.
  ExprPtr having;
  // When non-null this core is a parenthesized sub-select and the fields
  // above are unused.
  std::unique_ptr<SelectStmt> sub_select;
};

struct OrderByItem {
  std::string column;  // output column name or 1-based ordinal as digits
  bool ascending = true;
};

/// A chain of select cores combined left-to-right by set operators:
///   cores[0] ops[0] cores[1] ops[1] cores[2] ...
struct SelectStmt {
  std::vector<std::unique_ptr<SelectCore>> cores;
  std::vector<SetOp> ops;  // size == cores.size() - 1
  std::vector<OrderByItem> order_by;
  std::optional<size_t> limit;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kCreateTable,
  kDropTable,
  kCreateIndex,
  kInsert,
  kDelete,
  kSelect,
  kExplain,
};

struct Statement {
  virtual ~Statement() = default;
  explicit Statement(StatementKind kind) : kind(kind) {}
  StatementKind kind;
  /// Number of `?` placeholders; all must be bound before execution.
  size_t param_count = 0;
};

using StatementPtr = std::unique_ptr<Statement>;

struct CreateTableStmt : Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}
  std::string table;
  Schema schema;
  bool if_not_exists = false;
};

struct DropTableStmt : Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}
  std::string table;
  bool if_exists = false;
};

struct CreateIndexStmt : Statement {
  CreateIndexStmt() : Statement(StatementKind::kCreateIndex) {}
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool ordered = false;  // CREATE ORDERED INDEX => B-tree stand-in
};

struct InsertStmt : Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}
  std::string table;
  // Either literal rows...
  std::vector<std::vector<Value>> rows;
  // ...or INSERT INTO t SELECT ...
  std::unique_ptr<SelectStmt> select;
  /// `?` placeholders inside VALUES rows: rows[row][col] holds NULL until the
  /// executor substitutes the bound value for parameter #param.
  struct ParamCell {
    size_t row;
    size_t col;
    size_t param;
  };
  std::vector<ParamCell> param_cells;
};

struct DeleteStmt : Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}
  std::string table;
  ExprPtr where;  // null => delete all
};

struct SelectStatement : Statement {
  SelectStatement() : Statement(StatementKind::kSelect) {}
  std::unique_ptr<SelectStmt> select;
};

/// EXPLAIN SELECT ...: renders the chosen physical plan without running it.
/// With ANALYZE, the query is executed and each operator is annotated with
/// its actual row count and time.
struct ExplainStmt : Statement {
  ExplainStmt() : Statement(StatementKind::kExplain) {}
  std::unique_ptr<SelectStmt> select;
  bool analyze = false;
};

}  // namespace dkb::sql

#endif  // DKB_SQL_AST_H_
