#include "sql/parser.h"

#include <utility>

#include "common/str_util.h"

namespace dkb::sql {

Result<StatementPtr> ParseStatement(const std::string& input) {
  DKB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseSingleStatement();
}

Result<std::vector<StatementPtr>> ParseScript(const std::string& input) {
  DKB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatements();
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) return tokens_.back();
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchSymbol(const char* sym) {
  if (Peek().IsSymbol(sym)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere(std::string("expected keyword ") + kw);
  }
  return Status::OK();
}

Status Parser::ExpectSymbol(const char* sym) {
  if (!MatchSymbol(sym)) {
    return ErrorHere(std::string("expected '") + sym + "'");
  }
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& tok = Peek();
  std::string got = (tok.type == TokenType::kEnd) ? "<end>" : tok.text;
  return Status::InvalidArgument(message + " but got '" + got +
                                 "' at offset " + std::to_string(tok.offset));
}

bool Parser::IsBareAggregateName() const {
  const Token& tok = Peek();
  if (tok.type != TokenType::kKeyword || Peek(1).IsSymbol("(")) return false;
  return tok.text == "COUNT" || tok.text == "SUM" || tok.text == "MIN" ||
         tok.text == "MAX";
}

Result<std::string> Parser::ParseIdentifier(const char* what) {
  const Token& tok = Peek();
  if (tok.type != TokenType::kIdentifier) {
    return ErrorHere(std::string("expected ") + what);
  }
  Advance();
  return tok.text;
}

Result<std::string> Parser::ParseTableName(const char* what) {
  DKB_ASSIGN_OR_RETURN(std::string name, ParseIdentifier(what));
  // Dotted two-part names: the '.' must be immediately followed by an
  // identifier token ("sys.query_log"). One level only.
  if (Peek().IsSymbol(".") && Peek(1).type == TokenType::kIdentifier) {
    Advance();  // '.'
    name += "." + Advance().text;
  }
  return name;
}

Result<StatementPtr> Parser::ParseSingleStatement() {
  DKB_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseStatements());
  if (stmts.size() != 1) {
    return Status::InvalidArgument("expected exactly one statement, got " +
                                   std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

Result<std::vector<StatementPtr>> Parser::ParseStatements() {
  std::vector<StatementPtr> out;
  while (Peek().type != TokenType::kEnd) {
    if (MatchSymbol(";")) continue;
    param_count_ = 0;
    StatementPtr stmt;
    if (Peek().IsKeyword("CREATE")) {
      DKB_ASSIGN_OR_RETURN(stmt, ParseCreate());
    } else if (Peek().IsKeyword("DROP")) {
      DKB_ASSIGN_OR_RETURN(stmt, ParseDrop());
    } else if (Peek().IsKeyword("INSERT")) {
      DKB_ASSIGN_OR_RETURN(stmt, ParseInsert());
    } else if (Peek().IsKeyword("DELETE")) {
      DKB_ASSIGN_OR_RETURN(stmt, ParseDelete());
    } else if (Peek().IsKeyword("SELECT") || Peek().IsSymbol("(")) {
      auto sel = std::make_unique<SelectStatement>();
      DKB_ASSIGN_OR_RETURN(sel->select, ParseSelectStmt());
      stmt = std::move(sel);
    } else if (MatchKeyword("EXPLAIN")) {
      auto explain = std::make_unique<ExplainStmt>();
      explain->analyze = MatchKeyword("ANALYZE");
      DKB_ASSIGN_OR_RETURN(explain->select, ParseSelectStmt());
      stmt = std::move(explain);
    } else {
      return ErrorHere("expected statement");
    }
    stmt->param_count = param_count_;
    out.push_back(std::move(stmt));
    if (!MatchSymbol(";")) break;
  }
  if (Peek().type != TokenType::kEnd) {
    return ErrorHere("unexpected trailing input");
  }
  return out;
}

Result<DataType> Parser::ParseType() {
  if (MatchKeyword("INT") || MatchKeyword("INTEGER")) {
    return DataType::kInteger;
  }
  if (MatchKeyword("VARCHAR") || MatchKeyword("CHAR")) {
    // Optional length spec: CHAR(20); parsed and ignored (all strings are
    // variable length in this engine).
    if (MatchSymbol("(")) {
      if (Peek().type != TokenType::kInteger) {
        return ErrorHere("expected length in type");
      }
      Advance();
      DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return DataType::kVarchar;
  }
  return ErrorHere("expected column type (INT / INTEGER / CHAR / VARCHAR)");
}

Result<StatementPtr> Parser::ParseCreate() {
  DKB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<CreateTableStmt>();
    if (MatchKeyword("IF")) {
      DKB_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      DKB_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_not_exists = true;
    }
    DKB_ASSIGN_OR_RETURN(stmt->table, ParseTableName("table name"));
    DKB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Column> columns;
    do {
      Column col;
      DKB_ASSIGN_OR_RETURN(col.name, ParseIdentifier("column name"));
      DKB_ASSIGN_OR_RETURN(col.type, ParseType());
      columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->schema = Schema(std::move(columns));
    return StatementPtr(std::move(stmt));
  }
  bool ordered = MatchKeyword("ORDERED");
  if (MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<CreateIndexStmt>();
    stmt->ordered = ordered;
    DKB_ASSIGN_OR_RETURN(stmt->index, ParseIdentifier("index name"));
    DKB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    DKB_ASSIGN_OR_RETURN(stmt->table, ParseTableName("table name"));
    DKB_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      DKB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
      stmt->columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return StatementPtr(std::move(stmt));
  }
  return ErrorHere("expected TABLE or INDEX after CREATE");
}

Result<StatementPtr> Parser::ParseDrop() {
  DKB_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  DKB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStmt>();
  if (MatchKeyword("IF")) {
    DKB_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    stmt->if_exists = true;
  }
  DKB_ASSIGN_OR_RETURN(stmt->table, ParseTableName("table name"));
  return StatementPtr(std::move(stmt));
}

Result<Value> Parser::ParseLiteralValue() {
  const Token& tok = Peek();
  if (tok.type == TokenType::kInteger) {
    Advance();
    return Value(tok.int_value);
  }
  if (tok.type == TokenType::kString) {
    Advance();
    return Value(tok.text);
  }
  if (tok.IsKeyword("NULL")) {
    Advance();
    return Value::Null();
  }
  return ErrorHere("expected literal");
}

Result<StatementPtr> Parser::ParseInsert() {
  DKB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  DKB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  DKB_ASSIGN_OR_RETURN(stmt->table, ParseTableName("table name"));
  if (MatchKeyword("VALUES")) {
    do {
      DKB_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      do {
        if (Peek().IsSymbol("?")) {
          Advance();
          stmt->param_cells.push_back(sql::InsertStmt::ParamCell{
              stmt->rows.size(), row.size(), param_count_++});
          row.push_back(Value::Null());
          continue;
        }
        DKB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
      } while (MatchSymbol(","));
      DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    return StatementPtr(std::move(stmt));
  }
  if (Peek().IsKeyword("SELECT") || Peek().IsSymbol("(")) {
    DKB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
    return StatementPtr(std::move(stmt));
  }
  return ErrorHere("expected VALUES or SELECT in INSERT");
}

Result<StatementPtr> Parser::ParseDelete() {
  DKB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  DKB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  DKB_ASSIGN_OR_RETURN(stmt->table, ParseTableName("table name"));
  if (MatchKeyword("WHERE")) {
    DKB_ASSIGN_OR_RETURN(stmt->where, ParseCondition());
  }
  return StatementPtr(std::move(stmt));
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  auto stmt = std::make_unique<SelectStmt>();
  DKB_ASSIGN_OR_RETURN(std::unique_ptr<SelectCore> first, ParseSelectCore());
  stmt->cores.push_back(std::move(first));
  while (true) {
    SetOp op = SetOp::kNone;
    if (MatchKeyword("UNION")) {
      op = MatchKeyword("ALL") ? SetOp::kUnionAll : SetOp::kUnion;
    } else if (MatchKeyword("EXCEPT")) {
      op = SetOp::kExcept;
    } else if (MatchKeyword("INTERSECT")) {
      op = SetOp::kIntersect;
    } else {
      break;
    }
    DKB_ASSIGN_OR_RETURN(std::unique_ptr<SelectCore> next, ParseSelectCore());
    stmt->cores.push_back(std::move(next));
    stmt->ops.push_back(op);
  }
  if (MatchKeyword("ORDER")) {
    DKB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      const Token& tok = Peek();
      if (tok.type == TokenType::kInteger) {
        Advance();
        item.column = tok.text;
      } else {
        DKB_ASSIGN_OR_RETURN(item.column, ParseIdentifier("order-by column"));
      }
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("LIMIT")) {
    const Token& tok = Peek();
    if (tok.type != TokenType::kInteger || tok.int_value < 0) {
      return ErrorHere("expected non-negative LIMIT count");
    }
    Advance();
    stmt->limit = static_cast<size_t>(tok.int_value);
  }
  return stmt;
}

Result<std::unique_ptr<SelectCore>> Parser::ParseSelectCore() {
  auto core = std::make_unique<SelectCore>();
  if (MatchSymbol("(")) {
    DKB_ASSIGN_OR_RETURN(core->sub_select, ParseSelectStmt());
    DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return core;
  }
  DKB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  core->distinct = MatchKeyword("DISTINCT");
  do {
    DKB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    core->items.push_back(std::move(item));
  } while (MatchSymbol(","));
  DKB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  do {
    TableRef ref;
    DKB_ASSIGN_OR_RETURN(ref.table, ParseTableName("table name"));
    if (MatchKeyword("AS")) {
      DKB_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("alias"));
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    core->from.push_back(std::move(ref));
  } while (MatchSymbol(","));
  if (MatchKeyword("WHERE")) {
    DKB_ASSIGN_OR_RETURN(core->where, ParseCondition());
  }
  if (MatchKeyword("GROUP")) {
    DKB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      DKB_ASSIGN_OR_RETURN(ExprPtr expr, ParseOperand());
      core->group_by.push_back(std::move(expr));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("HAVING")) {
    DKB_ASSIGN_OR_RETURN(core->having, ParseCondition());
  }
  return core;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (MatchSymbol("*")) {
    item.star = true;
    return item;
  }
  AggFn agg = AggFn::kNone;
  // An aggregate keyword only acts as one when a call follows; otherwise it
  // stays available as a plain column name (e.g. sys.metrics exposes `sum`).
  if (Peek(1).IsSymbol("(")) {
    if (Peek().IsKeyword("COUNT")) {
      agg = AggFn::kCount;
    } else if (Peek().IsKeyword("SUM")) {
      agg = AggFn::kSum;
    } else if (Peek().IsKeyword("MIN")) {
      agg = AggFn::kMin;
    } else if (Peek().IsKeyword("MAX")) {
      agg = AggFn::kMax;
    }
  }
  if (agg != AggFn::kNone) {
    Advance();
    DKB_RETURN_IF_ERROR(ExpectSymbol("("));
    if (agg == AggFn::kCount && MatchSymbol("*")) {
      item.agg = AggFn::kCountStar;
    } else {
      item.agg = agg;
      DKB_ASSIGN_OR_RETURN(item.expr, ParseOperand());
    }
    DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (MatchKeyword("AS")) {
      DKB_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
    }
    return item;
  }
  DKB_ASSIGN_OR_RETURN(item.expr, ParseOperand());
  if (MatchKeyword("AS")) {
    DKB_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
  }
  return item;
}

Result<ExprPtr> Parser::ParseCondition() {
  DKB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndChain());
  while (MatchKeyword("OR")) {
    DKB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndChain());
    lhs = std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(lhs),
                                        std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAndChain() {
  DKB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotExpr());
  while (MatchKeyword("AND")) {
    DKB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotExpr());
    lhs = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(lhs),
                                        std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNotExpr() {
  if (MatchKeyword("NOT")) {
    DKB_ASSIGN_OR_RETURN(ExprPtr child, ParseNotExpr());
    return ExprPtr(std::make_unique<NotExpr>(std::move(child)));
  }
  return ParsePrimaryCondition();
}

Result<ExprPtr> Parser::ParsePrimaryCondition() {
  if (MatchSymbol("(")) {
    DKB_ASSIGN_OR_RETURN(ExprPtr inner, ParseCondition());
    DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  DKB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
  if (MatchKeyword("IN")) {
    DKB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Value> values;
    do {
      DKB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      values.push_back(std::move(v));
    } while (MatchSymbol(","));
    DKB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ExprPtr(
        std::make_unique<InListExpr>(std::move(lhs), std::move(values)));
  }
  CompareOp op;
  const Token& tok = Peek();
  if (tok.IsSymbol("=")) {
    op = CompareOp::kEq;
  } else if (tok.IsSymbol("<>") || tok.IsSymbol("!=")) {
    op = CompareOp::kNe;
  } else if (tok.IsSymbol("<")) {
    op = CompareOp::kLt;
  } else if (tok.IsSymbol("<=")) {
    op = CompareOp::kLe;
  } else if (tok.IsSymbol(">")) {
    op = CompareOp::kGt;
  } else if (tok.IsSymbol(">=")) {
    op = CompareOp::kGe;
  } else {
    return ErrorHere("expected comparison operator");
  }
  Advance();
  DKB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
  return ExprPtr(
      std::make_unique<ComparisonExpr>(op, std::move(lhs), std::move(rhs)));
}

Result<ExprPtr> Parser::ParseOperand() {
  const Token& tok = Peek();
  if (tok.type == TokenType::kIdentifier || IsBareAggregateName()) {
    const bool demoted = tok.type == TokenType::kKeyword;
    Advance();
    std::string first = demoted ? AsciiLower(tok.text) : tok.text;
    if (MatchSymbol(".")) {
      if (IsBareAggregateName()) {
        std::string col = AsciiLower(Advance().text);
        return ExprPtr(
            std::make_unique<ColumnRefExpr>(std::move(first), std::move(col)));
      }
      DKB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
      return ExprPtr(
          std::make_unique<ColumnRefExpr>(std::move(first), std::move(col)));
    }
    return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
  }
  if (tok.type == TokenType::kInteger || tok.type == TokenType::kString ||
      tok.IsKeyword("NULL")) {
    DKB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
    return ExprPtr(std::make_unique<LiteralExpr>(std::move(v)));
  }
  if (tok.IsSymbol("?")) {
    Advance();
    return ExprPtr(std::make_unique<ParamExpr>(param_count_++));
  }
  return ErrorHere("expected column reference or literal");
}

}  // namespace dkb::sql
