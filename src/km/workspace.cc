#include "km/workspace.h"

#include <algorithm>

namespace dkb::km {

Status Workspace::AddRule(datalog::Rule rule) {
  if (rule.is_fact()) {
    return Status::InvalidArgument(
        "facts belong in the extensional database, not the workspace: " +
        rule.ToString());
  }
  if (std::find(rules_.begin(), rules_.end(), rule) != rules_.end()) {
    return Status::OK();  // idempotent
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

bool Workspace::RemoveRule(const datalog::Rule& rule) {
  auto it = std::find(rules_.begin(), rules_.end(), rule);
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

std::vector<datalog::Rule> Workspace::RulesFor(const std::string& pred) const {
  std::vector<datalog::Rule> out;
  for (const datalog::Rule& rule : rules_) {
    if (rule.head.predicate == pred) out.push_back(rule);
  }
  return out;
}

std::set<std::string> Workspace::HeadPredicates() const {
  std::set<std::string> out;
  for (const datalog::Rule& rule : rules_) out.insert(rule.head.predicate);
  return out;
}

std::set<std::string> Workspace::UndefinedBodyPredicates() const {
  std::set<std::string> heads = HeadPredicates();
  std::set<std::string> out;
  for (const datalog::Rule& rule : rules_) {
    for (const datalog::Atom& atom : rule.body) {
      if (heads.count(atom.predicate) == 0) out.insert(atom.predicate);
    }
  }
  return out;
}

std::vector<analysis::Diagnostic> Workspace::Lint(
    const std::set<std::string>& base_predicates) const {
  analysis::AnalyzerInput input;
  input.rules = rules_;
  input.base_predicates = base_predicates;
  return analysis::AnalyzeProgram(input).diagnostics();
}

}  // namespace dkb::km
