#ifndef DKB_KM_ANALYSIS_DIAGNOSTICS_H_
#define DKB_KM_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "datalog/ast.h"

namespace dkb::km::analysis {

/// Diagnostic severity. Errors make the program unfit for compilation
/// (unstratified negation, undefined predicates); warnings describe rules
/// the analyzer prunes or constructs it cannot optimize; notes are
/// informational annotations.
enum class Severity { kNote, kWarning, kError };

/// "note" / "warning" / "error".
const char* SeverityName(Severity severity);

/// Stable diagnostic codes. The numeric part is permanent; the trailing
/// slug is descriptive. Tools (and tests) match on the full string.
inline constexpr char kCodeUnstratified[] = "DKB-E001-unstratified-negation";
inline constexpr char kCodeUndefinedPredicate[] =
    "DKB-E002-undefined-predicate";
inline constexpr char kCodeDeadRule[] = "DKB-W003-dead-rule";
inline constexpr char kCodeUnsatisfiableBody[] =
    "DKB-W004-unsatisfiable-body";
inline constexpr char kCodeDuplicateRule[] = "DKB-W005-duplicate-rule";
inline constexpr char kCodeInconsistentAdornment[] =
    "DKB-W006-inconsistent-adornment";

/// One structured finding of the static analyzer.
struct Diagnostic {
  std::string code;       // stable code, e.g. kCodeDeadRule
  Severity severity = Severity::kWarning;
  std::string predicate;  // subject predicate ("" when not predicate-bound)
  int rule_line = 0;      // 1-based source line of the rule; 0 = unknown
  std::string rule_text;  // rendered rule ("" when not rule-bound)
  std::string message;    // human-readable explanation

  /// "warning[DKB-W003-dead-rule] line 4: message (rule: p(X) :- q(X).)"
  std::string ToString() const;
  /// One JSON object (stable key order, no trailing newline).
  std::string ToJson() const;
};

/// Collects diagnostics across analysis passes and renders them.
class DiagnosticEngine {
 public:
  void Report(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }

  /// Convenience: build and report a rule-bound diagnostic.
  void ReportRule(const char* code, Severity severity,
                  const datalog::Rule& rule, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool HasErrors() const;
  size_t CountSeverity(Severity severity) const;

  /// First error-severity diagnostic message; "" if none.
  std::string FirstError() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Human-readable rendering, one line per diagnostic plus a summary line
/// ("2 warning(s), 1 error(s)" or "no diagnostics"). `source_name` prefixes
/// every line when non-empty (the lint CLI passes the file name).
std::string RenderHuman(const std::vector<Diagnostic>& diagnostics,
                        const std::string& source_name = "");

/// JSON rendering: {"source": ..., "diagnostics": [...], "errors": N,
/// "warnings": N, "notes": N}.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& source_name = "");

}  // namespace dkb::km::analysis

#endif  // DKB_KM_ANALYSIS_DIAGNOSTICS_H_
