#include "km/analysis/diagnostics.h"

#include <cstdio>
#include <sstream>

namespace dkb::km::analysis {

namespace {

/// JSON string escaping for the small character set our messages use.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << "[" << code << "]";
  if (rule_line > 0) os << " line " << rule_line;
  os << ": " << message;
  if (!rule_text.empty()) os << " (rule: " << rule_text << ")";
  return os.str();
}

std::string Diagnostic::ToJson() const {
  std::ostringstream os;
  os << "{\"code\": \"" << JsonEscape(code) << "\", \"severity\": \""
     << SeverityName(severity) << "\", \"predicate\": \""
     << JsonEscape(predicate) << "\", \"line\": " << rule_line
     << ", \"rule\": \"" << JsonEscape(rule_text) << "\", \"message\": \""
     << JsonEscape(message) << "\"}";
  return os.str();
}

void DiagnosticEngine::ReportRule(const char* code, Severity severity,
                                  const datalog::Rule& rule,
                                  std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.predicate = rule.head.predicate;
  d.rule_line = rule.span.line;
  d.rule_text = rule.ToString();
  d.message = std::move(message);
  Report(std::move(d));
}

bool DiagnosticEngine::HasErrors() const {
  return CountSeverity(Severity::kError) > 0;
}

size_t DiagnosticEngine::CountSeverity(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string DiagnosticEngine::FirstError() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) return d.ToString();
  }
  return "";
}

std::string RenderHuman(const std::vector<Diagnostic>& diagnostics,
                        const std::string& source_name) {
  std::ostringstream os;
  size_t errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : diagnostics) {
    if (!source_name.empty()) os << source_name << ": ";
    os << d.ToString() << "\n";
    switch (d.severity) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kNote:
        ++notes;
        break;
    }
  }
  if (!source_name.empty()) os << source_name << ": ";
  if (diagnostics.empty()) {
    os << "no diagnostics\n";
  } else {
    os << errors << " error(s), " << warnings << " warning(s), " << notes
       << " note(s)\n";
  }
  return os.str();
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& source_name) {
  std::ostringstream os;
  os << "{\"source\": \"" << JsonEscape(source_name)
     << "\", \"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) os << ", ";
    os << diagnostics[i].ToJson();
  }
  size_t errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    if (d.severity == Severity::kNote) ++notes;
  }
  os << "], \"errors\": " << errors << ", \"warnings\": " << warnings
     << ", \"notes\": " << notes << "}\n";
  return os.str();
}

}  // namespace dkb::km::analysis
