#include "km/analysis/stratify.h"

#include <algorithm>
#include <set>

#include "km/pcg.h"
#include "km/scc.h"

namespace dkb::km::analysis {

Stratification ComputeStratification(
    const std::vector<datalog::Rule>& rules) {
  Stratification out;

  Pcg pcg;
  for (const datalog::Rule& rule : rules) pcg.AddRule(rule);

  // Tarjan returns components callees-first, so every component's
  // dependencies are already labelled when we reach it.
  std::vector<std::vector<std::string>> components =
      StronglyConnectedComponents(pcg);
  std::map<std::string, size_t> component_of;
  for (size_t i = 0; i < components.size(); ++i) {
    for (const std::string& p : components[i]) component_of[p] = i;
  }

  // Violations: a rule whose head and negated body predicate share a
  // component.
  for (const datalog::Rule& rule : rules) {
    size_t head_comp = component_of[rule.head.predicate];
    for (const datalog::Atom& atom : rule.body) {
      if (!atom.negated) continue;
      auto it = component_of.find(atom.predicate);
      if (it != component_of.end() && it->second == head_comp) {
        out.violations.push_back({rule, atom.predicate});
      }
    }
  }

  // Strata: stratum(head) >= stratum(positive dep), and
  // stratum(head) >= stratum(negated dep) + 1. Components are processed in
  // dependency order, so one sweep per component suffices (rules inside a
  // violating component self-tighten at most once; the labelling is then
  // merely best-effort).
  std::vector<int> component_stratum(components.size(), 0);
  std::map<std::string, std::vector<const datalog::Rule*>> rules_by_head;
  for (const datalog::Rule& rule : rules) {
    rules_by_head[rule.head.predicate].push_back(&rule);
  }
  for (size_t i = 0; i < components.size(); ++i) {
    int stratum = 0;
    for (const std::string& p : components[i]) {
      for (const datalog::Rule* rule : rules_by_head[p]) {
        for (const datalog::Atom& atom : rule->body) {
          if (atom.is_builtin()) continue;
          size_t dep = component_of[atom.predicate];
          if (dep == i) continue;  // same clique: same stratum
          int need = component_stratum[dep] + (atom.negated ? 1 : 0);
          stratum = std::max(stratum, need);
        }
      }
    }
    component_stratum[i] = stratum;
    for (const std::string& p : components[i]) {
      out.stratum[p] = stratum;
      out.num_strata = std::max(out.num_strata, stratum + 1);
    }
  }

  return out;
}

Status CheckStratified(const std::vector<datalog::Rule>& rules) {
  Stratification s = ComputeStratification(rules);
  if (s.stratified()) return Status::OK();
  const StratificationViolation& v = s.violations.front();
  return Status::SemanticError(
      "program is not stratified: " + v.negated +
      " is negated inside its own recursive clique (rule " +
      v.rule.ToString() + ")");
}

}  // namespace dkb::km::analysis
