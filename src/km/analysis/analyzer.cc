#include "km/analysis/analyzer.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "exec/expr.h"
#include "km/pcg.h"
#include "magic/adornment.h"
#include "sql/ast.h"

namespace dkb::km::analysis {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

// ---------------------------------------------------------------------------
// Unsatisfiable-body detection
// ---------------------------------------------------------------------------

/// Maps a built-in comparison predicate to the SQL comparison operator so
/// constant/constant atoms can be folded through the executor's expression
/// evaluator (the same folding the SQL layer applies).
sql::CompareOp ToCompareOp(const std::string& predicate) {
  if (predicate == "<") return sql::CompareOp::kLt;
  if (predicate == "<=") return sql::CompareOp::kLe;
  if (predicate == ">") return sql::CompareOp::kGt;
  if (predicate == ">=") return sql::CompareOp::kGe;
  if (predicate == "=") return sql::CompareOp::kEq;
  return sql::CompareOp::kNe;  // "!="
}

/// Folds a comparison between two constants: true iff the filter passes.
bool FoldConstantComparison(const std::string& predicate, const Value& lhs,
                            const Value& rhs) {
  exec::BoundComparison cmp(
      ToCompareOp(predicate),
      std::make_unique<exec::BoundLiteral>(lhs),
      std::make_unique<exec::BoundLiteral>(rhs));
  return cmp.EvaluateBool(Tuple{});
}

/// Union-find over variable names (for X = Y chains).
class VarUnion {
 public:
  const std::string& Find(const std::string& v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) it = parent_.emplace(v, v).first;
    if (it->second == v) return it->first;
    it->second = Find(it->second);  // path compression
    return it->second;
  }
  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::map<std::string, std::string> parent_;
};

/// Per-variable-class constraints accumulated from built-in filters.
struct VarConstraints {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  bool has_eq = false;
  Value eq;
  std::set<Value> neq;
};

/// Returns a human-readable reason when the rule body is provably
/// unsatisfiable after constant folding of its built-in comparisons, or ""
/// when no contradiction is found. Sound but incomplete: variable/variable
/// orderings between distinct variables are not tracked.
std::string UnsatisfiableReason(const Rule& rule) {
  VarUnion classes;
  // First pass: merge equality classes so later constraints land on roots.
  for (const Atom& atom : rule.body) {
    if (!atom.is_builtin() || atom.predicate != "=") continue;
    if (atom.args[0].is_variable() && atom.args[1].is_variable()) {
      classes.Union(atom.args[0].var, atom.args[1].var);
    }
  }

  std::map<std::string, VarConstraints> by_root;
  for (const Atom& atom : rule.body) {
    if (!atom.is_builtin()) continue;
    const Term& l = atom.args[0];
    const Term& r = atom.args[1];
    if (l.is_constant() && r.is_constant()) {
      if (!FoldConstantComparison(atom.predicate, l.value, r.value)) {
        return "constant comparison " + atom.ToString() + " is always false";
      }
      continue;
    }
    if (l.is_variable() && r.is_variable()) {
      const std::string& rl = classes.Find(l.var);
      const std::string& rr = classes.Find(r.var);
      if (rl == rr && (atom.predicate == "<" || atom.predicate == ">" ||
                       atom.predicate == "!=")) {
        return atom.ToString() + " compares a variable against itself";
      }
      continue;  // orderings between distinct variables: not tracked
    }
    // Normalize to var OP const.
    std::string op = atom.predicate;
    const Term* var = &l;
    const Term* cst = &r;
    if (l.is_constant()) {
      var = &r;
      cst = &l;
      if (op == "<") op = ">";
      else if (op == "<=") op = ">=";
      else if (op == ">") op = "<";
      else if (op == ">=") op = "<=";
    }
    VarConstraints& c = by_root[classes.Find(var->var)];
    const Value& v = cst->value;
    if (op == "=") {
      if (c.has_eq && c.eq != v) {
        return var->var + " is required to equal both " + c.eq.ToString() +
               " and " + v.ToString();
      }
      c.has_eq = true;
      c.eq = v;
    } else if (op == "!=") {
      c.neq.insert(v);
    } else if (v.is_int()) {
      int64_t k = v.as_int();
      if (op == "<") c.hi = std::min(c.hi, k - 1);
      else if (op == "<=") c.hi = std::min(c.hi, k);
      else if (op == ">") c.lo = std::max(c.lo, k + 1);
      else if (op == ">=") c.lo = std::max(c.lo, k);
    }
    // Ordering against a string constant: not tracked (sound).
  }

  for (auto& [root, c] : by_root) {
    if (c.lo > c.hi) {
      return "integer constraints on " + root + " are contradictory (" +
             "empty interval [" + std::to_string(c.lo) + ", " +
             std::to_string(c.hi) + "])";
    }
    if (c.has_eq) {
      if (c.neq.count(c.eq) > 0) {
        return root + " is required to both equal and differ from " +
               c.eq.ToString();
      }
      if (c.eq.is_int() &&
          (c.eq.as_int() < c.lo || c.eq.as_int() > c.hi)) {
        return root + " = " + c.eq.ToString() +
               " violates its integer bounds";
      }
    }
    // Finite interval fully excluded by != constants.
    if (c.lo != std::numeric_limits<int64_t>::min() &&
        c.hi != std::numeric_limits<int64_t>::max() &&
        c.hi - c.lo < 1024) {
      int64_t excluded = 0;
      for (const Value& v : c.neq) {
        if (v.is_int() && v.as_int() >= c.lo && v.as_int() <= c.hi) {
          ++excluded;
        }
      }
      if (excluded == c.hi - c.lo + 1) {
        return "every integer in [" + std::to_string(c.lo) + ", " +
               std::to_string(c.hi) + "] is excluded for " + root;
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Adornment dataflow (mirrors the SIP of magic/magic_sets.cc)
// ---------------------------------------------------------------------------

void AddVars(const Atom& atom, std::set<std::string>* vars) {
  for (const Term& t : atom.args) {
    if (t.is_variable()) vars->insert(t.var);
  }
}

std::set<std::pair<std::string, std::string>> ComputeAchievableAdornments(
    const std::vector<Rule>& rules, const Atom& goal,
    const std::set<std::string>& derived) {
  std::set<std::pair<std::string, std::string>> done;
  if (derived.count(goal.predicate) == 0) return done;

  std::map<std::string, std::vector<const Rule*>> rules_by_head;
  for (const Rule& rule : rules) {
    rules_by_head[rule.head.predicate].push_back(&rule);
  }

  std::deque<std::pair<std::string, magic::Adornment>> worklist;
  magic::Adornment goal_ad = magic::AdornAtom(goal, /*bound_vars=*/{});
  done.insert({goal.predicate, goal_ad});
  worklist.emplace_back(goal.predicate, goal_ad);

  while (!worklist.empty()) {
    auto [pred, adornment] = worklist.front();
    worklist.pop_front();
    auto it = rules_by_head.find(pred);
    if (it == rules_by_head.end()) continue;
    for (const Rule* rule : it->second) {
      // An arity mismatch between caller and head is a semantic error the
      // type checker reports; the dataflow just skips the rule.
      if (rule->head.args.size() != adornment.size()) continue;
      std::set<std::string> bound_vars;
      for (size_t i = 0; i < adornment.size(); ++i) {
        if (adornment[i] == 'b' && rule->head.args[i].is_variable()) {
          bound_vars.insert(rule->head.args[i].var);
        }
      }
      for (const Atom& atom : rule->body) {
        if (atom.is_builtin()) continue;  // filters bind nothing
        if (derived.count(atom.predicate) == 0) {
          AddVars(atom, &bound_vars);
          continue;
        }
        magic::Adornment body_ad = magic::AdornAtom(atom, bound_vars);
        if (done.insert({atom.predicate, body_ad}).second) {
          worklist.emplace_back(atom.predicate, body_ad);
        }
        AddVars(atom, &bound_vars);
      }
    }
  }
  return done;
}

std::set<std::string> HeadsOf(const std::vector<Rule>& rules) {
  std::set<std::string> out;
  for (const Rule& rule : rules) out.insert(rule.head.predicate);
  return out;
}

}  // namespace

AnalysisResult AnalyzeProgram(const AnalyzerInput& input,
                              const AnalyzerOptions& options) {
  AnalysisResult result;
  result.rules = input.rules;
  const std::set<std::string> defined = HeadsOf(input.rules);

  // Pass 1: syntactic duplicate elimination (keep the first occurrence).
  if (options.prune_duplicates) {
    std::vector<Rule> unique;
    for (Rule& rule : result.rules) {
      auto it = std::find(unique.begin(), unique.end(), rule);
      if (it != unique.end()) {
        std::string where =
            it->span.valid() ? " at line " + std::to_string(it->span.line)
                             : "";
        result.engine.ReportRule(
            kCodeDuplicateRule, Severity::kWarning, rule,
            "rule duplicates an earlier rule" + where + "; dropped");
        continue;
      }
      unique.push_back(std::move(rule));
    }
    result.rules = std::move(unique);
  }

  // Pass 2: unsatisfiable bodies, then propagate provably-empty predicates
  // (a predicate all of whose definitions were dropped derives nothing, so
  // rules positively depending on it are unsatisfiable too).
  if (options.prune_unsatisfiable) {
    std::vector<Rule> satisfiable;
    for (Rule& rule : result.rules) {
      std::string reason = UnsatisfiableReason(rule);
      if (!reason.empty()) {
        result.engine.ReportRule(kCodeUnsatisfiableBody, Severity::kWarning,
                                 rule, "body is unsatisfiable: " + reason +
                                           "; dropped");
        continue;
      }
      satisfiable.push_back(std::move(rule));
    }
    result.rules = std::move(satisfiable);

    bool changed = true;
    while (changed) {
      changed = false;
      std::set<std::string> heads = HeadsOf(result.rules);
      std::vector<Rule> alive;
      for (Rule& rule : result.rules) {
        std::string empty_dep;
        for (const Atom& atom : rule.body) {
          if (atom.is_builtin() || atom.negated) continue;
          if (defined.count(atom.predicate) > 0 &&
              input.base_predicates.count(atom.predicate) == 0 &&
              heads.count(atom.predicate) == 0) {
            empty_dep = atom.predicate;
            break;
          }
        }
        if (!empty_dep.empty()) {
          result.engine.ReportRule(
              kCodeUnsatisfiableBody, Severity::kWarning, rule,
              "body is unsatisfiable: " + empty_dep +
                  " is provably empty (all of its rules were dropped); "
                  "dropped");
          changed = true;
          continue;
        }
        alive.push_back(std::move(rule));
      }
      result.rules = std::move(alive);
    }
  }

  // Pass 3: definedness — every body predicate is base or rule-defined.
  if (options.check_definedness) {
    std::set<std::string> reported;
    for (const Rule& rule : result.rules) {
      for (const Atom& atom : rule.body) {
        if (atom.is_builtin()) continue;
        if (defined.count(atom.predicate) > 0) continue;
        if (input.base_predicates.count(atom.predicate) > 0) continue;
        if (!reported.insert(atom.predicate).second) continue;
        Diagnostic d;
        d.code = kCodeUndefinedPredicate;
        d.severity = Severity::kError;
        d.predicate = atom.predicate;
        d.rule_line = rule.span.line;
        d.rule_text = rule.ToString();
        d.message = "predicate " + atom.predicate +
                    " is neither defined by a rule nor a known base "
                    "predicate";
        result.engine.Report(std::move(d));
      }
    }
  }

  // Pass 4: stratification over the surviving rules.
  result.strata = ComputeStratification(result.rules);
  for (const StratificationViolation& v : result.strata.violations) {
    result.engine.ReportRule(
        kCodeUnstratified, Severity::kError, v.rule,
        "program is not stratified: " + v.negated +
            " is negated inside its own recursive clique");
  }

  // Pass 5: dead-rule elimination — rules whose head is unreachable from
  // the goal in the predicate connection graph can never contribute.
  if (options.prune_dead && input.goal != nullptr) {
    Pcg pcg;
    pcg.AddNode(input.goal->predicate);
    for (const Rule& rule : result.rules) pcg.AddRule(rule);
    std::set<std::string> live = pcg.Reachable(input.goal->predicate);
    live.insert(input.goal->predicate);
    std::vector<Rule> alive;
    for (Rule& rule : result.rules) {
      if (live.count(rule.head.predicate) == 0) {
        result.engine.ReportRule(
            kCodeDeadRule, Severity::kWarning, rule,
            "rule is dead: " + rule.head.predicate +
                " is unreachable from the query goal " +
                input.goal->ToString() + "; dropped");
        continue;
      }
      alive.push_back(std::move(rule));
    }
    result.rules = std::move(alive);
  }

  if (input.goal != nullptr && defined.count(input.goal->predicate) > 0 &&
      input.base_predicates.count(input.goal->predicate) == 0) {
    result.goal_provably_empty =
        HeadsOf(result.rules).count(input.goal->predicate) == 0;
  }

  // Pass 6: adornment dataflow from the goal (left-to-right SIP, mirroring
  // the magic-sets rewrite), flagging predicates the rewrite cannot guard.
  if (options.compute_adornments && input.goal != nullptr) {
    std::set<std::string> derived = HeadsOf(result.rules);
    result.adornments =
        ComputeAchievableAdornments(result.rules, *input.goal, derived);
    magic::Adornment goal_ad =
        magic::AdornAtom(*input.goal, /*bound_vars=*/{});
    if (magic::HasBound(goal_ad)) {
      std::set<std::string> flagged;
      for (const auto& [pred, adornment] : result.adornments) {
        if (adornment.empty() ||
            adornment.find('b') != std::string::npos) {
          continue;
        }
        if (!flagged.insert(pred).second) continue;
        Diagnostic d;
        d.code = kCodeInconsistentAdornment;
        d.severity = Severity::kWarning;
        d.predicate = pred;
        d.message =
            "predicate " + pred + " is reached with the all-free adornment " +
            adornment + " although the query is bound; the magic rewrite "
            "cannot restrict it (its magic predicate would be unbound) and "
            "will compute its full extension";
        result.engine.Report(std::move(d));
      }
    }
  }

  // Pass 7: cardinality annotations for the planner.
  if (options.compute_cardinality) {
    auto touch = [&result](const Atom& atom) -> PredicateCardinality& {
      PredicateCardinality& c = result.cardinality[atom.predicate];
      if (c.arity == 0) c.arity = atom.arity();
      return c;
    };
    for (const Rule& rule : result.rules) {
      touch(rule.head).num_rules += 1;
      for (const Atom& atom : rule.body) {
        if (!atom.is_builtin()) touch(atom);
      }
    }
    for (auto& [pred, c] : result.cardinality) {
      if (input.base_predicates.count(pred) > 0) {
        c.is_base = true;
        auto it = input.base_cardinalities.find(pred);
        if (it != input.base_cardinalities.end()) c.base_tuples = it->second;
        c.est_tuples =
            c.base_tuples >= 0 ? static_cast<double>(c.base_tuples) : 32.0;
      }
    }
    // Derived sizes: a few monotone sweeps of est(p) = sum over rules of
    // the product of positive body estimates, capped. Deliberately coarse —
    // the annotation seeds join-order heuristics, nothing more.
    constexpr double kCap = 1e12;
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (const Rule& rule : result.rules) {
        double estimate = 1.0;
        for (const Atom& atom : rule.body) {
          if (atom.is_builtin() || atom.negated) continue;
          auto it = result.cardinality.find(atom.predicate);
          double dep = it != result.cardinality.end() ? it->second.est_tuples
                                                      : 0.0;
          estimate = std::min(kCap, estimate * std::max(1.0, dep));
        }
        PredicateCardinality& head = result.cardinality[rule.head.predicate];
        if (!head.is_base) {
          head.est_tuples = std::min(kCap, head.est_tuples + estimate);
        }
      }
    }
  }

  return result;
}

}  // namespace dkb::km::analysis
