#ifndef DKB_KM_ANALYSIS_STRATIFY_H_
#define DKB_KM_ANALYSIS_STRATIFY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace dkb::km::analysis {

/// One stratification violation: a negated dependency inside a recursive
/// clique (negation through recursion has no stratified model).
struct StratificationViolation {
  datalog::Rule rule;       // the offending rule
  std::string negated;      // the predicate negated inside its own clique
};

/// Result of stratification analysis over a rule set.
struct Stratification {
  /// Stratum index per predicate appearing in the rules (heads and body
  /// predicates; base predicates sit in stratum 0). A predicate's rules may
  /// be evaluated once all strata below it are complete.
  std::map<std::string, int> stratum;
  /// 1 + max stratum (0 for an empty program).
  int num_strata = 0;
  /// Negation cycles; empty iff the program is stratified.
  std::vector<StratificationViolation> violations;

  bool stratified() const { return violations.empty(); }
};

/// Computes strata and negation-cycle violations over `rules` using the
/// SCC condensation of the predicate connection graph. Never fails: an
/// unstratified program is reported through `violations` (its stratum
/// numbers are then a best-effort labelling).
Stratification ComputeStratification(const std::vector<datalog::Rule>& rules);

/// Status-typed wrapper used by the compilation pipeline: SemanticError
/// naming the first violation ("program is not stratified: ...") or OK.
Status CheckStratified(const std::vector<datalog::Rule>& rules);

}  // namespace dkb::km::analysis

#endif  // DKB_KM_ANALYSIS_STRATIFY_H_
