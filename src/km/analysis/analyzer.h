#ifndef DKB_KM_ANALYSIS_ANALYZER_H_
#define DKB_KM_ANALYSIS_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "km/analysis/diagnostics.h"
#include "km/analysis/stratify.h"

namespace dkb::km::analysis {

/// Per-predicate cardinality annotation for downstream planners
/// (`exec/planner` consumes EDB sizes through the catalog; these annotations
/// extend the same information to derived predicates at compile time).
struct PredicateCardinality {
  size_t arity = 0;
  bool is_base = false;
  int64_t base_tuples = -1;  // EDB tuple count when known, else -1
  int num_rules = 0;         // surviving rules defining the predicate
  double est_tuples = 0.0;   // coarse size estimate (see analyzer.cc)
};

/// Pass toggles. Everything is on by default; the compiler and the lint
/// tool both run the full pipeline.
struct AnalyzerOptions {
  bool prune_duplicates = true;
  bool prune_unsatisfiable = true;
  bool prune_dead = true;          // requires a goal
  bool check_definedness = true;
  bool compute_adornments = true;  // requires a goal
  bool compute_cardinality = true;
};

/// Input program: the rule set plus what is known about the extensional
/// database. `goal` enables the goal-directed passes (dead-rule
/// elimination, adornment dataflow); without it only goal-independent
/// passes run.
struct AnalyzerInput {
  std::vector<datalog::Rule> rules;
  const datalog::Atom* goal = nullptr;
  std::set<std::string> base_predicates;
  std::map<std::string, int64_t> base_cardinalities;  // optional EDB sizes
};

/// Everything the analysis pipeline produces: the pruned rule set that is
/// safe to hand to the optimizer/code generator, structured diagnostics,
/// the stratification, the achievable adornment set, and cardinality
/// annotations.
struct AnalysisResult {
  std::vector<datalog::Rule> rules;  // surviving rules, original order
  DiagnosticEngine engine;
  Stratification strata;
  /// Achievable (predicate, adornment) pairs under a left-to-right SIP from
  /// the goal; empty when no goal was supplied. Mirrors the dataflow of the
  /// magic-sets rewrite, so it is exactly the set of adorned predicates the
  /// rewrite may generate — the compiler feeds it back as a filter.
  std::set<std::pair<std::string, std::string>> adornments;
  std::map<std::string, PredicateCardinality> cardinality;
  /// True when every definition of the goal predicate was pruned: the query
  /// provably has no answers via rules (it may still be a base predicate).
  bool goal_provably_empty = false;

  const std::vector<Diagnostic>& diagnostics() const {
    return engine.diagnostics();
  }
  bool ok() const { return !engine.HasErrors(); }
};

/// Runs the multi-pass static analysis pipeline:
///
///   1. duplicate-rule elimination        (DKB-W005, rule dropped)
///   2. unsatisfiable-body elimination    (DKB-W004, rule dropped;
///      constant-folds built-in comparisons and propagates provably-empty
///      predicates)
///   3. definedness                       (DKB-E002)
///   4. stratification                    (DKB-E001; strata computed)
///   5. dead-rule elimination             (DKB-W003, rule dropped)
///   6. adornment dataflow                (DKB-W006; achievable set)
///   7. cardinality annotations
///
/// The function never fails: errors are reported as diagnostics and the
/// caller decides (the compiler aborts on errors, the lint tool prints
/// them all).
AnalysisResult AnalyzeProgram(const AnalyzerInput& input,
                              const AnalyzerOptions& options = {});

}  // namespace dkb::km::analysis

#endif  // DKB_KM_ANALYSIS_ANALYZER_H_
