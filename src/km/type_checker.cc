#include "km/type_checker.h"

namespace dkb::km {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

/// Working signature: kInvalid marks a not-yet-inferred column.
using WorkTypes = std::vector<DataType>;

Status ArityError(const Atom& atom, size_t expected) {
  return Status::SemanticError(
      "predicate " + atom.predicate + " used with arity " +
      std::to_string(atom.arity()) + " but declared/used elsewhere with " +
      std::to_string(expected));
}

}  // namespace

Result<TypeCheckResult> TypeCheck(
    const std::vector<Rule>& rules,
    const std::map<std::string, PredicateTypes>& base_types) {
  // Gather derived predicates and check arity consistency of every atom.
  std::map<std::string, size_t> arity;
  std::set<std::string> derived;
  for (const Rule& rule : rules) derived.insert(rule.head.predicate);

  auto check_arity = [&](const Atom& atom) -> Status {
    auto base_it = base_types.find(atom.predicate);
    if (base_it != base_types.end()) {
      if (atom.arity() != base_it->second.size()) {
        return ArityError(atom, base_it->second.size());
      }
      return Status::OK();
    }
    auto [it, inserted] = arity.emplace(atom.predicate, atom.arity());
    if (!inserted && it->second != atom.arity()) {
      return ArityError(atom, it->second);
    }
    return Status::OK();
  };

  for (const Rule& rule : rules) {
    if (rule.head.is_builtin()) {
      return Status::SemanticError("built-in comparison used as rule head: " +
                                   rule.ToString());
    }
    DKB_RETURN_IF_ERROR(check_arity(rule.head));
    for (const Atom& atom : rule.body) {
      if (atom.is_builtin()) {
        if (atom.arity() != 2) {
          return Status::SemanticError("built-in comparison needs exactly "
                                       "two arguments: " +
                                       atom.ToString());
        }
        continue;  // filters: no arity map, no definedness
      }
      DKB_RETURN_IF_ERROR(check_arity(atom));
      // Definedness: body predicates must be base or derived.
      if (base_types.count(atom.predicate) == 0 &&
          derived.count(atom.predicate) == 0) {
        return Status::SemanticError("predicate " + atom.predicate +
                                     " in rule " + rule.ToString() +
                                     " is neither a base predicate nor "
                                     "defined by any rule");
      }
    }
    // Safety: head variables and variables of negated atoms must appear in
    // a *positive* body atom (range restriction; negation-as-failure over a
    // finite positive binding set).
    std::set<std::string> positive_vars;
    for (const Atom& atom : rule.body) {
      if (atom.negated || atom.is_builtin()) continue;
      for (const Term& bt : atom.args) {
        if (bt.is_variable()) positive_vars.insert(bt.var);
      }
    }
    for (const Term& t : rule.head.args) {
      if (t.is_variable() && positive_vars.count(t.var) == 0) {
        return Status::SemanticError(
            "unsafe rule (head variable " + t.var +
            " not bound in a positive body atom): " + rule.ToString());
      }
    }
    for (const Atom& atom : rule.body) {
      if (!atom.negated && !atom.is_builtin()) continue;
      const char* what = atom.negated ? "negated atom" : "comparison";
      for (const Term& bt : atom.args) {
        if (bt.is_variable() && positive_vars.count(bt.var) == 0) {
          return Status::SemanticError(
              std::string("unsafe rule (variable ") + bt.var + " of " +
              what + " not bound in a positive body atom): " +
              rule.ToString());
        }
      }
    }
  }

  // Fixpoint type propagation.
  std::map<std::string, WorkTypes> types;
  for (const std::string& p : derived) {
    types[p] = WorkTypes(arity[p], DataType::kInvalid);
  }

  auto type_of_atom_arg = [&](const Atom& atom, size_t i) -> DataType {
    auto base_it = base_types.find(atom.predicate);
    if (base_it != base_types.end()) return base_it->second[i];
    return types[atom.predicate][i];
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules) {
      // Infer variable types from body occurrences.
      std::map<std::string, DataType> var_types;
      // Built-in comparisons constrain after regular atoms are processed.
      std::vector<const Atom*> builtins;
      for (const Atom& atom : rule.body) {
        if (atom.is_builtin()) {
          builtins.push_back(&atom);
          continue;
        }
        for (size_t i = 0; i < atom.args.size(); ++i) {
          const Term& t = atom.args[i];
          DataType slot = type_of_atom_arg(atom, i);
          if (t.is_constant()) {
            DataType ct = t.value.type();
            if (slot != DataType::kInvalid && ct != DataType::kInvalid &&
                slot != ct) {
              return Status::TypeError(
                  "constant " + t.ToString() + " of type " +
                  DataTypeName(ct) + " used at " + DataTypeName(slot) +
                  " position of " + atom.predicate + " in rule " +
                  rule.ToString());
            }
            continue;
          }
          if (slot == DataType::kInvalid) continue;
          auto [it, inserted] = var_types.emplace(t.var, slot);
          if (!inserted && it->second != slot) {
            return Status::TypeError("variable " + t.var +
                                     " used at conflicting types " +
                                     DataTypeName(it->second) + " and " +
                                     DataTypeName(slot) + " in rule " +
                                     rule.ToString());
          }
        }
      }
      // Built-in comparisons must compare like-typed operands.
      for (const Atom* b : builtins) {
        auto type_of = [&](const Term& t) -> DataType {
          if (t.is_constant()) return t.value.type();
          auto it = var_types.find(t.var);
          return it != var_types.end() ? it->second : DataType::kInvalid;
        };
        DataType lt = type_of(b->args[0]);
        DataType rt = type_of(b->args[1]);
        if (lt != DataType::kInvalid && rt != DataType::kInvalid &&
            lt != rt) {
          return Status::TypeError("comparison " + b->ToString() +
                                   " mixes " + DataTypeName(lt) + " and " +
                                   DataTypeName(rt) + " in rule " +
                                   rule.ToString());
        }
      }

      // Propagate to the head.
      WorkTypes& head_types = types[rule.head.predicate];
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        const Term& t = rule.head.args[i];
        DataType inferred = DataType::kInvalid;
        if (t.is_constant()) {
          inferred = t.value.type();
        } else {
          auto it = var_types.find(t.var);
          if (it != var_types.end()) inferred = it->second;
        }
        if (inferred == DataType::kInvalid) continue;
        if (head_types[i] == DataType::kInvalid) {
          head_types[i] = inferred;
          changed = true;
        } else if (head_types[i] != inferred) {
          return Status::TypeError(
              "rules defining " + rule.head.predicate +
              " infer conflicting types for column " + std::to_string(i) +
              ": " + DataTypeName(head_types[i]) + " vs " +
              DataTypeName(inferred) + " (rule " + rule.ToString() + ")");
        }
      }
    }
  }

  // Every column must have been determined.
  TypeCheckResult result;
  for (auto& [pred, sig] : types) {
    for (size_t i = 0; i < sig.size(); ++i) {
      if (sig[i] == DataType::kInvalid) {
        return Status::TypeError("could not infer type of column " +
                                 std::to_string(i) + " of predicate " + pred);
      }
    }
    result.derived_types.emplace(pred, sig);
  }
  return result;
}

}  // namespace dkb::km
