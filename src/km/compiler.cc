#include "km/compiler.h"

#include <algorithm>
#include <deque>

#include "common/timer.h"
#include "km/naming.h"
#include "magic/magic_sets.h"
#include "sql/parser.h"

namespace dkb::km {

namespace {

using datalog::Atom;
using datalog::Rule;

/// Derived predicates = heads of the rule set.
std::set<std::string> HeadsOf(const std::vector<Rule>& rules) {
  std::set<std::string> out;
  for (const Rule& rule : rules) out.insert(rule.head.predicate);
  return out;
}

/// Estimates the fraction of extensional tuples relevant to the query by a
/// bounded breadth-first expansion from the query constants over the binary
/// base relations the query reaches. The traversal direction follows the
/// binding position: a constant in the query's first argument propagates
/// forward along edges (ancestor^bf style), a constant in a later argument
/// propagates backward (ancestor^fb). Exploration stops early — returning a
/// fraction at or above `threshold`, treated as "high" — once it has
/// touched that much of the data; the estimate only needs to be accurate
/// around the decision boundary.
Result<double> EstimateSelectivity(const Atom& query,
                                   const std::set<std::string>& base_preds,
                                   const std::map<std::string, PredicateTypes>&
                                       base_types,
                                   StoredDkb* stored, double threshold) {
  std::map<Value, std::vector<Value>> forward;
  std::map<Value, std::vector<Value>> backward;
  int64_t d_tot = 0;
  for (const std::string& pred : base_preds) {
    auto it = base_types.find(pred);
    if (it == base_types.end() || it->second.size() != 2) continue;
    DKB_ASSIGN_OR_RETURN(ScanSource * table,
                         stored->db()->catalog().GetSource(EdbTableName(pred)));
    d_tot += static_cast<int64_t>(table->num_tuples());
    table->Scan(
        [&forward, &backward](RowId, const Tuple& row) {
          forward[row[0]].push_back(row[1]);
          backward[row[1]].push_back(row[0]);
        },
        stored->db()->catalog().read_epoch());
  }
  if (d_tot == 0) return 0.0;

  // Seed per direction from the constant positions.
  struct Walk {
    const std::map<Value, std::vector<Value>>* adjacency;
    std::set<Value> visited;
    std::deque<Value> frontier;
  };
  Walk walks[2] = {{&forward, {}, {}}, {&backward, {}, {}}};
  for (size_t i = 0; i < query.args.size(); ++i) {
    const datalog::Term& t = query.args[i];
    if (!t.is_constant()) continue;
    Walk& walk = walks[i == 0 ? 0 : 1];
    if (walk.visited.insert(t.value).second) walk.frontier.push_back(t.value);
  }
  if (walks[0].frontier.empty() && walks[1].frontier.empty()) return 1.0;

  const int64_t budget =
      std::max<int64_t>(64, static_cast<int64_t>(threshold * d_tot) + 1);
  int64_t touched = 0;  // directed edge traversals, capped at D_tot-ish
  for (Walk& walk : walks) {
    while (!walk.frontier.empty() && touched < budget) {
      Value node = std::move(walk.frontier.front());
      walk.frontier.pop_front();
      auto it = walk.adjacency->find(node);
      if (it == walk.adjacency->end()) continue;
      for (const Value& next : it->second) {
        ++touched;
        if (walk.visited.insert(next).second) walk.frontier.push_back(next);
      }
    }
  }
  return std::min(1.0,
                  static_cast<double>(touched) / static_cast<double>(d_tot));
}

}  // namespace

Result<CompiledQuery> QueryCompiler::Compile(const Atom& query,
                                             const CompilerOptions& options,
                                             CompilationStats* stats) {
  CompilationStats local;
  if (stats == nullptr) stats = &local;
  *stats = CompilationStats{};
  stats->query_id = options.query_id;

  CompiledQuery out;
  out.original_query = query;

  // Step 1 (t_setup): reachable set over the Workspace DKB.
  std::vector<Rule> relevant;
  std::set<std::string> reachable;  // P: query predicate + all reachable
  {
    ScopedAccumulator acc(&stats->t_setup_us);
    trace::ScopedSpan phase_span(options.span, "setup");
    Pcg ws_pcg;
    ws_pcg.AddNode(query.predicate);
    for (const Rule& rule : workspace_->rules()) ws_pcg.AddRule(rule);
    reachable = ws_pcg.Reachable(query.predicate);
    reachable.insert(query.predicate);
    for (const Rule& rule : workspace_->rules()) {
      if (reachable.count(rule.head.predicate) > 0) relevant.push_back(rule);
    }
  }

  // Steps 1.3-1.5 (t_extract): alternate between Stored-DKB extraction and
  // Workspace closure until the relevant sets stop growing.
  {
    ScopedAccumulator acc(&stats->t_extract_us);
    trace::ScopedSpan phase_span(options.span, "extract");
    while (true) {
      size_t before = relevant.size();
      DKB_ASSIGN_OR_RETURN(std::vector<Rule> extracted,
                           stored_->ExtractRelevantRules(reachable));
      for (Rule& rule : extracted) {
        if (std::find(relevant.begin(), relevant.end(), rule) ==
            relevant.end()) {
          relevant.push_back(std::move(rule));
          ++stats->rules_extracted_stored;
        }
      }
      // Recompute the reachable set over the merged rules; pull in any
      // workspace rules that became relevant.
      Pcg pcg;
      pcg.AddNode(query.predicate);
      for (const Rule& rule : relevant) pcg.AddRule(rule);
      for (const Rule& rule : workspace_->rules()) pcg.AddRule(rule);
      std::set<std::string> now = pcg.Reachable(query.predicate);
      now.insert(query.predicate);
      for (const Rule& rule : workspace_->rules()) {
        if (now.count(rule.head.predicate) > 0 &&
            std::find(relevant.begin(), relevant.end(), rule) ==
                relevant.end()) {
          relevant.push_back(rule);
        }
      }
      reachable = std::move(now);
      if (relevant.size() == before) break;
    }
  }
  stats->rules_relevant = static_cast<int64_t>(relevant.size());
  out.relevant_rules = relevant;

  std::set<std::string> derived = HeadsOf(relevant);
  stats->preds_relevant = static_cast<int64_t>(derived.size());

  if (derived.count(query.predicate) == 0 &&
      !stored_->HasBasePredicate(query.predicate)) {
    return Status::SemanticError("query predicate " + query.predicate +
                                 " is not defined by any rule or base "
                                 "relation");
  }

  // Step: read the data dictionaries (t_read). Base predicates are every
  // reachable predicate that is not derived.
  std::map<std::string, PredicateTypes> base_types;
  std::set<std::string> base_preds;
  {
    ScopedAccumulator acc(&stats->t_read_us);
    trace::ScopedSpan phase_span(options.span, "read");
    for (const std::string& p : reachable) {
      if (derived.count(p) == 0) base_preds.insert(p);
    }
    if (derived.count(query.predicate) == 0) {
      base_preds.insert(query.predicate);
    }
    DKB_ASSIGN_OR_RETURN(base_types, stored_->ReadEdbDictionary(base_preds));
    for (const std::string& p : base_preds) {
      if (base_types.count(p) == 0) {
        return Status::SemanticError(
            "predicate " + p + " is neither defined by rules nor a known "
            "base predicate");
      }
    }
    // The paper also reads the IDB dictionary here to obtain precomputed
    // derived-predicate types; we read it for the same cost profile and
    // cross-check against inference below.
    DKB_ASSIGN_OR_RETURN(auto idb_dict, stored_->ReadIdbDictionary(derived));
    (void)idb_dict;
  }

  // Static analysis (t_analyze): prune duplicate/unsatisfiable/dead rules,
  // verify stratification, and compute the achievable adornment set that
  // bounds the magic rewrite. The pruned rule set is what gets compiled.
  magic::AdornmentFilter adornment_filter;
  bool have_adornment_filter = false;
  if (options.analyze) {
    ScopedAccumulator acc(&stats->t_analyze_us);
    trace::ScopedSpan phase_span(options.span, "analyze");
    analysis::AnalyzerInput input;
    input.rules = relevant;
    input.goal = &query;
    input.base_predicates = base_preds;
    for (const std::string& pred : base_preds) {
      auto table = stored_->db()->catalog().GetSource(EdbTableName(pred));
      if (table.ok()) {
        input.base_cardinalities[pred] =
            static_cast<int64_t>((*table)->num_tuples());
      }
    }
    analysis::AnalysisResult analyzed = analysis::AnalyzeProgram(input);
    if (analyzed.engine.HasErrors()) {
      return Status::SemanticError(analyzed.engine.FirstError());
    }
    // Adopt the pruned rule set only when it is self-contained: pruning
    // must not leave the goal without a definition (a provably-empty query
    // still compiles and returns no rows, as before) or orphan a predicate
    // that surviving rules still reference (e.g. only negatively).
    bool adopt = !analyzed.goal_provably_empty;
    if (adopt) {
      std::set<std::string> surviving = HeadsOf(analyzed.rules);
      for (const Rule& rule : analyzed.rules) {
        for (const Atom& atom : rule.body) {
          if (atom.is_builtin()) continue;
          if (surviving.count(atom.predicate) == 0 &&
              base_preds.count(atom.predicate) == 0) {
            adopt = false;
          }
        }
      }
    }
    if (adopt) {
      stats->rules_pruned =
          static_cast<int64_t>(relevant.size() - analyzed.rules.size());
      relevant = analyzed.rules;
      derived = HeadsOf(relevant);
      adornment_filter.allowed = analyzed.adornments;
      have_adornment_filter = true;
    }
    out.analysis = std::move(analyzed);
  }

  // Optimization (t_opt): generalized magic sets, optionally gated by the
  // dynamic selectivity estimate.
  std::vector<Rule> eval_rules = std::move(relevant);
  Atom effective_query = query;
  bool apply_magic = options.magic_mode == MagicMode::kOn;
  if (options.magic_mode == MagicMode::kAdaptive) {
    ScopedAccumulator acc(&stats->t_opt_us);
    trace::ScopedSpan phase_span(options.span, "opt");
    DKB_ASSIGN_OR_RETURN(
        double selectivity,
        EstimateSelectivity(query, base_preds, base_types, stored_,
                            options.adaptive_threshold));
    stats->estimated_selectivity = selectivity;
    apply_magic = selectivity < options.adaptive_threshold;
  }
  if (apply_magic) {
    ScopedAccumulator acc(&stats->t_opt_us);
    trace::ScopedSpan phase_span(options.span, "opt");
    DKB_ASSIGN_OR_RETURN(
        magic::MagicRewrite rewrite,
        magic::ApplyGeneralizedMagicSets(
            eval_rules, query, derived, options.magic_variant,
            have_adornment_filter ? &adornment_filter : nullptr));
    stats->magic_applied = rewrite.rewritten;
    eval_rules = std::move(rewrite.rules);
    effective_query = rewrite.adorned_query;
    derived = HeadsOf(eval_rules);
  }

  // Cliques + evaluation order list (t_eol).
  EvaluationOrder order;
  {
    ScopedAccumulator acc(&stats->t_eol_us);
    trace::ScopedSpan phase_span(options.span, "eol");
    DKB_ASSIGN_OR_RETURN(order, BuildEvaluationOrder(eval_rules, derived));
  }

  // Semantic checks (t_sem): definedness + type inference.
  TypeCheckResult types;
  {
    ScopedAccumulator acc(&stats->t_sem_us);
    trace::ScopedSpan phase_span(options.span, "sem");
    DKB_ASSIGN_OR_RETURN(types, TypeCheck(eval_rules, base_types));
  }

  // Code generation (t_gen).
  {
    ScopedAccumulator acc(&stats->t_gen_us);
    trace::ScopedSpan phase_span(options.span, "gen");
    DKB_ASSIGN_OR_RETURN(
        out.program, GenerateProgram(order, types.derived_types, base_types,
                                     effective_query));
  }

  // "Compile & link" (t_comp): parse every generated SQL text, the analogue
  // of compiling the emitted C fragment against the run time library.
  {
    ScopedAccumulator acc(&stats->t_comp_us);
    trace::ScopedSpan phase_span(options.span, "comp");
    for (const std::string& sql : out.program.AllSqlTexts()) {
      DKB_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
      (void)stmt;
    }
  }

  return out;
}

}  // namespace dkb::km
