#ifndef DKB_KM_WORKSPACE_H_
#define DKB_KM_WORKSPACE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "km/analysis/analyzer.h"

namespace dkb::km {

/// Workspace D/KB Manager (paper §3.2.2): the memory-resident rule
/// environment the user edits before committing to the Stored D/KB.
///
/// Workspace rules may refer to predicates defined in the Stored D/KB and
/// vice versa; the query compiler resolves the union.
class Workspace {
 public:
  Workspace() = default;

  /// Adds a rule; duplicate clauses (structural equality) are ignored.
  /// Facts are rejected — ground facts belong in the extensional database.
  Status AddRule(datalog::Rule rule);

  /// Removes a rule by structural equality; false if absent.
  bool RemoveRule(const datalog::Rule& rule);

  void Clear() { rules_.clear(); }

  const std::vector<datalog::Rule>& rules() const { return rules_; }
  size_t num_rules() const { return rules_.size(); }

  /// Rules whose head predicate is `pred`.
  std::vector<datalog::Rule> RulesFor(const std::string& pred) const;

  /// Predicates defined by at least one workspace rule.
  std::set<std::string> HeadPredicates() const;

  /// Predicates appearing in rule bodies but defined by no workspace rule
  /// (they must be base predicates or Stored-D/KB derived predicates).
  std::set<std::string> UndefinedBodyPredicates() const;

  /// Runs the goal-independent static-analysis passes (duplicate rules,
  /// unsatisfiable bodies, definedness, stratification) over the workspace
  /// rules. `base_predicates` lists the predicates known to be defined
  /// outside the workspace (EDB relations, Stored-D/KB heads). The
  /// workspace itself is not modified; pruning decisions stay with the
  /// compiler.
  std::vector<analysis::Diagnostic> Lint(
      const std::set<std::string>& base_predicates) const;

 private:
  std::vector<datalog::Rule> rules_;
};

}  // namespace dkb::km

#endif  // DKB_KM_WORKSPACE_H_
