#ifndef DKB_KM_TYPE_CHECKER_H_
#define DKB_KM_TYPE_CHECKER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/ast.h"

namespace dkb::km {

/// Column-type signature of a predicate.
using PredicateTypes = std::vector<DataType>;

/// Result of the Semantic Checker (paper §3.2.4): inferred column types for
/// every derived predicate.
struct TypeCheckResult {
  std::map<std::string, PredicateTypes> derived_types;
};

/// Runs both semantic checks of the paper over the relevant rule set:
///
///  1. Definedness — every predicate appearing in a body is either a base
///     predicate (key of `base_types`) or defined by some rule in `rules`.
///  2. Type inference + consistency — infers the column types of every
///     derived predicate by propagating base-predicate types through rule
///     bodies to heads (to a fixpoint, so recursion and mutual recursion
///     work), checking that
///       * the same arity is used everywhere for a predicate,
///       * a variable is used at positions of a single type within a rule,
///       * all rules defining a predicate infer identical column types,
///       * every head variable appears in the body (range restriction),
///       * every column's type is determined (no type-less predicate).
///
/// Rules with empty bodies and constant heads (seed facts injected by the
/// magic rewrite) contribute their constants' types directly.
Result<TypeCheckResult> TypeCheck(
    const std::vector<datalog::Rule>& rules,
    const std::map<std::string, PredicateTypes>& base_types);

}  // namespace dkb::km

#endif  // DKB_KM_TYPE_CHECKER_H_
