#include "km/pcg.h"

#include <deque>

namespace dkb::km {

void Pcg::AddRule(const datalog::Rule& rule) {
  AddNode(rule.head.predicate);
  for (const datalog::Atom& atom : rule.body) {
    if (atom.is_builtin()) continue;  // comparison filters are not predicates
    AddNode(atom.predicate);
    adjacency_[rule.head.predicate].insert(atom.predicate);
  }
}

void Pcg::AddNode(const std::string& predicate) {
  adjacency_.try_emplace(predicate);
}

const std::set<std::string>& Pcg::Successors(
    const std::string& predicate) const {
  static const std::set<std::string>* kEmpty = new std::set<std::string>();
  auto it = adjacency_.find(predicate);
  if (it == adjacency_.end()) return *kEmpty;
  return it->second;
}

std::set<std::string> Pcg::Reachable(const std::string& predicate) const {
  return ReachableFrom({predicate});
}

std::set<std::string> Pcg::ReachableFrom(
    const std::set<std::string>& from) const {
  std::set<std::string> visited;
  std::deque<std::string> frontier;
  for (const std::string& p : from) {
    for (const std::string& succ : Successors(p)) {
      if (visited.insert(succ).second) frontier.push_back(succ);
    }
  }
  while (!frontier.empty()) {
    std::string p = std::move(frontier.front());
    frontier.pop_front();
    for (const std::string& succ : Successors(p)) {
      if (visited.insert(succ).second) frontier.push_back(succ);
    }
  }
  return visited;
}

std::vector<std::pair<std::string, std::string>> Pcg::TransitiveClosure()
    const {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& [pred, succs] : adjacency_) {
    (void)succs;
    for (const std::string& to : Reachable(pred)) {
      pairs.emplace_back(pred, to);
    }
  }
  return pairs;
}

std::vector<std::string> Pcg::Nodes() const {
  std::vector<std::string> out;
  out.reserve(adjacency_.size());
  for (const auto& [pred, succs] : adjacency_) {
    (void)succs;
    out.push_back(pred);
  }
  return out;
}

size_t Pcg::num_edges() const {
  size_t n = 0;
  for (const auto& [pred, succs] : adjacency_) {
    (void)pred;
    n += succs.size();
  }
  return n;
}

}  // namespace dkb::km
