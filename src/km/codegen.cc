#include "km/codegen.h"

#include "km/naming.h"

namespace dkb::km {

namespace {

PredicateBinding MakeBinding(const std::string& pred,
                             const PredicateTypes& types, bool is_base) {
  PredicateBinding b;
  b.pred = pred;
  b.table = is_base ? EdbTableName(pred) : IdbTableName(pred);
  b.types = types;
  b.is_base = is_base;
  for (size_t i = 0; i < types.size(); ++i) {
    b.columns.push_back(IdbColumnName(i));
  }
  return b;
}

std::string CreateTableSql(const PredicateBinding& b) {
  std::string ddl = "CREATE TABLE " + b.table + " (";
  for (size_t i = 0; i < b.columns.size(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += b.columns[i];
    ddl += b.types[i] == DataType::kInteger ? " INT" : " VARCHAR";
  }
  ddl += ")";
  return ddl;
}

}  // namespace

std::vector<std::string> QueryProgram::AllSqlTexts() const {
  std::vector<std::string> out;
  out.insert(out.end(), create_statements.begin(), create_statements.end());
  for (const ProgramNode& node : nodes) {
    for (const CompiledRule& cr : node.exit_rules) {
      if (!cr.select_sql.empty()) out.push_back(cr.select_sql);
    }
  }
  if (!final_select.empty()) out.push_back(final_select);
  return out;
}

Result<QueryProgram> GenerateProgram(
    const EvaluationOrder& order,
    const std::map<std::string, PredicateTypes>& derived_types,
    const std::map<std::string, PredicateTypes>& base_types,
    const datalog::Atom& query) {
  QueryProgram program;
  program.query = query;

  // Bindings: base predicates referenced by rules plus (possibly) the query
  // predicate itself; derived predicates from the evaluation order.
  for (const std::string& pred : order.base_predicates) {
    auto it = base_types.find(pred);
    if (it == base_types.end()) {
      return Status::SemanticError("predicate " + pred +
                                   " is neither defined by rules nor a "
                                   "known base predicate");
    }
    program.bindings.emplace(pred, MakeBinding(pred, it->second, true));
  }
  for (const std::string& pred : order.derived_predicates) {
    auto it = derived_types.find(pred);
    if (it == derived_types.end()) {
      return Status::Internal("no inferred types for derived predicate " +
                              pred);
    }
    PredicateBinding b = MakeBinding(pred, it->second, false);
    program.create_statements.push_back(CreateTableSql(b));
    program.drop_statements.push_back("DROP TABLE IF EXISTS " + b.table);
    program.bindings.emplace(pred, std::move(b));
  }
  if (program.bindings.count(query.predicate) == 0) {
    auto it = base_types.find(query.predicate);
    if (it == base_types.end()) {
      return Status::SemanticError("query predicate " + query.predicate +
                                   " is neither defined by rules nor a "
                                   "known base predicate");
    }
    program.bindings.emplace(query.predicate,
                             MakeBinding(query.predicate, it->second, true));
  }

  // Resolver used for exit/non-recursive rule SQL: every predicate maps to
  // its canonical relation.
  BindingResolver canonical = [&program](const datalog::Atom& atom,
                                         size_t) -> Result<RelationBinding> {
    auto it = program.bindings.find(atom.predicate);
    if (it == program.bindings.end()) {
      return Status::Internal("no binding for predicate " + atom.predicate);
    }
    return it->second.AsRelation();
  };

  for (const EvalNode& eval_node : order.nodes) {
    ProgramNode node;
    node.is_clique = eval_node.kind == EvalNode::Kind::kClique;
    const std::vector<datalog::Rule>* flat_rules = nullptr;
    if (node.is_clique) {
      node.predicates = eval_node.clique.predicates;
      node.recursive_rules = eval_node.clique.recursive_rules;
      flat_rules = &eval_node.clique.exit_rules;
    } else {
      node.predicates = {eval_node.predicate};
      flat_rules = &eval_node.rules;
    }
    for (const datalog::Rule& rule : *flat_rules) {
      CompiledRule cr;
      cr.rule = rule;
      bool has_negation = false;
      for (const datalog::Atom& atom : rule.body) {
        if (atom.negated) has_negation = true;
      }
      if (rule.body.empty() || has_negation) {
        // Seed facts get a VALUES insert; negated rules go through the
        // run-time binding-table pipeline. Both signal via empty SQL.
        cr.select_sql = "";
      } else {
        DKB_ASSIGN_OR_RETURN(cr.select_sql, RuleToSelect(rule, canonical));
      }
      node.exit_rules.push_back(std::move(cr));
    }
    program.nodes.push_back(std::move(node));
  }

  // Final answer query over the query predicate's relation.
  const PredicateBinding& qb = program.bindings.at(query.predicate);
  if (query.arity() != qb.types.size()) {
    return Status::SemanticError(
        "query " + query.ToString() + " has arity " +
        std::to_string(query.arity()) + " but predicate " + query.predicate +
        " has arity " + std::to_string(qb.types.size()));
  }
  std::vector<std::string> projections;
  std::vector<std::string> conjuncts;
  std::map<std::string, std::string> var_cols;  // variable -> first column
  for (size_t i = 0; i < query.args.size(); ++i) {
    const datalog::Term& t = query.args[i];
    if (t.is_constant()) {
      if (t.value.type() != qb.types[i]) {
        return Status::TypeError("query constant " + t.ToString() +
                                 " does not match column type " +
                                 std::string(DataTypeName(qb.types[i])) +
                                 " of " + query.predicate);
      }
      conjuncts.push_back(qb.columns[i] + " = " + t.value.ToSqlLiteral());
      continue;
    }
    auto [it, inserted] = var_cols.emplace(t.var, qb.columns[i]);
    if (inserted) {
      projections.push_back(qb.columns[i] + " AS " + t.var);
      program.answer_columns.push_back(t.var);
    } else {
      conjuncts.push_back(qb.columns[i] + " = " + it->second);
    }
  }
  std::string select;
  if (projections.empty()) {
    program.boolean_query = true;
    select = "SELECT COUNT(*) FROM " + qb.table;
  } else {
    select = "SELECT DISTINCT ";
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i > 0) select += ", ";
      select += projections[i];
    }
    select += " FROM " + qb.table;
  }
  if (!conjuncts.empty()) {
    select += " WHERE ";
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) select += " AND ";
      select += conjuncts[i];
    }
  }
  program.final_select = std::move(select);
  return program;
}

}  // namespace dkb::km
