#ifndef DKB_KM_RULE_SQL_H_
#define DKB_KM_RULE_SQL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "storage/schema.h"

namespace dkb::km {

/// How a predicate occurrence maps onto a stored relation.
struct RelationBinding {
  std::string table;                 // SQL table name
  std::vector<std::string> columns;  // column names, by argument position
  std::vector<DataType> types;       // column types (required for rules
                                     // with negated body atoms)
};

/// Resolves the relation to read for a body atom. `body_index` is the
/// position of the atom within the rule body; the LFP evaluators use it to
/// substitute delta/previous tables for individual occurrences of recursive
/// predicates when generating semi-naive differentials.
using BindingResolver =
    std::function<Result<RelationBinding>(const datalog::Atom& atom,
                                          size_t body_index)>;

/// Translates the body of a Horn clause into the SQL SELECT that computes
/// the head relation (paper §3.2.6 / §3.3): one FROM entry per body atom,
/// equality conjuncts for shared variables, literal conjuncts for body
/// constants, and head arguments as the projection list.
///
/// Example: for `anc(X, Y) :- par(X, Z), anc(Z, Y)` with par -> edb_par
/// (columns c0, c1) and anc -> idb_anc (c0, c1):
///
///   SELECT DISTINCT r0.c0, r1.c1 FROM edb_par r0, idb_anc r1
///   WHERE r1.c0 = r0.c1
///
/// Returns SemanticError for unsafe rules (head variable not in body) and
/// InvalidArgument for rules with negated body atoms (use RuleToSqlProgram).
Result<std::string> RuleToSelect(const datalog::Rule& rule,
                                 const BindingResolver& resolver);

/// Multi-statement SQL program evaluating one rule, supporting stratified
/// negation via a binding-table pipeline:
///
///   bind_0 := SELECT DISTINCT <all positive-part variables>
///             FROM <positive atoms> WHERE <joins & constants>
///   bind_i := bind_{i-1} EXCEPT (bindings matching the i-th negated atom)
///   target += SELECT DISTINCT <head projection> FROM bind_last
///             EXCEPT (SELECT * FROM target)
///
/// The caller must create `bind_tables` before running `statements` (in
/// order) and drop them afterwards. Rules without negation produce no bind
/// tables and a single statement. The final statement always dedups against
/// the current contents of `target_table`.
struct RuleSqlProgram {
  struct BindTable {
    std::string name;
    Schema schema;
  };
  std::vector<BindTable> bind_tables;
  std::vector<std::string> statements;
};

/// `bind_prefix` makes the temp binding-table names unique per call site
/// (e.g. "#r3_v0"). Resolver bindings must carry column types when the rule
/// has negated atoms.
Result<RuleSqlProgram> RuleToSqlProgram(const datalog::Rule& rule,
                                        const BindingResolver& resolver,
                                        const std::string& target_table,
                                        const std::string& bind_prefix);

}  // namespace dkb::km

#endif  // DKB_KM_RULE_SQL_H_
