#include "km/scc.h"

#include <algorithm>
#include <map>

namespace dkb::km {

namespace {

/// Iterative Tarjan (explicit stack) so deep rule chains cannot overflow the
/// call stack; synthetic rule bases in the benches create chains thousands
/// of predicates long.
class TarjanState {
 public:
  explicit TarjanState(const Pcg& pcg) : pcg_(pcg) {}

  std::vector<std::vector<std::string>> Run() {
    for (const std::string& node : pcg_.Nodes()) {
      if (index_.count(node) == 0) Visit(node);
    }
    return components_;
  }

 private:
  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator next;
    std::set<std::string>::const_iterator end;
  };

  void Visit(const std::string& root) {
    std::vector<Frame> frames;
    Push(root, &frames);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next != frame.end) {
        const std::string& succ = *frame.next++;
        if (index_.count(succ) == 0) {
          Push(succ, &frames);
        } else if (on_stack_.count(succ) > 0) {
          lowlink_[frame.node] =
              std::min(lowlink_[frame.node], index_[succ]);
        }
        continue;
      }
      // Finished all successors of frame.node.
      std::string node = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().node] =
            std::min(lowlink_[frames.back().node], lowlink_[node]);
      }
      if (lowlink_[node] == index_[node]) {
        std::vector<std::string> component;
        while (true) {
          std::string top = stack_.back();
          stack_.pop_back();
          on_stack_.erase(top);
          component.push_back(top);
          if (top == node) break;
        }
        std::sort(component.begin(), component.end());
        components_.push_back(std::move(component));
      }
    }
  }

  void Push(const std::string& node, std::vector<Frame>* frames) {
    index_[node] = counter_;
    lowlink_[node] = counter_;
    ++counter_;
    stack_.push_back(node);
    on_stack_.insert(node);
    const auto& succs = pcg_.Successors(node);
    frames->push_back(Frame{node, succs.begin(), succs.end()});
  }

  const Pcg& pcg_;
  int counter_ = 0;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> components_;
};

}  // namespace

std::vector<std::vector<std::string>> StronglyConnectedComponents(
    const Pcg& pcg) {
  return TarjanState(pcg).Run();
}

bool IsRecursiveComponent(const Pcg& pcg,
                          const std::vector<std::string>& component) {
  if (component.size() > 1) return true;
  const std::string& p = component[0];
  return pcg.Successors(p).count(p) > 0;
}

}  // namespace dkb::km
