#ifndef DKB_KM_STORED_DKB_H_
#define DKB_KM_STORED_DKB_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "km/type_checker.h"
#include "rdbms/database.h"

namespace dkb::km {

/// Stored D/KB Manager (paper §3.2.3 / §4.1).
///
/// Both the intensional database (rules) and the extensional database
/// (facts) live inside the relational DBMS:
///
///   idbrel(predname, arity)                IDB data dictionary
///   idbcol(predname, colnum, coltype)      IDB column types
///   rulesource(headpredname, ruleid, ruletext)  source form of rules
///   reachablepreds(frompredname, topredname)    compiled form: transitive
///                                               closure of the stored PCG
///   edbrel(predname, arity)                EDB data dictionary
///   edbcol(predname, colnum, coltype)      EDB column types
///   edb_<pred>(c0, ..., ck)                one relation per base predicate
///
/// Indexes are placed on rulesource(headpredname),
/// reachablepreds(frompredname) and reachablepreds(topredname) — the paper
/// found these make relevant-rule extraction insensitive to the total
/// number of stored rules (Test 1).
class StoredDkb {
 public:
  struct Options {
    /// Maintain `reachablepreds` (compiled-form rule storage). When false,
    /// only `rulesource` is kept and extraction walks the rule graph with
    /// repeated dictionary queries (paper Fig 15's "without compiled form").
    bool compiled_rule_storage = true;
    /// Create a hash index on the first column of every EDB relation
    /// (access path for bound-first-argument queries like ancestor^bf).
    bool index_edb_first_column = true;
  };

  explicit StoredDkb(Database* db) : StoredDkb(db, Options{}) {}
  StoredDkb(Database* db, Options options);

  StoredDkb(const StoredDkb&) = delete;
  StoredDkb& operator=(const StoredDkb&) = delete;

  /// Creates the dictionary/rule relations and their indexes.
  Status Initialize();

  /// Rebuilds this manager's in-memory state (base-predicate cache, next
  /// rule id) from an already-populated database — used after loading a
  /// session snapshot instead of Initialize().
  Status RestoreFromDatabase();

  const Options& options() const { return options_; }
  Database* db() { return db_; }

  // -------------------------------------------------------------------------
  // Extensional database
  // -------------------------------------------------------------------------

  /// Creates the edb_<pred> relation and registers it in the EDB dictionary.
  Status DefineBasePredicate(const std::string& pred,
                             const PredicateTypes& types);

  /// True if `pred` is a registered base predicate.
  bool HasBasePredicate(const std::string& pred) const;

  /// Bulk-loads facts through the embedded interface (validated inserts).
  Status InsertFacts(const std::string& pred,
                     const std::vector<Tuple>& tuples);

  /// Deletes all facts of `pred` (relation and dictionary entry remain).
  Status ClearFacts(const std::string& pred);

  /// Reads the EDB data dictionary for `preds` via SQL (the paper's t_read
  /// operation). Unknown predicates are simply absent from the result.
  Result<std::map<std::string, PredicateTypes>> ReadEdbDictionary(
      const std::set<std::string>& preds);

  /// Reads the IDB data dictionary for `preds` via SQL.
  Result<std::map<std::string, PredicateTypes>> ReadIdbDictionary(
      const std::set<std::string>& preds);

  // -------------------------------------------------------------------------
  // Intensional database (rule storage)
  // -------------------------------------------------------------------------

  /// Extracts all stored rules relevant to `preds`: rules whose head is in
  /// `preds` or reachable from a predicate of `preds` (paper §4.1).
  /// With compiled_rule_storage this is the paper's single indexed
  /// rulesource ⋈ reachablepreds query; without it, an iterative frontier
  /// walk issuing one rulesource query per level.
  Result<std::vector<datalog::Rule>> ExtractRelevantRules(
      const std::set<std::string>& preds);

  /// Appends one rule to rulesource (skips structurally identical
  /// duplicates). Returns true if stored, false if it already existed.
  Result<bool> StoreRuleSource(const datalog::Rule& rule);

  /// All stored rules (diagnostics / tests).
  Result<std::vector<datalog::Rule>> AllStoredRules();

  Result<int64_t> NumStoredRules();

  /// Registers/updates the IDB dictionary entry for a derived predicate.
  Status UpsertIdbDictionary(const std::string& pred,
                             const PredicateTypes& types);

  /// Batched form: replaces the dictionary entries of all `preds` with four
  /// statements total (the update processor maintains dozens of predicates
  /// per commit).
  Status UpsertIdbDictionaryBatch(
      const std::map<std::string, PredicateTypes>& preds);

  /// Batched reachability merge: one lookup plus one multi-row insert for
  /// all (from -> to-set) pairs.
  Status MergeReachableBatch(
      const std::map<std::string, std::set<std::string>>& pairs);

  /// Replaces the reachablepreds rows with frompredname == `from`.
  Status ReplaceReachable(const std::string& from,
                          const std::set<std::string>& to);

  /// Adds reachablepreds rows (from, t) for every t in `to` that is not
  /// already recorded. Rule storage is add-only in the testbed, so
  /// reachability grows monotonically and merging is sufficient.
  Status MergeReachable(const std::string& from,
                        const std::set<std::string>& to);

  /// Predicates reachable from `preds` according to reachablepreds.
  Result<std::set<std::string>> StoredReachable(
      const std::set<std::string>& preds);

  /// Predicates that can reach one of `preds` according to reachablepreds
  /// (the rules affected upstream by an update to `preds`).
  Result<std::set<std::string>> StoredUpstream(
      const std::set<std::string>& preds);

  /// Stored rules whose head predicate is in `preds` (no closure).
  Result<std::vector<datalog::Rule>> RulesForHeads(
      const std::set<std::string>& preds);

 private:
  static std::string InListSql(const std::set<std::string>& values);

  Database* db_;
  Options options_;
  int64_t next_rule_id_ = 1;
  std::set<std::string> base_preds_;  // cache of EDB dictionary keys
  // Dictionary-access statements reused across every StoreRuleSource call
  // (prepared lazily on first use; the rulesource schema never changes).
  PreparedStatement select_rule_by_head_;
  PreparedStatement insert_rule_;
};

}  // namespace dkb::km

#endif  // DKB_KM_STORED_DKB_H_
