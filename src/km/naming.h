#ifndef DKB_KM_NAMING_H_
#define DKB_KM_NAMING_H_

#include <string>

namespace dkb::km {

/// Table-naming conventions shared by the Stored DKB manager, the code
/// generator, and the run time library.
///
/// Base (EDB) predicate p   -> table  edb_p   (columns c0..c{k-1})
/// Derived (IDB) predicate p -> table idb_p   (columns c0..c{k-1})
/// Run-time temporaries      -> #p_delta / #p_prev / #p_new / #p_diff

inline std::string EdbTableName(const std::string& pred) {
  return "edb_" + pred;
}

inline std::string IdbTableName(const std::string& pred) {
  return "idb_" + pred;
}

inline std::string IdbColumnName(size_t i) { return "c" + std::to_string(i); }

inline std::string DeltaTableName(const std::string& pred) {
  return "#" + pred + "_delta";
}

inline std::string PrevTableName(const std::string& pred) {
  return "#" + pred + "_prev";
}

inline std::string NewTableName(const std::string& pred) {
  return "#" + pred + "_new";
}

inline std::string DiffTableName(const std::string& pred) {
  return "#" + pred + "_diff";
}

}  // namespace dkb::km

#endif  // DKB_KM_NAMING_H_
