#ifndef DKB_KM_PCG_H_
#define DKB_KM_PCG_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/ast.h"

namespace dkb::km {

/// Predicate Connection Graph (paper §2.2).
///
/// Nodes are predicate names. For every rule `p :- q1, ..., qn` there is a
/// directed edge p -> qi for each body atom: the predicates *reachable from*
/// p are exactly the predicates needed to solve p.
class Pcg {
 public:
  Pcg() = default;

  /// Adds edges head -> body-predicate for one rule; registers all
  /// predicates as nodes (facts register just the head).
  void AddRule(const datalog::Rule& rule);

  /// Adds an isolated node (used for query predicates and base predicates
  /// that appear in no rule).
  void AddNode(const std::string& predicate);

  bool HasNode(const std::string& predicate) const {
    return adjacency_.count(predicate) > 0;
  }

  /// Direct successors (body predicates of rules defining `predicate`).
  const std::set<std::string>& Successors(const std::string& predicate) const;

  /// All predicates reachable from `predicate` (excluding itself unless it
  /// lies on a cycle through itself).
  std::set<std::string> Reachable(const std::string& predicate) const;

  /// All predicates reachable from any of `from` (same self-inclusion rule).
  std::set<std::string> ReachableFrom(const std::set<std::string>& from) const;

  /// The full transitive closure as (from, to) pairs; `to` reachable from
  /// `from` in one or more steps. This is the content of the paper's
  /// `reachablepreds` compiled rule-storage relation.
  std::vector<std::pair<std::string, std::string>> TransitiveClosure() const;

  /// All node names.
  std::vector<std::string> Nodes() const;

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const;

 private:
  std::map<std::string, std::set<std::string>> adjacency_;
};

}  // namespace dkb::km

#endif  // DKB_KM_PCG_H_
