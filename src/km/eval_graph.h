#ifndef DKB_KM_EVAL_GRAPH_H_
#define DKB_KM_EVAL_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "km/pcg.h"

namespace dkb::km {

/// A clique (paper §2.2): a set of mutually-recursive predicates together
/// with the rules defining them, split into recursive rules (those whose
/// body mentions a predicate of the clique) and exit rules.
struct Clique {
  std::vector<std::string> predicates;
  std::vector<datalog::Rule> recursive_rules;
  std::vector<datalog::Rule> exit_rules;
};

/// One entry of the evaluation order list: either a clique or a single
/// non-recursive derived predicate with its defining rules.
struct EvalNode {
  enum class Kind { kClique, kPredicate };

  Kind kind = Kind::kPredicate;
  // kClique:
  Clique clique;
  // kPredicate:
  std::string predicate;
  std::vector<datalog::Rule> rules;

  /// Predicates defined by this node.
  std::vector<std::string> DefinedPredicates() const;
};

/// The evaluation order list (paper §2.3): nodes topologically sorted so
/// that every node appears after all nodes it depends on.
struct EvaluationOrder {
  std::vector<EvalNode> nodes;
  /// Derived predicates covered by `nodes`.
  std::set<std::string> derived_predicates;
  /// Base (EDB) predicates referenced by the rules.
  std::set<std::string> base_predicates;
};

/// Partitions `rules` into cliques and non-recursive derived predicates and
/// produces the evaluation order list.
///
/// `derived` lists the predicates defined by rules (everything else
/// appearing in a body is treated as a base predicate). Returns
/// SemanticError if a derived predicate has no defining rule.
Result<EvaluationOrder> BuildEvaluationOrder(
    const std::vector<datalog::Rule>& rules,
    const std::set<std::string>& derived);

}  // namespace dkb::km

#endif  // DKB_KM_EVAL_GRAPH_H_
