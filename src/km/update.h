#ifndef DKB_KM_UPDATE_H_
#define DKB_KM_UPDATE_H_

#include <cstdint>

#include "common/status.h"
#include "km/stored_dkb.h"
#include "km/workspace.h"

namespace dkb::km {

/// Per-update timing breakdown (paper §5.3.2, Table 8).
struct UpdateStats {
  int64_t t_extract_us = 0;    // extract rules relevant to the update
  int64_t t_tc_us = 0;         // incremental transitive closure of the PCG
  int64_t t_typecheck_us = 0;  // semantic/type check of the composite
  int64_t t_dict_us = 0;       // idbrel / idbcol / reachablepreds updates
  int64_t t_store_us = 0;      // rulesource inserts (source form)

  int64_t rules_stored = 0;    // new rulesource rows
  int64_t closure_edges = 0;   // |TC| of the composite PCG (the paper's R_c)
  int64_t composite_rules = 0;

  int64_t total_us() const {
    return t_extract_us + t_tc_us + t_typecheck_us + t_dict_us + t_store_us;
  }
};

/// Stored D/KB update processor (paper §4.3): commits the Workspace rules
/// into the Stored DKB, incrementally maintaining the compiled rule-storage
/// structures.
///
/// With compiled_rule_storage enabled, the transitive closure is recomputed
/// only over the *composite* PCG (workspace rules plus the stored rules
/// relevant to them) — not over the whole stored rule base. Without it,
/// only the source form is stored (the fast-update configuration of
/// Fig 15).
class UpdateProcessor {
 public:
  explicit UpdateProcessor(StoredDkb* stored) : stored_(stored) {}

  Result<UpdateStats> Update(const Workspace& workspace);

 private:
  StoredDkb* stored_;
};

}  // namespace dkb::km

#endif  // DKB_KM_UPDATE_H_
