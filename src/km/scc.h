#ifndef DKB_KM_SCC_H_
#define DKB_KM_SCC_H_

#include <string>
#include <vector>

#include "km/pcg.h"

namespace dkb::km {

/// Tarjan's strongly-connected-components over a PCG.
///
/// Components are returned in reverse topological order of the condensation
/// with respect to the PCG's head->body edges: a component appears *before*
/// every component that depends on it. That is exactly the paper's
/// evaluation order (callees first).
std::vector<std::vector<std::string>> StronglyConnectedComponents(
    const Pcg& pcg);

/// True if `component` is recursive: more than one predicate, or a single
/// predicate with a self-loop in the PCG.
bool IsRecursiveComponent(const Pcg& pcg,
                          const std::vector<std::string>& component);

}  // namespace dkb::km

#endif  // DKB_KM_SCC_H_
