#include "km/eval_graph.h"

#include <map>

#include "km/analysis/stratify.h"
#include "km/scc.h"

namespace dkb::km {

std::vector<std::string> EvalNode::DefinedPredicates() const {
  if (kind == Kind::kClique) return clique.predicates;
  return {predicate};
}

Result<EvaluationOrder> BuildEvaluationOrder(
    const std::vector<datalog::Rule>& rules,
    const std::set<std::string>& derived) {
  EvaluationOrder order;

  // Stratification is checked up front by the shared analysis pass (the
  // static analyzer reports it as DKB-E001 earlier in the pipeline; this
  // call is the backstop for direct BuildEvaluationOrder users).
  DKB_RETURN_IF_ERROR(analysis::CheckStratified(rules));

  Pcg pcg;
  std::map<std::string, std::vector<const datalog::Rule*>> rules_by_head;
  for (const datalog::Rule& rule : rules) {
    pcg.AddRule(rule);
    rules_by_head[rule.head.predicate].push_back(&rule);
    for (const datalog::Atom& atom : rule.body) {
      if (!atom.is_builtin() && derived.count(atom.predicate) == 0) {
        order.base_predicates.insert(atom.predicate);
      }
    }
  }

  for (const std::string& pred : derived) {
    if (rules_by_head.count(pred) == 0) {
      return Status::SemanticError("derived predicate " + pred +
                                   " has no defining rule");
    }
  }

  // Tarjan returns components callees-first, which is the evaluation order.
  std::vector<std::vector<std::string>> components =
      StronglyConnectedComponents(pcg);

  for (const std::vector<std::string>& component : components) {
    // Skip components that define no derived predicate (pure EDB nodes).
    bool any_derived = false;
    for (const std::string& p : component) {
      if (derived.count(p) > 0) any_derived = true;
    }
    if (!any_derived) continue;
    // Mixed EDB/IDB components are impossible: EDB predicates have no
    // outgoing PCG edges, so they are always singleton components.
    for (const std::string& p : component) {
      if (derived.count(p) == 0) {
        return Status::Internal("component mixes base and derived: " + p);
      }
    }

    EvalNode node;
    if (IsRecursiveComponent(pcg, component)) {
      node.kind = EvalNode::Kind::kClique;
      node.clique.predicates = component;
      std::set<std::string> members(component.begin(), component.end());
      for (const std::string& p : component) {
        for (const datalog::Rule* rule : rules_by_head[p]) {
          bool recursive = false;
          for (const datalog::Atom& atom : rule->body) {
            if (members.count(atom.predicate) > 0) recursive = true;
          }
          if (recursive) {
            node.clique.recursive_rules.push_back(*rule);
          } else {
            node.clique.exit_rules.push_back(*rule);
          }
        }
      }
    } else {
      node.kind = EvalNode::Kind::kPredicate;
      node.predicate = component[0];
      for (const datalog::Rule* rule : rules_by_head[component[0]]) {
        node.rules.push_back(*rule);
      }
    }
    for (const std::string& p : component) {
      order.derived_predicates.insert(p);
    }
    order.nodes.push_back(std::move(node));
  }

  return order;
}

}  // namespace dkb::km
