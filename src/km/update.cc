#include "km/update.h"

#include <algorithm>

#include "common/timer.h"
#include "km/pcg.h"
#include "km/type_checker.h"

namespace dkb::km {

Result<UpdateStats> UpdateProcessor::Update(const Workspace& workspace) {
  UpdateStats stats;
  const std::vector<datalog::Rule>& idb_new = workspace.rules();

  if (!stored_->options().compiled_rule_storage) {
    // Without compiled rule-storage structures the update is simply the
    // time to store the source form of the rules (paper Fig 15).
    ScopedAccumulator acc(&stats.t_store_us);
    for (const datalog::Rule& rule : idb_new) {
      DKB_ASSIGN_OR_RETURN(bool added, stored_->StoreRuleSource(rule));
      if (added) ++stats.rules_stored;
    }
    return stats;
  }

  // Step 1 (t_extract): gather the portion of the stored DKB affected by
  // the update — the rules reachable *from* the update's predicates
  // (downstream) plus the rules of predicates that can reach them
  // (upstream; their reachability grows too).
  std::vector<datalog::Rule> composite = idb_new;
  auto merge_rules = [&composite](std::vector<datalog::Rule> more) {
    for (datalog::Rule& rule : more) {
      if (std::find(composite.begin(), composite.end(), rule) ==
          composite.end()) {
        composite.push_back(std::move(rule));
      }
    }
  };
  {
    ScopedAccumulator acc(&stats.t_extract_us);
    std::set<std::string> update_preds;
    for (const datalog::Rule& rule : idb_new) {
      update_preds.insert(rule.head.predicate);
      for (const datalog::Atom& atom : rule.body) {
        update_preds.insert(atom.predicate);
      }
    }
    DKB_ASSIGN_OR_RETURN(std::vector<datalog::Rule> downstream,
                         stored_->ExtractRelevantRules(update_preds));
    merge_rules(std::move(downstream));
    DKB_ASSIGN_OR_RETURN(std::set<std::string> upstream,
                         stored_->StoredUpstream(update_preds));
    DKB_ASSIGN_OR_RETURN(std::vector<datalog::Rule> upstream_rules,
                         stored_->RulesForHeads(upstream));
    merge_rules(std::move(upstream_rules));
  }
  stats.composite_rules = static_cast<int64_t>(composite.size());

  // Steps 2-3 (t_tc): transitive closure of the *composite* PCG only —
  // this is the incremental-maintenance saving the paper measures.
  Pcg pcg;
  std::vector<std::pair<std::string, std::string>> closure;
  std::set<std::string> heads;
  {
    ScopedAccumulator acc(&stats.t_tc_us);
    for (const datalog::Rule& rule : composite) {
      pcg.AddRule(rule);
      heads.insert(rule.head.predicate);
    }
    closure = pcg.TransitiveClosure();
    stats.closure_edges = static_cast<int64_t>(closure.size());
  }

  // Step 4 (t_typecheck): semantic/type check of the composite rule set.
  // Body predicates outside the composite are typed from the EDB or IDB
  // data dictionaries (upstream rules may reference derived predicates
  // whose defining rules are unaffected by this update).
  TypeCheckResult types;
  {
    ScopedAccumulator acc(&stats.t_typecheck_us);
    std::set<std::string> external;
    for (const datalog::Rule& rule : composite) {
      for (const datalog::Atom& atom : rule.body) {
        if (heads.count(atom.predicate) == 0) external.insert(atom.predicate);
      }
    }
    DKB_ASSIGN_OR_RETURN(auto known_types,
                         stored_->ReadEdbDictionary(external));
    std::set<std::string> missing;
    for (const std::string& p : external) {
      if (known_types.count(p) == 0) missing.insert(p);
    }
    DKB_ASSIGN_OR_RETURN(auto idb_types, stored_->ReadIdbDictionary(missing));
    for (auto& [pred, sig] : idb_types) {
      known_types.emplace(pred, std::move(sig));
    }
    for (const std::string& p : external) {
      if (known_types.count(p) == 0) {
        return Status::SemanticError(
            "update refers to unknown predicate " + p);
      }
    }
    DKB_ASSIGN_OR_RETURN(types, TypeCheck(composite, known_types));
  }

  // Steps 5-6 (t_dict): dictionary + compiled-form maintenance. Rule
  // storage is add-only, so reachability is merged monotonically.
  {
    ScopedAccumulator acc(&stats.t_dict_us);
    DKB_RETURN_IF_ERROR(
        stored_->UpsertIdbDictionaryBatch(types.derived_types));
    std::map<std::string, std::set<std::string>> by_from;
    for (const auto& [from, to] : closure) {
      if (heads.count(from) > 0) by_from[from].insert(to);
    }
    DKB_RETURN_IF_ERROR(stored_->MergeReachableBatch(by_from));
  }

  // Step 7 (t_store): store the source form of the new rules.
  {
    ScopedAccumulator acc(&stats.t_store_us);
    for (const datalog::Rule& rule : idb_new) {
      DKB_ASSIGN_OR_RETURN(bool added, stored_->StoreRuleSource(rule));
      if (added) ++stats.rules_stored;
    }
  }
  return stats;
}

}  // namespace dkb::km
