#ifndef DKB_KM_COMPILER_H_
#define DKB_KM_COMPILER_H_

#include <string>

#include "common/status.h"
#include "common/trace.h"
#include "datalog/ast.h"
#include "km/analysis/analyzer.h"
#include "km/codegen.h"
#include "km/stored_dkb.h"
#include "km/workspace.h"
#include "magic/magic_sets.h"

namespace dkb::km {

/// Per-compilation timing breakdown (paper §5.3.1.1, Table 4).
struct CompilationStats {
  /// Flight-recorder query id this compilation belongs to (copied from
  /// CompilerOptions::query_id; 0 when no recorder is attached).
  int64_t query_id = 0;
  int64_t t_setup_us = 0;    // query data structures, PCG, reachability
  int64_t t_extract_us = 0;  // relevant-rule extraction from the Stored DKB
  int64_t t_read_us = 0;     // data dictionary reads
  int64_t t_analyze_us = 0;  // static analysis (pruning, strata, adornments)
  int64_t t_opt_us = 0;      // magic sets rewrite (0 when disabled)
  int64_t t_eol_us = 0;      // cliques + evaluation order list
  int64_t t_sem_us = 0;      // semantic checks / type inference
  int64_t t_gen_us = 0;      // code (SQL program) generation
  int64_t t_comp_us = 0;     // "compile & link": parsing every generated
                             // SQL text (DESIGN.md substitution #2)

  int64_t rules_relevant = 0;          // |R| after closure
  int64_t rules_extracted_stored = 0;  // rules pulled from the Stored DKB
  int64_t preds_relevant = 0;          // |P| derived predicates
  int64_t rules_pruned = 0;            // rules dropped by static analysis

  bool magic_applied = false;          // rewrite actually changed the rules
  double estimated_selectivity = -1.0;  // adaptive mode only; -1 = not run

  int64_t total_us() const {
    return t_setup_us + t_extract_us + t_read_us + t_analyze_us + t_opt_us +
           t_eol_us + t_sem_us + t_gen_us + t_comp_us;
  }
};

/// Whether to apply the generalized magic sets rewrite.
enum class MagicMode {
  kOff,
  kOn,
  /// The dynamic strategy the paper proposes but did not implement
  /// (conclusion #4 / §4.2 step 5): estimate the query's selectivity with a
  /// bounded exploration of the extensional database from the query
  /// constants, and enable the optimization only when the estimated
  /// relevant fraction is below CompilerOptions::adaptive_threshold.
  kAdaptive,
};

struct CompilerOptions {
  /// Flight-recorder query id to stamp into CompilationStats (observability
  /// correlation only; does not affect compilation).
  int64_t query_id = 0;
  MagicMode magic_mode = MagicMode::kOff;
  /// Rewrite flavour when magic is applied (generalized vs supplementary).
  magic::MagicVariant magic_variant = magic::MagicVariant::kGeneralized;
  /// Adaptive mode: apply magic when est. D_rel/D_tot < this threshold.
  double adaptive_threshold = 0.6;
  /// Run the static analyzer (km/analysis) before optimization: prune
  /// duplicate/unsatisfiable/dead rules and bound the magic rewrite to the
  /// achievable adornment set. On by default; off reproduces the
  /// pre-analysis pipeline (ablation).
  bool analyze = true;
  /// Parent trace span for this compilation; when set, each Table 4 phase
  /// (setup, extract, read, ...) becomes a child span. Null (the default)
  /// disables tracing at the cost of a pointer test per phase.
  trace::TraceSpan* span = nullptr;
};

/// The result of D/KB query compilation: the object program plus the rule
/// set it was generated from.
struct CompiledQuery {
  datalog::Atom original_query;
  QueryProgram program;
  std::vector<datalog::Rule> relevant_rules;  // pre-rewrite relevant rules
  /// Static-analysis output over the relevant rules: diagnostics, strata,
  /// achievable adornments, cardinality annotations, and the pruned rule
  /// set that was actually compiled (analysis.rules).
  analysis::AnalysisResult analysis;
};

/// D/KB query compiler implementing the processing algorithm of paper §4.2:
/// reachability over the union of Workspace and Stored DKBs, relevant-rule
/// extraction, dictionary reads, optional magic optimization, clique
/// analysis and evaluation ordering, semantic checks, and code generation.
class QueryCompiler {
 public:
  QueryCompiler(const Workspace* workspace, StoredDkb* stored)
      : workspace_(workspace), stored_(stored) {}

  Result<CompiledQuery> Compile(const datalog::Atom& query,
                                const CompilerOptions& options,
                                CompilationStats* stats);

 private:
  const Workspace* workspace_;
  StoredDkb* stored_;
};

}  // namespace dkb::km

#endif  // DKB_KM_COMPILER_H_
