#include "km/stored_dkb.h"

#include "datalog/parser.h"
#include "km/naming.h"

namespace dkb::km {

namespace {

/// Renders a value set as SQL string literals for an IN list.
std::string QuoteList(const std::set<std::string>& values) {
  std::string out;
  for (const std::string& v : values) {
    if (!out.empty()) out += ", ";
    out += Value(v).ToSqlLiteral();
  }
  return out;
}

const char* TypeToDict(DataType t) {
  return t == DataType::kInteger ? "integer" : "char";
}

Result<DataType> DictToType(const std::string& s) {
  if (s == "integer") return DataType::kInteger;
  if (s == "char") return DataType::kVarchar;
  return Status::Internal("unknown dictionary type '" + s + "'");
}

}  // namespace

StoredDkb::StoredDkb(Database* db, Options options)
    : db_(db), options_(options) {}

Status StoredDkb::Initialize() {
  DKB_RETURN_IF_ERROR(db_->ExecuteAll(
      "CREATE TABLE idbrel (predname VARCHAR, arity INT);"
      "CREATE TABLE idbcol (predname VARCHAR, colnum INT, coltype VARCHAR);"
      "CREATE TABLE rulesource (headpredname VARCHAR, ruleid INT,"
      "                         ruletext VARCHAR);"
      "CREATE TABLE reachablepreds (frompredname VARCHAR,"
      "                             topredname VARCHAR);"
      "CREATE TABLE edbrel (predname VARCHAR, arity INT);"
      "CREATE TABLE edbcol (predname VARCHAR, colnum INT, coltype VARCHAR);"
      "CREATE INDEX rulesource_head_ix ON rulesource (headpredname);"
      "CREATE INDEX reachable_from_ix ON reachablepreds (frompredname);"
      "CREATE INDEX reachable_to_ix ON reachablepreds (topredname);"
      "CREATE INDEX idbrel_ix ON idbrel (predname);"
      "CREATE INDEX idbcol_ix ON idbcol (predname);"
      "CREATE INDEX edbrel_ix ON edbrel (predname);"
      "CREATE INDEX edbcol_ix ON edbcol (predname);"));
  return Status::OK();
}

Status StoredDkb::RestoreFromDatabase() {
  for (const char* required : {"edbrel", "rulesource", "reachablepreds"}) {
    if (!db_->catalog().HasTable(required)) {
      return Status::InvalidArgument(
          std::string("database is missing stored-DKB relation ") + required);
    }
  }
  base_preds_.clear();
  DKB_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                       db_->QueryRows("SELECT predname FROM edbrel"));
  for (const Tuple& row : rows) base_preds_.insert(row[0].as_string());
  DKB_ASSIGN_OR_RETURN(std::vector<Tuple> ids,
                       db_->QueryRows("SELECT ruleid FROM rulesource"));
  next_rule_id_ = 1;
  for (const Tuple& row : ids) {
    next_rule_id_ = std::max(next_rule_id_, row[0].as_int() + 1);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Extensional database
// ---------------------------------------------------------------------------

Status StoredDkb::DefineBasePredicate(const std::string& pred,
                                      const PredicateTypes& types) {
  if (HasBasePredicate(pred)) {
    return Status::AlreadyExists("base predicate " + pred +
                                 " already defined");
  }
  std::string ddl = "CREATE TABLE " + EdbTableName(pred) + " (";
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += IdbColumnName(i);
    ddl += types[i] == DataType::kInteger ? " INT" : " VARCHAR";
  }
  ddl += ")";
  DKB_RETURN_IF_ERROR(db_->Execute(ddl).status());
  if (options_.index_edb_first_column && !types.empty()) {
    DKB_RETURN_IF_ERROR(
        db_->Execute("CREATE INDEX " + EdbTableName(pred) + "_c0_ix ON " +
                     EdbTableName(pred) + " (c0)")
            .status());
  }
  DKB_RETURN_IF_ERROR(
      db_->Execute("INSERT INTO edbrel VALUES (" +
                   Value(pred).ToSqlLiteral() + ", " +
                   std::to_string(types.size()) + ")")
          .status());
  for (size_t i = 0; i < types.size(); ++i) {
    DKB_RETURN_IF_ERROR(
        db_->Execute("INSERT INTO edbcol VALUES (" +
                     Value(pred).ToSqlLiteral() + ", " + std::to_string(i) +
                     ", '" + TypeToDict(types[i]) + "')")
            .status());
  }
  base_preds_.insert(pred);
  return Status::OK();
}

bool StoredDkb::HasBasePredicate(const std::string& pred) const {
  return base_preds_.count(pred) > 0;
}

Status StoredDkb::InsertFacts(const std::string& pred,
                              const std::vector<Tuple>& tuples) {
  if (!HasBasePredicate(pred)) {
    return Status::NotFound("base predicate " + pred + " is not defined");
  }
  DKB_ASSIGN_OR_RETURN(ScanSource * table,
                       db_->catalog().GetSource(EdbTableName(pred)));
  RowBatch batch;
  batch.Reset(table->schema().num_columns());
  for (const Tuple& t : tuples) {
    batch.AppendRow(t);
    if (batch.full()) {
      DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
      batch.Reset(table->schema().num_columns());
    }
  }
  if (!batch.empty()) DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
  return Status::OK();
}

Status StoredDkb::ClearFacts(const std::string& pred) {
  if (!HasBasePredicate(pred)) {
    return Status::NotFound("base predicate " + pred + " is not defined");
  }
  DKB_ASSIGN_OR_RETURN(ScanSource * table,
                       db_->catalog().GetSource(EdbTableName(pred)));
  table->Clear();
  return Status::OK();
}

Result<std::map<std::string, PredicateTypes>> StoredDkb::ReadEdbDictionary(
    const std::set<std::string>& preds) {
  std::map<std::string, PredicateTypes> out;
  if (preds.empty()) return out;
  // Single dictionary join, exactly as the testbed issues it (Test 2).
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows(
          "SELECT edbrel.predname, edbcol.colnum, edbcol.coltype "
          "FROM edbrel, edbcol WHERE edbrel.predname = edbcol.predname "
          "AND edbrel.predname IN (" +
          QuoteList(preds) + ") ORDER BY 1, 2"));
  for (const Tuple& row : rows) {
    DKB_ASSIGN_OR_RETURN(DataType t, DictToType(row[2].as_string()));
    out[row[0].as_string()].push_back(t);
  }
  return out;
}

Result<std::map<std::string, PredicateTypes>> StoredDkb::ReadIdbDictionary(
    const std::set<std::string>& preds) {
  std::map<std::string, PredicateTypes> out;
  if (preds.empty()) return out;
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows(
          "SELECT idbrel.predname, idbcol.colnum, idbcol.coltype "
          "FROM idbrel, idbcol WHERE idbrel.predname = idbcol.predname "
          "AND idbrel.predname IN (" +
          QuoteList(preds) + ") ORDER BY 1, 2"));
  for (const Tuple& row : rows) {
    DKB_ASSIGN_OR_RETURN(DataType t, DictToType(row[2].as_string()));
    out[row[0].as_string()].push_back(t);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Intensional database
// ---------------------------------------------------------------------------

Result<std::vector<datalog::Rule>> StoredDkb::ExtractRelevantRules(
    const std::set<std::string>& preds) {
  std::vector<datalog::Rule> rules;
  std::set<std::string> seen_texts;
  auto add_rows = [&](const std::vector<Tuple>& rows) -> Status {
    for (const Tuple& row : rows) {
      const std::string& text = row[0].as_string();
      if (!seen_texts.insert(text).second) continue;
      DKB_ASSIGN_OR_RETURN(datalog::Rule rule, datalog::ParseRule(text));
      rules.push_back(std::move(rule));
    }
    return Status::OK();
  };

  if (preds.empty()) return rules;

  if (options_.compiled_rule_storage) {
    // The paper's extraction query (§4.1): rules whose head is one of the
    // query predicates or reachable from one, in a single indexed join.
    std::string in_list = QuoteList(preds);
    DKB_ASSIGN_OR_RETURN(
        std::vector<Tuple> rows,
        db_->QueryRows(
            "SELECT DISTINCT rulesource.ruletext "
            "FROM reachablepreds, rulesource "
            "WHERE reachablepreds.topredname = rulesource.headpredname "
            "AND reachablepreds.frompredname IN (" + in_list + ") "
            "UNION "
            "SELECT ruletext FROM rulesource WHERE headpredname IN (" +
            in_list + ")"));
    DKB_RETURN_IF_ERROR(add_rows(rows));
    return rules;
  }

  // Without the compiled form the transitive closure must be walked at
  // extraction time: one rulesource query per frontier level.
  std::set<std::string> visited = preds;
  std::set<std::string> frontier = preds;
  while (!frontier.empty()) {
    DKB_ASSIGN_OR_RETURN(
        std::vector<Tuple> rows,
        db_->QueryRows("SELECT ruletext FROM rulesource "
                       "WHERE headpredname IN (" +
                       QuoteList(frontier) + ")"));
    size_t before = rules.size();
    DKB_RETURN_IF_ERROR(add_rows(rows));
    frontier.clear();
    for (size_t i = before; i < rules.size(); ++i) {
      for (const datalog::Atom& atom : rules[i].body) {
        if (visited.insert(atom.predicate).second) {
          frontier.insert(atom.predicate);
        }
      }
    }
  }
  return rules;
}

Result<bool> StoredDkb::StoreRuleSource(const datalog::Rule& rule) {
  // The dictionary lookup and insert run once per rule in every
  // UpdateStoredDkb, so they are kept as bound prepared statements instead
  // of re-deriving SQL text (and re-parsing it) from each rule.
  if (!select_rule_by_head_.valid()) {
    DKB_ASSIGN_OR_RETURN(
        select_rule_by_head_,
        db_->Prepare("SELECT ruletext FROM rulesource WHERE headpredname = ?"));
    DKB_ASSIGN_OR_RETURN(insert_rule_,
                         db_->Prepare("INSERT INTO rulesource VALUES (?, ?, ?)"));
  }
  std::string text = rule.ToString();
  DKB_RETURN_IF_ERROR(select_rule_by_head_.Bind(0, Value(rule.head.predicate)));
  DKB_ASSIGN_OR_RETURN(QueryResult existing, select_rule_by_head_.Execute());
  for (const Tuple& row : existing.rows) {
    if (row[0].as_string() == text) return false;
  }
  DKB_RETURN_IF_ERROR(insert_rule_.Bind(0, Value(rule.head.predicate)));
  DKB_RETURN_IF_ERROR(insert_rule_.Bind(1, Value(next_rule_id_++)));
  DKB_RETURN_IF_ERROR(insert_rule_.Bind(2, Value(std::move(text))));
  DKB_RETURN_IF_ERROR(insert_rule_.Execute().status());
  return true;
}

Result<std::vector<datalog::Rule>> StoredDkb::AllStoredRules() {
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows("SELECT ruletext FROM rulesource ORDER BY 1"));
  std::vector<datalog::Rule> rules;
  rules.reserve(rows.size());
  for (const Tuple& row : rows) {
    DKB_ASSIGN_OR_RETURN(datalog::Rule rule,
                         datalog::ParseRule(row[0].as_string()));
    rules.push_back(std::move(rule));
  }
  return rules;
}

Result<int64_t> StoredDkb::NumStoredRules() {
  return db_->QueryCount("SELECT COUNT(*) FROM rulesource");
}

Status StoredDkb::UpsertIdbDictionary(const std::string& pred,
                                      const PredicateTypes& types) {
  std::string lit = Value(pred).ToSqlLiteral();
  DKB_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM idbrel WHERE predname = " + lit).status());
  DKB_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM idbcol WHERE predname = " + lit).status());
  DKB_RETURN_IF_ERROR(db_->Execute("INSERT INTO idbrel VALUES (" + lit +
                                   ", " + std::to_string(types.size()) + ")")
                          .status());
  if (types.empty()) return Status::OK();
  std::string sql = "INSERT INTO idbcol VALUES ";
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "(" + lit + ", " + std::to_string(i) + ", '" +
           TypeToDict(types[i]) + "')";
  }
  return db_->Execute(sql).status();
}

Status StoredDkb::UpsertIdbDictionaryBatch(
    const std::map<std::string, PredicateTypes>& preds) {
  if (preds.empty()) return Status::OK();
  std::set<std::string> names;
  for (const auto& [pred, sig] : preds) {
    (void)sig;
    names.insert(pred);
  }
  std::string in_list = QuoteList(names);
  DKB_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM idbrel WHERE predname IN (" + in_list + ")")
          .status());
  DKB_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM idbcol WHERE predname IN (" + in_list + ")")
          .status());
  std::string rel_sql = "INSERT INTO idbrel VALUES ";
  std::string col_sql = "INSERT INTO idbcol VALUES ";
  bool first_rel = true;
  bool first_col = true;
  for (const auto& [pred, sig] : preds) {
    std::string lit = Value(pred).ToSqlLiteral();
    if (!first_rel) rel_sql += ", ";
    first_rel = false;
    rel_sql += "(" + lit + ", " + std::to_string(sig.size()) + ")";
    for (size_t i = 0; i < sig.size(); ++i) {
      if (!first_col) col_sql += ", ";
      first_col = false;
      col_sql += "(" + lit + ", " + std::to_string(i) + ", '" +
                 TypeToDict(sig[i]) + "')";
    }
  }
  DKB_RETURN_IF_ERROR(db_->Execute(rel_sql).status());
  if (!first_col) DKB_RETURN_IF_ERROR(db_->Execute(col_sql).status());
  return Status::OK();
}

Status StoredDkb::MergeReachableBatch(
    const std::map<std::string, std::set<std::string>>& pairs) {
  if (pairs.empty()) return Status::OK();
  std::set<std::string> froms;
  for (const auto& [from, tos] : pairs) {
    (void)tos;
    froms.insert(from);
  }
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows("SELECT frompredname, topredname FROM reachablepreds "
                     "WHERE frompredname IN (" +
                     QuoteList(froms) + ")"));
  std::set<std::pair<std::string, std::string>> existing;
  for (const Tuple& row : rows) {
    existing.emplace(row[0].as_string(), row[1].as_string());
  }
  std::string sql = "INSERT INTO reachablepreds VALUES ";
  bool first = true;
  for (const auto& [from, tos] : pairs) {
    for (const std::string& to : tos) {
      if (existing.count({from, to}) > 0) continue;
      if (!first) sql += ", ";
      first = false;
      sql += "(" + Value(from).ToSqlLiteral() + ", " +
             Value(to).ToSqlLiteral() + ")";
    }
  }
  if (first) return Status::OK();  // nothing new
  return db_->Execute(sql).status();
}

namespace {

/// Multi-row INSERT for reachablepreds pairs (one statement per call).
std::string ReachableInsertSql(const std::string& from_literal,
                               const std::set<std::string>& to) {
  std::string sql = "INSERT INTO reachablepreds VALUES ";
  bool first = true;
  for (const std::string& t : to) {
    if (!first) sql += ", ";
    first = false;
    sql += "(" + from_literal + ", " + Value(t).ToSqlLiteral() + ")";
  }
  return sql;
}

}  // namespace

Status StoredDkb::ReplaceReachable(const std::string& from,
                                   const std::set<std::string>& to) {
  std::string lit = Value(from).ToSqlLiteral();
  DKB_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM reachablepreds WHERE frompredname = " + lit)
          .status());
  if (to.empty()) return Status::OK();
  return db_->Execute(ReachableInsertSql(lit, to)).status();
}

Status StoredDkb::MergeReachable(const std::string& from,
                                 const std::set<std::string>& to) {
  std::string lit = Value(from).ToSqlLiteral();
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows(
          "SELECT topredname FROM reachablepreds WHERE frompredname = " +
          lit));
  std::set<std::string> existing;
  for (const Tuple& row : rows) existing.insert(row[0].as_string());
  std::set<std::string> missing;
  for (const std::string& t : to) {
    if (existing.count(t) == 0) missing.insert(t);
  }
  if (missing.empty()) return Status::OK();
  return db_->Execute(ReachableInsertSql(lit, missing)).status();
}

Result<std::set<std::string>> StoredDkb::StoredUpstream(
    const std::set<std::string>& preds) {
  std::set<std::string> out;
  if (preds.empty()) return out;
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows(
          "SELECT DISTINCT frompredname FROM reachablepreds "
          "WHERE topredname IN (" +
          QuoteList(preds) + ")"));
  for (const Tuple& row : rows) out.insert(row[0].as_string());
  return out;
}

Result<std::vector<datalog::Rule>> StoredDkb::RulesForHeads(
    const std::set<std::string>& preds) {
  std::vector<datalog::Rule> rules;
  if (preds.empty()) return rules;
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows("SELECT ruletext FROM rulesource WHERE headpredname IN (" +
                     QuoteList(preds) + ")"));
  for (const Tuple& row : rows) {
    DKB_ASSIGN_OR_RETURN(datalog::Rule rule,
                         datalog::ParseRule(row[0].as_string()));
    rules.push_back(std::move(rule));
  }
  return rules;
}

Result<std::set<std::string>> StoredDkb::StoredReachable(
    const std::set<std::string>& preds) {
  std::set<std::string> out;
  if (preds.empty()) return out;
  DKB_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      db_->QueryRows(
          "SELECT DISTINCT topredname FROM reachablepreds "
          "WHERE frompredname IN (" +
          QuoteList(preds) + ")"));
  for (const Tuple& row : rows) out.insert(row[0].as_string());
  return out;
}

}  // namespace dkb::km
