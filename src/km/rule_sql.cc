#include "km/rule_sql.h"

#include <map>

namespace dkb::km {

namespace {

struct ColRef {
  std::string alias;
  std::string column;
  std::string ToString() const { return alias + "." + column; }
};

/// Shared positive-part analysis: aliases each non-negated body atom,
/// collects join/constant conjuncts, and records the canonical (first)
/// occurrence and type of every variable.
struct PositivePart {
  std::string from;                       // "t0 r0, t1 r2, ..."
  std::vector<std::string> conjuncts;     // join + constant predicates
  std::map<std::string, ColRef> canonical;
  std::vector<std::string> var_order;     // first-occurrence order
  std::map<std::string, DataType> var_types;
};

Result<PositivePart> AnalyzePositive(const datalog::Rule& rule,
                                     const BindingResolver& resolver) {
  PositivePart part;
  bool first_table = true;
  for (size_t bi = 0; bi < rule.body.size(); ++bi) {
    const datalog::Atom& atom = rule.body[bi];
    if (atom.negated || atom.is_builtin()) continue;
    DKB_ASSIGN_OR_RETURN(RelationBinding binding, resolver(atom, bi));
    if (binding.columns.size() != atom.arity()) {
      return Status::Internal("binding for " + atom.predicate + " has " +
                              std::to_string(binding.columns.size()) +
                              " columns but atom has arity " +
                              std::to_string(atom.arity()));
    }
    std::string alias = "r" + std::to_string(bi);
    if (!first_table) part.from += ", ";
    first_table = false;
    part.from += binding.table + " " + alias;

    for (size_t ai = 0; ai < atom.args.size(); ++ai) {
      const datalog::Term& term = atom.args[ai];
      ColRef ref{alias, binding.columns[ai]};
      if (term.is_constant()) {
        part.conjuncts.push_back(ref.ToString() + " = " +
                                 term.value.ToSqlLiteral());
        continue;
      }
      auto [it, inserted] = part.canonical.emplace(term.var, ref);
      if (inserted) {
        part.var_order.push_back(term.var);
        if (ai < binding.types.size()) {
          part.var_types[term.var] = binding.types[ai];
        }
      } else {
        part.conjuncts.push_back(ref.ToString() + " = " +
                                 it->second.ToString());
      }
    }
  }
  if (first_table) {
    return Status::InvalidArgument(
        "rule has no positive body atom: " + rule.ToString());
  }

  // Built-in comparison filters become plain WHERE conjuncts; their
  // variables are guaranteed bound by the safety check.
  for (const datalog::Atom& atom : rule.body) {
    if (!atom.is_builtin()) continue;
    auto render = [&part, &rule](const datalog::Term& t)
        -> Result<std::string> {
      if (t.is_constant()) return t.value.ToSqlLiteral();
      auto it = part.canonical.find(t.var);
      if (it == part.canonical.end()) {
        return Status::SemanticError(
            "unsafe rule (variable " + t.var +
            " of comparison not bound in a positive body atom): " +
            rule.ToString());
      }
      return it->second.ToString();
    };
    DKB_ASSIGN_OR_RETURN(std::string lhs, render(atom.args[0]));
    DKB_ASSIGN_OR_RETURN(std::string rhs, render(atom.args[1]));
    // "!=" is accepted verbatim by the SQL layer; others map directly.
    part.conjuncts.push_back(lhs + " " + atom.predicate + " " + rhs);
  }
  return part;
}

std::string WhereClause(const std::vector<std::string>& conjuncts) {
  if (conjuncts.empty()) return "";
  std::string out = " WHERE ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i];
  }
  return out;
}

/// Projection of the head over canonical refs (plain-select path).
Result<std::string> HeadProjection(const datalog::Rule& rule,
                                   const PositivePart& part) {
  std::string out;
  for (size_t hi = 0; hi < rule.head.args.size(); ++hi) {
    const datalog::Term& term = rule.head.args[hi];
    if (hi > 0) out += ", ";
    if (term.is_constant()) {
      out += term.value.ToSqlLiteral();
      continue;
    }
    auto it = part.canonical.find(term.var);
    if (it == part.canonical.end()) {
      return Status::SemanticError("unsafe rule (head variable " + term.var +
                                   " not bound in a positive body atom): " +
                                   rule.ToString());
    }
    out += it->second.ToString();
  }
  return out;
}

}  // namespace

Result<std::string> RuleToSelect(const datalog::Rule& rule,
                                 const BindingResolver& resolver) {
  if (rule.body.empty()) {
    return Status::InvalidArgument("cannot translate bodiless clause " +
                                   rule.ToString() + " to SQL");
  }
  for (const datalog::Atom& atom : rule.body) {
    if (atom.negated) {
      return Status::InvalidArgument(
          "rule has negated atoms; use RuleToSqlProgram: " + rule.ToString());
    }
  }
  DKB_ASSIGN_OR_RETURN(PositivePart part, AnalyzePositive(rule, resolver));
  DKB_ASSIGN_OR_RETURN(std::string head, HeadProjection(rule, part));
  return "SELECT DISTINCT " + head + " FROM " + part.from +
         WhereClause(part.conjuncts);
}

Result<RuleSqlProgram> RuleToSqlProgram(const datalog::Rule& rule,
                                        const BindingResolver& resolver,
                                        const std::string& target_table,
                                        const std::string& bind_prefix) {
  if (rule.body.empty()) {
    return Status::InvalidArgument("cannot translate bodiless clause " +
                                   rule.ToString() + " to SQL");
  }
  RuleSqlProgram program;

  std::vector<const datalog::Atom*> negations;
  size_t first_neg_index = 0;
  for (size_t bi = 0; bi < rule.body.size(); ++bi) {
    if (rule.body[bi].negated) {
      if (negations.empty()) first_neg_index = bi;
      negations.push_back(&rule.body[bi]);
    }
  }

  if (negations.empty()) {
    DKB_ASSIGN_OR_RETURN(std::string select, RuleToSelect(rule, resolver));
    program.statements.push_back("INSERT INTO " + target_table + " (" +
                                 select + ") EXCEPT (SELECT * FROM " +
                                 target_table + ")");
    return program;
  }

  DKB_ASSIGN_OR_RETURN(PositivePart part, AnalyzePositive(rule, resolver));

  // Binding-table schema: one column per positive-part variable.
  Schema bind_schema;
  std::map<std::string, std::string> var_col;  // variable -> binding column
  {
    std::vector<Column> cols;
    for (size_t i = 0; i < part.var_order.size(); ++i) {
      const std::string& var = part.var_order[i];
      auto type_it = part.var_types.find(var);
      if (type_it == part.var_types.end()) {
        return Status::Internal(
            "binding types missing for variable " + var +
            " (resolver must supply column types for rules with negation)");
      }
      std::string col = "v" + std::to_string(i);
      cols.push_back(Column{col, type_it->second});
      var_col[var] = col;
    }
    bind_schema = Schema(std::move(cols));
  }

  auto bind_name = [&](size_t i) {
    return bind_prefix + "_b" + std::to_string(i);
  };
  for (size_t i = 0; i <= negations.size(); ++i) {
    program.bind_tables.push_back(RuleSqlProgram::BindTable{
        bind_name(i), bind_schema});
  }

  // Stage 0: positive bindings.
  {
    std::string select = "SELECT DISTINCT ";
    for (size_t i = 0; i < part.var_order.size(); ++i) {
      if (i > 0) select += ", ";
      select += part.canonical.at(part.var_order[i]).ToString();
    }
    select += " FROM " + part.from + WhereClause(part.conjuncts);
    program.statements.push_back("INSERT INTO " + bind_name(0) + " " +
                                 select);
  }

  // Stage i: remove bindings that satisfy the i-th negated atom.
  for (size_t ni = 0; ni < negations.size(); ++ni) {
    const datalog::Atom& atom = *negations[ni];
    DKB_ASSIGN_OR_RETURN(RelationBinding binding,
                         resolver(atom, first_neg_index));
    if (binding.columns.size() != atom.arity()) {
      return Status::Internal("binding for negated " + atom.predicate +
                              " has wrong arity");
    }
    std::vector<std::string> conjuncts;
    for (size_t ai = 0; ai < atom.args.size(); ++ai) {
      const datalog::Term& term = atom.args[ai];
      std::string lhs = "n." + binding.columns[ai];
      if (term.is_constant()) {
        conjuncts.push_back(lhs + " = " + term.value.ToSqlLiteral());
        continue;
      }
      auto it = var_col.find(term.var);
      if (it == var_col.end()) {
        return Status::SemanticError(
            "unsafe negation (variable " + term.var +
            " of negated atom not bound in a positive body atom): " +
            rule.ToString());
      }
      conjuncts.push_back(lhs + " = b." + it->second);
    }
    std::string matched = "SELECT ";
    for (size_t i = 0; i < part.var_order.size(); ++i) {
      if (i > 0) matched += ", ";
      matched += "b.v" + std::to_string(i);
    }
    matched += " FROM " + bind_name(ni) + " b, " + binding.table + " n" +
               WhereClause(conjuncts);
    program.statements.push_back("INSERT INTO " + bind_name(ni + 1) +
                                 " (SELECT * FROM " + bind_name(ni) +
                                 ") EXCEPT (" + matched + ")");
  }

  // Final: project the head from the surviving bindings into the target.
  {
    std::string head;
    for (size_t hi = 0; hi < rule.head.args.size(); ++hi) {
      const datalog::Term& term = rule.head.args[hi];
      if (hi > 0) head += ", ";
      if (term.is_constant()) {
        head += term.value.ToSqlLiteral();
        continue;
      }
      auto it = var_col.find(term.var);
      if (it == var_col.end()) {
        return Status::SemanticError(
            "unsafe rule (head variable " + term.var +
            " not bound in a positive body atom): " + rule.ToString());
      }
      head += it->second;
    }
    program.statements.push_back(
        "INSERT INTO " + target_table + " (SELECT DISTINCT " + head +
        " FROM " + bind_name(negations.size()) + ") EXCEPT (SELECT * FROM " +
        target_table + ")");
  }
  return program;
}

}  // namespace dkb::km
