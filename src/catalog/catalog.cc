#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace dkb {

std::string Catalog::Key(const std::string& name) { return AsciiLower(name); }

bool IsSystemTableName(const std::string& name) {
  return StartsWith(AsciiLower(name), "sys.");
}

Result<ScanSource*> Catalog::CreateTable(const std::string& name,
                                         Schema schema) {
  return CreateTable(name, std::move(schema), default_shards_);
}

Result<ScanSource*> Catalog::CreateTable(const std::string& name,
                                         Schema schema, size_t shard_count) {
  if (IsSystemTableName(name)) {
    return Status::InvalidArgument("schema 'sys' is reserved for system views");
  }
  std::string key = Key(name);
  WriterLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  std::unique_ptr<ScanSource> table;
  if (shard_count > 1) {
    table = std::make_unique<ShardedTable>(name, std::move(schema),
                                           shard_count);
  } else {
    table = std::make_unique<Table>(name, std::move(schema));
  }
  ScanSource* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  WriterLock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

Result<ScanSource*> Catalog::GetSource(const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  ReaderLock lock(mu_);
  return tables_.count(Key(name)) > 0;
}

Status Catalog::RegisterVirtualTable(const std::string& name, Schema schema,
                                     VirtualTableProvider provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("virtual table " + name +
                                   " needs a provider");
  }
  std::string key = Key(name);
  WriterLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  // Re-registration overwrites: a session clone re-registers the same views
  // against the shared data sources after every snapshot refresh.
  virtuals_[key] = VirtualEntry{std::move(schema), std::move(provider)};
  return Status::OK();
}

bool Catalog::HasVirtualTable(const std::string& name) const {
  ReaderLock lock(mu_);
  return virtuals_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::VirtualTableNames() const {
  ReaderLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(virtuals_.size());
  for (const auto& [key, entry] : virtuals_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

Result<Schema> Catalog::VirtualTableSchema(const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = virtuals_.find(Key(name));
  if (it == virtuals_.end()) {
    return Status::NotFound("virtual table " + name + " does not exist");
  }
  return it->second.schema;
}

Result<ResolvedSource> Catalog::ResolveScanSource(
    const std::string& name) const {
  VirtualTableProvider provider;
  {
    ReaderLock lock(mu_);
    auto it = tables_.find(Key(name));
    if (it != tables_.end()) {
      return ResolvedSource{it->second.get(), nullptr};
    }
    auto vit = virtuals_.find(Key(name));
    if (vit == virtuals_.end()) {
      return Status::NotFound("table " + name + " does not exist");
    }
    provider = vit->second.provider;
  }
  // Materialize outside the catalog lock: providers read recorder/session
  // state guarded by their own mutexes.
  DKB_ASSIGN_OR_RETURN(std::shared_ptr<const Table> snapshot, provider());
  ResolvedSource source;
  source.source = snapshot.get();
  source.owned = std::move(snapshot);
  return source;
}

Status Catalog::CreateIndex(const std::string& table_name,
                            const std::string& index_name,
                            const std::vector<std::string>& column_names,
                            bool ordered) {
  DKB_ASSIGN_OR_RETURN(ScanSource * table, GetSource(table_name));
  std::vector<size_t> cols;
  cols.reserve(column_names.size());
  for (const std::string& cname : column_names) {
    auto idx = table->schema().FindColumn(cname);
    if (!idx.has_value()) {
      return Status::NotFound("column " + cname + " not in table " +
                              table_name);
    }
    cols.push_back(*idx);
  }
  return table->AddIndexSpec(index_name, cols, ordered);
}

std::vector<std::string> Catalog::TableNames() const {
  ReaderLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace dkb
