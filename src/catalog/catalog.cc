#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace dkb {

std::string Catalog::Key(const std::string& name) { return AsciiLower(name); }

bool IsSystemTableName(const std::string& name) {
  return StartsWith(AsciiLower(name), "sys.");
}

Result<ScanSource*> Catalog::CreateTable(const std::string& name,
                                         Schema schema) {
  return CreateTable(name, std::move(schema), default_shards_);
}

Result<ScanSource*> Catalog::CreateTable(const std::string& name,
                                         Schema schema, size_t shard_count) {
  if (IsSystemTableName(name)) {
    return Status::InvalidArgument("schema 'sys' is reserved for system views");
  }
  const bool temp = !name.empty() && name[0] == '#';
  // Overlays see the union of their own names and the base's, so a CREATE
  // of an existing base name must collide the same way it did when sessions
  // held a full clone. Checked before taking our lock (never both locks).
  // km-internal idb_<pred> scratch tables are exempt: the base testbed may
  // be transiently mid-query with its own idb_<pred>, and the overlay's copy
  // shadows it (own-first resolution), exactly as a clone's private copy
  // would have.
  const bool km_scratch = StartsWith(Key(name), "idb_");
  if (base_ != nullptr && !temp && !km_scratch && base_->HasTable(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  std::string key = Key(name);
  WriterLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  std::shared_ptr<ScanSource> table;
  if (shard_count > 1) {
    table = std::make_shared<ShardedTable>(name, std::move(schema),
                                           shard_count);
  } else {
    table = std::make_shared<Table>(name, std::move(schema));
  }
  // Stored tables stamp commit epochs; '#' temporaries stay unversioned
  // (physical Clear each LFP iteration, no vacuum debt).
  if (epochs_ != nullptr && !temp) table->EnableVersioning(epochs_);
  ScanSource* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  {
    WriterLock lock(mu_);
    auto it = tables_.find(Key(name));
    if (it != tables_.end()) {
      // Shared ownership: running plans and overlay pins keep the storage
      // alive; the name is gone immediately.
      tables_.erase(it);
      return Status::OK();
    }
  }
  if (base_ != nullptr && !name.empty() && name[0] != '#' &&
      base_->HasTable(name)) {
    return Status::InvalidArgument("cannot drop base table " + name +
                                   " from a session");
  }
  return Status::NotFound("table " + name + " does not exist");
}

Result<ScanSource*> Catalog::GetSource(const std::string& name) const {
  std::string key = Key(name);
  {
    ReaderLock lock(mu_);
    auto it = tables_.find(key);
    if (it != tables_.end()) return it->second.get();
    auto pit = pinned_bases_.find(key);
    if (pit != pinned_bases_.end()) return pit->second.get();
  }
  if (base_ != nullptr && !name.empty() && name[0] != '#') {
    DKB_ASSIGN_OR_RETURN(std::shared_ptr<ScanSource> src,
                         base_->GetSourceShared(name));
    ScanSource* raw = src.get();
    WriterLock lock(mu_);
    pinned_bases_.emplace(std::move(key), std::move(src));
    return raw;
  }
  return Status::NotFound("table " + name + " does not exist");
}

Result<std::shared_ptr<ScanSource>> Catalog::GetSourceShared(
    const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return it->second;
}

std::vector<std::shared_ptr<ScanSource>> Catalog::SnapshotTables() const {
  ReaderLock lock(mu_);
  std::vector<std::shared_ptr<ScanSource>> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table);
  return out;
}

void Catalog::ClearPinnedBases() {
  WriterLock lock(mu_);
  pinned_bases_.clear();
}

bool Catalog::HasTable(const std::string& name) const {
  {
    ReaderLock lock(mu_);
    if (tables_.count(Key(name)) > 0) return true;
  }
  return base_ != nullptr && !name.empty() && name[0] != '#' &&
         base_->HasTable(name);
}

Status Catalog::RegisterVirtualTable(const std::string& name, Schema schema,
                                     VirtualTableProvider provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("virtual table " + name +
                                   " needs a provider");
  }
  std::string key = Key(name);
  WriterLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  // Re-registration overwrites: a session clone re-registers the same views
  // against the shared data sources after every snapshot refresh.
  virtuals_[key] = VirtualEntry{std::move(schema), std::move(provider)};
  return Status::OK();
}

bool Catalog::HasVirtualTable(const std::string& name) const {
  ReaderLock lock(mu_);
  return virtuals_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::VirtualTableNames() const {
  ReaderLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(virtuals_.size());
  for (const auto& [key, entry] : virtuals_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

Result<Schema> Catalog::VirtualTableSchema(const std::string& name) const {
  ReaderLock lock(mu_);
  auto it = virtuals_.find(Key(name));
  if (it == virtuals_.end()) {
    return Status::NotFound("virtual table " + name + " does not exist");
  }
  return it->second.schema;
}

Result<ResolvedSource> Catalog::ResolveScanSource(
    const std::string& name) const {
  VirtualTableProvider provider;
  {
    ReaderLock lock(mu_);
    auto it = tables_.find(Key(name));
    if (it != tables_.end()) {
      ResolvedSource source;
      source.source = it->second.get();
      source.owned = it->second;  // survives a concurrent DROP
      source.read_epoch = read_epoch();
      return source;
    }
    auto vit = virtuals_.find(Key(name));
    if (vit != virtuals_.end()) provider = vit->second.provider;
  }
  if (provider != nullptr) {
    // Materialize outside the catalog lock: providers read recorder/session
    // state guarded by their own mutexes. Snapshots are unversioned, so the
    // default kLatestEpoch reads them correctly at any pinned epoch.
    DKB_ASSIGN_OR_RETURN(std::shared_ptr<const Table> snapshot, provider());
    ResolvedSource source;
    source.source = snapshot.get();
    source.owned = std::move(snapshot);
    return source;
  }
  if (base_ != nullptr && !name.empty() && name[0] != '#') {
    DKB_ASSIGN_OR_RETURN(ResolvedSource source,
                         base_->ResolveScanSource(name));
    // Stored base tables must be read at the session's pinned epoch.
    // (Virtual hits on the base are unversioned snapshots; overriding their
    // epoch is harmless.)
    source.read_epoch = read_epoch();
    return source;
  }
  return Status::NotFound("table " + name + " does not exist");
}

Status Catalog::CreateIndex(const std::string& table_name,
                            const std::string& index_name,
                            const std::vector<std::string>& column_names,
                            bool ordered) {
  DKB_ASSIGN_OR_RETURN(ScanSource * table, GetSource(table_name));
  std::vector<size_t> cols;
  cols.reserve(column_names.size());
  for (const std::string& cname : column_names) {
    auto idx = table->schema().FindColumn(cname);
    if (!idx.has_value()) {
      return Status::NotFound("column " + cname + " not in table " +
                              table_name);
    }
    cols.push_back(*idx);
  }
  return table->AddIndexSpec(index_name, cols, ordered);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  {
    ReaderLock lock(mu_);
    names.reserve(tables_.size());
    for (const auto& [key, table] : tables_) names.push_back(table->name());
  }
  if (base_ != nullptr) {
    // Overlays see the union: base stored names, minus any shadowed by an
    // overlay-local name ('#' temps never shadow — they can't collide).
    for (std::string& base_name : base_->TableNames()) {
      bool shadowed = false;
      {
        ReaderLock lock(mu_);
        shadowed = tables_.count(Key(base_name)) > 0;
      }
      if (!shadowed) names.push_back(std::move(base_name));
    }
  }
  return names;
}

size_t Catalog::num_tables() const {
  if (base_ != nullptr) return TableNames().size();
  ReaderLock lock(mu_);
  return tables_.size();
}

}  // namespace dkb
