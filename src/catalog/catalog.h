#ifndef DKB_CATALOG_CATALOG_H_
#define DKB_CATALOG_CATALOG_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "storage/table.h"

namespace dkb {

/// Builds a point-in-time materialization of a virtual table. Called once
/// per query that scans the table (lazily, at plan time); the returned
/// snapshot is immutable and shared-owned by the plan that scans it.
using VirtualTableProvider =
    std::function<Result<std::shared_ptr<const Table>>()>;

/// What a FROM-list name resolves to: a stored table (raw pointer, owned by
/// the catalog) or a virtual-table snapshot (`owned` keeps it alive for the
/// duration of the plan).
struct ScanSource {
  const Table* table = nullptr;
  std::shared_ptr<const Table> owned;  // non-null only for virtual tables
};

/// Catalog of tables and their indexes, keyed by case-insensitive name.
///
/// Table names beginning with '#' are session-temporary by convention; the
/// LFP run time library creates and drops them each iteration exactly as the
/// paper's embedded-SQL programs did with the commercial DBMS.
///
/// The name map is guarded by a reader-writer lock so concurrent sessions can
/// resolve tables while another session creates or drops its own temporaries.
/// The lock covers only the map — Table contents are protected by the
/// session-level reader-writer protocol (writers are serialized by Testbed).
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision and
  /// with InvalidArgument for names in the reserved `sys.` schema.
  Result<Table*> CreateTable(const std::string& name, Schema schema)
      DKB_EXCLUDES(mu_);

  /// Registers a read-only virtual table (a system view): its fixed schema
  /// plus a provider that materializes a snapshot on demand. Virtual tables
  /// live in their own namespace-by-convention (`sys.<name>`) and are only
  /// reachable through ResolveScanSource — never through GetTable, and never
  /// serialized or cloned with the stored tables.
  Status RegisterVirtualTable(const std::string& name, Schema schema,
                              VirtualTableProvider provider)
      DKB_EXCLUDES(mu_);

  bool HasVirtualTable(const std::string& name) const DKB_EXCLUDES(mu_);

  /// Registered virtual-table names, sorted.
  std::vector<std::string> VirtualTableNames() const DKB_EXCLUDES(mu_);

  /// Declared schema of a virtual table; NotFound if absent.
  Result<Schema> VirtualTableSchema(const std::string& name) const
      DKB_EXCLUDES(mu_);

  /// Resolves a FROM-list name: stored tables win, then virtual tables
  /// (whose provider runs here, materializing a fresh snapshot).
  Result<ScanSource> ResolveScanSource(const std::string& name) const
      DKB_EXCLUDES(mu_);

  /// Drops a table and its indexes. Fails with NotFound if absent.
  Status DropTable(const std::string& name) DKB_EXCLUDES(mu_);

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const DKB_EXCLUDES(mu_);

  bool HasTable(const std::string& name) const DKB_EXCLUDES(mu_);

  /// Creates an index named `index_name` over `column_names` of `table_name`.
  /// `ordered` selects OrderedIndex over HashIndex.
  Status CreateIndex(const std::string& table_name,
                     const std::string& index_name,
                     const std::vector<std::string>& column_names,
                     bool ordered);

  /// Names of all tables, unsorted.
  std::vector<std::string> TableNames() const DKB_EXCLUDES(mu_);

  size_t num_tables() const DKB_EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return tables_.size();
  }

 private:
  static std::string Key(const std::string& name);

  struct VirtualEntry {
    Schema schema;
    VirtualTableProvider provider;
  };

  /// Guards the name maps only (see the class comment): Table* handed out
  /// by GetTable/ResolveScanSource deliberately escape the lock — table
  /// *contents* are protected by the session-level reader-writer protocol,
  /// and entries live until DropTable, which the protocol serializes.
  mutable SharedMutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_
      DKB_GUARDED_BY(mu_);
  std::unordered_map<std::string, VirtualEntry> virtuals_ DKB_GUARDED_BY(mu_);
};

/// True for names in the reserved system schema ("sys." prefix,
/// case-insensitive). DDL/DML against such names is rejected.
bool IsSystemTableName(const std::string& name);

}  // namespace dkb

#endif  // DKB_CATALOG_CATALOG_H_
