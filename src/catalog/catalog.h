#ifndef DKB_CATALOG_CATALOG_H_
#define DKB_CATALOG_CATALOG_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace dkb {

/// Catalog of tables and their indexes, keyed by case-insensitive name.
///
/// Table names beginning with '#' are session-temporary by convention; the
/// LFP run time library creates and drops them each iteration exactly as the
/// paper's embedded-SQL programs did with the commercial DBMS.
///
/// The name map is guarded by a reader-writer lock so concurrent sessions can
/// resolve tables while another session creates or drops its own temporaries.
/// The lock covers only the map — Table contents are protected by the
/// session-level reader-writer protocol (writers are serialized by Testbed).
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Drops a table and its indexes. Fails with NotFound if absent.
  Status DropTable(const std::string& name);

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Creates an index named `index_name` over `column_names` of `table_name`.
  /// `ordered` selects OrderedIndex over HashIndex.
  Status CreateIndex(const std::string& table_name,
                     const std::string& index_name,
                     const std::vector<std::string>& column_names,
                     bool ordered);

  /// Names of all tables, unsorted.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tables_.size();
  }

 private:
  static std::string Key(const std::string& name);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace dkb

#endif  // DKB_CATALOG_CATALOG_H_
