#ifndef DKB_CATALOG_CATALOG_H_
#define DKB_CATALOG_CATALOG_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "storage/epoch.h"
#include "storage/scan_source.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace dkb {

/// Builds a point-in-time materialization of a virtual table. Called once
/// per query that scans the table (lazily, at plan time); the returned
/// snapshot is immutable and shared-owned by the plan that scans it.
using VirtualTableProvider =
    std::function<Result<std::shared_ptr<const Table>>()>;

/// What a FROM-list name resolves to: a stored source or a virtual-table
/// snapshot. `owned` keeps the source alive for the duration of the plan
/// (shared catalog ownership for stored tables — a concurrent DROP cannot
/// free a table a running plan scans — and the snapshot itself for virtual
/// tables). `read_epoch` is the epoch scans of this source must read at:
/// kLatestEpoch outside MVCC sessions; unversioned sources ignore it.
struct ResolvedSource {
  const ScanSource* source = nullptr;
  std::shared_ptr<const ScanSource> owned;
  Epoch read_epoch = kLatestEpoch;
};

/// Catalog of tables and their indexes, keyed by case-insensitive name.
/// Stored entries are ScanSources: a plain Table, or a ShardedTable when the
/// catalog-wide default shard count is > 1 (set once at testbed startup, so
/// base tables and the LFP's `#` temporaries all shard identically and stay
/// aligned for per-shard set operations).
///
/// Table names beginning with '#' are session-temporary by convention; the
/// LFP run time library creates and drops them each iteration exactly as the
/// paper's embedded-SQL programs did with the commercial DBMS.
///
/// The name map is guarded by a reader-writer lock so concurrent sessions can
/// resolve tables while another session creates or drops its own temporaries.
/// The lock covers only the map — table contents are protected by the
/// session-level reader-writer protocol (writers are serialized by Testbed).
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Default shard count for tables created from here on (1 = plain Table).
  /// Set once at startup, before any table exists; not thread-safe against
  /// concurrent CreateTable.
  void SetDefaultShards(size_t n) { default_shards_ = n == 0 ? 1 : n; }
  size_t default_shards() const { return default_shards_; }

  /// MVCC: tables created from here on are attached to `epochs` and stamp
  /// rows with commit epochs — except `#`-temporaries, which stay
  /// unversioned (session-local scratch with physical Clear). The testbed
  /// enables this on its base catalog before creating any stored table;
  /// standalone Databases never do, and keep pre-MVCC behavior throughout.
  void EnableVersioning(const EpochSource* epochs) { epochs_ = epochs; }

  /// Turns this catalog into a session overlay over `base`: lookups that
  /// miss here fall through to base's *stored* tables (never to names
  /// starting with '#', which are strictly catalog-local). Resolved base
  /// tables are pinned (shared ownership) until ClearPinnedBases so raw
  /// pointers handed to the LFP survive a concurrent DROP on the base.
  void SetBase(const Catalog* base) { base_ = base; }

  /// The read epoch stamped onto resolutions of stored tables: kLatestEpoch
  /// for base catalogs, the session's pinned epoch for overlays. Direct
  /// scan call sites (LFP, rule compiler) fetch it from the catalog they
  /// resolved the table through.
  void SetReadEpoch(Epoch e) {
    read_epoch_.store(e, std::memory_order_relaxed);
  }
  Epoch read_epoch() const {
    return read_epoch_.load(std::memory_order_relaxed);
  }

  /// Creates an empty table with the catalog's default shard count. Fails
  /// with AlreadyExists on name collision and with InvalidArgument for names
  /// in the reserved `sys.` schema.
  Result<ScanSource*> CreateTable(const std::string& name, Schema schema)
      DKB_EXCLUDES(mu_);

  /// Creates a table with an explicit shard count (snapshot load restoring
  /// a foreign layout).
  Result<ScanSource*> CreateTable(const std::string& name, Schema schema,
                                  size_t shard_count) DKB_EXCLUDES(mu_);

  /// Registers a read-only virtual table (a system view): its fixed schema
  /// plus a provider that materializes a snapshot on demand. Virtual tables
  /// live in their own namespace-by-convention (`sys.<name>`) and are only
  /// reachable through ResolveScanSource — never through GetSource, and
  /// never serialized or cloned with the stored tables.
  Status RegisterVirtualTable(const std::string& name, Schema schema,
                              VirtualTableProvider provider)
      DKB_EXCLUDES(mu_);

  bool HasVirtualTable(const std::string& name) const DKB_EXCLUDES(mu_);

  /// Registered virtual-table names, sorted.
  std::vector<std::string> VirtualTableNames() const DKB_EXCLUDES(mu_);

  /// Declared schema of a virtual table; NotFound if absent.
  Result<Schema> VirtualTableSchema(const std::string& name) const
      DKB_EXCLUDES(mu_);

  /// Resolves a FROM-list name: stored tables win, then virtual tables
  /// (whose provider runs here, materializing a fresh snapshot).
  Result<ResolvedSource> ResolveScanSource(const std::string& name) const
      DKB_EXCLUDES(mu_);

  /// Drops a table and its indexes. Fails with NotFound if absent.
  Status DropTable(const std::string& name) DKB_EXCLUDES(mu_);

  /// Looks up a stored source; NotFound if absent. On overlays the lookup
  /// falls through to the base (see SetBase), pinning the hit.
  Result<ScanSource*> GetSource(const std::string& name) const
      DKB_EXCLUDES(mu_);

  /// Like GetSource but hands out shared ownership; used by overlays to pin
  /// base tables and by the checkpoint writer to hold tables steady.
  Result<std::shared_ptr<ScanSource>> GetSourceShared(
      const std::string& name) const DKB_EXCLUDES(mu_);

  bool HasTable(const std::string& name) const DKB_EXCLUDES(mu_);

  /// Shared handles on all stored tables (this catalog only, no base
  /// fall-through), unordered. The vacuum pass and the checkpoint writer
  /// iterate this instead of holding the catalog lock across table work.
  std::vector<std::shared_ptr<ScanSource>> SnapshotTables() const
      DKB_EXCLUDES(mu_);

  /// Drops the base-table pins accumulated since the last call (session
  /// refresh: the new epoch must re-resolve, and dropped tables get freed).
  void ClearPinnedBases() DKB_EXCLUDES(mu_);

  /// Creates an index named `index_name` over `column_names` of `table_name`
  /// — on every shard, so index availability is uniform across the grid.
  /// `ordered` selects OrderedIndex over HashIndex.
  Status CreateIndex(const std::string& table_name,
                     const std::string& index_name,
                     const std::vector<std::string>& column_names,
                     bool ordered);

  /// Names of all tables, unsorted.
  std::vector<std::string> TableNames() const DKB_EXCLUDES(mu_);

  size_t num_tables() const DKB_EXCLUDES(mu_);

 private:
  static std::string Key(const std::string& name);

  struct VirtualEntry {
    Schema schema;
    VirtualTableProvider provider;
  };

  /// Guards the name maps only (see the class comment): ScanSource* handed
  /// out by GetSource/ResolveScanSource deliberately escape the lock —
  /// table *contents* are protected by the session-level reader-writer
  /// protocol, and entries live until DropTable, which the protocol
  /// serializes.
  mutable SharedMutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ScanSource>> tables_
      DKB_GUARDED_BY(mu_);
  /// Base tables resolved through this overlay since the last refresh; keeps
  /// their raw pointers valid across a concurrent DROP on the base.
  mutable std::unordered_map<std::string, std::shared_ptr<ScanSource>>
      pinned_bases_ DKB_GUARDED_BY(mu_);
  std::unordered_map<std::string, VirtualEntry> virtuals_ DKB_GUARDED_BY(mu_);
  size_t default_shards_ = 1;
  const EpochSource* epochs_ = nullptr;
  const Catalog* base_ = nullptr;
  std::atomic<Epoch> read_epoch_{kLatestEpoch};
};

/// True for names in the reserved system schema ("sys." prefix,
/// case-insensitive). DDL/DML against such names is rejected.
bool IsSystemTableName(const std::string& name);

}  // namespace dkb

#endif  // DKB_CATALOG_CATALOG_H_
