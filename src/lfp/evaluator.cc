#include "lfp/evaluator.h"

#include "common/timer.h"
#include "lfp/eval_context.h"
#include "lfp/naive.h"
#include "lfp/native_lfp.h"
#include "lfp/seminaive.h"

namespace dkb::lfp {

namespace {

/// Evaluates a non-recursive node: one INSERT-new per rule (or the
/// binding-table pipeline for rules with negated atoms).
Status EvaluateFlatNode(EvalContext* ctx, const km::QueryProgram& program,
                        const km::ProgramNode& node) {
  km::BindingResolver canonical =
      [&program](const datalog::Atom& atom,
                 size_t) -> Result<km::RelationBinding> {
    auto it = program.bindings.find(atom.predicate);
    if (it == program.bindings.end()) {
      return Status::Internal("no binding for " + atom.predicate);
    }
    return it->second.AsRelation();
  };
  size_t rule_index = 0;
  for (const km::CompiledRule& cr : node.exit_rules) {
    const km::PredicateBinding& b =
        program.bindings.at(cr.rule.head.predicate);
    if (cr.rule.body.empty()) {
      DKB_RETURN_IF_ERROR(ctx->Rhs(EvalContext::SeedInsertSql(cr.rule, b)));
    } else if (!cr.select_sql.empty()) {
      DKB_RETURN_IF_ERROR(
          ctx->Rhs(EvalContext::InsertNewSql(b.table, cr.select_sql)));
    } else {
      DKB_RETURN_IF_ERROR(ctx->EvalRuleInto(
          cr.rule, canonical, b.table,
          "#flat" + std::to_string(rule_index)));
    }
    ++rule_index;
  }
  return Status::OK();
}

Status RunNodes(EvalContext* ctx, const km::QueryProgram& program,
                LfpStrategy strategy) {
  for (const km::ProgramNode& node : program.nodes) {
    WallTimer node_timer;
    int64_t iterations = 0;
    if (!node.is_clique) {
      DKB_RETURN_IF_ERROR(EvaluateFlatNode(ctx, program, node));
    } else if (strategy == LfpStrategy::kNaive) {
      DKB_ASSIGN_OR_RETURN(iterations,
                           EvaluateCliqueNaive(ctx, program, node));
    } else {
      DKB_ASSIGN_OR_RETURN(iterations,
                           EvaluateCliqueSemiNaive(ctx, program, node));
    }
    NodeStats ns;
    ns.is_clique = node.is_clique;
    ns.iterations = iterations;
    for (const std::string& p : node.predicates) {
      if (!ns.label.empty()) ns.label += ",";
      ns.label += p;
      DKB_ASSIGN_OR_RETURN(int64_t n,
                           ctx->Count(program.bindings.at(p).table));
      ns.tuples += n;
    }
    ns.t_us = node_timer.ElapsedMicros();
    ctx->stats()->nodes.push_back(std::move(ns));
    ctx->stats()->iterations += iterations;
  }
  return Status::OK();
}

}  // namespace

const char* StrategyName(LfpStrategy strategy) {
  switch (strategy) {
    case LfpStrategy::kNaive:
      return "naive";
    case LfpStrategy::kSemiNaive:
      return "semi-naive";
    case LfpStrategy::kNative:
      return "native-lfp";
    case LfpStrategy::kNativeTc:
      return "native-lfp+tc";
  }
  return "unknown";
}

Result<QueryResult> ExecuteProgram(Database* db,
                                   const km::QueryProgram& program,
                                   LfpStrategy strategy,
                                   ExecutionStats* stats) {
  ExecutionStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecutionStats{};

  if (strategy == LfpStrategy::kNative ||
      strategy == LfpStrategy::kNativeTc) {
    return ExecuteProgramNative(db, program, stats,
                                strategy == LfpStrategy::kNativeTc);
  }

  WallTimer total;
  EvalContext ctx(db, stats);
  for (const std::string& sql : program.drop_statements) {
    DKB_RETURN_IF_ERROR(ctx.Temp(sql));
  }
  for (const std::string& sql : program.create_statements) {
    DKB_RETURN_IF_ERROR(ctx.Temp(sql));
  }

  Status status = RunNodes(&ctx, program, strategy);

  Result<QueryResult> answer = Status::Internal("unreachable");
  if (status.ok()) {
    ScopedAccumulator acc(&stats->t_final_us);
    answer = db->Execute(program.final_select);
  } else {
    answer = status;
  }

  // Cleanup, win or lose: leftover idb_/temp tables would break the next
  // query's CREATE statements.
  for (const std::string& sql : program.drop_statements) {
    Status drop = ctx.Temp(sql);
    (void)drop;
  }
  if (answer.ok()) {
    stats->answer_tuples = static_cast<int64_t>(answer->rows.size());
  }
  stats->t_total_us = total.ElapsedMicros();
  return answer;
}

}  // namespace dkb::lfp
