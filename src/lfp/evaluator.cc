#include "lfp/evaluator.h"

#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "lfp/eval_context.h"
#include "lfp/naive.h"
#include "lfp/native_lfp.h"
#include "lfp/seminaive.h"

namespace dkb::lfp {

namespace {

/// Evaluates a non-recursive node: one INSERT-new per rule (or the
/// binding-table pipeline for rules with negated atoms).
Status EvaluateFlatNode(EvalContext* ctx, const km::QueryProgram& program,
                        const km::ProgramNode& node, size_t node_index) {
  km::BindingResolver canonical =
      [&program](const datalog::Atom& atom,
                 size_t) -> Result<km::RelationBinding> {
    auto it = program.bindings.find(atom.predicate);
    if (it == program.bindings.end()) {
      return Status::Internal("no binding for " + atom.predicate);
    }
    return it->second.AsRelation();
  };
  size_t rule_index = 0;
  for (const km::CompiledRule& cr : node.exit_rules) {
    const km::PredicateBinding& b =
        program.bindings.at(cr.rule.head.predicate);
    if (cr.rule.body.empty()) {
      DKB_RETURN_IF_ERROR(ctx->Rhs(EvalContext::SeedInsertSql(cr.rule, b)));
    } else if (!cr.select_sql.empty()) {
      DKB_RETURN_IF_ERROR(
          ctx->Rhs(EvalContext::InsertNewSql(b.table, cr.select_sql)));
    } else {
      DKB_RETURN_IF_ERROR(ctx->EvalRuleInto(
          cr.rule, canonical, b.table,
          "#n" + std::to_string(node_index) + "flat" +
              std::to_string(rule_index)));
    }
    ++rule_index;
  }
  return Status::OK();
}

/// Predicates defined by a node, comma-joined (NodeStats label and trace
/// span names).
std::string NodeLabel(const km::ProgramNode& node) {
  std::string label;
  for (const std::string& p : node.predicates) {
    if (!label.empty()) label += ",";
    label += p;
  }
  return label;
}

/// Evaluates one node end to end, appending its NodeStats to ctx's stats.
/// `node_span` (may be null) becomes the node's trace span: the clique
/// evaluators hang per-iteration children off it via ctx->span().
Status RunOneNode(EvalContext* ctx, const km::QueryProgram& program,
                  const km::ProgramNode& node, size_t node_index,
                  LfpStrategy strategy, trace::TraceSpan* node_span) {
  WallTimer node_timer;
  ctx->set_span(node_span);
  ctx->delta_sizes().clear();
  int64_t iterations = 0;
  if (!node.is_clique) {
    DKB_RETURN_IF_ERROR(EvaluateFlatNode(ctx, program, node, node_index));
  } else if (strategy == LfpStrategy::kNaive) {
    DKB_ASSIGN_OR_RETURN(
        iterations, EvaluateCliqueNaive(ctx, program, node, node_index));
  } else {
    DKB_ASSIGN_OR_RETURN(
        iterations, EvaluateCliqueSemiNaive(ctx, program, node, node_index));
  }
  NodeStats ns;
  ns.label = NodeLabel(node);
  ns.is_clique = node.is_clique;
  ns.iterations = iterations;
  ns.delta_sizes = std::move(ctx->delta_sizes());
  ctx->delta_sizes().clear();
  ctx->set_span(nullptr);
  for (const std::string& p : node.predicates) {
    DKB_ASSIGN_OR_RETURN(int64_t n,
                         ctx->Count(program.bindings.at(p).table));
    ns.tuples += n;
  }
  ns.t_us = node_timer.ElapsedMicros();
  if (node_span != nullptr) {
    node_span->Tag("iterations", iterations);
    node_span->Tag("tuples", ns.tuples);
    node_span->End();
  }
  ctx->stats()->nodes.push_back(std::move(ns));
  ctx->stats()->iterations += iterations;
  return Status::OK();
}

Status RunNodes(EvalContext* ctx, const km::QueryProgram& program,
                LfpStrategy strategy, trace::TraceSpan* parent) {
  for (size_t i = 0; i < program.nodes.size(); ++i) {
    trace::TraceSpan* node_span =
        trace::StartSpan(parent, "node:" + NodeLabel(program.nodes[i]));
    DKB_RETURN_IF_ERROR(
        RunOneNode(ctx, program, program.nodes[i], i, strategy, node_span));
  }
  return Status::OK();
}

/// Topological-wavefront scheduler: node j waits on node i iff a rule of j
/// mentions a predicate i defines. Independent nodes of a wave evaluate
/// concurrently — they touch disjoint IDB/temp tables, and the shared
/// DBMS plumbing (catalog map, statement cache, counters) is thread-safe.
/// Per-node stats accumulate into private ExecutionStats and merge in
/// program order, so the reported breakdown is deterministic.
Status RunNodesParallel(Database* db, const km::QueryProgram& program,
                        LfpStrategy strategy, ThreadPool* pool,
                        ExecutionStats* stats, trace::TraceSpan* parent) {
  const size_t n = program.nodes.size();
  std::map<std::string, size_t> defined_by;
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& p : program.nodes[i].predicates) {
      defined_by[p] = i;
    }
  }
  std::vector<std::vector<size_t>> deps(n);
  for (size_t i = 0; i < n; ++i) {
    auto add_dep = [&](const std::string& pred) {
      auto it = defined_by.find(pred);
      if (it != defined_by.end() && it->second != i) {
        deps[i].push_back(it->second);
      }
    };
    for (const km::CompiledRule& cr : program.nodes[i].exit_rules) {
      for (const datalog::Atom& atom : cr.rule.body) {
        add_dep(atom.predicate);
      }
    }
    for (const datalog::Rule& rule : program.nodes[i].recursive_rules) {
      for (const datalog::Atom& atom : rule.body) {
        add_dep(atom.predicate);
      }
    }
  }

  std::vector<ExecutionStats> locals(n);
  // Per-node spans are detached from the shared context (each pool thread
  // writes only its own slot) and adopted into `parent` in program order
  // below, so the span tree is identical run to run.
  std::vector<std::unique_ptr<trace::TraceSpan>> node_spans(n);
  std::vector<Status> results(n, Status::OK());
  std::vector<bool> done(n, false);
  size_t completed = 0;
  while (completed < n) {
    std::vector<size_t> wave;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (size_t d : deps[i]) {
        if (!done[d]) {
          ready = false;
          break;
        }
      }
      if (ready) wave.push_back(i);
    }
    if (wave.empty()) {
      return Status::Internal("cyclic dependency between program nodes");
    }
    pool->ParallelFor(0, wave.size(), [&](size_t w) {
      size_t i = wave[w];
      EvalContext node_ctx(db, &locals[i]);
      if (parent != nullptr) {
        node_spans[i] = parent->context()->Detach(
            "node:" + NodeLabel(program.nodes[i]));
      }
      results[i] = RunOneNode(&node_ctx, program, program.nodes[i], i,
                              strategy, node_spans[i].get());
    });
    for (size_t i : wave) {
      done[i] = true;
      ++completed;
    }
    for (size_t i : wave) {
      if (!results[i].ok()) return results[i];
    }
  }

  for (size_t i = 0; i < n; ++i) {
    stats->t_temp_us += locals[i].t_temp_us;
    stats->t_rhs_us += locals[i].t_rhs_us;
    stats->t_term_us += locals[i].t_term_us;
    stats->iterations += locals[i].iterations;
    for (NodeStats& ns : locals[i].nodes) {
      stats->nodes.push_back(std::move(ns));
    }
    if (parent != nullptr && node_spans[i] != nullptr) {
      parent->Adopt(std::move(node_spans[i]));
    }
  }
  return Status::OK();
}

}  // namespace

const char* StrategyName(LfpStrategy strategy) {
  switch (strategy) {
    case LfpStrategy::kNaive:
      return "naive";
    case LfpStrategy::kSemiNaive:
      return "semi-naive";
    case LfpStrategy::kNative:
      return "native-lfp";
    case LfpStrategy::kNativeTc:
      return "native-lfp+tc";
  }
  return "unknown";
}

Result<QueryResult> ExecuteProgram(Database* db,
                                   const km::QueryProgram& program,
                                   const EvalOptions& options,
                                   ExecutionStats* stats) {
  ExecutionStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecutionStats{};
  stats->query_id = options.query_id;

  if (options.strategy == LfpStrategy::kNative ||
      options.strategy == LfpStrategy::kNativeTc) {
    return ExecuteProgramNative(db, program, stats,
                                options.strategy == LfpStrategy::kNativeTc,
                                options.span);
  }

  // Resolve the parallelism knob to a wavefront worker count.
  size_t workers = 1;
  if (options.parallelism == 0) {
    workers = GlobalThreadPool().num_threads() + 1;
  } else if (options.parallelism > 1) {
    workers = static_cast<size_t>(options.parallelism);
  }
  const bool parallel = workers > 1 && program.nodes.size() > 1;

  WallTimer total;
  EvalContext ctx(db, stats);
  {
    trace::ScopedSpan temp_span(options.span, "temp");
    for (const std::string& sql : program.drop_statements) {
      DKB_RETURN_IF_ERROR(ctx.Temp(sql));
    }
    for (const std::string& sql : program.create_statements) {
      DKB_RETURN_IF_ERROR(ctx.Temp(sql));
    }
  }

  Status status;
  if (parallel && options.parallelism == 0) {
    status = RunNodesParallel(db, program, options.strategy,
                              &GlobalThreadPool(), stats, options.span);
  } else if (parallel) {
    ThreadPool wave_pool(workers - 1);
    status = RunNodesParallel(db, program, options.strategy, &wave_pool,
                              stats, options.span);
  } else {
    status = RunNodes(&ctx, program, options.strategy, options.span);
  }

  Result<QueryResult> answer = Status::Internal("unreachable");
  if (status.ok()) {
    ScopedAccumulator acc(&stats->t_final_us);
    trace::ScopedSpan final_span(options.span, "final");
    answer = db->Execute(program.final_select);
  } else {
    answer = status;
  }

  // Cleanup, win or lose: leftover idb_/temp tables would break the next
  // query's CREATE statements.
  {
    trace::ScopedSpan cleanup_span(options.span, "cleanup");
    for (const std::string& sql : program.drop_statements) {
      Status drop = ctx.Temp(sql);
      (void)drop;
    }
  }
  if (answer.ok()) {
    stats->answer_tuples = static_cast<int64_t>(answer->rows.size());
  }
  stats->t_total_us = total.ElapsedMicros();
  return answer;
}

Result<QueryResult> ExecuteProgram(Database* db,
                                   const km::QueryProgram& program,
                                   LfpStrategy strategy,
                                   ExecutionStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return ExecuteProgram(db, program, options, stats);
}

}  // namespace dkb::lfp
