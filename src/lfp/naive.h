#ifndef DKB_LFP_NAIVE_H_
#define DKB_LFP_NAIVE_H_

#include "km/codegen.h"
#include "lfp/eval_context.h"

namespace dkb::lfp {

/// Naive LFP evaluation of one clique (paper §3.3): every iteration
/// recomputes the full head relations from the previous iteration's
/// relations, checks termination with a full set difference, and copies the
/// new relations over the old ones.
///
/// Returns the number of iterations. `node_index` namespaces the binding
/// pipeline's temp tables so independent nodes can evaluate concurrently.
Result<int64_t> EvaluateCliqueNaive(EvalContext* ctx,
                                    const km::QueryProgram& program,
                                    const km::ProgramNode& node,
                                    size_t node_index = 0);

}  // namespace dkb::lfp

#endif  // DKB_LFP_NAIVE_H_
