#include "lfp/naive.h"

#include <set>

#include "km/naming.h"
#include "km/rule_sql.h"

namespace dkb::lfp {

Result<int64_t> EvaluateCliqueNaive(EvalContext* ctx,
                                    const km::QueryProgram& program,
                                    const km::ProgramNode& node,
                                    size_t node_index) {
  const std::set<std::string> members(node.predicates.begin(),
                                      node.predicates.end());
  const std::string np = "#n" + std::to_string(node_index);

  // Canonical resolver: every predicate reads its stored relation. During
  // an iteration the member relations hold the previous iteration's value.
  km::BindingResolver canonical =
      [&program](const datalog::Atom& atom,
                 size_t) -> Result<km::RelationBinding> {
    auto it = program.bindings.find(atom.predicate);
    if (it == program.bindings.end()) {
      return Status::Internal("no binding for " + atom.predicate);
    }
    return it->second.AsRelation();
  };

  // Temp tables: #p_new (recomputed value) and #p_diff (termination check).
  for (const std::string& p : node.predicates) {
    const km::PredicateBinding& b = program.bindings.at(p);
    DKB_RETURN_IF_ERROR(ctx->CreateLike(km::NewTableName(p), b));
    DKB_RETURN_IF_ERROR(ctx->CreateLike(km::DiffTableName(p), b));
  }

  // Evaluates one exit rule into `target` (seed insert, precompiled
  // select, or binding-table pipeline for negated rules).
  auto eval_exit = [&](const km::CompiledRule& cr, const std::string& target,
                       size_t index) -> Status {
    if (cr.rule.body.empty()) {
      const km::PredicateBinding& b =
          program.bindings.at(cr.rule.head.predicate);
      km::PredicateBinding tmp = b;
      tmp.table = target;
      return ctx->Rhs(EvalContext::SeedInsertSql(cr.rule, tmp));
    }
    if (!cr.select_sql.empty()) {
      return ctx->Rhs(EvalContext::InsertNewSql(target, cr.select_sql));
    }
    return ctx->EvalRuleInto(cr.rule, canonical, target,
                             np + "nx" + std::to_string(index));
  };

  // p^(0): exit rules into the base relations.
  for (size_t i = 0; i < node.exit_rules.size(); ++i) {
    const km::PredicateBinding& b =
        program.bindings.at(node.exit_rules[i].rule.head.predicate);
    DKB_RETURN_IF_ERROR(eval_exit(node.exit_rules[i], b.table, i));
  }

  int64_t iterations = 0;
  while (true) {
    ++iterations;
    trace::ScopedSpan iter_span(ctx->span(), "iteration");
    iter_span.Tag("iter", iterations);
    // Recompute every member relation from scratch into #p_new.
    for (const std::string& p : node.predicates) {
      DKB_RETURN_IF_ERROR(ctx->Clear(km::NewTableName(p)));
    }
    for (size_t i = 0; i < node.exit_rules.size(); ++i) {
      DKB_RETURN_IF_ERROR(eval_exit(
          node.exit_rules[i],
          km::NewTableName(node.exit_rules[i].rule.head.predicate), i));
    }
    for (size_t ri = 0; ri < node.recursive_rules.size(); ++ri) {
      const datalog::Rule& rule = node.recursive_rules[ri];
      DKB_RETURN_IF_ERROR(ctx->EvalRuleInto(
          rule, canonical, km::NewTableName(rule.head.predicate),
          np + "nr" + std::to_string(ri)));
    }

    // Termination: full set difference #p_new - idb_p, then count.
    bool changed = false;
    int64_t delta_total = 0;
    for (const std::string& p : node.predicates) {
      const km::PredicateBinding& b = program.bindings.at(p);
      DKB_RETURN_IF_ERROR(ctx->Clear(km::DiffTableName(p)));
      DKB_RETURN_IF_ERROR(
          ctx->Term("INSERT INTO " + km::DiffTableName(p) +
                    " (SELECT * FROM " + km::NewTableName(p) +
                    ") EXCEPT (SELECT * FROM " + b.table + ")"));
      DKB_ASSIGN_OR_RETURN(int64_t cnt,
                           ctx->TermCount("SELECT COUNT(*) FROM " +
                                          km::DiffTableName(p)));
      if (cnt > 0) changed = true;
      delta_total += cnt;
    }
    ctx->delta_sizes().push_back(delta_total);
    iter_span.Tag("delta", delta_total);
    if (!changed) break;

    // Table copy: idb_p := #p_new.
    for (const std::string& p : node.predicates) {
      const km::PredicateBinding& b = program.bindings.at(p);
      DKB_RETURN_IF_ERROR(ctx->Clear(b.table));
      DKB_RETURN_IF_ERROR(ctx->Copy(b.table, km::NewTableName(p)));
    }
  }

  for (const std::string& p : node.predicates) {
    DKB_RETURN_IF_ERROR(ctx->Drop(km::NewTableName(p)));
    DKB_RETURN_IF_ERROR(ctx->Drop(km::DiffTableName(p)));
  }
  return iterations;
}

}  // namespace dkb::lfp
