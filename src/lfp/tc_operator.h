#ifndef DKB_LFP_TC_OPERATOR_H_
#define DKB_LFP_TC_OPERATOR_H_

#include <string>
#include <vector>

#include "km/codegen.h"
#include "storage/tuple.h"

namespace dkb::lfp {

/// Shape of a clique recognized as a plain transitive closure
/// (paper conclusion #8: the DBMS interface should offer special LFP
/// operators like transitive closure that can be executed better than the
/// general operator).
///
/// Recognized cliques: a single binary predicate p whose exit rules are all
///   p(X, Y) :- e(X, Y).
/// over one edge relation e, and whose recursive rules are each one of
///   p(X, Y) :- e(X, Z), p(Z, Y).      (right-linear)
///   p(X, Y) :- p(X, Z), e(Z, Y).      (left-linear)
///   p(X, Y) :- p(X, Z), p(Z, Y).      (non-linear)
/// with the same e. All such programs compute p = e+.
struct TcShape {
  std::string predicate;       // p
  std::string edge_predicate;  // e
};

/// Returns true (filling *shape) if `node` is a transitive-closure clique.
bool MatchesTransitiveClosure(const km::ProgramNode& node, TcShape* shape);

/// Computes e+ directly: builds an adjacency list over `edges` and runs one
/// breadth-first traversal per source node — no joins, no deltas, no
/// termination checks. Appends (src, dst) pairs to `out`.
void ComputeTransitiveClosure(const std::vector<Tuple>& edges,
                              std::vector<Tuple>* out);

}  // namespace dkb::lfp

#endif  // DKB_LFP_TC_OPERATOR_H_
