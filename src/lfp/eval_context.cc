#include "lfp/eval_context.h"

#include <unordered_set>

#include "common/timer.h"

namespace dkb::lfp {

Status EvalContext::Temp(const std::string& sql) {
  ScopedAccumulator acc(&stats_->t_temp_us);
  return db_->Execute(sql).status();
}

Status EvalContext::Rhs(const std::string& sql) {
  ScopedAccumulator acc(&stats_->t_rhs_us);
  return db_->Execute(sql).status();
}

Status EvalContext::Term(const std::string& sql) {
  ScopedAccumulator acc(&stats_->t_term_us);
  return db_->Execute(sql).status();
}

Result<int64_t> EvalContext::TermCount(const std::string& count_sql) {
  ScopedAccumulator acc(&stats_->t_term_us);
  return db_->QueryCount(count_sql);
}

Status EvalContext::TermPrepared(PreparedStatement* stmt) {
  ScopedAccumulator acc(&stats_->t_term_us);
  return stmt->Execute().status();
}

Result<int64_t> EvalContext::TermCountPrepared(PreparedStatement* count_stmt) {
  ScopedAccumulator acc(&stats_->t_term_us);
  DKB_ASSIGN_OR_RETURN(QueryResult result, count_stmt->Execute());
  if (result.rows.empty() || result.rows[0].empty() ||
      !result.rows[0][0].is_int()) {
    return Status::Internal("termination count returned no integer");
  }
  return result.rows[0][0].as_int();
}

Status EvalContext::CreateLike(const std::string& name,
                               const km::PredicateBinding& binding) {
  // A failed earlier run may have leaked the temp table; recreate cleanly.
  DKB_RETURN_IF_ERROR(Drop(name));
  std::string ddl = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < binding.columns.size(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += binding.columns[i];
    ddl += binding.types[i] == DataType::kInteger ? " INT" : " VARCHAR";
  }
  ddl += ")";
  return Temp(ddl);
}

Status EvalContext::CreateWithSchema(const std::string& name,
                                     const Schema& schema) {
  DKB_RETURN_IF_ERROR(Drop(name));
  std::string ddl = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += schema.column(i).name;
    ddl += schema.column(i).type == DataType::kInteger ? " INT" : " VARCHAR";
  }
  ddl += ")";
  return Temp(ddl);
}

Status EvalContext::EvalRuleInto(const datalog::Rule& rule,
                                 const km::BindingResolver& resolver,
                                 const std::string& target,
                                 const std::string& bind_prefix) {
  DKB_ASSIGN_OR_RETURN(
      km::RuleSqlProgram program,
      km::RuleToSqlProgram(rule, resolver, target, bind_prefix));
  for (const auto& bind : program.bind_tables) {
    DKB_RETURN_IF_ERROR(CreateWithSchema(bind.name, bind.schema));
  }
  Status status = Status::OK();
  for (const std::string& sql : program.statements) {
    status = Rhs(sql);
    if (!status.ok()) break;
  }
  for (const auto& bind : program.bind_tables) {
    Status drop = Drop(bind.name);
    if (status.ok()) status = drop;
  }
  return status;
}

Status EvalContext::Clear(const std::string& name) {
  return Temp("DELETE FROM " + name);
}

Status EvalContext::Copy(const std::string& dst, const std::string& src) {
  return Temp("INSERT INTO " + dst + " SELECT * FROM " + src);
}

Status EvalContext::ClearTable(const std::string& name) {
  ScopedAccumulator acc(&stats_->t_temp_us);
  DKB_ASSIGN_OR_RETURN(Table * table, db_->catalog().GetTable(name));
  table->Clear();
  return Status::OK();
}

Status EvalContext::CopyTable(const std::string& dst, const std::string& src) {
  ScopedAccumulator acc(&stats_->t_temp_us);
  DKB_ASSIGN_OR_RETURN(Table * d, db_->catalog().GetTable(dst));
  DKB_ASSIGN_OR_RETURN(Table * s, db_->catalog().GetTable(src));
  RowBatch batch;
  RowId cursor = 0;
  while (true) {
    cursor = s->ScanBatch(cursor, &batch);
    if (batch.empty()) break;
    DKB_RETURN_IF_ERROR(d->AppendBatch(batch));
  }
  return Status::OK();
}

Result<int64_t> EvalContext::DiffInto(const std::string& diff,
                                      const std::string& new_table,
                                      const std::string& full) {
  ScopedAccumulator acc(&stats_->t_term_us);
  DKB_ASSIGN_OR_RETURN(Table * dst, db_->catalog().GetTable(diff));
  DKB_ASSIGN_OR_RETURN(Table * src_new, db_->catalog().GetTable(new_table));
  DKB_ASSIGN_OR_RETURN(Table * src_full, db_->catalog().GetTable(full));

  // Seed the dedup set with the accumulated relation; stored tuples carry
  // interned VARCHARs, so hashing and equality are O(1) per value.
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(src_full->num_tuples() + src_new->num_tuples());
  RowBatch batch;
  RowId cursor = 0;
  while (true) {
    cursor = src_full->ScanBatch(cursor, &batch);
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      seen.insert(batch.MaterializeTuple(i));
    }
  }

  int64_t appended = 0;
  RowBatch out;
  out.Reset(dst->schema().num_columns());
  cursor = 0;
  while (true) {
    cursor = src_new->ScanBatch(cursor, &batch);
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      Tuple t = batch.MaterializeTuple(i);
      if (seen.count(t) > 0) continue;
      out.AppendRow(t);
      seen.insert(std::move(t));
      ++appended;
      if (out.full()) {
        DKB_RETURN_IF_ERROR(dst->AppendBatch(out));
        out.Reset(dst->schema().num_columns());
      }
    }
  }
  if (!out.empty()) DKB_RETURN_IF_ERROR(dst->AppendBatch(out));
  return appended;
}

Status EvalContext::Drop(const std::string& name) {
  return Temp("DROP TABLE IF EXISTS " + name);
}

Result<int64_t> EvalContext::Count(const std::string& name) {
  return db_->QueryCount("SELECT COUNT(*) FROM " + name);
}

std::string EvalContext::SeedInsertSql(const datalog::Rule& seed,
                                       const km::PredicateBinding& binding) {
  std::string sql = "INSERT INTO " + binding.table + " VALUES (";
  for (size_t i = 0; i < seed.head.args.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += seed.head.args[i].value.ToSqlLiteral();
  }
  sql += ")";
  return sql;
}

std::string EvalContext::InsertNewSql(const std::string& table,
                                      const std::string& select) {
  return "INSERT INTO " + table + " (" + select + ") EXCEPT (SELECT * FROM " +
         table + ")";
}

}  // namespace dkb::lfp
