#include "lfp/eval_context.h"

#include <unordered_set>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace dkb::lfp {

namespace {

/// True when two sources have identical sharding layouts: same shard count
/// and same partition column. Because ShardOf is a pure function of the key
/// value, aligned sources place identical tuples in the same shard index —
/// which makes per-shard set operations (diff, copy) exact with no
/// cross-shard exchange.
bool Aligned(const ScanSource& a, const ScanSource& b) {
  return a.shard_count() == b.shard_count() &&
         a.partition_column() == b.partition_column();
}

}  // namespace

Status EvalContext::Temp(const std::string& sql) {
  ScopedAccumulator acc(&stats_->t_temp_us);
  return db_->Execute(sql).status();
}

Status EvalContext::Rhs(const std::string& sql) {
  ScopedAccumulator acc(&stats_->t_rhs_us);
  return db_->Execute(sql).status();
}

Status EvalContext::Term(const std::string& sql) {
  ScopedAccumulator acc(&stats_->t_term_us);
  return db_->Execute(sql).status();
}

Result<int64_t> EvalContext::TermCount(const std::string& count_sql) {
  ScopedAccumulator acc(&stats_->t_term_us);
  return db_->QueryCount(count_sql);
}

Status EvalContext::TermPrepared(PreparedStatement* stmt) {
  ScopedAccumulator acc(&stats_->t_term_us);
  return stmt->Execute().status();
}

Result<int64_t> EvalContext::TermCountPrepared(PreparedStatement* count_stmt) {
  ScopedAccumulator acc(&stats_->t_term_us);
  DKB_ASSIGN_OR_RETURN(QueryResult result, count_stmt->Execute());
  if (result.rows.empty() || result.rows[0].empty() ||
      !result.rows[0][0].is_int()) {
    return Status::Internal("termination count returned no integer");
  }
  return result.rows[0][0].as_int();
}

Status EvalContext::CreateLike(const std::string& name,
                               const km::PredicateBinding& binding) {
  // A failed earlier run may have leaked the temp table; recreate cleanly.
  DKB_RETURN_IF_ERROR(Drop(name));
  std::string ddl = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < binding.columns.size(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += binding.columns[i];
    ddl += binding.types[i] == DataType::kInteger ? " INT" : " VARCHAR";
  }
  ddl += ")";
  return Temp(ddl);
}

Status EvalContext::CreateWithSchema(const std::string& name,
                                     const Schema& schema) {
  DKB_RETURN_IF_ERROR(Drop(name));
  std::string ddl = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += schema.column(i).name;
    ddl += schema.column(i).type == DataType::kInteger ? " INT" : " VARCHAR";
  }
  ddl += ")";
  return Temp(ddl);
}

Status EvalContext::EvalRuleInto(const datalog::Rule& rule,
                                 const km::BindingResolver& resolver,
                                 const std::string& target,
                                 const std::string& bind_prefix) {
  DKB_ASSIGN_OR_RETURN(
      km::RuleSqlProgram program,
      km::RuleToSqlProgram(rule, resolver, target, bind_prefix));
  for (const auto& bind : program.bind_tables) {
    DKB_RETURN_IF_ERROR(CreateWithSchema(bind.name, bind.schema));
  }
  Status status = Status::OK();
  for (const std::string& sql : program.statements) {
    status = Rhs(sql);
    if (!status.ok()) break;
  }
  for (const auto& bind : program.bind_tables) {
    Status drop = Drop(bind.name);
    if (status.ok()) status = drop;
  }
  return status;
}

Status EvalContext::Clear(const std::string& name) {
  return Temp("DELETE FROM " + name);
}

Status EvalContext::Copy(const std::string& dst, const std::string& src) {
  return Temp("INSERT INTO " + dst + " SELECT * FROM " + src);
}

Status EvalContext::ClearTable(const std::string& name) {
  ScopedAccumulator acc(&stats_->t_temp_us);
  DKB_ASSIGN_OR_RETURN(ScanSource * table, db_->catalog().GetSource(name));
  table->Clear();
  return Status::OK();
}

Status EvalContext::CopyTable(const std::string& dst, const std::string& src) {
  ScopedAccumulator acc(&stats_->t_temp_us);
  DKB_ASSIGN_OR_RETURN(ScanSource * d, db_->catalog().GetSource(dst));
  DKB_ASSIGN_OR_RETURN(ScanSource * s, db_->catalog().GetSource(src));
  // Sessions read base tables at their pinned epoch; temps are unversioned
  // (visible at every epoch), so one epoch covers both source kinds.
  const Epoch at = db_->catalog().read_epoch();

  ThreadPool& pool = GlobalThreadPool();
  if (Aligned(*d, *s) && d->shard_count() > 1 && pool.num_threads() > 0) {
    // Aligned sources: shard i of src holds exactly the rows that belong in
    // shard i of dst, so shards copy independently — no routing, no locks
    // (distinct shards are mutable by distinct threads).
    std::vector<Status> statuses(d->shard_count());
    pool.ParallelFor(0, d->shard_count(), [&](size_t sh) {
      Table& to = d->shard(sh);
      const Table& from = s->shard(sh);
      RowBatch batch;
      RowId cursor = 0;
      while (true) {
        cursor = from.ScanBatch(cursor, &batch, at);
        if (batch.empty()) break;
        statuses[sh] = to.AppendBatch(batch);
        if (!statuses[sh].ok()) break;
      }
    });
    for (const Status& st : statuses) DKB_RETURN_IF_ERROR(st);
    return Status::OK();
  }

  // Serial / unaligned fallback: scan shard-major and let the destination's
  // AppendBatch hash-repartition rows to their home shards.
  RowBatch batch;
  for (size_t sh = 0; sh < s->shard_count(); ++sh) {
    RowId cursor = 0;
    while (true) {
      cursor = s->ScanBatch(sh, cursor, &batch, at);
      if (batch.empty()) break;
      DKB_RETURN_IF_ERROR(d->AppendBatch(batch));
    }
  }
  return Status::OK();
}

Result<int64_t> EvalContext::DiffInto(const std::string& diff,
                                      const std::string& new_table,
                                      const std::string& full) {
  ScopedAccumulator acc(&stats_->t_term_us);
  DKB_ASSIGN_OR_RETURN(ScanSource * dst, db_->catalog().GetSource(diff));
  DKB_ASSIGN_OR_RETURN(ScanSource * src_new,
                       db_->catalog().GetSource(new_table));
  DKB_ASSIGN_OR_RETURN(ScanSource * src_full,
                       db_->catalog().GetSource(full));
  const Epoch at = db_->catalog().read_epoch();

  // One shard's diff: dedups new-rows of shard `sh` against full-rows of
  // shard `sh`, appending survivors to dst's shard `sh`.
  auto diff_shard = [&](size_t sh, int64_t* appended) -> Status {
    const Table& full_shard = src_full->shard(sh);
    const Table& new_shard = src_new->shard(sh);
    Table& dst_shard = dst->shard(sh);

    // Seed the dedup set with the accumulated relation; stored tuples carry
    // interned VARCHARs, so hashing and equality are O(1) per value.
    std::unordered_set<Tuple, TupleHash> seen;
    seen.reserve(full_shard.num_tuples() + new_shard.num_tuples());
    RowBatch batch;
    RowId cursor = 0;
    while (true) {
      cursor = full_shard.ScanBatch(cursor, &batch, at);
      if (batch.empty()) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        seen.insert(batch.MaterializeTuple(i));
      }
    }

    RowBatch out;
    out.Reset(dst_shard.schema().num_columns());
    cursor = 0;
    while (true) {
      cursor = new_shard.ScanBatch(cursor, &batch, at);
      if (batch.empty()) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        Tuple t = batch.MaterializeTuple(i);
        if (seen.count(t) > 0) continue;
        out.AppendRow(t);
        seen.insert(std::move(t));
        ++*appended;
        if (out.full()) {
          DKB_RETURN_IF_ERROR(dst_shard.AppendBatch(out));
          out.Reset(dst_shard.schema().num_columns());
        }
      }
    }
    if (!out.empty()) DKB_RETURN_IF_ERROR(dst_shard.AppendBatch(out));
    return Status::OK();
  };

  const size_t nshards = dst->shard_count();
  ThreadPool& pool = GlobalThreadPool();
  if (nshards > 1 && Aligned(*dst, *src_new) && Aligned(*dst, *src_full)) {
    // Aligned layout means identical tuples land in the same shard index
    // everywhere, so each shard's diff is exact on its own — this is the
    // shard-parallel termination diff at the heart of the semi-naive loop.
    std::vector<int64_t> counts(nshards, 0);
    std::vector<Status> statuses(nshards);
    if (pool.num_threads() > 0) {
      pool.ParallelFor(0, nshards, [&](size_t sh) {
        statuses[sh] = diff_shard(sh, &counts[sh]);
      });
    } else {
      for (size_t sh = 0; sh < nshards; ++sh) {
        statuses[sh] = diff_shard(sh, &counts[sh]);
      }
    }
    int64_t appended = 0;
    for (size_t sh = 0; sh < nshards; ++sh) {
      DKB_RETURN_IF_ERROR(statuses[sh]);
      appended += counts[sh];
    }
    return appended;
  }
  if (nshards == 1 && src_new->shard_count() == 1 &&
      src_full->shard_count() == 1) {
    int64_t appended = 0;
    DKB_RETURN_IF_ERROR(diff_shard(0, &appended));
    return appended;
  }

  // Unaligned fallback: global dedup set over all shards of full, then
  // route survivors through dst's AppendBatch (hash repartitioning).
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(src_full->num_tuples() + src_new->num_tuples());
  RowBatch batch;
  src_full->Scan([&](RowId, const Tuple& t) { seen.insert(t); }, at);
  int64_t appended = 0;
  RowBatch out;
  out.Reset(dst->schema().num_columns());
  Status append_status = Status::OK();
  for (size_t sh = 0; sh < src_new->shard_count() && append_status.ok();
       ++sh) {
    RowId cursor = 0;
    while (append_status.ok()) {
      cursor = src_new->ScanBatch(sh, cursor, &batch, at);
      if (batch.empty()) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        Tuple t = batch.MaterializeTuple(i);
        if (seen.count(t) > 0) continue;
        out.AppendRow(t);
        seen.insert(std::move(t));
        ++appended;
        if (out.full()) {
          append_status = dst->AppendBatch(out);
          if (!append_status.ok()) break;
          out.Reset(dst->schema().num_columns());
        }
      }
    }
  }
  DKB_RETURN_IF_ERROR(append_status);
  if (!out.empty()) DKB_RETURN_IF_ERROR(dst->AppendBatch(out));
  return appended;
}

Status EvalContext::Drop(const std::string& name) {
  return Temp("DROP TABLE IF EXISTS " + name);
}

Result<int64_t> EvalContext::Count(const std::string& name) {
  return db_->QueryCount("SELECT COUNT(*) FROM " + name);
}

std::string EvalContext::SeedInsertSql(const datalog::Rule& seed,
                                       const km::PredicateBinding& binding) {
  std::string sql = "INSERT INTO " + binding.table + " VALUES (";
  for (size_t i = 0; i < seed.head.args.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += seed.head.args[i].value.ToSqlLiteral();
  }
  sql += ")";
  return sql;
}

std::string EvalContext::InsertNewSql(const std::string& table,
                                      const std::string& select) {
  return "INSERT INTO " + table + " (" + select + ") EXCEPT (SELECT * FROM " +
         table + ")";
}

}  // namespace dkb::lfp
