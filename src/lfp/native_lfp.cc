#include "lfp/native_lfp.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "km/naming.h"
#include "lfp/tc_operator.h"

namespace dkb::lfp {

namespace {

/// In-memory relation with set semantics and lazily-built (incrementally
/// extended) hash indexes on arbitrary column subsets.
class NativeRelation {
 public:
  bool Insert(Tuple t) {
    if (!set_.insert(t).second) return false;
    rows_.push_back(std::move(t));
    return true;
  }

  bool Contains(const Tuple& t) const { return set_.count(t) > 0; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Hash index keyed by the projection onto `cols`; extended to cover any
  /// rows inserted since the last call (insertion never copies the index).
  const std::unordered_multimap<Tuple, size_t, TupleHash>& IndexOn(
      const std::vector<size_t>& cols) {
    auto& entry = indexes_[cols];
    auto& [built_upto, index] = entry;
    for (size_t r = built_upto; r < rows_.size(); ++r) {
      Tuple key;
      key.reserve(cols.size());
      for (size_t c : cols) key.push_back(rows_[r][c]);
      index.emplace(std::move(key), r);
    }
    built_upto = rows_.size();
    return index;
  }

 private:
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> set_;
  std::map<std::vector<size_t>,
           std::pair<size_t, std::unordered_multimap<Tuple, size_t, TupleHash>>>
      indexes_;
};

/// Evaluates one rule body as a hash-indexed backtracking join.
/// `body_rels` supplies the relation for each body atom (delta-substituted
/// by the caller); `order` gives the evaluation order of body positions.
void EvalRuleJoin(const datalog::Rule& rule,
                  const std::vector<NativeRelation*>& body_rels,
                  const std::vector<size_t>& order,
                  const std::function<void(Tuple)>& emit) {
  std::unordered_map<std::string, Value> bindings;

  std::function<void(size_t)> descend = [&](size_t depth) {
    if (depth == order.size()) {
      Tuple head;
      head.reserve(rule.head.args.size());
      for (const datalog::Term& t : rule.head.args) {
        head.push_back(t.is_constant() ? t.value : bindings.at(t.var));
      }
      emit(std::move(head));
      return;
    }
    size_t pos = order[depth];
    const datalog::Atom& atom = rule.body[pos];
    NativeRelation* rel = body_rels[pos];

    if (atom.is_builtin()) {
      // Comparison filter over bound values (ordered after the positive
      // atoms that bind them).
      auto value_of = [&](const datalog::Term& t) {
        return t.is_constant() ? t.value : bindings.at(t.var);
      };
      Value l = value_of(atom.args[0]);
      Value r = value_of(atom.args[1]);
      bool pass = false;
      if (atom.predicate == "<") pass = l < r;
      else if (atom.predicate == "<=") pass = l <= r;
      else if (atom.predicate == ">") pass = l > r;
      else if (atom.predicate == ">=") pass = l >= r;
      else if (atom.predicate == "=") pass = l == r;
      else if (atom.predicate == "!=") pass = l != r;
      if (pass) descend(depth + 1);
      return;
    }

    if (atom.negated) {
      // Ordered after all positive atoms, so every argument is bound
      // (safety is checked at compile time): a pure membership test.
      Tuple key;
      key.reserve(atom.args.size());
      for (const datalog::Term& t : atom.args) {
        key.push_back(t.is_constant() ? t.value : bindings.at(t.var));
      }
      if (!rel->Contains(key)) descend(depth + 1);
      return;
    }

    // Split argument positions into bound (constant / already-bound
    // variable) and free.
    std::vector<size_t> bound_cols;
    Tuple key;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const datalog::Term& t = atom.args[i];
      if (t.is_constant()) {
        bound_cols.push_back(i);
        key.push_back(t.value);
      } else if (auto it = bindings.find(t.var); it != bindings.end()) {
        bound_cols.push_back(i);
        key.push_back(it->second);
      }
    }

    auto try_row = [&](const Tuple& row) {
      // Bind free variables, checking intra-atom repeats.
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < atom.args.size() && ok; ++i) {
        const datalog::Term& t = atom.args[i];
        if (t.is_constant()) {
          if (!(row[i] == t.value)) ok = false;
          continue;
        }
        auto it = bindings.find(t.var);
        if (it == bindings.end()) {
          bindings.emplace(t.var, row[i]);
          newly_bound.push_back(t.var);
        } else if (!(it->second == row[i])) {
          ok = false;
        }
      }
      if (ok) descend(depth + 1);
      for (const std::string& v : newly_bound) bindings.erase(v);
    };

    if (!bound_cols.empty()) {
      const auto& index = rel->IndexOn(bound_cols);
      auto [lo, hi] = index.equal_range(key);
      for (auto it = lo; it != hi; ++it) try_row(rel->rows()[it->second]);
    } else {
      // Full scan over a snapshot-size bound (the relation cannot grow
      // during evaluation in this evaluator, but be explicit).
      size_t n = rel->size();
      for (size_t r = 0; r < n; ++r) try_row(rel->rows()[r]);
    }
  };

  descend(0);
}

/// Body evaluation order: the delta position first (most selective), then
/// the remaining positive atoms left to right, then built-in comparison
/// filters, then negated atoms (filter/negation variables are all bound by
/// then, per the safety check).
std::vector<size_t> JoinOrder(const datalog::Rule& rule,
                              std::optional<size_t> delta_first) {
  std::vector<size_t> order;
  if (delta_first.has_value()) order.push_back(*delta_first);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (delta_first.has_value() && i == *delta_first) continue;
    if (!rule.body[i].negated && !rule.body[i].is_builtin()) {
      order.push_back(i);
    }
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.body[i].is_builtin()) order.push_back(i);
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.body[i].negated) order.push_back(i);
  }
  return order;
}

class NativeExecutor {
 public:
  NativeExecutor(Database* db, const km::QueryProgram& program,
                 ExecutionStats* stats, bool use_tc_operator,
                 trace::TraceSpan* span)
      : db_(db),
        program_(program),
        stats_(stats),
        use_tc_operator_(use_tc_operator),
        span_(span) {}

  Result<QueryResult> Run() {
    WallTimer total;
    // Materialize the IDB tables (empty) so the final select and any
    // outside observer see the same schema as the SQL evaluators.
    {
      trace::ScopedSpan temp_span(span_, "temp");
      for (const std::string& sql : program_.drop_statements) {
        DKB_RETURN_IF_ERROR(Temp(sql));
      }
      for (const std::string& sql : program_.create_statements) {
        DKB_RETURN_IF_ERROR(Temp(sql));
      }
    }

    Status status = RunNodes();
    if (status.ok()) status = StoreDerived();

    Result<QueryResult> answer = Status::Internal("unreachable");
    if (status.ok()) {
      ScopedAccumulator acc(&stats_->t_final_us);
      trace::ScopedSpan final_span(span_, "final");
      answer = db_->Execute(program_.final_select);
    } else {
      answer = status;
    }
    {
      trace::ScopedSpan cleanup_span(span_, "cleanup");
      for (const std::string& sql : program_.drop_statements) {
        Status drop = Temp(sql);
        (void)drop;  // best-effort cleanup
      }
    }
    if (answer.ok()) {
      stats_->answer_tuples = static_cast<int64_t>(answer->rows.size());
    }
    stats_->t_total_us = total.ElapsedMicros();
    return answer;
  }

 private:
  Status Temp(const std::string& sql) {
    ScopedAccumulator acc(&stats_->t_temp_us);
    return db_->Execute(sql).status();
  }

  /// Relation for `pred`, loading base/stored relations on first use.
  Result<NativeRelation*> Rel(const std::string& pred) {
    auto it = relations_.find(pred);
    if (it != relations_.end()) return it->second.get();
    ScopedAccumulator acc(&stats_->t_temp_us);
    auto binding_it = program_.bindings.find(pred);
    if (binding_it == program_.bindings.end()) {
      return Status::Internal("no binding for " + pred);
    }
    DKB_ASSIGN_OR_RETURN(ScanSource * table,
                         db_->catalog().GetSource(binding_it->second.table));
    auto rel = std::make_unique<NativeRelation>();
    table->Scan([&rel](RowId, const Tuple& row) { rel->Insert(row); },
                db_->catalog().read_epoch());
    NativeRelation* raw = rel.get();
    relations_.emplace(pred, std::move(rel));
    return raw;
  }

  Result<std::vector<NativeRelation*>> BodyRels(const datalog::Rule& rule) {
    std::vector<NativeRelation*> rels;
    rels.reserve(rule.body.size());
    for (const datalog::Atom& atom : rule.body) {
      if (atom.is_builtin()) {
        rels.push_back(nullptr);  // filters have no backing relation
        continue;
      }
      DKB_ASSIGN_OR_RETURN(NativeRelation * rel, Rel(atom.predicate));
      rels.push_back(rel);
    }
    return rels;
  }

  Status RunNodes() {
    for (const km::ProgramNode& node : program_.nodes) {
      WallTimer node_timer;
      int64_t iterations = 0;
      NodeStats ns;
      for (const std::string& p : node.predicates) {
        if (!ns.label.empty()) ns.label += ",";
        ns.label += p;
      }
      trace::TraceSpan* node_span =
          trace::StartSpan(span_, "node:" + ns.label);
      DKB_RETURN_IF_ERROR(
          EvalNode(node, &iterations, node_span, &ns.delta_sizes));
      for (const std::string& p : node.predicates) {
        ns.tuples += static_cast<int64_t>(relations_.at(p)->size());
      }
      ns.is_clique = node.is_clique;
      ns.iterations = iterations;
      ns.t_us = node_timer.ElapsedMicros();
      if (node_span != nullptr) {
        node_span->Tag("iterations", iterations);
        node_span->Tag("tuples", ns.tuples);
        node_span->End();
      }
      stats_->nodes.push_back(std::move(ns));
      stats_->iterations += iterations;
    }
    return Status::OK();
  }

  Status EvalNode(const km::ProgramNode& node, int64_t* iterations,
                  trace::TraceSpan* node_span,
                  std::vector<int64_t>* delta_sizes) {
    if (use_tc_operator_) {
      TcShape shape;
      if (MatchesTransitiveClosure(node, &shape)) {
        return EvalTransitiveClosure(shape, iterations);
      }
    }
    std::set<std::string> members(node.predicates.begin(),
                                  node.predicates.end());
    std::map<std::string, std::unique_ptr<NativeRelation>> delta;
    for (const std::string& p : node.predicates) {
      relations_[p] = std::make_unique<NativeRelation>();
      delta[p] = std::make_unique<NativeRelation>();
    }

    // Exit rules populate the initial relations; the initial delta is the
    // whole relation.
    {
      ScopedAccumulator acc(&stats_->t_rhs_us);
      for (const km::CompiledRule& cr : node.exit_rules) {
        NativeRelation* full = relations_.at(cr.rule.head.predicate).get();
        NativeRelation* d = delta.at(cr.rule.head.predicate).get();
        if (cr.rule.body.empty()) {
          Tuple seed;
          for (const datalog::Term& t : cr.rule.head.args) {
            seed.push_back(t.value);
          }
          if (full->Insert(seed)) d->Insert(std::move(seed));
          continue;
        }
        DKB_ASSIGN_OR_RETURN(std::vector<NativeRelation*> rels,
                             BodyRels(cr.rule));
        EvalRuleJoin(cr.rule, rels, JoinOrder(cr.rule, std::nullopt),
                     [&](Tuple t) {
                       if (full->Insert(t)) d->Insert(std::move(t));
                     });
      }
    }

    if (!node.is_clique) return Status::OK();

    while (true) {
      ++*iterations;
      trace::ScopedSpan iter_span(node_span, "iteration");
      iter_span.Tag("iter", *iterations);
      std::map<std::string, std::unique_ptr<NativeRelation>> new_delta;
      for (const std::string& p : node.predicates) {
        new_delta[p] = std::make_unique<NativeRelation>();
      }
      {
        ScopedAccumulator acc(&stats_->t_rhs_us);
        for (const datalog::Rule& rule : node.recursive_rules) {
          DKB_ASSIGN_OR_RETURN(std::vector<NativeRelation*> rels,
                               BodyRels(rule));
          NativeRelation* full = relations_.at(rule.head.predicate).get();
          NativeRelation* nd = new_delta.at(rule.head.predicate).get();
          for (size_t i = 0; i < rule.body.size(); ++i) {
            if (members.count(rule.body[i].predicate) == 0) continue;
            // Variant: position i reads the delta, the rest read the full
            // current relations (over-covering differential).
            std::vector<NativeRelation*> variant = rels;
            variant[i] = delta.at(rule.body[i].predicate).get();
            EvalRuleJoin(rule, variant, JoinOrder(rule, i),
                         [&](Tuple t) {
                           // Early-exit membership test (no set difference).
                           if (!full->Contains(t)) nd->Insert(std::move(t));
                         });
          }
        }
      }

      // Termination: all deltas empty.
      bool changed = false;
      int64_t delta_total = 0;
      {
        ScopedAccumulator acc(&stats_->t_term_us);
        for (const auto& [p, nd] : new_delta) {
          if (!nd->empty()) changed = true;
          delta_total += static_cast<int64_t>(nd->size());
        }
      }
      delta_sizes->push_back(delta_total);
      iter_span.Tag("delta", delta_total);
      if (!changed) break;

      // Merge deltas (incremental index extension, no copies) and swap the
      // delta pointers.
      {
        ScopedAccumulator acc(&stats_->t_rhs_us);
        for (const std::string& p : node.predicates) {
          NativeRelation* full = relations_.at(p).get();
          for (const Tuple& t : new_delta.at(p)->rows()) full->Insert(t);
          delta[p] = std::move(new_delta.at(p));
        }
      }
    }
    return Status::OK();
  }

  /// Specialized transitive-closure operator (paper conclusion #8): one
  /// BFS per source over the edge adjacency list, bypassing the generic
  /// join/delta machinery entirely.
  Status EvalTransitiveClosure(const TcShape& shape, int64_t* iterations) {
    DKB_ASSIGN_OR_RETURN(NativeRelation * edges, Rel(shape.edge_predicate));
    auto full = std::make_unique<NativeRelation>();
    {
      ScopedAccumulator acc(&stats_->t_rhs_us);
      std::vector<Tuple> closure;
      ComputeTransitiveClosure(edges->rows(), &closure);
      for (Tuple& t : closure) full->Insert(std::move(t));
    }
    relations_[shape.predicate] = std::move(full);
    *iterations = 1;  // single pass, no fixpoint loop
    return Status::OK();
  }

  /// Writes every derived relation back into its IDB table, a batch at a
  /// time (Table::AppendBatch interns and maintains indexes per batch).
  Status StoreDerived() {
    ScopedAccumulator acc(&stats_->t_temp_us);
    RowBatch batch;
    for (const km::ProgramNode& node : program_.nodes) {
      for (const std::string& p : node.predicates) {
        const km::PredicateBinding& b = program_.bindings.at(p);
        DKB_ASSIGN_OR_RETURN(ScanSource * table,
                             db_->catalog().GetSource(b.table));
        batch.Reset(table->schema().num_columns());
        for (const Tuple& t : relations_.at(p)->rows()) {
          batch.AppendRow(t);
          if (batch.full()) {
            DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
            batch.Reset(table->schema().num_columns());
          }
        }
        if (!batch.empty()) DKB_RETURN_IF_ERROR(table->AppendBatch(batch));
      }
    }
    return Status::OK();
  }

  Database* db_;
  const km::QueryProgram& program_;
  ExecutionStats* stats_;
  bool use_tc_operator_;
  trace::TraceSpan* span_;
  std::map<std::string, std::unique_ptr<NativeRelation>> relations_;
};

}  // namespace

Result<QueryResult> ExecuteProgramNative(Database* db,
                                         const km::QueryProgram& program,
                                         ExecutionStats* stats,
                                         bool use_tc_operator,
                                         trace::TraceSpan* span) {
  NativeExecutor executor(db, program, stats, use_tc_operator, span);
  return executor.Run();
}

}  // namespace dkb::lfp
