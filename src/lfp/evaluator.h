#ifndef DKB_LFP_EVALUATOR_H_
#define DKB_LFP_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/trace.h"
#include "km/codegen.h"
#include "rdbms/database.h"

namespace dkb::lfp {

/// Least-fixed-point evaluation strategy.
enum class LfpStrategy {
  kNaive,      // full recomputation per iteration (paper §3.3)
  kSemiNaive,  // differential evaluation (Balbin-Ramamohanarao)
  kNative,     // in-engine LFP operator: in-memory deltas, no table copies,
               // early-exit termination (paper conclusion #6 ablation)
  kNativeTc,   // kNative plus recognition of transitive-closure cliques,
               // evaluated by a specialized BFS operator (conclusion #8)
};

const char* StrategyName(LfpStrategy strategy);

/// How to run a query program's node list (paper Fig 6's object program).
struct EvalOptions {
  /// Flight-recorder query id to stamp into ExecutionStats (observability
  /// correlation only; does not affect evaluation).
  int64_t query_id = 0;
  LfpStrategy strategy = LfpStrategy::kSemiNaive;
  /// Maximum number of mutually independent nodes (rule-graph cliques or
  /// flat rule groups) evaluated concurrently: 1 = serial (default),
  /// 0 = size to the global worker pool, N > 1 = at most N at a time.
  /// Nodes are scheduled in topological wavefronts over the predicate
  /// dependency graph, and each node's semi-naive iteration stays
  /// sequential, so the fixed point reached is identical to a serial run.
  int parallelism = 1;
  /// Parent trace span for this execution; when set, temp-table setup,
  /// every program node (with per-iteration children), and final answer
  /// retrieval become child spans. Parallel runs detach per-node spans and
  /// adopt them in program order, so the tree is deterministic. Null (the
  /// default) disables tracing.
  trace::TraceSpan* span = nullptr;
};

/// Per-node timing recorded during execution; the Fig 14 bench uses the
/// labels to separate magic-rule cliques from modified-rule cliques.
struct NodeStats {
  std::string label;  // predicates defined by the node, comma-joined
  bool is_clique = false;
  int64_t t_us = 0;
  int64_t iterations = 0;
  int64_t tuples = 0;  // total tuples in the node's relations afterwards
  /// New tuples discovered per LFP iteration, summed over the node's
  /// predicates (the semi-naive delta cardinality; EXPLAIN ANALYZE shows
  /// these). Empty for non-clique nodes.
  std::vector<int64_t> delta_sizes;
};

/// D/KB query execution breakdown (paper §5.3.1.2, Tables 5-6).
struct ExecutionStats {
  /// Flight-recorder query id (copied from EvalOptions::query_id).
  int64_t query_id = 0;
  int64_t t_temp_us = 0;   // temp-table create/drop/clear + table copies
  int64_t t_rhs_us = 0;    // evaluating rule bodies (or their differentials)
  int64_t t_term_us = 0;   // termination checks (set difference + count)
  int64_t t_final_us = 0;  // final answer retrieval
  int64_t t_total_us = 0;
  int64_t iterations = 0;  // summed over all cliques
  int64_t answer_tuples = 0;
  std::vector<NodeStats> nodes;
};

/// Runs the generated query program against the DBMS and returns the answer
/// relation (the run time library of paper §3.3). IDB tables are created at
/// the start and dropped afterwards, win or lose. With parallelism enabled,
/// per-node stats are still reported in program order and the t_* buckets
/// sum the per-node work (CPU-time-like accounting, not wall clock).
Result<QueryResult> ExecuteProgram(Database* db,
                                   const km::QueryProgram& program,
                                   const EvalOptions& options,
                                   ExecutionStats* stats);

/// Back-compat entry point: serial evaluation with `strategy`.
Result<QueryResult> ExecuteProgram(Database* db,
                                   const km::QueryProgram& program,
                                   LfpStrategy strategy,
                                   ExecutionStats* stats);

}  // namespace dkb::lfp

#endif  // DKB_LFP_EVALUATOR_H_
