#include "lfp/tc_operator.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace dkb::lfp {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

/// True if `atom` is pred(V1, V2) for the given distinct variable names.
bool IsVarPair(const Atom& atom, const std::string& pred,
               const std::string& v1, const std::string& v2) {
  return !atom.negated && atom.predicate == pred && atom.args.size() == 2 &&
         atom.args[0].is_variable() && atom.args[0].var == v1 &&
         atom.args[1].is_variable() && atom.args[1].var == v2;
}

/// Head must be p(X, Y) with X != Y; returns the variable names.
bool HeadVars(const Rule& rule, std::string* x, std::string* y) {
  const Atom& head = rule.head;
  if (head.args.size() != 2 || !head.args[0].is_variable() ||
      !head.args[1].is_variable() ||
      head.args[0].var == head.args[1].var) {
    return false;
  }
  *x = head.args[0].var;
  *y = head.args[1].var;
  return true;
}

}  // namespace

bool MatchesTransitiveClosure(const km::ProgramNode& node, TcShape* shape) {
  if (!node.is_clique || node.predicates.size() != 1) return false;
  const std::string& p = node.predicates[0];
  if (node.exit_rules.empty() || node.recursive_rules.empty()) return false;

  std::string edge;
  // Exit rules: p(X,Y) :- e(X,Y), all with the same e != p.
  for (const km::CompiledRule& cr : node.exit_rules) {
    std::string x;
    std::string y;
    if (!HeadVars(cr.rule, &x, &y)) return false;
    if (cr.rule.body.size() != 1) return false;
    const Atom& b = cr.rule.body[0];
    if (b.negated || b.predicate == p || !IsVarPair(b, b.predicate, x, y)) {
      return false;
    }
    if (edge.empty()) {
      edge = b.predicate;
    } else if (edge != b.predicate) {
      return false;
    }
  }

  // Recursive rules: right-linear, left-linear, or non-linear over the same
  // edge relation.
  for (const Rule& rule : node.recursive_rules) {
    std::string x;
    std::string y;
    if (!HeadVars(rule, &x, &y)) return false;
    if (rule.body.size() != 2) return false;
    const Atom& a0 = rule.body[0];
    const Atom& a1 = rule.body[1];
    if (a0.negated || a1.negated) return false;
    // Find the join variable Z: a0 = q0(X, Z), a1 = q1(Z, Y).
    if (a0.args.size() != 2 || a1.args.size() != 2) return false;
    if (!a0.args[1].is_variable()) return false;
    std::string z = a0.args[1].var;
    if (z == x || z == y) return false;
    bool right_linear = IsVarPair(a0, edge, x, z) && IsVarPair(a1, p, z, y);
    bool left_linear = IsVarPair(a0, p, x, z) && IsVarPair(a1, edge, z, y);
    bool non_linear = IsVarPair(a0, p, x, z) && IsVarPair(a1, p, z, y);
    if (!right_linear && !left_linear && !non_linear) return false;
  }

  shape->predicate = p;
  shape->edge_predicate = edge;
  return true;
}

void ComputeTransitiveClosure(const std::vector<Tuple>& edges,
                              std::vector<Tuple>* out) {
  // Adjacency list over interned values.
  std::unordered_map<Value, std::vector<const Value*>, ValueHash> adjacency;
  for (const Tuple& edge : edges) {
    adjacency[edge[0]].push_back(&edge[1]);
  }
  // One BFS per source.
  for (const auto& [src, direct] : adjacency) {
    (void)direct;
    std::unordered_set<Value, ValueHash> visited;
    std::deque<const Value*> frontier;
    auto expand = [&](const Value& node) {
      auto it = adjacency.find(node);
      if (it == adjacency.end()) return;
      for (const Value* next : it->second) {
        if (visited.insert(*next).second) frontier.push_back(next);
      }
    };
    expand(src);
    while (!frontier.empty()) {
      const Value* node = frontier.front();
      frontier.pop_front();
      out->push_back(Tuple{src, *node});
      expand(*node);
    }
  }
}

}  // namespace dkb::lfp
