#include "lfp/seminaive.h"

#include <set>

#include "km/naming.h"
#include "km/rule_sql.h"

namespace dkb::lfp {

Result<int64_t> EvaluateCliqueSemiNaive(EvalContext* ctx,
                                        const km::QueryProgram& program,
                                        const km::ProgramNode& node,
                                        size_t node_index) {
  const std::set<std::string> members(node.predicates.begin(),
                                      node.predicates.end());
  const std::string np = "#n" + std::to_string(node_index);

  // Temp tables per member: delta, prev (value before the last delta was
  // merged), new (variant union), diff (new delta / termination check).
  for (const std::string& p : node.predicates) {
    const km::PredicateBinding& b = program.bindings.at(p);
    DKB_RETURN_IF_ERROR(ctx->CreateLike(km::DeltaTableName(p), b));
    DKB_RETURN_IF_ERROR(ctx->CreateLike(km::PrevTableName(p), b));
    DKB_RETURN_IF_ERROR(ctx->CreateLike(km::NewTableName(p), b));
    DKB_RETURN_IF_ERROR(ctx->CreateLike(km::DiffTableName(p), b));
  }

  // Canonical resolver for exit rules with negated atoms.
  km::BindingResolver canonical =
      [&program](const datalog::Atom& atom,
                 size_t) -> Result<km::RelationBinding> {
    auto it = program.bindings.find(atom.predicate);
    if (it == program.bindings.end()) {
      return Status::Internal("no binding for " + atom.predicate);
    }
    return it->second.AsRelation();
  };

  // p^(0): exit rules.
  for (size_t i = 0; i < node.exit_rules.size(); ++i) {
    const km::CompiledRule& cr = node.exit_rules[i];
    const km::PredicateBinding& b =
        program.bindings.at(cr.rule.head.predicate);
    if (cr.rule.body.empty()) {
      DKB_RETURN_IF_ERROR(ctx->Rhs(EvalContext::SeedInsertSql(cr.rule, b)));
    } else if (!cr.select_sql.empty()) {
      DKB_RETURN_IF_ERROR(
          ctx->Rhs(EvalContext::InsertNewSql(b.table, cr.select_sql)));
    } else {
      DKB_RETURN_IF_ERROR(ctx->EvalRuleInto(cr.rule, canonical, b.table,
                                            np + "sx" + std::to_string(i)));
    }
  }
  // delta^(0) = p^(0); prev = p^(-1) = empty.
  for (const std::string& p : node.predicates) {
    DKB_RETURN_IF_ERROR(
        ctx->CopyTable(km::DeltaTableName(p), program.bindings.at(p).table));
  }

  // The per-iteration termination step (diff := new - full, plus its count)
  // runs batch-native through EvalContext::DiffInto — a hash-set difference
  // keyed on interned values — instead of the prepared
  // INSERT ... EXCEPT + COUNT(*) statement pair of the SQL-driven engine.

  int64_t iterations = 0;
  while (true) {
    ++iterations;
    trace::ScopedSpan iter_span(ctx->span(), "iteration");
    iter_span.Tag("iter", iterations);
    for (const std::string& p : node.predicates) {
      DKB_RETURN_IF_ERROR(ctx->ClearTable(km::NewTableName(p)));
    }

    // Differential variants of each recursive rule. Negated atoms are
    // never clique members (stratification), so they are unaffected by the
    // delta substitution.
    size_t rule_counter = 0;
    for (const datalog::Rule& rule : node.recursive_rules) {
      ++rule_counter;
      std::vector<size_t> member_positions;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!rule.body[i].negated &&
            members.count(rule.body[i].predicate) > 0) {
          member_positions.push_back(i);
        }
      }
      for (size_t delta_pos : member_positions) {
        km::BindingResolver resolver =
            [&program, &members, delta_pos](
                const datalog::Atom& atom,
                size_t body_index) -> Result<km::RelationBinding> {
          auto it = program.bindings.find(atom.predicate);
          if (it == program.bindings.end()) {
            return Status::Internal("no binding for " + atom.predicate);
          }
          km::RelationBinding binding = it->second.AsRelation();
          if (members.count(atom.predicate) == 0) return binding;
          if (body_index == delta_pos) {
            binding.table = km::DeltaTableName(atom.predicate);
          } else if (body_index > delta_pos) {
            binding.table = km::PrevTableName(atom.predicate);
          }
          // body_index < delta_pos keeps the current full relation.
          return binding;
        };
        DKB_RETURN_IF_ERROR(ctx->EvalRuleInto(
            rule, resolver, km::NewTableName(rule.head.predicate),
            np + "sr" + std::to_string(rule_counter) + "_" +
                std::to_string(delta_pos)));
      }
    }

    // New delta + termination check: diff = new - accumulated.
    bool changed = false;
    int64_t delta_total = 0;
    for (const std::string& p : node.predicates) {
      DKB_RETURN_IF_ERROR(ctx->ClearTable(km::DiffTableName(p)));
      DKB_ASSIGN_OR_RETURN(
          int64_t cnt,
          ctx->DiffInto(km::DiffTableName(p), km::NewTableName(p),
                        program.bindings.at(p).table));
      if (cnt > 0) changed = true;
      delta_total += cnt;
    }
    ctx->delta_sizes().push_back(delta_total);
    iter_span.Tag("delta", delta_total);
    if (!changed) break;

    // prev := full; full += diff; delta := diff.
    for (const std::string& p : node.predicates) {
      const km::PredicateBinding& b = program.bindings.at(p);
      DKB_RETURN_IF_ERROR(ctx->ClearTable(km::PrevTableName(p)));
      DKB_RETURN_IF_ERROR(ctx->CopyTable(km::PrevTableName(p), b.table));
      DKB_RETURN_IF_ERROR(ctx->CopyTable(b.table, km::DiffTableName(p)));
      DKB_RETURN_IF_ERROR(ctx->ClearTable(km::DeltaTableName(p)));
      DKB_RETURN_IF_ERROR(
          ctx->CopyTable(km::DeltaTableName(p), km::DiffTableName(p)));
    }
  }

  for (const std::string& p : node.predicates) {
    DKB_RETURN_IF_ERROR(ctx->Drop(km::DeltaTableName(p)));
    DKB_RETURN_IF_ERROR(ctx->Drop(km::PrevTableName(p)));
    DKB_RETURN_IF_ERROR(ctx->Drop(km::NewTableName(p)));
    DKB_RETURN_IF_ERROR(ctx->Drop(km::DiffTableName(p)));
  }
  return iterations;
}

}  // namespace dkb::lfp
