#ifndef DKB_LFP_NATIVE_LFP_H_
#define DKB_LFP_NATIVE_LFP_H_

#include "km/codegen.h"
#include "lfp/evaluator.h"

namespace dkb::lfp {

/// In-engine generalized LFP operator (paper conclusion #6 ablation).
///
/// Instead of driving the DBMS through per-statement SQL, this evaluator
/// pulls the input relations into memory once, runs semi-naive iteration
/// with hash-indexed joins, swaps delta sets by pointer (no table copies),
/// checks termination by delta emptiness (no full set difference), and
/// writes the final relations back into the IDB tables so the answer query
/// and any downstream consumers see identical state.
///
/// Time attribution: relation load/store -> t_temp, join evaluation ->
/// t_rhs, (trivial) termination checks -> t_term.
///
/// With `use_tc_operator`, cliques matching the transitive-closure shape
/// are evaluated by the specialized BFS operator instead of generic
/// semi-naive iteration (paper conclusion #8).
Result<QueryResult> ExecuteProgramNative(Database* db,
                                         const km::QueryProgram& program,
                                         ExecutionStats* stats,
                                         bool use_tc_operator = false,
                                         trace::TraceSpan* span = nullptr);

}  // namespace dkb::lfp

#endif  // DKB_LFP_NATIVE_LFP_H_
