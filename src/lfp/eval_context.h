#ifndef DKB_LFP_EVAL_CONTEXT_H_
#define DKB_LFP_EVAL_CONTEXT_H_

#include <string>
#include <vector>

#include "common/trace.h"
#include "km/codegen.h"
#include "lfp/evaluator.h"
#include "rdbms/database.h"

namespace dkb::lfp {

/// Shared machinery for the SQL-driven evaluators: executes statements
/// against the DBMS and attributes wall-clock time to the paper's cost
/// buckets (temp-table management / RHS evaluation / termination check).
class EvalContext {
 public:
  EvalContext(Database* db, ExecutionStats* stats)
      : db_(db), stats_(stats) {}

  Database* db() { return db_; }
  ExecutionStats* stats() { return stats_; }

  /// Trace span of the node currently being evaluated; the clique
  /// evaluators hang per-iteration spans off it. Null = tracing off.
  trace::TraceSpan* span() const { return span_; }
  void set_span(trace::TraceSpan* span) { span_ = span; }

  /// Per-iteration new-tuple counts recorded by the clique evaluators,
  /// harvested into NodeStats::delta_sizes after each node.
  std::vector<int64_t>& delta_sizes() { return delta_sizes_; }

  /// Temp-table management: CREATE/DROP/DELETE-all and table copies.
  Status Temp(const std::string& sql);

  /// Rule-body (or differential) evaluation.
  Status Rhs(const std::string& sql);

  /// Termination-check work (set differences and counts).
  Status Term(const std::string& sql);
  Result<int64_t> TermCount(const std::string& count_sql);

  /// Prepared-statement variants for per-iteration termination work: the
  /// statement is parsed once (Database::Prepare) and re-executed here.
  Status TermPrepared(PreparedStatement* stmt);
  Result<int64_t> TermCountPrepared(PreparedStatement* count_stmt);

  /// CREATE TABLE `name` with the column layout of `binding`.
  Status CreateLike(const std::string& name,
                    const km::PredicateBinding& binding);

  /// CREATE TABLE `name` with an explicit schema (binding-table pipeline).
  Status CreateWithSchema(const std::string& name, const Schema& schema);

  /// Evaluates one rule into `target` through the run time library: plain
  /// rules become a single INSERT-new statement; rules with negated atoms
  /// run the binding-table pipeline of RuleToSqlProgram. `bind_prefix`
  /// makes the pipeline's temp names unique per call site.
  Status EvalRuleInto(const datalog::Rule& rule,
                      const km::BindingResolver& resolver,
                      const std::string& target,
                      const std::string& bind_prefix);

  /// DELETE FROM `name` (attributed to temp management).
  Status Clear(const std::string& name);

  /// INSERT INTO `dst` SELECT * FROM `src` (a full table copy).
  Status Copy(const std::string& dst, const std::string& src);

  /// Batch-native variant of Clear: truncates the table directly without a
  /// SQL round-trip (temp-management bucket).
  Status ClearTable(const std::string& name);

  /// Batch-native variant of Copy: streams `src` into `dst` with
  /// Table::ScanBatch/AppendBatch (temp-management bucket).
  Status CopyTable(const std::string& dst, const std::string& src);

  /// Batch-native semi-naive termination step: appends to `diff` every
  /// distinct row of `new_table` not already in `full` and returns how many
  /// were appended. Dedup runs over a hash set keyed on interned values —
  /// the O(1)-hash replacement for the prepared
  /// `INSERT INTO diff (SELECT * FROM new) EXCEPT (SELECT * FROM full)`
  /// + COUNT(*) statement pair (termination bucket).
  Result<int64_t> DiffInto(const std::string& diff,
                           const std::string& new_table,
                           const std::string& full);

  Status Drop(const std::string& name);

  /// COUNT(*) of a table (not attributed; diagnostics).
  Result<int64_t> Count(const std::string& name);

  /// Seed-fact INSERT ... VALUES text for an empty-body rule.
  static std::string SeedInsertSql(const datalog::Rule& seed,
                                   const km::PredicateBinding& binding);

  /// INSERT the (distinct) result of `select` into `table`, skipping rows
  /// already present: INSERT INTO t (select) EXCEPT (SELECT * FROM t).
  static std::string InsertNewSql(const std::string& table,
                                  const std::string& select);

 private:
  Database* db_;
  ExecutionStats* stats_;
  trace::TraceSpan* span_ = nullptr;
  std::vector<int64_t> delta_sizes_;
};

}  // namespace dkb::lfp

#endif  // DKB_LFP_EVAL_CONTEXT_H_
