#ifndef DKB_LFP_SEMINAIVE_H_
#define DKB_LFP_SEMINAIVE_H_

#include "km/codegen.h"
#include "lfp/eval_context.h"

namespace dkb::lfp {

/// Semi-naive LFP evaluation of one clique using the differential approach
/// (paper §3.3/§4(i)): each iteration evaluates, for every recursive rule
/// and every occurrence i of a clique predicate in its body, the variant
///
///   prefix(j < i) -> current full relation
///   occurrence i  -> last delta
///   suffix(j > i) -> previous full relation
///
/// unions the variants, subtracts the accumulated relation to obtain the
/// new delta, and terminates when all deltas are empty.
///
/// Returns the number of iterations. `node_index` namespaces the binding
/// pipeline's temp tables so independent nodes can evaluate concurrently.
Result<int64_t> EvaluateCliqueSemiNaive(EvalContext* ctx,
                                        const km::QueryProgram& program,
                                        const km::ProgramNode& node,
                                        size_t node_index = 0);

}  // namespace dkb::lfp

#endif  // DKB_LFP_SEMINAIVE_H_
