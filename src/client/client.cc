#include "client/client.h"

#include "exec/executor.h"

namespace dkb {

Client::~Client() = default;

std::string ResultSetToString(const QueryResultSet& rs) {
  exec::QueryResult result;
  result.schema = rs.schema;
  result.rows = rs.rows;
  result.rows_affected = rs.rows_affected;
  return result.ToString();
}

}  // namespace dkb
