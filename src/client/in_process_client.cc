#include "client/in_process_client.h"

#include <utility>

#include "datalog/parser.h"
#include "net/convert.h"

namespace dkb {

Result<std::unique_ptr<InProcessClient>> InProcessClient::Create(
    testbed::TestbedOptions options) {
  DKB_ASSIGN_OR_RETURN(std::unique_ptr<testbed::Testbed> testbed,
                       testbed::Testbed::Create(std::move(options)));
  auto client = std::make_unique<InProcessClient>(testbed.get());
  client->owned_ = std::move(testbed);
  return client;
}

Status InProcessClient::Consult(const std::string& program_text) {
  return testbed_->Consult(program_text);
}

Status InProcessClient::AddRule(const std::string& rule_text) {
  return testbed_->AddRule(rule_text);
}

Status InProcessClient::RetractRule(const std::string& rule_text) {
  return testbed_->RetractRule(rule_text);
}

Status InProcessClient::DefineBase(const std::string& pred,
                                   const std::vector<DataType>& types) {
  return testbed_->DefineBase(pred, types);
}

Status InProcessClient::AddFacts(const std::string& pred,
                                 const std::vector<Tuple>& rows) {
  return testbed_->AddFacts(pred, rows);
}

Result<QueryResultSet> InProcessClient::Query(
    const std::string& goal_text, const testbed::QueryOptions& options,
    uint8_t report_formats) {
  DKB_ASSIGN_OR_RETURN(testbed::QueryOutcome outcome,
                       testbed_->Query(goal_text, options));
  return net::ResultSetFromOutcome(std::move(outcome), report_formats);
}

Result<std::vector<QueryResultSet>> InProcessClient::QueryBatch(
    const std::vector<std::string>& goals,
    const testbed::QueryOptions& options, uint8_t report_formats) {
  std::vector<QueryResultSet> out;
  out.reserve(goals.size());
  for (const std::string& goal : goals) {
    DKB_ASSIGN_OR_RETURN(QueryResultSet rs,
                         Query(goal, options, report_formats));
    out.push_back(std::move(rs));
  }
  return out;
}

Result<StatementId> InProcessClient::Prepare(
    const std::string& goal_text, const testbed::QueryOptions& options) {
  // Parse now so a bad goal fails at Prepare, matching the server's
  // behavior, rather than on the first Execute.
  DKB_ASSIGN_OR_RETURN(datalog::Atom goal, datalog::ParseQuery(goal_text));
  (void)goal;
  StatementId id = next_statement_id_++;
  prepared_[id] = PreparedStatement{goal_text, options};
  return id;
}

Result<std::vector<QueryResultSet>> InProcessClient::Execute(
    const std::vector<StatementId>& statements) {
  std::vector<QueryResultSet> out;
  out.reserve(statements.size());
  for (StatementId id : statements) {
    auto it = prepared_.find(id);
    if (it == prepared_.end()) {
      return Status::NotFound("no prepared statement with id " +
                              std::to_string(id));
    }
    DKB_ASSIGN_OR_RETURN(
        QueryResultSet rs,
        Query(it->second.goal, it->second.options, net::kReportNone));
    out.push_back(std::move(rs));
  }
  return out;
}

Result<QueryResultSet> InProcessClient::ExecuteSql(
    const std::string& statement) {
  DKB_ASSIGN_OR_RETURN(exec::QueryResult result,
                       testbed_->ExecuteSql(statement));
  QueryResultSet rs;
  rs.schema = std::move(result.schema);
  rs.rows = std::move(result.rows);
  rs.rows_affected = result.rows_affected;
  return rs;
}

Result<UpdateStoredStats> InProcessClient::UpdateStoredDkb() {
  DKB_ASSIGN_OR_RETURN(km::UpdateStats stats, testbed_->UpdateStoredDkb());
  UpdateStoredStats out;
  out.rules_stored = stats.rules_stored;
  out.total_us = stats.total_us();
  return out;
}

Status InProcessClient::ClearWorkspace() {
  testbed_->ClearWorkspace();
  return Status::OK();
}

Result<std::vector<std::string>> InProcessClient::ListRules() {
  return testbed_->ListRuleTexts();
}

}  // namespace dkb
