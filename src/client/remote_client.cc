#include "client/remote_client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <system_error>
#include <utility>

namespace dkb {

using net::Frame;
using net::FrameDecoder;
using net::MsgType;
using net::WireReader;
using net::WireWriter;

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " +
         std::error_code(errno, std::generic_category()).message();
}

/// Process-unique trace ids: a splitmix64 walk over a counter seeded from
/// the pid, so ids from concurrently tracing clients rarely collide and a
/// zero id (= "no trace") is never produced.
uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{
      static_cast<uint64_t>(getpid()) << 32};
  uint64_t x = counter.fetch_add(0x9e3779b97f4a7c15ull,
                                 std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x | 1;
}

}  // namespace

Result<int> RemoteClient::DialTcp(const std::string& host_port) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return Status::InvalidArgument("expected host:port, got \"" + host_port +
                                   "\"");
  }
  std::string host = host_port.substr(0, colon);
  std::string port = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    // gai_strerror is on the clang-tidy mt-unsafe list; the numeric
    // EAI_* code is unambiguous enough for a connect failure.
    return Status::Unavailable("resolve " + host_port +
                               ": getaddrinfo error " + std::to_string(rc));
  }
  int fd = -1;
  Status last = Status::Unavailable("no addresses for " + host_port);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Unavailable(ErrnoMessage("socket"));
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Unavailable(ErrnoMessage("connect"));
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) return last;
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::unique_ptr<RemoteClient>> RemoteClient::Connect(
    const std::string& host_port, uint32_t max_frame_len) {
  DKB_ASSIGN_OR_RETURN(int fd, DialTcp(host_port));
  std::unique_ptr<RemoteClient> client(new RemoteClient(fd, max_frame_len));
  WireWriter hello;
  hello.U32(net::kProtocolVersion);
  auto reply = client->Call(MsgType::kHello, hello.str(), MsgType::kHelloOk);
  if (!reply.ok()) return reply.status();
  WireReader r(reply->payload);
  uint32_t version = 0;
  uint64_t session_id = 0;
  if (!r.U32(&version) || !r.U64(&session_id) || !r.Done()) {
    return Status::ProtocolError("malformed HelloOk payload");
  }
  client->session_id_ = static_cast<int64_t>(session_id);
  return client;
}

RemoteClient::~RemoteClient() {
  if (fd_ >= 0) {
    // Best effort: tell the server we are leaving so it can drop the
    // session promptly; the close() is what actually matters. Sessionless
    // connections (FetchStats) never did the Hello handshake, so a
    // CloseSession would only count as a protocol error server-side.
    if (session_id_ != 0) {
      std::string frame =
          net::EncodeFrame(MsgType::kCloseSession, next_request_id_++, "");
      (void)send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL);
    }
    close(fd_);
  }
}

Status RemoteClient::SendFrame(MsgType type, uint32_t request_id,
                               std::string_view payload) {
  if (fd_ < 0) return Status::Unavailable("connection closed");
  std::string frame = net::EncodeFrame(type, request_id, payload);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoMessage("send"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> RemoteClient::ReceiveFrame(uint32_t request_id) {
  auto parked = parked_.find(request_id);
  if (parked != parked_.end()) {
    Frame frame = std::move(parked->second);
    parked_.erase(parked);
    if (frame.type == MsgType::kError) {
      return net::DecodeErrorPayload(frame.payload);
    }
    return frame;
  }

  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    FrameDecoder::Next next = decoder_.Pop(&frame);
    if (next == FrameDecoder::Next::kError) return decoder_.error();
    if (next == FrameDecoder::Next::kFrame) {
      if (frame.request_id != request_id) {
        parked_[frame.request_id] = std::move(frame);
        continue;
      }
      if (frame.type == MsgType::kError) {
        return net::DecodeErrorPayload(frame.payload);
      }
      return frame;
    }
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return Status::Unavailable(ErrnoMessage("read"));
    if (n == 0) return Status::Unavailable("server closed the connection");
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

Result<Frame> RemoteClient::Call(MsgType type, std::string_view payload,
                                 MsgType expected) {
  uint32_t request_id = next_request_id_++;
  DKB_RETURN_IF_ERROR(SendFrame(type, request_id, payload));
  DKB_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame(request_id));
  if (frame.type != expected) {
    return Status::ProtocolError(
        "unexpected response type " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  return frame;
}

Status RemoteClient::Consult(const std::string& program_text) {
  WireWriter w;
  w.Str(program_text);
  return Call(MsgType::kConsult, w.str(), MsgType::kOk).status();
}

Status RemoteClient::AddRule(const std::string& rule_text) {
  WireWriter w;
  w.Str(rule_text);
  return Call(MsgType::kAddRule, w.str(), MsgType::kOk).status();
}

Status RemoteClient::RetractRule(const std::string& rule_text) {
  WireWriter w;
  w.Str(rule_text);
  return Call(MsgType::kRetractRule, w.str(), MsgType::kOk).status();
}

Status RemoteClient::DefineBase(const std::string& pred,
                                const std::vector<DataType>& types) {
  WireWriter w;
  w.Str(pred);
  w.U16(static_cast<uint16_t>(types.size()));
  for (DataType type : types) w.U8(static_cast<uint8_t>(type));
  return Call(MsgType::kDefineBase, w.str(), MsgType::kOk).status();
}

Status RemoteClient::AddFacts(const std::string& pred,
                              const std::vector<Tuple>& rows) {
  WireWriter w;
  w.Str(pred);
  w.U32(static_cast<uint32_t>(rows.size()));
  for (const Tuple& row : rows) w.Row(row);
  return Call(MsgType::kAddFacts, w.str(), MsgType::kOk).status();
}

std::string RemoteClient::EncodeQueryPayload(
    const std::vector<std::string>& goals,
    const testbed::QueryOptions& options, uint8_t report_formats) {
  WireWriter w;
  net::WireQueryOptions opts;
  opts.options = options;
  opts.report_formats = report_formats;
  // Sampling is driven by the caller's tracing intent: collect_trace or
  // EXPLAIN ANALYZE means "I want the span tree back", so start a
  // distributed trace and ask the server to build one.
  opts.sampled = options.collect_trace ||
                 options.explain == testbed::ExplainMode::kAnalyze;
  if (opts.sampled) opts.trace_id = NextTraceId();
  net::EncodeQueryOptions(&w, opts);
  w.U32(static_cast<uint32_t>(goals.size()));
  for (const std::string& goal : goals) w.Str(goal);
  return w.Take();
}

Result<std::vector<QueryResultSet>> RemoteClient::DecodeResultSets(
    const Frame& frame) {
  WireReader r(frame.payload);
  uint32_t n = 0;
  if (!r.U32(&n)) {
    return Status::ProtocolError("malformed ResultSets payload");
  }
  std::vector<QueryResultSet> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    QueryResultSet rs;
    if (!net::DecodeResultSet(&r, &rs)) {
      return Status::ProtocolError("malformed result set " +
                                   std::to_string(i));
    }
    out.push_back(std::move(rs));
  }
  if (!net::DecodeTraceSection(&r, &out)) {
    return Status::ProtocolError("malformed trace section");
  }
  if (!r.Done()) {
    return Status::ProtocolError("trailing bytes after result sets");
  }
  return out;
}

Result<QueryResultSet> RemoteClient::Query(
    const std::string& goal_text, const testbed::QueryOptions& options,
    uint8_t report_formats) {
  DKB_ASSIGN_OR_RETURN(
      std::vector<QueryResultSet> sets,
      QueryBatch({goal_text}, options, report_formats));
  if (sets.size() != 1) {
    return Status::ProtocolError("expected 1 result set, got " +
                                 std::to_string(sets.size()));
  }
  return std::move(sets[0]);
}

Result<std::vector<QueryResultSet>> RemoteClient::QueryBatch(
    const std::vector<std::string>& goals,
    const testbed::QueryOptions& options, uint8_t report_formats) {
  DKB_ASSIGN_OR_RETURN(uint32_t request_id,
                       SendQueryBatch(goals, options, report_formats));
  return ReceiveResultSets(request_id);
}

Result<uint32_t> RemoteClient::SendQueryBatch(
    const std::vector<std::string>& goals,
    const testbed::QueryOptions& options, uint8_t report_formats) {
  uint32_t request_id = next_request_id_++;
  DKB_RETURN_IF_ERROR(
      SendFrame(MsgType::kQuery, request_id,
                EncodeQueryPayload(goals, options, report_formats)));
  return request_id;
}

Result<uint32_t> RemoteClient::SendExecute(
    const std::vector<StatementId>& statements) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(statements.size()));
  for (StatementId stmt : statements) w.U32(stmt);
  uint32_t request_id = next_request_id_++;
  DKB_RETURN_IF_ERROR(SendFrame(MsgType::kExecute, request_id, w.str()));
  return request_id;
}

Result<std::vector<QueryResultSet>> RemoteClient::ReceiveResultSets(
    uint32_t request_id) {
  DKB_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame(request_id));
  if (frame.type != MsgType::kResultSets) {
    return Status::ProtocolError(
        "unexpected response type " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  return DecodeResultSets(frame);
}

Result<StatementId> RemoteClient::Prepare(
    const std::string& goal_text, const testbed::QueryOptions& options) {
  WireWriter w;
  net::WireQueryOptions opts;
  opts.options = options;
  // Execute runs under the options fixed at Prepare time, so the trace
  // context is stamped here: every Execute of this statement reuses it.
  opts.sampled = options.collect_trace ||
                 options.explain == testbed::ExplainMode::kAnalyze;
  if (opts.sampled) opts.trace_id = NextTraceId();
  net::EncodeQueryOptions(&w, opts);
  w.Str(goal_text);
  DKB_ASSIGN_OR_RETURN(Frame frame,
                       Call(MsgType::kPrepare, w.str(), MsgType::kPrepared));
  WireReader r(frame.payload);
  uint32_t stmt_id = 0;
  if (!r.U32(&stmt_id) || !r.Done()) {
    return Status::ProtocolError("malformed Prepared payload");
  }
  return stmt_id;
}

Result<std::vector<QueryResultSet>> RemoteClient::Execute(
    const std::vector<StatementId>& statements) {
  DKB_ASSIGN_OR_RETURN(uint32_t request_id, SendExecute(statements));
  return ReceiveResultSets(request_id);
}

Result<QueryResultSet> RemoteClient::ExecuteSql(const std::string& statement) {
  WireWriter w;
  w.Str(statement);
  DKB_ASSIGN_OR_RETURN(Frame frame,
                       Call(MsgType::kSql, w.str(), MsgType::kResultSets));
  DKB_ASSIGN_OR_RETURN(std::vector<QueryResultSet> sets,
                       DecodeResultSets(frame));
  if (sets.size() != 1) {
    return Status::ProtocolError("expected 1 result set, got " +
                                 std::to_string(sets.size()));
  }
  return std::move(sets[0]);
}

Result<UpdateStoredStats> RemoteClient::UpdateStoredDkb() {
  DKB_ASSIGN_OR_RETURN(Frame frame,
                       Call(MsgType::kUpdateStored, "", MsgType::kUpdated));
  WireReader r(frame.payload);
  UpdateStoredStats stats;
  if (!r.I64(&stats.rules_stored) || !r.I64(&stats.total_us) || !r.Done()) {
    return Status::ProtocolError("malformed Updated payload");
  }
  return stats;
}

Status RemoteClient::ClearWorkspace() {
  return Call(MsgType::kClearWorkspace, "", MsgType::kOk).status();
}

Result<net::StatsReply> RemoteClient::FetchServerStats(uint8_t sections) {
  DKB_ASSIGN_OR_RETURN(Frame frame,
                       Call(MsgType::kStats,
                            net::EncodeStatsRequest(sections),
                            MsgType::kStatsOk));
  WireReader r(frame.payload);
  net::StatsReply reply;
  if (!net::DecodeStatsReply(&r, &reply)) {
    return Status::ProtocolError("malformed StatsOk payload");
  }
  return reply;
}

Result<net::StatsReply> RemoteClient::FetchStats(const std::string& host_port,
                                                 uint8_t sections,
                                                 uint32_t max_frame_len) {
  DKB_ASSIGN_OR_RETURN(int fd, DialTcp(host_port));
  // No Hello: kStats is the one sessionless request, so the poller never
  // costs the server a COW session (and the destructor, seeing no session
  // id, skips the CloseSession courtesy frame).
  std::unique_ptr<RemoteClient> client(new RemoteClient(fd, max_frame_len));
  return client->FetchServerStats(sections);
}

Result<std::vector<std::string>> RemoteClient::ListRules() {
  DKB_ASSIGN_OR_RETURN(Frame frame,
                       Call(MsgType::kListRules, "", MsgType::kRuleList));
  WireReader r(frame.payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return Status::ProtocolError("malformed RuleList payload");
  std::vector<std::string> rules;
  rules.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string rule;
    if (!r.Str(&rule)) {
      return Status::ProtocolError("malformed RuleList payload");
    }
    rules.push_back(std::move(rule));
  }
  if (!r.Done()) return Status::ProtocolError("malformed RuleList payload");
  return rules;
}

}  // namespace dkb
