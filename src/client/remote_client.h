#ifndef DKB_CLIENT_REMOTE_CLIENT_H_
#define DKB_CLIENT_REMOTE_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "net/wire.h"

namespace dkb {

/// dkb::Client over a TCP connection to a dkb_server, speaking the
/// length-prefixed protocol of src/net/wire.h. One connection = one
/// server-side COW session.
///
/// The blocking Client methods are one round trip each. For pipelining —
/// the bench_net hot path — use SendQueryBatch/ReceiveResultSets: any
/// number of batches may be in flight, and responses may be collected in
/// any order (frames for other request ids are parked until asked for).
///
/// Not thread-safe; open one RemoteClient per thread.
class RemoteClient : public Client {
 public:
  /// Connects to "host:port", performs the Hello handshake, and returns a
  /// ready client.
  static Result<std::unique_ptr<RemoteClient>> Connect(
      const std::string& host_port,
      uint32_t max_frame_len = net::kDefaultMaxFrameLen);

  ~RemoteClient() override;

  Status Consult(const std::string& program_text) override;
  Status AddRule(const std::string& rule_text) override;
  Status RetractRule(const std::string& rule_text) override;
  Status DefineBase(const std::string& pred,
                    const std::vector<DataType>& types) override;
  Status AddFacts(const std::string& pred,
                  const std::vector<Tuple>& rows) override;
  Result<QueryResultSet> Query(const std::string& goal_text,
                               const testbed::QueryOptions& options,
                               uint8_t report_formats) override;
  Result<std::vector<QueryResultSet>> QueryBatch(
      const std::vector<std::string>& goals,
      const testbed::QueryOptions& options, uint8_t report_formats) override;
  Result<StatementId> Prepare(const std::string& goal_text,
                              const testbed::QueryOptions& options) override;
  Result<std::vector<QueryResultSet>> Execute(
      const std::vector<StatementId>& statements) override;
  Result<QueryResultSet> ExecuteSql(const std::string& statement) override;
  Result<UpdateStoredStats> UpdateStoredDkb() override;
  Status ClearWorkspace() override;
  Result<std::vector<std::string>> ListRules() override;
  bool is_remote() const override { return true; }

  /// The server-side session id assigned at Hello (shows up in the
  /// server's sys.sessions / sys.connections / sys.query_log).
  int64_t session_id() const { return session_id_; }

  /// Fetches the server's live telemetry (kStats) over this connection.
  /// `sections` is an OR of net::kStatsServer / kStatsConnections /
  /// kStatsPrometheus.
  Result<net::StatsReply> FetchServerStats(
      uint8_t sections = net::kStatsAll);

  /// One-shot sessionless stats fetch: dials host:port, sends kStats
  /// without a Hello handshake (so the server never opens a COW session),
  /// and returns the reply. This is dkb_top's poll path.
  static Result<net::StatsReply> FetchStats(
      const std::string& host_port, uint8_t sections = net::kStatsAll,
      uint32_t max_frame_len = net::kDefaultMaxFrameLen);

  // -- Pipelining ----------------------------------------------------------

  /// Fires one Query frame (a whole batch of goals) without waiting for
  /// the response; returns the request id to collect with.
  Result<uint32_t> SendQueryBatch(const std::vector<std::string>& goals,
                                  const testbed::QueryOptions& options,
                                  uint8_t report_formats = net::kReportNone);

  /// Fires one Execute frame over prepared statements; returns the request
  /// id to collect with.
  Result<uint32_t> SendExecute(const std::vector<StatementId>& statements);

  /// Collects the response for an in-flight request id (in any order).
  Result<std::vector<QueryResultSet>> ReceiveResultSets(uint32_t request_id);

 private:
  explicit RemoteClient(int fd, uint32_t max_frame_len)
      : fd_(fd), decoder_(max_frame_len) {}

  /// Resolves "host:port" and returns a connected TCP socket (TCP_NODELAY
  /// set). Shared by Connect and the sessionless FetchStats.
  static Result<int> DialTcp(const std::string& host_port);

  /// Writes one request frame.
  Status SendFrame(net::MsgType type, uint32_t request_id,
                   std::string_view payload);
  /// Reads frames until the one for `request_id` arrives, parking frames
  /// for other in-flight requests. An Error frame resolves to its Status.
  Result<net::Frame> ReceiveFrame(uint32_t request_id);
  /// SendFrame + ReceiveFrame + expected-type check.
  Result<net::Frame> Call(net::MsgType type, std::string_view payload,
                          net::MsgType expected);

  /// Encodes a kQuery payload, stamping a fresh client-generated trace id
  /// and the sampling flag (on when the options ask for a trace) so the
  /// server knows to build and return the net.*-wrapped span tree.
  static std::string EncodeQueryPayload(
      const std::vector<std::string>& goals,
      const testbed::QueryOptions& options, uint8_t report_formats);
  static Result<std::vector<QueryResultSet>> DecodeResultSets(
      const net::Frame& frame);

  int fd_ = -1;
  net::FrameDecoder decoder_;
  uint32_t next_request_id_ = 1;
  int64_t session_id_ = 0;
  std::map<uint32_t, net::Frame> parked_;
};

}  // namespace dkb

#endif  // DKB_CLIENT_REMOTE_CLIENT_H_
