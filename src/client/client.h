#ifndef DKB_CLIENT_CLIENT_H_
#define DKB_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "testbed/options.h"

namespace dkb {

/// One query's answers in transport-neutral form: the schema, the rows, the
/// paper's two headline timings (t_c / t_e), and any report renderings the
/// caller asked for. Identical whether the query ran in-process or on a
/// remote dkb_server — that identity is what the oracle test pins.
using QueryResultSet = net::WireResultSet;

/// Aligned ASCII table rendering (same layout as QueryResult::ToString).
std::string ResultSetToString(const QueryResultSet& rs);

/// What UpdateStoredDkb reports back through a Client: the full UpdateStats
/// breakdown stays server-side (visible via sys views); the wire carries the
/// two numbers every tool prints.
struct UpdateStoredStats {
  int64_t rules_stored = 0;
  int64_t total_us = 0;
};

/// Server-assigned handle for a prepared statement, valid for the lifetime
/// of the client (connection) that prepared it.
using StatementId = uint32_t;

/// Transport-independent D/KB session interface mirroring `Testbed`'s
/// surface. Two implementations exist:
///
///   - InProcessClient — a thin adapter over an owned or borrowed Testbed
///     (src/client/in_process_client.h);
///   - RemoteClient — serializes every call over the binary wire protocol
///     to a dkb_server (src/client/remote_client.h).
///
/// Tools (REPL, dkb_profile), benches, and the oracle test are written
/// against this interface so the same workload runs unchanged on either
/// side of the process boundary.
///
/// Thread safety: a Client is a session — use it from one thread at a time,
/// open more clients for concurrency (each remote connection gets its own
/// COW snapshot session server-side).
class Client {
 public:
  virtual ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Loads a Datalog program: rules to the workspace, ground facts to the
  /// extensional database.
  virtual Status Consult(const std::string& program_text) = 0;

  /// Adds a single rule to the workspace.
  virtual Status AddRule(const std::string& rule_text) = 0;

  /// Removes a workspace rule by structural equality.
  virtual Status RetractRule(const std::string& rule_text) = 0;

  /// Declares a base predicate with explicit column types.
  virtual Status DefineBase(const std::string& pred,
                            const std::vector<DataType>& types) = 0;

  /// Bulk-loads facts for a base predicate.
  virtual Status AddFacts(const std::string& pred,
                          const std::vector<Tuple>& rows) = 0;

  /// Compiles and executes one D/KB query. `report_formats` is an OR of
  /// net::ReportFormat bits selecting which QueryReport renderings to
  /// return alongside the rows (kReportNone for benches and oracle runs).
  virtual Result<QueryResultSet> Query(
      const std::string& goal_text,
      const testbed::QueryOptions& options = testbed::QueryOptions{},
      uint8_t report_formats = net::kReportNone) = 0;

  /// Runs a batch of goals under one set of options; one round trip on the
  /// wire. Results come back in goal order; the batch fails as a unit on
  /// the first erroring goal.
  virtual Result<std::vector<QueryResultSet>> QueryBatch(
      const std::vector<std::string>& goals,
      const testbed::QueryOptions& options = testbed::QueryOptions{},
      uint8_t report_formats = net::kReportNone) = 0;

  /// Registers a goal + options for repeated execution and returns its
  /// statement handle.
  virtual Result<StatementId> Prepare(
      const std::string& goal_text,
      const testbed::QueryOptions& options = testbed::QueryOptions{}) = 0;

  /// Executes prepared statements (one or many per call; results in call
  /// order).
  virtual Result<std::vector<QueryResultSet>> Execute(
      const std::vector<StatementId>& statements) = 0;

  /// Runs one raw SQL statement against the DBMS under the testbed's writer
  /// lock (sys.* views resolve server-side, so a remote client sees the
  /// server's sys.connections, sessions, metrics, ...).
  virtual Result<QueryResultSet> ExecuteSql(const std::string& statement) = 0;

  /// Commits the workspace rules into the Stored DKB.
  virtual Result<UpdateStoredStats> UpdateStoredDkb() = 0;

  /// Drops all workspace rules.
  virtual Status ClearWorkspace() = 0;

  /// The current workspace rules, rendered back to source form.
  virtual Result<std::vector<std::string>> ListRules() = 0;

  /// True for transports that cross a process boundary (RemoteClient).
  /// Tools use this to gate local-only niceties (session save/load, local
  /// metrics) with a clear "unavailable over --connect" message.
  virtual bool is_remote() const = 0;

 protected:
  Client() = default;
};

}  // namespace dkb

#endif  // DKB_CLIENT_CLIENT_H_
